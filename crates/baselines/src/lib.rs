//! # qccd-baselines
//!
//! Reimplementations of the two baseline QCCD compilers the paper compares
//! against in Table 3 (§6.5):
//!
//! * [`QccdSimCompiler`] — a QCCDSim-style NISQ compiler: qubits are assigned
//!   to traps round-robin in qubit-index order (no QEC/topology awareness),
//!   and ion movement is resolved greedily per gate.
//! * [`MuzzleShuttleCompiler`] — a Muzzle-the-Shuttle-style compiler: the
//!   same structure-unaware placement, with transport additionally serialised
//!   globally (its conservative shuttle-avoidance policy executes one
//!   reconfiguration at a time).
//!
//! Both baselines reuse the routing and scheduling machinery of `qccd-core`;
//! the difference is purely in the mapping policy and transport discipline —
//! exactly the dimensions on which the paper's QEC-aware compiler improves.
//! As in the paper, configurations that a baseline cannot handle are reported
//! as failures (`NaN` entries of Table 3).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;

use qccd_circuit::{Circuit, QubitId};
use qccd_hardware::{Device, TrapId, WiringMethod};
use qccd_qec::{parity_check_round, CodeLayout};

use qccd_core::{route, schedule, ArchitectureConfig, CompileError, CompiledProgram, QubitMapping};

/// Which baseline strategy to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// QCCDSim-style greedy NISQ compiler.
    QccdSim,
    /// Muzzle-the-Shuttle-style compiler with globally serialised transport.
    MuzzleShuttle,
}

impl std::fmt::Display for BaselineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineKind::QccdSim => write!(f, "QCCDSim"),
            BaselineKind::MuzzleShuttle => write!(f, "MuzzleTheShuttle"),
        }
    }
}

/// Builds a structure-unaware round-robin mapping: qubit `i` goes to trap
/// `i / (capacity − 1)` in index order, ignoring the code geometry.
fn round_robin_mapping(layout: &CodeLayout, device: &Device) -> Result<QubitMapping, CompileError> {
    let usable = if device.num_traps() == 1 {
        device.capacity()
    } else {
        device.capacity().saturating_sub(1).max(1)
    };
    if layout.num_qubits() > device.mappable_qubits() {
        return Err(CompileError::InsufficientCapacity {
            required: layout.num_qubits(),
            available: device.mappable_qubits(),
        });
    }
    let mut chains: HashMap<TrapId, Vec<QubitId>> = HashMap::new();
    for (i, qubit) in layout.qubits().iter().enumerate() {
        let trap = device.traps()[i / usable].id;
        chains.entry(trap).or_default().push(qubit.id);
    }
    Ok(QubitMapping::from_chains(chains))
}

/// A baseline compiler emulating prior QCCD toolflows.
#[derive(Debug, Clone)]
pub struct BaselineCompiler {
    kind: BaselineKind,
    arch: ArchitectureConfig,
}

/// Convenience alias constructor for the QCCDSim-style baseline.
#[derive(Debug, Clone)]
pub struct QccdSimCompiler;

/// Convenience alias constructor for the Muzzle-the-Shuttle-style baseline.
#[derive(Debug, Clone)]
pub struct MuzzleShuttleCompiler;

impl QccdSimCompiler {
    /// Creates the QCCDSim-style baseline for an architecture.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(arch: ArchitectureConfig) -> BaselineCompiler {
        BaselineCompiler {
            kind: BaselineKind::QccdSim,
            arch,
        }
    }
}

impl MuzzleShuttleCompiler {
    /// Creates the Muzzle-the-Shuttle-style baseline for an architecture.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(arch: ArchitectureConfig) -> BaselineCompiler {
        BaselineCompiler {
            kind: BaselineKind::MuzzleShuttle,
            arch,
        }
    }
}

impl BaselineCompiler {
    /// The baseline strategy.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// Compiles `rounds` rounds of parity checks with the baseline strategy.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when the baseline cannot handle the
    /// configuration (reported as `NaN` in the Table-3 reproduction).
    pub fn compile_rounds(
        &self,
        layout: &CodeLayout,
        rounds: usize,
    ) -> Result<CompiledProgram, CompileError> {
        let mut circuit = Circuit::new();
        circuit.pad_qubits(layout.num_qubits());
        let round = parity_check_round(layout);
        for _ in 0..rounds {
            circuit.extend(round.iter().copied());
        }
        let device = self.arch.device_for(layout.num_qubits());
        let mapping = round_robin_mapping(layout, &device)?;
        let routed = route(&circuit, layout, &device, &mapping)?;
        // Muzzle-the-Shuttle executes one reconfiguration at a time: model it
        // with the WISE-style global transport serialisation.
        let wiring = match self.kind {
            BaselineKind::QccdSim => self.arch.wiring,
            BaselineKind::MuzzleShuttle => WiringMethod::Wise,
        };
        let timed = schedule(&routed, &self.arch.operation_times, wiring);
        Ok(CompiledProgram {
            arch: self.arch.clone(),
            circuit,
            device,
            mapping,
            routed,
            schedule: timed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_core::Compiler;
    use qccd_hardware::TopologyKind;
    use qccd_qec::{repetition_code, rotated_surface_code};

    fn arch(kind: TopologyKind, capacity: usize) -> ArchitectureConfig {
        ArchitectureConfig::new(kind, capacity, WiringMethod::Standard, 1.0)
    }

    #[test]
    fn baselines_compile_the_repetition_code() {
        let layout = repetition_code(3);
        {
            let kind_arch = arch(TopologyKind::Linear, 3);
            let qccdsim = QccdSimCompiler::new(kind_arch.clone());
            let muzzle = MuzzleShuttleCompiler::new(kind_arch.clone());
            assert!(qccdsim.compile_rounds(&layout, 1).is_ok());
            assert!(muzzle.compile_rounds(&layout, 1).is_ok());
        }
    }

    #[test]
    fn qec_aware_compiler_moves_less_than_qccdsim_baseline() {
        let layout = rotated_surface_code(3);
        let configuration = arch(TopologyKind::Grid, 3);
        let ours = Compiler::new(configuration.clone())
            .compile_rounds(&layout, 1)
            .unwrap();
        let baseline = QccdSimCompiler::new(configuration)
            .compile_rounds(&layout, 1)
            .unwrap();
        assert!(
            ours.movement_ops() <= baseline.movement_ops(),
            "ours {} vs baseline {}",
            ours.movement_ops(),
            baseline.movement_ops()
        );
        assert!(ours.movement_time_us() <= baseline.movement_time_us());
    }

    #[test]
    fn muzzle_baseline_is_slower_than_qccdsim_baseline() {
        let layout = rotated_surface_code(2);
        let configuration = arch(TopologyKind::Grid, 3);
        let qccdsim = QccdSimCompiler::new(configuration.clone())
            .compile_rounds(&layout, 1)
            .unwrap();
        let muzzle = MuzzleShuttleCompiler::new(configuration)
            .compile_rounds(&layout, 1)
            .unwrap();
        assert!(muzzle.elapsed_time_us() >= qccdsim.elapsed_time_us());
    }

    #[test]
    fn round_robin_mapping_ignores_geometry() {
        let layout = rotated_surface_code(3);
        let device = arch(TopologyKind::Grid, 3).device_for(layout.num_qubits());
        let mapping = round_robin_mapping(&layout, &device).unwrap();
        assert_eq!(mapping.num_qubits(), layout.num_qubits());
        // Qubits 0 and 1 (adjacent indices, not necessarily adjacent in the
        // code) share a trap.
        assert_eq!(
            mapping.trap_of(QubitId::new(0)),
            mapping.trap_of(QubitId::new(1))
        );
    }

    #[test]
    fn undersized_device_is_rejected() {
        let layout = rotated_surface_code(3);
        let tiny = qccd_hardware::Device::linear(2, 3);
        assert!(round_robin_mapping(&layout, &tiny).is_err());
    }

    #[test]
    fn structure_unaware_baseline_can_fail_where_ours_succeeds() {
        // On a linear device the naive round-robin placement congests the
        // chain badly enough that the baseline cannot always route — the
        // paper reports exactly this as NaN entries in Table 3. Our compiler
        // handles the same configuration.
        let layout = rotated_surface_code(3);
        let configuration = arch(TopologyKind::Linear, 3);
        let ours = Compiler::new(configuration.clone()).compile_rounds(&layout, 1);
        assert!(ours.is_ok());
        // The baseline either succeeds (with more movement) or fails; both
        // outcomes are handled by the Table-3 harness.
        let _ = QccdSimCompiler::new(configuration).compile_rounds(&layout, 1);
    }
}
