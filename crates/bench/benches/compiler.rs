//! Criterion micro-benchmarks for the QEC-to-QCCD compiler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qccd_core::{ArchitectureConfig, Compiler};
use qccd_qec::rotated_surface_code;

fn bench_compile_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_one_round_grid_c2");
    group.sample_size(10);
    for d in [3usize, 5, 7] {
        let layout = rotated_surface_code(d);
        let compiler = Compiler::new(ArchitectureConfig::recommended(1.0));
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| compiler.compile_rounds(&layout, 1).expect("compiles"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile_rounds);
criterion_main!(benches);
