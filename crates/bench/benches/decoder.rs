//! Criterion micro-benchmarks for the union-find decoder and the end-to-end
//! logical error rate estimator, plus the batch-vs-per-shot decode
//! throughput comparison that gates the batched pipeline (the batch path
//! must beat the per-shot adapter by a wide margin).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qccd_circuit::Instruction;
use qccd_core::{ArchitectureConfig, Compiler};
use qccd_decoder::{
    estimate_logical_error_rate, DecodeScratch, Decoder, DecoderKind, DecodingGraph, MemoConfig,
    UnionFindDecoder,
};
use qccd_qec::{memory_experiment, rotated_surface_code, MemoryBasis};
use qccd_sim::{
    sample_detector_chunks, DetectorErrorModel, NoiseChannel, NoisyCircuit, SyndromeChunk,
};

fn compiled_noisy_memory(d: usize) -> NoisyCircuit {
    let layout = rotated_surface_code(d);
    let compiler = Compiler::new(ArchitectureConfig::recommended(5.0));
    compiler
        .compile_memory_experiment(&layout, d, MemoryBasis::Z)
        .expect("compiles")
        .to_noisy_circuit()
}

/// A rotated-surface-code memory experiment with code-capacity depolarising
/// noise at rate `p` on every data qubit each round — the deep
/// below-threshold regime the paper's Λ-fits sample from.
fn code_capacity_memory(d: usize, p: f64) -> NoisyCircuit {
    let code = rotated_surface_code(d);
    let exp = memory_experiment(&code, d, MemoryBasis::Z);
    let data = code.data_qubits();
    let mut noisy = NoisyCircuit::new();
    noisy.pad_qubits(exp.circuit.num_qubits());
    let first_ancilla = code.ancilla_qubits()[0];
    for instruction in exp.circuit.iter() {
        if let Instruction::Reset(q) = instruction {
            if *q == first_ancilla {
                for &dq in &data {
                    noisy.push_noise(NoiseChannel::Depolarize1 { qubit: dq, p });
                }
            }
        }
        noisy.push_gate(*instruction);
    }
    for det in exp.circuit.detectors() {
        noisy.add_detector(det.clone());
    }
    for obs in exp.circuit.observables() {
        noisy.add_observable(obs.clone());
    }
    noisy
}

fn bench_ler_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("logical_error_rate_1024_shots");
    group.sample_size(10);
    {
        let d = 3usize;
        let noisy = compiled_noisy_memory(d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                estimate_logical_error_rate(&noisy, 1024, 11, DecoderKind::UnionFind)
                    .expect("decodes")
            });
        });
    }
    group.finish();
}

/// Batch vs per-shot decode throughput on identical pre-sampled syndromes.
///
/// `decode_batch` reuses one `DecodeScratch` across all shots and skips
/// quiet shots with a word scan; the per-shot adapter pays a fresh scratch
/// and a defect-list allocation per shot (the pre-batch behaviour).
fn bench_batch_vs_per_shot(c: &mut Criterion) {
    for d in [3usize, 5, 7] {
        let shots = 100_000;
        let noisy = code_capacity_memory(d, 0.002);
        let dem = DetectorErrorModel::from_circuit(&noisy).expect("valid annotations");
        let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
        let sampler = sample_detector_chunks(&noisy, shots, 11, shots).expect("valid annotations");
        let chunk: SyndromeChunk = sampler.sample_chunk(0);

        let mut group = c.benchmark_group(format!("decode_{shots}_shots_d{d}"));
        group.sample_size(10);
        group.bench_function("batch", |b| {
            // Memo disabled: this is PR 1's raw batch path, the baseline the
            // memoized benchmark below is measured against.
            let mut scratch = DecodeScratch::with_memo_config(MemoConfig::disabled());
            b.iter(|| decoder.decode_batch(&chunk, &mut scratch));
        });
        group.bench_function("per_shot", |b| {
            b.iter(|| {
                let mut flips = 0usize;
                let mut fired = Vec::new();
                for shot in 0..chunk.num_shots() {
                    chunk.fired_detectors_into(shot, &mut fired);
                    let prediction = decoder.decode(&fired);
                    flips += prediction.iter().filter(|&&f| f).count();
                }
                flips
            });
        });
        group.finish();
    }
}

/// Memoized vs uncached batch decode on identical pre-sampled syndromes in
/// the deep below-threshold regime (d = 5, p = 0.002, 1e5 shots) — the
/// regime the paper's Λ-fits sample from, where a handful of small defect
/// sets recur across almost every noisy shot.
///
/// The memoized path must beat PR 1's uncached batch decode by ≥2× here
/// (asserted by the perf harness reading this bench); the measured cache
/// hit rate is printed alongside the timings.
fn bench_memoized_vs_uncached(c: &mut Criterion) {
    let d = 5usize;
    let shots = 100_000;
    let noisy = code_capacity_memory(d, 0.002);
    let dem = DetectorErrorModel::from_circuit(&noisy).expect("valid annotations");
    let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
    let sampler = sample_detector_chunks(&noisy, shots, 11, shots).expect("valid annotations");
    let chunk: SyndromeChunk = sampler.sample_chunk(0);

    let mut group = c.benchmark_group(format!("memoized_decode_{shots}_shots_d{d}"));
    group.sample_size(10);
    group.bench_function("batch_uncached", |b| {
        let mut scratch = DecodeScratch::with_memo_config(MemoConfig::disabled());
        b.iter(|| decoder.decode_batch(&chunk, &mut scratch));
    });
    group.bench_function("batch_memoized", |b| {
        let mut scratch = DecodeScratch::new();
        b.iter(|| decoder.decode_batch(&chunk, &mut scratch));
    });
    group.finish();

    // Report the hit rate of one cold-start pass over the chunk (what a
    // fresh worker sees) — the recurring small defect sets should put it
    // well above 90% in this regime.
    let mut scratch = DecodeScratch::new();
    decoder.decode_batch(&chunk, &mut scratch);
    let stats = scratch.cache_stats();
    println!(
        "memoized_decode_{shots}_shots_d{d}/cache: hit rate {:.1}% ({} hits / {} misses / {} \
         uncacheable over {} noisy shots, {} distinct defect sets)",
        100.0 * stats.hit_rate(),
        stats.hits,
        stats.misses,
        stats.uncacheable,
        stats.decoded(),
        scratch.memo_entries(),
    );
}

/// Word-parallel vs per-shot batch decode on identical pre-sampled
/// syndromes in the sparse regime the word path targets (d = 5, p = 2e-3,
/// 1e5 shots — the paper's deep below-threshold sampling point).
///
/// Three bit-identical contenders:
///
/// * `word` — the word-parallel default (tiled triage + single/pair merge,
///   memoized);
/// * `per_shot` — the per-shot reference loop at the same memo
///   configuration (the bit-identity partner; word-level triage is the
///   only difference);
/// * `per_shot_unmemoized` — per-shot union-find against the reusable
///   scratch with the memo off (what every shot paid before memoization).
///
/// The word path must be ≥2× faster than the per-shot unmemoized
/// `DecodeScratch` path here (asserted by the perf harness reading this
/// bench) — in this regime ~96% of noisy shots stay at or below the memo
/// cap and the remaining above-cap tail is decoded identically by all
/// three, so the word-vs-`per_shot` delta isolates exactly what the tiled
/// triage + word merges buy over gather/hash. The triage verdicts are
/// printed alongside the timings.
fn bench_word_vs_per_shot(c: &mut Criterion) {
    let d = 5usize;
    let shots = 100_000;
    let noisy = code_capacity_memory(d, 0.002);
    let dem = DetectorErrorModel::from_circuit(&noisy).expect("valid annotations");
    let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
    let sampler = sample_detector_chunks(&noisy, shots, 11, shots).expect("valid annotations");
    let chunk: SyndromeChunk = sampler.sample_chunk(0);

    let mut group = c.benchmark_group(format!("word_decode_{shots}_shots_d{d}"));
    group.sample_size(10);
    group.bench_function("word", |b| {
        let mut scratch = DecodeScratch::new();
        b.iter(|| decoder.decode_batch(&chunk, &mut scratch));
    });
    group.bench_function("per_shot", |b| {
        let mut scratch = DecodeScratch::new();
        b.iter(|| decoder.decode_batch_per_shot(&chunk, &mut scratch));
    });
    group.bench_function("per_shot_unmemoized", |b| {
        let mut scratch = DecodeScratch::with_memo_config(MemoConfig::disabled());
        b.iter(|| decoder.decode_batch_per_shot(&chunk, &mut scratch));
    });
    group.finish();

    // One cold pass each: identical predictions by contract; print the word
    // triage so regressions in sparse coverage are visible in CI logs.
    let mut word = DecodeScratch::new();
    let mut per_shot = DecodeScratch::new();
    let a = decoder.decode_batch(&chunk, &mut word);
    let b = decoder.decode_batch_per_shot(&chunk, &mut per_shot);
    assert_eq!(a, b, "word and per-shot paths must be bit-identical");
    let stats = word.cache_stats();
    println!(
        "word_decode_{shots}_shots_d{d}/triage: {} quiet / {} sparse / {} dense words, {} of {} \
         noisy shots word-merged ({:.1}% hit rate)",
        stats.quiet_words,
        stats.sparse_words,
        stats.dense_words,
        stats.word_merged,
        stats.decoded(),
        100.0 * stats.hit_rate(),
    );
    println!(
        "word_decode_{shots}_shots_d{d}/dense: {} lane hits / {} misses / {} evictions, {} \
         clustered lanes ({} components, {} conflicts), {} lanes cached",
        stats.dense_hits,
        stats.dense_misses,
        stats.dense_evictions,
        stats.cluster_lanes,
        stats.cluster_components,
        stats.cluster_conflicts,
        word.dense_memo_entries(),
    );
}

/// Telemetry overhead gate on the word-decode hot path (d = 5, p = 2e-3,
/// 1e5 shots — the `word_decode_100000_shots_d5` regime).
///
/// The decoder's telemetry hook in its measurable disabled mode — hook
/// installed with a *disabled* registry, so every instrumentation branch is
/// reached but no cell is written — must add **<2%** to the word-parallel
/// batch decode. Interleaved min-of-N wall times keep the comparison robust
/// to ambient machine noise, and the assertion also runs under criterion's
/// `--test` smoke mode, so CI's bench smoke gates it.
fn bench_telemetry_overhead_gate(c: &mut Criterion) {
    use qccd_decoder::{install_telemetry, uninstall_telemetry};
    use qccd_telemetry::Registry;

    let d = 5usize;
    let shots = 100_000;
    let noisy = code_capacity_memory(d, 0.002);
    let dem = DetectorErrorModel::from_circuit(&noisy).expect("valid annotations");
    let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
    let sampler = sample_detector_chunks(&noisy, shots, 11, shots).expect("valid annotations");
    let chunk: SyndromeChunk = sampler.sample_chunk(0);

    let mut group = c.benchmark_group(format!("telemetry_overhead_{shots}_shots_d{d}"));
    group.sample_size(10);
    group.bench_function("baseline", |b| {
        uninstall_telemetry();
        let mut scratch = DecodeScratch::new();
        b.iter(|| decoder.decode_batch(&chunk, &mut scratch));
    });
    group.bench_function("hook_disabled", |b| {
        install_telemetry(&Registry::disabled());
        let mut scratch = DecodeScratch::new();
        b.iter(|| decoder.decode_batch(&chunk, &mut scratch));
        uninstall_telemetry();
    });
    group.finish();

    // The gate proper. Warm both scratches first so every timed pass does
    // identical (fully memo-warm) work, then alternate baseline and hooked
    // passes and compare the minima.
    let time_pass = |scratch: &mut DecodeScratch| {
        let start = std::time::Instant::now();
        let batch = decoder.decode_batch(&chunk, scratch);
        (start.elapsed(), batch)
    };
    uninstall_telemetry();
    let mut base_scratch = DecodeScratch::new();
    let mut hook_scratch = DecodeScratch::new();
    let (_, expected) = time_pass(&mut base_scratch);
    let _ = time_pass(&mut hook_scratch);
    let registry = Registry::disabled();
    let mut best_base = std::time::Duration::MAX;
    let mut best_hook = std::time::Duration::MAX;
    for _ in 0..7 {
        uninstall_telemetry();
        let (t, batch) = time_pass(&mut base_scratch);
        assert_eq!(batch, expected, "baseline pass changed predictions");
        best_base = best_base.min(t);
        install_telemetry(&registry);
        let (t, batch) = time_pass(&mut hook_scratch);
        assert_eq!(batch, expected, "hooked pass changed predictions");
        best_hook = best_hook.min(t);
    }
    uninstall_telemetry();
    // <2% relative, plus a tiny absolute slack so a sub-millisecond decode
    // cannot fail on timer granularity alone.
    let limit = best_base.mul_f64(1.02) + std::time::Duration::from_micros(200);
    assert!(
        best_hook <= limit,
        "disabled telemetry hook exceeds the 2% overhead gate: baseline {best_base:?}, \
         hooked {best_hook:?} (limit {limit:?})"
    );
    println!(
        "telemetry_overhead_{shots}_shots_d{d}/gate: baseline {best_base:?}, hook-disabled \
         {best_hook:?} (limit {limit:?})"
    );
}

criterion_group!(
    benches,
    bench_ler_estimation,
    bench_batch_vs_per_shot,
    bench_memoized_vs_uncached,
    bench_word_vs_per_shot,
    bench_telemetry_overhead_gate
);
criterion_main!(benches);
