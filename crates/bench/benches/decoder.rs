//! Criterion micro-benchmarks for the union-find decoder and the end-to-end
//! logical error rate estimator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qccd_core::{ArchitectureConfig, Compiler};
use qccd_decoder::{estimate_logical_error_rate, DecoderKind};
use qccd_qec::{rotated_surface_code, MemoryBasis};

fn bench_ler_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("logical_error_rate_1024_shots");
    group.sample_size(10);
    for d in [3usize] {
        let layout = rotated_surface_code(d);
        let compiler = Compiler::new(ArchitectureConfig::recommended(5.0));
        let program = compiler
            .compile_memory_experiment(&layout, d, MemoryBasis::Z)
            .expect("compiles");
        let noisy = program.to_noisy_circuit();
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                estimate_logical_error_rate(&noisy, 1024, 11, DecoderKind::UnionFind)
                    .expect("decodes")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ler_estimation);
criterion_main!(benches);
