//! Criterion benchmarks for the streaming decode service: the replay
//! loadgen against the offline word-parallel batch decode, at the paper's
//! deep below-threshold sampling point (d = 5, p = 2e-3).
//!
//! The acceptance target (asserted by the perf harness reading this bench)
//! is that the multi-stream service sustains **≥ 80%** of the offline
//! single-thread `decode_batch` shots/s on the same frames while staying
//! bit-identical — the loadgen report printed after the groups carries the
//! measured ratio, the p50/p99 latency and the mismatch count (always 0 by
//! the identity property suite).
//!
//! The ratio is core-count sensitive: submission, decode and delivery are
//! pipeline stages that overlap on separate cores, while on a single-core
//! runner every stage timeshares with the decode itself and the measured
//! ratio is the end-to-end overhead floor (~85–95% there on sustained
//! replays with the sharded batcher and shot-major word-block submission;
//! this 50k-shot pass finishes in milliseconds and is scheduler-noise
//! dominated, so read the ratio from longer runs when it matters — the
//! offline baseline does no ingestion, batching, routing or delivery at
//! all).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use qccd_circuit::Instruction;
use qccd_decoder::{DecodeScratch, DecoderKind};
use qccd_qec::{memory_experiment, rotated_surface_code, MemoryBasis};
use qccd_service::{loadgen, DecodeProgram, DecodeService, LoadgenOptions, ServiceConfig};
use qccd_sim::{sample_detector_chunks, NoiseChannel, NoisyCircuit};

/// A rotated-surface-code memory experiment with code-capacity depolarising
/// noise at rate `p` on every data qubit each round (the same workload as
/// the decoder benches).
fn code_capacity_memory(d: usize, p: f64) -> NoisyCircuit {
    let code = rotated_surface_code(d);
    let exp = memory_experiment(&code, d, MemoryBasis::Z);
    let data = code.data_qubits();
    let mut noisy = NoisyCircuit::new();
    noisy.pad_qubits(exp.circuit.num_qubits());
    let first_ancilla = code.ancilla_qubits()[0];
    for instruction in exp.circuit.iter() {
        if let Instruction::Reset(q) = instruction {
            if *q == first_ancilla {
                for &dq in &data {
                    noisy.push_noise(NoiseChannel::Depolarize1 { qubit: dq, p });
                }
            }
        }
        noisy.push_gate(*instruction);
    }
    for det in exp.circuit.detectors() {
        noisy.add_detector(det.clone());
    }
    for obs in exp.circuit.observables() {
        noisy.add_observable(obs.clone());
    }
    noisy
}

fn service_config() -> ServiceConfig {
    ServiceConfig::default()
        .with_workers(2)
        .with_flush_deadline(Duration::from_micros(500))
        .with_max_batch_words(32)
        .with_stream_queue_shots(8192)
}

/// Offline baseline vs streamed service decode on the same sampled frames.
fn bench_service_vs_offline(c: &mut Criterion) {
    let d = 5usize;
    let shots = 50_000;
    let circuit = code_capacity_memory(d, 0.002);
    let program =
        DecodeProgram::from_circuit("bench", circuit.clone(), DecoderKind::UnionFind).unwrap();
    let sampler = sample_detector_chunks(&circuit, shots, 11, 16 * 4096).unwrap();
    let chunks: Vec<_> = sampler.chunks().collect();

    let mut group = c.benchmark_group(format!("service_decode_{shots}_shots_d{d}"));
    group.sample_size(10);
    group.bench_function("offline_batch", |b| {
        let mut scratch = DecodeScratch::new();
        b.iter(|| {
            let mut flips = 0usize;
            for chunk in &chunks {
                let prediction = program.decode_batch(chunk, &mut scratch);
                flips += prediction
                    .plane(0)
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum::<usize>();
            }
            flips
        });
    });
    group.bench_function("service_8streams", |b| {
        b.iter(|| {
            let service = DecodeService::new(service_config());
            let options = LoadgenOptions {
                streams: 8,
                shots,
                seed: 11,
                rate: None,
                verify: false, // identity is pinned by the property suite
                ..LoadgenOptions::default()
            };
            let report = loadgen::run_in_process(
                &service,
                "bench",
                &circuit,
                DecoderKind::UnionFind,
                &options,
            )
            .expect("loadgen runs");
            service.shutdown();
            report.shots
        });
    });
    group.finish();

    // One verified loadgen pass: print the acceptance numbers (throughput
    // ratio vs offline, latency percentiles, flush split) for CI logs and
    // the perf harness.
    let service = DecodeService::new(service_config());
    let options = LoadgenOptions {
        streams: 8,
        shots,
        seed: 11,
        rate: None,
        verify: true,
        ..LoadgenOptions::default()
    };
    let report = loadgen::run_in_process(
        &service,
        "bench",
        &circuit,
        DecoderKind::UnionFind,
        &options,
    )
    .expect("loadgen runs");
    service.shutdown();
    assert_eq!(report.mismatches, 0, "service must stay bit-identical");
    println!(
        "service_decode_{shots}_shots_d{d}/acceptance: {}",
        report.render_pretty().replace('\n', "\n  ")
    );
}

criterion_group!(benches, bench_service_vs_offline);
criterion_main!(benches);
