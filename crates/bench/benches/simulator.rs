//! Criterion micro-benchmarks for the stabilizer simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qccd_circuit::{Instruction, QubitId};
use qccd_qec::{memory_experiment, rotated_surface_code, MemoryBasis};
use qccd_sim::{sample_detectors, NoiseChannel, NoisyCircuit};

fn noisy_memory(d: usize, p: f64) -> NoisyCircuit {
    let code = rotated_surface_code(d);
    let exp = memory_experiment(&code, d, MemoryBasis::Z);
    let mut noisy = NoisyCircuit::new();
    noisy.pad_qubits(exp.circuit.num_qubits());
    for instruction in exp.circuit.iter() {
        noisy.push_gate(*instruction);
        if let Instruction::Cnot { control, target } = instruction {
            noisy.push_noise(NoiseChannel::Depolarize2 {
                a: *control,
                b: *target,
                p,
            });
        }
        if let Instruction::Reset(q) = instruction {
            noisy.push_noise(NoiseChannel::BitFlip { qubit: *q, p });
        }
    }
    let _ = QubitId::new(0);
    for detector in exp.circuit.detectors() {
        noisy.add_detector(detector.clone());
    }
    for observable in exp.circuit.observables() {
        noisy.add_observable(observable.clone());
    }
    noisy
}

fn bench_frame_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_sampler_4096_shots");
    group.sample_size(10);
    for d in [3usize, 5] {
        let circuit = noisy_memory(d, 1e-3);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| sample_detectors(&circuit, 4096, 7).expect("samples"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_frame_sampling);
criterion_main!(benches);
