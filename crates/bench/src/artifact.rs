//! Structured experiment results.
//!
//! Running an [`ExperimentSpec`](crate::ExperimentSpec) produces an
//! [`Artifact`]: the rendered table (headers + rows), the structured numeric
//! payload (sampled points with standard errors, Λ fits with confidence
//! intervals, derived resources), and provenance metadata (engine seed, spec
//! content hash, `git describe`, thread-invariance contract). One artifact
//! serves all three emitters — pretty table, CSV, JSON — so every consumer
//! sees the same numbers.

use serde_json::Value;

use crate::format_table;
use crate::spec::ExperimentSpec;

/// Provenance of one artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactMetadata {
    /// Registry name of the spec that produced this artifact.
    pub spec_name: String,
    /// Content hash of that spec (see
    /// [`ExperimentSpec::content_hash`]).
    pub spec_hash: String,
    /// Sweep-engine seed all Monte-Carlo points derived their seeds from.
    pub seed: u64,
    /// `git describe --always --dirty` of the producing tree, when
    /// available.
    pub git_describe: Option<String>,
    /// Whether the numbers are bit-identical for any worker-thread count
    /// (the sweep/estimator determinism contract; pinned by the golden and
    /// property tests).
    pub thread_invariant: bool,
    /// Whether this artifact was served from the [cache](crate::cache)
    /// instead of being recomputed.
    pub from_cache: bool,
}

impl ArtifactMetadata {
    /// Metadata for a fresh (non-cached) run of `spec`.
    pub fn for_spec(spec: &ExperimentSpec) -> Self {
        ArtifactMetadata {
            spec_name: spec.name.clone(),
            spec_hash: spec.content_hash(),
            seed: spec.seed,
            git_describe: git_describe(),
            thread_invariant: true,
            from_cache: false,
        }
    }
}

/// `git describe --always --dirty` of the current tree, if git is available.
pub fn git_describe() -> Option<String> {
    let output = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let text = String::from_utf8(output.stdout).ok()?;
    let trimmed = text.trim();
    (!trimmed.is_empty()).then(|| trimmed.to_string())
}

/// One experiment's complete result (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Table title.
    pub title: String,
    /// Table column headers.
    pub headers: Vec<String>,
    /// Table rows (one cell per header).
    pub rows: Vec<Vec<String>>,
    /// Free-form reading notes printed after the table.
    pub notes: Vec<String>,
    /// Structured numeric payload (per-configuration entries with sampled
    /// points, fits, derived resources, …).
    pub data: Value,
    /// Provenance.
    pub metadata: ArtifactMetadata,
}

impl Artifact {
    /// Serializes the whole artifact (table, data and metadata) to JSON.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "title": self.title,
            "headers": self.headers.clone(),
            "rows": Value::Array(
                self.rows.iter().map(|row| Value::from(row.clone())).collect(),
            ),
            "notes": self.notes.clone(),
            "data": self.data,
            "metadata": {
                "spec_name": self.metadata.spec_name,
                "spec_hash": self.metadata.spec_hash,
                "seed": self.metadata.seed,
                "git_describe": self.metadata.git_describe,
                "thread_invariant": self.metadata.thread_invariant,
                "from_cache": self.metadata.from_cache,
            },
        })
    }

    /// Parses an artifact back from its JSON encoding.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        validate_artifact_json(value)?;
        let string_list = |v: &Value| -> Vec<String> {
            v.as_array()
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|s| s.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default()
        };
        let metadata = &value["metadata"];
        Ok(Artifact {
            title: value["title"].as_str().unwrap_or_default().to_string(),
            headers: string_list(&value["headers"]),
            rows: value["rows"]
                .as_array()
                .map(|rows| rows.iter().map(&string_list).collect())
                .unwrap_or_default(),
            notes: string_list(&value["notes"]),
            data: value["data"].clone(),
            metadata: ArtifactMetadata {
                spec_name: metadata["spec_name"]
                    .as_str()
                    .unwrap_or_default()
                    .to_string(),
                spec_hash: metadata["spec_hash"]
                    .as_str()
                    .unwrap_or_default()
                    .to_string(),
                seed: metadata["seed"].as_u64().unwrap_or_default(),
                git_describe: metadata["git_describe"].as_str().map(str::to_string),
                thread_invariant: metadata["thread_invariant"].as_bool().unwrap_or_default(),
                from_cache: metadata["from_cache"].as_bool().unwrap_or_default(),
            },
        })
    }

    /// Renders the aligned pretty table (plus notes and provenance) as text.
    pub fn render_pretty(&self) -> String {
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        let mut out = format_table(&self.title, &headers, &self.rows);
        for note in &self.notes {
            out.push('\n');
            out.push_str(note);
            out.push('\n');
        }
        let provenance = format!(
            "\n[{} spec {}{}{}]\n",
            self.metadata.spec_name,
            self.metadata.spec_hash,
            match &self.metadata.git_describe {
                Some(describe) => format!(" @ {describe}"),
                None => String::new(),
            },
            if self.metadata.from_cache {
                " (cached)"
            } else {
                ""
            },
        );
        out.push_str(&provenance);
        out
    }

    /// Renders the table as CSV (RFC-4180 quoting).
    pub fn to_csv(&self) -> String {
        fn quote(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Checks that a JSON value has the artifact schema: a `title` string,
/// `headers` strings, `rows` of string cells matching the header width,
/// `notes` strings, a `data` payload, and a complete `metadata` object.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_artifact_json(value: &Value) -> Result<(), String> {
    let obj = value
        .as_object()
        .ok_or_else(|| "artifact must be a JSON object".to_string())?;
    for key in ["title", "headers", "rows", "notes", "data", "metadata"] {
        if !obj.contains_key(key) {
            return Err(format!("artifact is missing `{key}`"));
        }
    }
    if value["title"].as_str().is_none() {
        return Err("`title` must be a string".into());
    }
    let headers = value["headers"]
        .as_array()
        .ok_or_else(|| "`headers` must be an array".to_string())?;
    if headers.iter().any(|h| h.as_str().is_none()) {
        return Err("`headers` entries must be strings".into());
    }
    let rows = value["rows"]
        .as_array()
        .ok_or_else(|| "`rows` must be an array".to_string())?;
    for (i, row) in rows.iter().enumerate() {
        let cells = row
            .as_array()
            .ok_or_else(|| format!("row {i} must be an array"))?;
        if cells.len() != headers.len() {
            return Err(format!(
                "row {i} has {} cells but there are {} headers",
                cells.len(),
                headers.len()
            ));
        }
        if cells.iter().any(|c| c.as_str().is_none()) {
            return Err(format!("row {i} cells must be strings"));
        }
    }
    if value["notes"]
        .as_array()
        .map(|notes| notes.iter().any(|n| n.as_str().is_none()))
        .unwrap_or(true)
    {
        return Err("`notes` must be an array of strings".into());
    }
    let metadata = value["metadata"]
        .as_object()
        .ok_or_else(|| "`metadata` must be an object".to_string())?;
    for key in ["spec_name", "spec_hash", "seed", "thread_invariant"] {
        if !metadata.contains_key(key) {
            return Err(format!("metadata is missing `{key}`"));
        }
    }
    if value["metadata"]["spec_name"].as_str().is_none()
        || value["metadata"]["spec_hash"].as_str().is_none()
        || value["metadata"]["seed"].as_u64().is_none()
        || value["metadata"]["thread_invariant"].as_bool().is_none()
    {
        return Err("metadata fields have the wrong types".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        Artifact {
            title: "T".into(),
            headers: vec!["a".into(), "b".into()],
            rows: vec![
                vec!["1".into(), "x, \"quoted\"".into()],
                vec!["2".into(), "y".into()],
            ],
            notes: vec!["note".into()],
            data: serde_json::json!([{"d": 3, "ler": 0.25}]),
            metadata: ArtifactMetadata {
                spec_name: "demo".into(),
                spec_hash: "0123456789abcdef".into(),
                seed: 2026,
                git_describe: Some("abc123".into()),
                thread_invariant: true,
                from_cache: false,
            },
        }
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let artifact = sample();
        let text = serde_json::to_string_pretty(&artifact.to_json()).unwrap();
        let parsed = Artifact::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(parsed, artifact);
    }

    #[test]
    fn csv_quotes_reserved_characters() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("a,b"));
        assert_eq!(lines.next(), Some("1,\"x, \"\"quoted\"\"\""));
        assert_eq!(lines.next(), Some("2,y"));
    }

    #[test]
    fn pretty_rendering_contains_table_notes_and_provenance() {
        let text = sample().render_pretty();
        assert!(text.contains("=== T ==="));
        assert!(text.contains("note"));
        assert!(text.contains("demo spec 0123456789abcdef @ abc123"));
    }

    #[test]
    fn schema_validation_rejects_malformed_artifacts() {
        assert!(validate_artifact_json(&sample().to_json()).is_ok());
        assert!(validate_artifact_json(&serde_json::json!([])).is_err());
        assert!(validate_artifact_json(&serde_json::json!({"title": "x"})).is_err());
        let mut ragged = sample().to_json();
        ragged["rows"] = serde_json::json!([["only one cell"]]);
        assert!(validate_artifact_json(&ragged).is_err());
        let mut bad_meta = sample().to_json();
        bad_meta["metadata"] = serde_json::json!({"spec_name": "x"});
        assert!(validate_artifact_json(&bad_meta).is_err());
    }
}
