//! The single experiment driver: resolves named specs through the
//! [`qccd_bench::registry`], runs them on the sweep engine, and emits
//! pretty/CSV/JSON artifacts with optional content-hash caching. Run with
//! `-- --help` for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = qccd_bench::cli::run(&args) {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}
