//! Extension experiment E2: clustering-strategy ablation.
//!
//! DESIGN.md calls out the geometric (top-down regular) partition of §4.2 as
//! the load-bearing design choice of the mapping pass. This ablation
//! replaces it with a structure-blind round-robin partition and measures how
//! much of the compiler's advantage disappears: cut interaction-edge weight,
//! ion-movement operations and QEC round time, per trap capacity and code
//! distance.
//!
//! The `(distance, capacity)` cases are sharded across the
//! [`SweepEngine`]'s outer worker pool.

use qccd_bench::{dump_json, fmt_f64, grid_arch, print_table, DEFAULT_SWEEP_SEED};
use qccd_core::{cluster_qubits_with_strategy, cut_weight, ClusteringStrategy, Compiler};
use qccd_decoder::SweepEngine;
use qccd_qec::rotated_surface_code;

fn main() {
    let distances = [3usize, 5];
    let capacities = [3usize, 5, 9];

    let cases: Vec<(usize, usize)> = distances
        .iter()
        .flat_map(|&d| capacities.iter().map(move |&capacity| (d, capacity)))
        .collect();

    let engine = SweepEngine::new(DEFAULT_SWEEP_SEED);
    let outcomes = engine.run(&cases, |task| {
        let (d, capacity) = *task.point;
        let layout = rotated_surface_code(d);
        let cluster_size = capacity - 1;
        let geometric_cut = cut_weight(
            &layout,
            &cluster_qubits_with_strategy(&layout, cluster_size, ClusteringStrategy::Geometric),
        );
        let blind_cut = cut_weight(
            &layout,
            &cluster_qubits_with_strategy(&layout, cluster_size, ClusteringStrategy::RoundRobin),
        );

        let arch = grid_arch(capacity, 1.0);
        let geometric = Compiler::new(arch.clone()).compile_rounds(&layout, 1).ok();
        let blind = Compiler::new(arch)
            .with_mapping_strategy(ClusteringStrategy::RoundRobin)
            .compile_rounds(&layout, 1)
            .ok();

        let fmt_opt_time = |p: &Option<qccd_core::CompiledProgram>| {
            p.as_ref()
                .map(|p| fmt_f64(p.elapsed_time_us()))
                .unwrap_or_else(|| "NaN".into())
        };
        let fmt_opt_moves = |p: &Option<qccd_core::CompiledProgram>| {
            p.as_ref()
                .map(|p| p.movement_ops().to_string())
                .unwrap_or_else(|| "NaN".into())
        };
        let row = vec![
            format!("d={d} c{capacity}"),
            fmt_f64(geometric_cut),
            fmt_f64(blind_cut),
            fmt_opt_moves(&geometric),
            fmt_opt_moves(&blind),
            fmt_opt_time(&geometric),
            fmt_opt_time(&blind),
        ];
        let entry = serde_json::json!({
            "distance": d,
            "capacity": capacity,
            "geometric_cut_weight": geometric_cut,
            "round_robin_cut_weight": blind_cut,
            "geometric_movement_ops": geometric.as_ref().map(|p| p.movement_ops()),
            "round_robin_movement_ops": blind.as_ref().map(|p| p.movement_ops()),
            "geometric_round_us": geometric.as_ref().map(|p| p.elapsed_time_us()),
            "round_robin_round_us": blind.as_ref().map(|p| p.elapsed_time_us()),
        });
        (row, entry)
    });

    let (rows, artefact): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();

    print_table(
        "Extension E2: geometric vs round-robin clustering (grid, standard wiring, 1X gates)",
        &[
            "Configuration",
            "Cut weight (geo)",
            "Cut weight (RR)",
            "Moves (geo)",
            "Moves (RR)",
            "Round us (geo)",
            "Round us (RR)",
        ],
        &rows,
    );
    println!(
        "\nReading: the round-robin ablation cuts far more interaction edges, which turns into \
         more ion movement and longer rounds — the gap is the value of the §4.2 geometric partition."
    );
    dump_json(
        "ext_ablation_clustering",
        &serde_json::Value::Array(artefact),
    );
}
