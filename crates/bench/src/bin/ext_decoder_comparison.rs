//! Extension experiment E3: decoder ablation.
//!
//! DESIGN.md substitutes a weighted union-find decoder for the MWPM decoding
//! the paper gets from its Stim/PyMatching stack, and claims the substitution
//! only shifts logical error rates by a small constant factor (it does not
//! change which architecture wins). This experiment quantifies that claim by
//! decoding the *same* compiled memory experiments with the union-find,
//! greedy-matching and exact minimum-weight matching decoders.
//!
//! The `(improvement, distance)` cases are sharded across the
//! [`SweepEngine`]'s outer worker pool; within a case the three decoders see
//! the same sampled shots (same per-case seed), so the comparison stays
//! apples-to-apples.

use qccd_bench::{dump_json, fmt_f64, grid_arch, print_table, DEFAULT_SHOTS, DEFAULT_SWEEP_SEED};
use qccd_core::{Compiler, Toolflow};
use qccd_decoder::{estimate_logical_error_rate, DecoderKind, SweepEngine};
use qccd_qec::{rotated_surface_code, MemoryBasis};

fn main() {
    let distances = [3usize, 5];
    let improvements = [5.0f64, 10.0];
    let decoders = [
        DecoderKind::UnionFind,
        DecoderKind::GreedyMatching,
        DecoderKind::ExactMatching,
    ];
    let shots = DEFAULT_SHOTS;

    let cases: Vec<(f64, usize)> = improvements
        .iter()
        .flat_map(|&improvement| distances.iter().map(move |&d| (improvement, d)))
        .collect();

    let engine = SweepEngine::new(DEFAULT_SWEEP_SEED);
    let outcomes = engine.run(&cases, |task| {
        let (improvement, d) = *task.point;
        let layout = rotated_surface_code(d);
        let compiler = Compiler::new(grid_arch(2, improvement));
        let program = compiler
            .compile_memory_experiment(&layout, d, MemoryBasis::Z)
            .expect("the recommended architecture hosts the code");
        let noisy = program.to_noisy_circuit();

        let mut row = vec![format!("{improvement:.0}X d={d}")];
        let mut entry = serde_json::json!({
            "gate_improvement": improvement,
            "distance": d,
            "shots": shots,
            "seed": task.seed,
        });
        for decoder in decoders {
            let estimate = estimate_logical_error_rate(&noisy, shots, task.seed, decoder)
                .expect("compiled circuits carry consistent annotations");
            row.push(fmt_f64(estimate.logical_error_rate));
            entry[format!("{decoder:?}")] = serde_json::json!(estimate.logical_error_rate);
        }
        (row, entry)
    });

    let (rows, artefact): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();

    print_table(
        "Extension E3: logical error rate per decoder (grid, capacity 2, standard wiring)",
        &["Configuration", "Union-find", "Greedy", "Exact matching"],
        &rows,
    );
    println!(
        "\nReading: the exact matching decoder is the accuracy reference; union-find should sit \
         within a small factor of it and greedy should be the worst. The ordering of \
         architectures (not shown here) is unchanged by the decoder choice — see the Toolflow \
         decoder option ({:?} is the default).",
        Toolflow::new(grid_arch(2, 5.0)).decoder
    );
    dump_json(
        "ext_decoder_comparison",
        &serde_json::Value::Array(artefact),
    );
}
