//! Extension E3: decoder ablation.
//!
//! Legacy shim kept for artifact-script compatibility: delegates to the
//! experiment registry, which runs the same spec `artifacts run ext_decoder_comparison`
//! resolves — numbers are bit-identical by construction.

fn main() {
    qccd_bench::registry::run_legacy("ext_decoder_comparison");
}
