//! Extension E1: lattice-surgery merged patches.
//!
//! Legacy shim kept for artifact-script compatibility: delegates to the
//! experiment registry, which runs the same spec `artifacts run ext_surgery`
//! resolves — numbers are bit-identical by construction.

fn main() {
    qccd_bench::registry::run_legacy("ext_surgery");
}
