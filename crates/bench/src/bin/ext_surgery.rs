//! Extension experiment E1 (paper §8): lattice-surgery merged patches.
//!
//! The paper argues that its architectural conclusions carry over to logical
//! two-qubit operations because lattice-surgery circuits have the same local
//! parity-check structure as a single patch. This experiment checks that
//! claim with the compiler instead of assuming it: for each trap capacity it
//! compiles one parity-check round of (a) an isolated distance-`d` patch and
//! (b) the merged `d × (2d+1)` patch of a ZZ surgery, and compares round
//! times. At capacity 2 the merged patch should run at (approximately) the
//! same constant round time as the single patch; at large capacities the
//! merged patch slows down with its size.
//!
//! The `(capacity, distance)` cases compile independently, so they are
//! sharded across the [`SweepEngine`]'s outer worker pool.

use qccd_bench::{dump_json, fmt_f64, grid_arch, print_table, DEFAULT_SWEEP_SEED};
use qccd_core::Toolflow;
use qccd_decoder::SweepEngine;
use qccd_qec::{surgery_workload, MergeKind};

fn main() {
    let distances = [2usize, 3, 4];
    let capacities = [2usize, 6, 12];

    let cases: Vec<(usize, usize)> = capacities
        .iter()
        .flat_map(|&capacity| distances.iter().map(move |&d| (capacity, d)))
        .collect();

    let engine = SweepEngine::new(DEFAULT_SWEEP_SEED);
    let outcomes = engine.run(&cases, |task| {
        let (capacity, d) = *task.point;
        let toolflow = Toolflow::new(grid_arch(capacity, 1.0));
        let workload = surgery_workload(d, MergeKind::ZZ);
        let patch = toolflow.evaluate_layout(&workload.patch, 1, false);
        let merged = toolflow.evaluate_layout(&workload.merged, 1, false);
        let (patch_us, patch_moves) = match &patch {
            Ok(m) => (Some(m.qec_round_time_us), Some(m.movement_ops_per_round)),
            Err(_) => (None, None),
        };
        let (merged_us, merged_moves) = match &merged {
            Ok(m) => (Some(m.qec_round_time_us), Some(m.movement_ops_per_round)),
            Err(_) => (None, None),
        };
        let ratio = match (patch_us, merged_us) {
            (Some(p), Some(m)) if p > 0.0 => Some(m / p),
            _ => None,
        };
        let row = vec![
            format!("c{capacity} d={d}"),
            format!("{}", workload.patch.num_qubits()),
            format!("{}", workload.merged.num_qubits()),
            patch_us.map(fmt_f64).unwrap_or_else(|| "NaN".into()),
            merged_us.map(fmt_f64).unwrap_or_else(|| "NaN".into()),
            ratio
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "NaN".into()),
            patch_moves
                .map(|m| m.to_string())
                .unwrap_or_else(|| "NaN".into()),
            merged_moves
                .map(|m| m.to_string())
                .unwrap_or_else(|| "NaN".into()),
        ];
        let entry = serde_json::json!({
            "capacity": capacity,
            "distance": d,
            "patch_qubits": workload.patch.num_qubits(),
            "merged_qubits": workload.merged.num_qubits(),
            "patch_round_us": patch_us,
            "merged_round_us": merged_us,
            "merged_over_patch": ratio,
            "patch_movement_ops": patch_moves,
            "merged_movement_ops": merged_moves,
        });
        (row, entry)
    });

    let (rows, artefact): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();

    print_table(
        "Extension E1: lattice-surgery merged patch vs isolated patch (grid, standard wiring, 1X gates)",
        &[
            "Configuration",
            "Patch qubits",
            "Merged qubits",
            "Patch round (us)",
            "Merged round (us)",
            "Merged / patch",
            "Patch moves",
            "Merged moves",
        ],
        &rows,
    );
    println!(
        "\nReading: a merged/patch ratio near 1.0 at capacity 2 confirms the paper's §8 claim \
         that the capacity-2 grid keeps its constant round time under lattice surgery."
    );
    dump_json("ext_surgery", &serde_json::Value::Array(artefact));
}
