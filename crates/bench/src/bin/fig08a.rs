//! Figure 8(a): elapsed time per QEC round versus code distance for trap
//! capacities 2, 5 and 12 under linear, grid and all-to-all switch
//! communication topologies.
//!
//! The `(topology, capacity)` configurations are sharded across the
//! [`SweepEngine`]'s outer worker pool; each worker evaluates its
//! configuration at every distance.

use qccd_bench::{dump_json, fmt_f64, print_table, DEFAULT_SWEEP_SEED};
use qccd_core::{ArchitectureConfig, Toolflow};
use qccd_decoder::SweepEngine;
use qccd_hardware::{TopologyKind, WiringMethod};

fn main() {
    let distances = [2usize, 3, 4, 5, 7, 9];
    let capacities = [2usize, 5, 12];
    let topologies = [
        TopologyKind::Linear,
        TopologyKind::Grid,
        TopologyKind::Switch,
    ];

    let configurations: Vec<(TopologyKind, usize)> = topologies
        .iter()
        .flat_map(|&topology| capacities.iter().map(move |&capacity| (topology, capacity)))
        .collect();

    let engine = SweepEngine::new(DEFAULT_SWEEP_SEED);
    let outcomes = engine.run(&configurations, |task| {
        let (topology, capacity) = *task.point;
        let arch = ArchitectureConfig::new(topology, capacity, WiringMethod::Standard, 1.0);
        let toolflow = Toolflow::new(arch);
        let mut row = vec![format!("{topology} c{capacity}")];
        let mut series = Vec::new();
        for d in distances {
            match toolflow.evaluate(d, false) {
                Ok(metrics) => {
                    row.push(fmt_f64(metrics.qec_round_time_us));
                    series.push(serde_json::json!({
                        "d": d, "round_time_us": metrics.qec_round_time_us
                    }));
                }
                Err(_) => {
                    row.push("NaN".into());
                    series.push(serde_json::json!({"d": d, "round_time_us": null}));
                }
            }
        }
        let entry = serde_json::json!({
            "topology": format!("{topology}"), "capacity": capacity, "series": series
        });
        (row, entry)
    });

    let (rows, artefact): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();

    let mut headers = vec!["Configuration".to_string()];
    headers.extend(distances.iter().map(|d| format!("d={d} (us)")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figure 8(a): QEC round time vs code distance",
        &header_refs,
        &rows,
    );
    dump_json("fig08a", &serde_json::Value::Array(artefact));
}
