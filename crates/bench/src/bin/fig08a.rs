//! Figure 8(a): QEC round time vs code distance.
//!
//! Legacy shim kept for artifact-script compatibility: delegates to the
//! experiment registry, which runs the same spec `artifacts run fig08a`
//! resolves — numbers are bit-identical by construction.

fn main() {
    qccd_bench::registry::run_legacy("fig08a");
}
