//! Figure 8(b): logical error rate versus code distance for trap capacities
//! 2, 5 and 12 under the grid and all-to-all switch topologies (5X gates).

use qccd_bench::{arch, dump_json, fmt_f64, ler_curve, print_table, DEFAULT_SHOTS};
use qccd_hardware::{TopologyKind, WiringMethod};

fn main() {
    let distances = [3usize, 5];
    let capacities = [2usize, 5, 12];
    let topologies = [TopologyKind::Grid, TopologyKind::Switch];

    let mut rows = Vec::new();
    let mut artefact = Vec::new();
    for topology in topologies {
        for capacity in capacities {
            let configuration = arch(topology, capacity, WiringMethod::Standard, 5.0);
            let (points, fit) = ler_curve(&configuration, &distances, DEFAULT_SHOTS);
            let mut row = vec![format!("{topology} c{capacity}")];
            for &d in &distances {
                let value = points.iter().find(|(pd, _)| *pd == d).map(|(_, p)| *p);
                row.push(value.map(fmt_f64).unwrap_or_else(|| "NaN".into()));
            }
            row.push(
                fit.map(|f| fmt_f64(f.lambda()))
                    .unwrap_or_else(|| "-".into()),
            );
            artefact.push(serde_json::json!({
                "topology": format!("{topology}"),
                "capacity": capacity,
                "points": points.iter().map(|(d, p)| serde_json::json!({"d": d, "ler": p})).collect::<Vec<_>>(),
            }));
            rows.push(row);
        }
    }

    print_table(
        "Figure 8(b): logical error rate vs code distance (5X gates)",
        &["Configuration", "d=3 LER", "d=5 LER", "Lambda"],
        &rows,
    );
    dump_json("fig08b", &serde_json::Value::Array(artefact));
}
