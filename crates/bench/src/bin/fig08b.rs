//! Figure 8(b): logical error rate vs code distance (5X gates).
//!
//! Legacy shim kept for artifact-script compatibility: delegates to the
//! experiment registry, which runs the same spec `artifacts run fig08b`
//! resolves — numbers are bit-identical by construction.

fn main() {
    qccd_bench::registry::run_legacy("fig08b");
}
