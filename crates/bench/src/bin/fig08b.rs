//! Figure 8(b): logical error rate versus code distance for trap capacities
//! 2, 5 and 12 under the grid and all-to-all switch topologies (5X gates).
//!
//! All `configuration × distance` Monte-Carlo points run in one sharded
//! sweep ([`ler_curves`]).

use qccd_bench::{
    arch, dump_json, fmt_f64, ler_curves, print_table, DEFAULT_SHOTS, DEFAULT_SWEEP_SEED,
};
use qccd_decoder::SweepEngine;
use qccd_hardware::{TopologyKind, WiringMethod};

fn main() {
    let distances = [3usize, 5];
    let capacities = [2usize, 5, 12];
    let topologies = [TopologyKind::Grid, TopologyKind::Switch];

    let configurations: Vec<(String, _)> = topologies
        .iter()
        .flat_map(|&topology| {
            capacities.iter().map(move |&capacity| {
                (
                    format!("{topology} c{capacity}"),
                    arch(topology, capacity, WiringMethod::Standard, 5.0),
                )
            })
        })
        .collect();

    let engine = SweepEngine::new(DEFAULT_SWEEP_SEED);
    let curves = ler_curves(&engine, &configurations, &distances, DEFAULT_SHOTS);

    let mut rows = Vec::new();
    let mut artefact = Vec::new();
    for (curve, ((label, _), (topology, capacity))) in curves.iter().zip(
        configurations.iter().zip(
            topologies
                .iter()
                .flat_map(|&t| capacities.iter().map(move |&c| (t, c))),
        ),
    ) {
        let mut row = vec![label.clone()];
        for &d in &distances {
            let value = curve
                .points
                .iter()
                .find(|(pd, _, _)| *pd == d)
                .map(|(_, p, _)| *p);
            row.push(value.map(fmt_f64).unwrap_or_else(|| "NaN".into()));
        }
        row.push(
            curve
                .fit
                .map(|f| fmt_f64(f.lambda()))
                .unwrap_or_else(|| "-".into()),
        );
        artefact.push(serde_json::json!({
            "topology": format!("{topology}"),
            "capacity": capacity,
            "points": curve.points.iter().map(|(d, p, se)| serde_json::json!({"d": d, "ler": p, "std_error": se})).collect::<Vec<_>>(),
        }));
        rows.push(row);
    }

    print_table(
        "Figure 8(b): logical error rate vs code distance (5X gates)",
        &["Configuration", "d=3 LER", "d=5 LER", "Lambda"],
        &rows,
    );
    dump_json("fig08b", &serde_json::Value::Array(artefact));
}
