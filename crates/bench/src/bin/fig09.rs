//! Figure 9: QEC shot time versus trap capacity and code distance on the
//! grid topology, framed by the fully-parallel lower bound and the
//! fully-serial (single ion chain) upper bound.
//!
//! Capacities are sharded across the [`SweepEngine`]'s outer worker pool.

use qccd_bench::{dump_json, fmt_f64, grid_arch, print_table, DEFAULT_SWEEP_SEED};
use qccd_core::{theoretical, Toolflow};
use qccd_decoder::SweepEngine;
use qccd_hardware::OperationTimes;
use qccd_qec::rotated_surface_code;

fn main() {
    let distances = [3usize, 5, 7, 9];
    let capacities = [2usize, 3, 5, 12, 30];
    let times = OperationTimes::paper_defaults();

    let engine = SweepEngine::new(DEFAULT_SWEEP_SEED);
    let outcomes = engine.run(&capacities, |task| {
        let capacity = *task.point;
        let toolflow = Toolflow::new(grid_arch(capacity, 1.0));
        let mut row = vec![format!("capacity {capacity}")];
        let mut series = Vec::new();
        for d in distances {
            match toolflow.evaluate(d, false) {
                Ok(m) => {
                    row.push(fmt_f64(m.shot_time_us));
                    series.push(serde_json::json!({"d": d, "shot_time_us": m.shot_time_us}));
                }
                Err(_) => {
                    row.push("NaN".into());
                    series.push(serde_json::json!({"d": d, "shot_time_us": null}));
                }
            }
        }
        let entry = serde_json::json!({"capacity": capacity, "series": series});
        (row, entry)
    });

    let (mut rows, artefact): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();
    // Bounds (per shot = d rounds).
    let mut lower = vec!["lower bound (no movement)".to_string()];
    let mut upper = vec!["upper bound (single chain)".to_string()];
    for d in distances {
        let layout = rotated_surface_code(d);
        lower.push(fmt_f64(
            d as f64 * theoretical::parallel_round_lower_bound_us(&layout, &times),
        ));
        upper.push(fmt_f64(
            d as f64 * theoretical::serial_round_upper_bound_us(&layout, &times),
        ));
    }
    rows.push(lower);
    rows.push(upper);

    let mut headers = vec!["Configuration".to_string()];
    headers.extend(distances.iter().map(|d| format!("d={d} (us)")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figure 9: QEC shot time vs trap capacity",
        &header_refs,
        &rows,
    );
    dump_json("fig09", &serde_json::Value::Array(artefact));
}
