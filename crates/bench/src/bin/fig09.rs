//! Figure 9: QEC shot time vs trap capacity.
//!
//! Legacy shim kept for artifact-script compatibility: delegates to the
//! experiment registry, which runs the same spec `artifacts run fig09`
//! resolves — numbers are bit-identical by construction.

fn main() {
    qccd_bench::registry::run_legacy("fig09");
}
