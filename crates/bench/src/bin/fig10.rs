//! Figure 10: logical error rate vs distance and gate improvement (grid).
//!
//! Legacy shim kept for artifact-script compatibility: delegates to the
//! experiment registry, which runs the same spec `artifacts run fig10`
//! resolves — numbers are bit-identical by construction.

fn main() {
    qccd_bench::registry::run_legacy("fig10");
}
