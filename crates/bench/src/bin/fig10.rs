//! Figure 10: projected logical error rate versus code distance at 1X, 5X
//! and 10X gate improvement for several trap capacities on the grid
//! topology, including the code distance required to reach the 10⁻⁹ target.
//!
//! All `(improvement, capacity) × distance` Monte-Carlo points run in one
//! sharded sweep ([`ler_curves`]); the Λ fits are weighted by the
//! per-point standard errors.

use qccd_bench::{
    dump_json, fmt_f64, grid_arch, ler_curves, print_table, DEFAULT_SHOTS, DEFAULT_SWEEP_SEED,
};
use qccd_decoder::SweepEngine;

fn main() {
    let sample_distances = [3usize, 5];
    let projection_distances = [7usize, 9, 11, 13, 15, 17];
    let capacities = [2usize, 5, 12];
    let improvements = [1.0f64, 5.0, 10.0];
    let target = 1e-9;

    let cases: Vec<(f64, usize)> = improvements
        .iter()
        .flat_map(|&improvement| {
            capacities
                .iter()
                .map(move |&capacity| (improvement, capacity))
        })
        .collect();
    let configurations: Vec<(String, _)> = cases
        .iter()
        .map(|&(improvement, capacity)| {
            (
                format!("{improvement:.0}X c{capacity}"),
                grid_arch(capacity, improvement),
            )
        })
        .collect();

    let engine = SweepEngine::new(DEFAULT_SWEEP_SEED);
    let curves = ler_curves(&engine, &configurations, &sample_distances, DEFAULT_SHOTS);

    let mut rows = Vec::new();
    let mut artefact = Vec::new();
    for ((curve, (label, _)), &(improvement, capacity)) in
        curves.iter().zip(&configurations).zip(&cases)
    {
        let mut row = vec![label.clone()];
        for &d in &sample_distances {
            let v = curve
                .points
                .iter()
                .find(|(pd, _, _)| *pd == d)
                .map(|(_, p, _)| *p);
            row.push(v.map(fmt_f64).unwrap_or_else(|| "NaN".into()));
        }
        let (projection, required) = match curve.fit {
            Some(f) if f.below_threshold() => {
                let proj: Vec<String> = projection_distances
                    .iter()
                    .map(|&d| fmt_f64(f.project(d)))
                    .collect();
                let required = f
                    .distance_for_target(target)
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "-".into());
                (proj, required)
            }
            _ => (
                vec!["above-threshold".to_string(); projection_distances.len()],
                "-".to_string(),
            ),
        };
        row.extend(projection);
        row.push(required);
        artefact.push(serde_json::json!({
            "improvement": improvement,
            "capacity": capacity,
            "sampled": curve.points.iter().map(|(d, p, se)| serde_json::json!({"d": d, "ler": p, "std_error": se})).collect::<Vec<_>>(),
            "lambda": curve.fit.map(|f| f.lambda()),
        }));
        rows.push(row);
    }

    let mut headers: Vec<String> = vec!["Config".into()];
    headers.extend(sample_distances.iter().map(|d| format!("d={d} (MC)")));
    headers.extend(projection_distances.iter().map(|d| format!("d={d} (proj)")));
    headers.push("d for 1e-9".into());
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figure 10: logical error rate vs distance and gate improvement (grid)",
        &header_refs,
        &rows,
    );
    dump_json("fig10", &serde_json::Value::Array(artefact));
}
