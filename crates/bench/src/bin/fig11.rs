//! Figure 11: number of electrodes required to reach a target logical error
//! rate, per trap capacity, under a 5X gate improvement and standard wiring.
//!
//! All `capacity × distance` Monte-Carlo points run in one sharded sweep
//! ([`ler_curves`]).

use qccd_bench::{
    dump_json, fmt_f64, grid_arch, ler_curves, print_table, DEFAULT_SHOTS, DEFAULT_SWEEP_SEED,
};
use qccd_decoder::SweepEngine;
use qccd_hardware::{estimate_resources, WiringMethod};
use qccd_qec::rotated_surface_code;

fn main() {
    let capacities = [2usize, 5, 12];
    let targets = [1e-6f64, 1e-9, 1e-12];
    let sample_distances = [3usize, 5];

    let configurations: Vec<(String, _)> = capacities
        .iter()
        .map(|&capacity| (format!("capacity {capacity}"), grid_arch(capacity, 5.0)))
        .collect();

    let engine = SweepEngine::new(DEFAULT_SWEEP_SEED);
    let curves = ler_curves(&engine, &configurations, &sample_distances, DEFAULT_SHOTS);

    let mut rows = Vec::new();
    let mut artefact = Vec::new();
    for ((curve, (label, configuration)), &capacity) in
        curves.iter().zip(&configurations).zip(&capacities)
    {
        let mut row = vec![label.clone()];
        let mut entry = serde_json::json!({
            "capacity": capacity,
            "sampled": curve.points.iter().map(|(d, p, se)| serde_json::json!({"d": d, "ler": p, "std_error": se})).collect::<Vec<_>>(),
        });
        for &target in &targets {
            let cell = match curve.fit.and_then(|f| f.distance_for_target(target)) {
                Some(required_d) => {
                    let layout = rotated_surface_code(required_d.max(2));
                    let device = configuration.device_for(layout.num_qubits());
                    let resources = estimate_resources(&device, WiringMethod::Standard);
                    entry[format!("target_{target:e}")] = serde_json::json!({
                        "distance": required_d,
                        "electrodes": resources.total_electrodes,
                    });
                    format!("{} (d={required_d})", resources.total_electrodes)
                }
                None => "above threshold".to_string(),
            };
            row.push(cell);
        }
        row.push(
            curve
                .fit
                .map(|f| fmt_f64(f.lambda()))
                .unwrap_or_else(|| "-".into()),
        );
        artefact.push(entry);
        rows.push(row);
    }

    print_table(
        "Figure 11: electrodes required for a target logical error rate (5X gates)",
        &[
            "Configuration",
            "LER 1e-6",
            "LER 1e-9",
            "LER 1e-12",
            "Lambda",
        ],
        &rows,
    );
    dump_json("fig11", &serde_json::Value::Array(artefact));
}
