//! Figure 11: electrodes required for a target logical error rate (5X gates).
//!
//! Legacy shim kept for artifact-script compatibility: delegates to the
//! experiment registry, which runs the same spec `artifacts run fig11`
//! resolves — numbers are bit-identical by construction.

fn main() {
    qccd_bench::registry::run_legacy("fig11");
}
