//! Figure 12: data rate and power needed for a target logical error rate.
//!
//! Legacy shim kept for artifact-script compatibility: delegates to the
//! experiment registry, which runs the same spec `artifacts run fig12`
//! resolves — numbers are bit-identical by construction.

fn main() {
    qccd_bench::registry::run_legacy("fig12");
}
