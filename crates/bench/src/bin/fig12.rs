//! Figure 12: controller-to-QPU data rate and power dissipation required to
//! reach a target logical error rate, per trap capacity, under standard
//! wiring and a 5X gate improvement.
//!
//! All `capacity × distance` Monte-Carlo points run in one sharded sweep
//! ([`ler_curves`]).

use qccd_bench::{
    dump_json, fmt_f64, grid_arch, ler_curves, print_table, DEFAULT_SHOTS, DEFAULT_SWEEP_SEED,
};
use qccd_decoder::SweepEngine;
use qccd_hardware::{estimate_resources, WiringMethod};
use qccd_qec::rotated_surface_code;

fn main() {
    let capacities = [2usize, 5, 12];
    let targets = [1e-6f64, 1e-9];
    let sample_distances = [3usize, 5];

    let configurations: Vec<(String, _)> = capacities
        .iter()
        .map(|&capacity| (format!("capacity {capacity}"), grid_arch(capacity, 5.0)))
        .collect();

    let engine = SweepEngine::new(DEFAULT_SWEEP_SEED);
    let curves = ler_curves(&engine, &configurations, &sample_distances, DEFAULT_SHOTS);

    let mut rows = Vec::new();
    let mut artefact = Vec::new();
    for ((curve, (label, configuration)), &capacity) in
        curves.iter().zip(&configurations).zip(&capacities)
    {
        let mut row = vec![label.clone()];
        let mut entry = serde_json::json!({"capacity": capacity});
        for &target in &targets {
            match curve.fit.and_then(|f| f.distance_for_target(target)) {
                Some(required_d) => {
                    let layout = rotated_surface_code(required_d.max(2));
                    let device = configuration.device_for(layout.num_qubits());
                    let resources = estimate_resources(&device, WiringMethod::Standard);
                    row.push(format!(
                        "{} Gbit/s, {} W (d={required_d})",
                        fmt_f64(resources.data_rate_gbit_s),
                        fmt_f64(resources.power_w)
                    ));
                    entry[format!("target_{target:e}")] = serde_json::json!({
                        "distance": required_d,
                        "data_rate_gbit_s": resources.data_rate_gbit_s,
                        "power_w": resources.power_w,
                    });
                }
                None => row.push("above threshold".to_string()),
            }
        }
        entry["sampled"] = serde_json::json!(curve
            .points
            .iter()
            .map(|(d, p, se)| serde_json::json!({"d": d, "ler": p, "std_error": se}))
            .collect::<Vec<_>>());
        artefact.push(entry);
        rows.push(row);
    }

    print_table(
        "Figure 12: data rate and power needed for a target logical error rate (standard wiring, 5X gates)",
        &["Configuration", "Target 1e-6", "Target 1e-9"],
        &rows,
    );
    dump_json("fig12", &serde_json::Value::Array(artefact));
}
