//! Figure 13(a): data rate vs target logical error rate (standard vs WISE).
//!
//! Legacy shim kept for artifact-script compatibility: delegates to the
//! experiment registry, which runs the same spec `artifacts run fig13a`
//! resolves — numbers are bit-identical by construction.

fn main() {
    qccd_bench::registry::run_legacy("fig13a");
}
