//! Figure 13(a): data rate required versus target logical error rate — the
//! standard wiring (capacity 2, no cooling) compared with the WISE wiring
//! (with cooling) at several trap capacities, under a 5X gate improvement.
//!
//! All `configuration × distance` Monte-Carlo points run in one sharded
//! sweep ([`ler_curves`]); the Λ fits are weighted by the per-point
//! standard errors.

use qccd_bench::{
    arch, dump_json, fmt_f64, ler_curves, print_table, DEFAULT_SHOTS, DEFAULT_SWEEP_SEED,
};
use qccd_decoder::SweepEngine;
use qccd_hardware::{estimate_resources, TopologyKind, WiringMethod};
use qccd_qec::rotated_surface_code;

fn main() {
    let targets = [1e-6f64, 1e-9];
    let sample_distances = [3usize, 5];
    let configurations = vec![
        (
            "standard c2".to_string(),
            arch(TopologyKind::Grid, 2, WiringMethod::Standard, 5.0),
        ),
        (
            "WISE c2".to_string(),
            arch(TopologyKind::Grid, 2, WiringMethod::Wise, 5.0),
        ),
        (
            "WISE c5".to_string(),
            arch(TopologyKind::Grid, 5, WiringMethod::Wise, 5.0),
        ),
        (
            "WISE c12".to_string(),
            arch(TopologyKind::Grid, 12, WiringMethod::Wise, 5.0),
        ),
    ];

    let engine = SweepEngine::new(DEFAULT_SWEEP_SEED);
    let curves = ler_curves(&engine, &configurations, &sample_distances, DEFAULT_SHOTS);

    let mut rows = Vec::new();
    let mut artefact = Vec::new();
    for (curve, (label, configuration)) in curves.iter().zip(&configurations) {
        let mut row = vec![label.clone()];
        let mut entry = serde_json::json!({"label": label});
        for &target in &targets {
            match curve.fit.and_then(|f| f.distance_for_target(target)) {
                Some(required_d) => {
                    let layout = rotated_surface_code(required_d.max(2));
                    let device = configuration.device_for(layout.num_qubits());
                    let resources = estimate_resources(&device, configuration.wiring);
                    row.push(format!(
                        "{} Gbit/s (d={required_d})",
                        fmt_f64(resources.data_rate_gbit_s)
                    ));
                    entry[format!("target_{target:e}")] = serde_json::json!({
                        "distance": required_d,
                        "data_rate_gbit_s": resources.data_rate_gbit_s,
                    });
                }
                None => row.push("above threshold".to_string()),
            }
        }
        entry["sampled"] = serde_json::json!(curve
            .points
            .iter()
            .map(|(d, p, se)| serde_json::json!({"d": d, "ler": p, "std_error": se}))
            .collect::<Vec<_>>());
        if let Some(fit) = curve.fit {
            let (lo, hi) = fit.lambda_confidence_interval(1.96);
            entry["lambda"] = serde_json::json!({
                "value": fit.lambda(), "ci95_low": lo, "ci95_high": hi
            });
        }
        artefact.push(entry);
        rows.push(row);
    }

    print_table(
        "Figure 13(a): data rate vs target logical error rate (standard vs WISE, 5X gates)",
        &["Configuration", "Target 1e-6", "Target 1e-9"],
        &rows,
    );
    dump_json("fig13a", &serde_json::Value::Array(artefact));
}
