//! Figure 13(a): data rate required versus target logical error rate — the
//! standard wiring (capacity 2, no cooling) compared with the WISE wiring
//! (with cooling) at several trap capacities, under a 5X gate improvement.

use qccd_bench::{arch, dump_json, fmt_f64, ler_curve, print_table, DEFAULT_SHOTS};
use qccd_hardware::{estimate_resources, TopologyKind, WiringMethod};
use qccd_qec::rotated_surface_code;

fn main() {
    let targets = [1e-6f64, 1e-9];
    let sample_distances = [3usize, 5];
    let configurations = vec![
        (
            "standard c2",
            arch(TopologyKind::Grid, 2, WiringMethod::Standard, 5.0),
        ),
        (
            "WISE c2",
            arch(TopologyKind::Grid, 2, WiringMethod::Wise, 5.0),
        ),
        (
            "WISE c5",
            arch(TopologyKind::Grid, 5, WiringMethod::Wise, 5.0),
        ),
        (
            "WISE c12",
            arch(TopologyKind::Grid, 12, WiringMethod::Wise, 5.0),
        ),
    ];

    let mut rows = Vec::new();
    let mut artefact = Vec::new();
    for (label, configuration) in configurations {
        let (points, fit) = ler_curve(&configuration, &sample_distances, DEFAULT_SHOTS);
        let mut row = vec![label.to_string()];
        let mut entry = serde_json::json!({"label": label});
        for &target in &targets {
            match fit.and_then(|f| f.distance_for_target(target)) {
                Some(required_d) => {
                    let layout = rotated_surface_code(required_d.max(2));
                    let device = configuration.device_for(layout.num_qubits());
                    let resources = estimate_resources(&device, configuration.wiring);
                    row.push(format!(
                        "{} Gbit/s (d={required_d})",
                        fmt_f64(resources.data_rate_gbit_s)
                    ));
                    entry[format!("target_{target:e}")] = serde_json::json!({
                        "distance": required_d,
                        "data_rate_gbit_s": resources.data_rate_gbit_s,
                    });
                }
                None => row.push("above threshold".to_string()),
            }
        }
        entry["sampled"] = serde_json::json!(points
            .iter()
            .map(|(d, p)| serde_json::json!({"d": d, "ler": p}))
            .collect::<Vec<_>>());
        artefact.push(entry);
        rows.push(row);
    }

    print_table(
        "Figure 13(a): data rate vs target logical error rate (standard vs WISE, 5X gates)",
        &["Configuration", "Target 1e-6", "Target 1e-9"],
        &rows,
    );
    dump_json("fig13a", &serde_json::Value::Array(artefact));
}
