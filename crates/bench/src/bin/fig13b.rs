//! Figure 13(b): QEC shot time versus target logical error rate — standard
//! wiring versus WISE (with cooling), under a 5X gate improvement.

use qccd_bench::{arch, dump_json, fmt_f64, ler_curve, print_table, DEFAULT_SHOTS};
use qccd_core::Toolflow;
use qccd_hardware::{TopologyKind, WiringMethod};

fn main() {
    let targets = [1e-6f64, 1e-9];
    let sample_distances = [3usize, 5];
    let configurations = vec![
        (
            "standard c2",
            arch(TopologyKind::Grid, 2, WiringMethod::Standard, 5.0),
        ),
        (
            "WISE c2",
            arch(TopologyKind::Grid, 2, WiringMethod::Wise, 5.0),
        ),
        (
            "WISE c5",
            arch(TopologyKind::Grid, 5, WiringMethod::Wise, 5.0),
        ),
    ];

    let mut rows = Vec::new();
    let mut artefact = Vec::new();
    for (label, configuration) in configurations {
        let (points, fit) = ler_curve(&configuration, &sample_distances, DEFAULT_SHOTS);
        let toolflow = Toolflow::new(configuration.clone());
        let mut row = vec![label.to_string()];
        let mut entry = serde_json::json!({"label": label});
        for &target in &targets {
            match fit.and_then(|f| f.distance_for_target(target)) {
                Some(required_d) => {
                    // Shot time at the required distance: measure directly if
                    // the compile succeeds; a shot is d rounds.
                    let shot = toolflow
                        .evaluate(required_d.clamp(2, 13), false)
                        .map(|m| m.qec_round_time_us * required_d as f64)
                        .unwrap_or(f64::NAN);
                    row.push(format!("{} us (d={required_d})", fmt_f64(shot)));
                    entry[format!("target_{target:e}")] = serde_json::json!({
                        "distance": required_d,
                        "shot_time_us": shot,
                    });
                }
                None => row.push("above threshold".to_string()),
            }
        }
        entry["sampled"] = serde_json::json!(points
            .iter()
            .map(|(d, p)| serde_json::json!({"d": d, "ler": p}))
            .collect::<Vec<_>>());
        artefact.push(entry);
        rows.push(row);
    }

    print_table(
        "Figure 13(b): QEC shot time vs target logical error rate (standard vs WISE, 5X gates)",
        &["Configuration", "Target 1e-6", "Target 1e-9"],
        &rows,
    );
    dump_json("fig13b", &serde_json::Value::Array(artefact));
}
