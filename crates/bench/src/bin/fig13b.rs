//! Figure 13(b): QEC shot time versus target logical error rate — standard
//! wiring versus WISE (with cooling), under a 5X gate improvement.
//!
//! All `configuration × distance` Monte-Carlo points run in one sharded
//! sweep ([`ler_curves`]); the Λ fits are weighted by the per-point
//! standard errors.

use qccd_bench::{
    arch, dump_json, fmt_f64, ler_curves, print_table, DEFAULT_SHOTS, DEFAULT_SWEEP_SEED,
};
use qccd_core::Toolflow;
use qccd_decoder::SweepEngine;
use qccd_hardware::{TopologyKind, WiringMethod};

fn main() {
    let targets = [1e-6f64, 1e-9];
    let sample_distances = [3usize, 5];
    let configurations = vec![
        (
            "standard c2".to_string(),
            arch(TopologyKind::Grid, 2, WiringMethod::Standard, 5.0),
        ),
        (
            "WISE c2".to_string(),
            arch(TopologyKind::Grid, 2, WiringMethod::Wise, 5.0),
        ),
        (
            "WISE c5".to_string(),
            arch(TopologyKind::Grid, 5, WiringMethod::Wise, 5.0),
        ),
    ];

    let engine = SweepEngine::new(DEFAULT_SWEEP_SEED);
    let curves = ler_curves(&engine, &configurations, &sample_distances, DEFAULT_SHOTS);

    let mut rows = Vec::new();
    let mut artefact = Vec::new();
    for (curve, (label, configuration)) in curves.iter().zip(&configurations) {
        let toolflow = Toolflow::new(configuration.clone());
        let mut row = vec![label.clone()];
        let mut entry = serde_json::json!({"label": label});
        for &target in &targets {
            match curve.fit.and_then(|f| f.distance_for_target(target)) {
                Some(required_d) => {
                    // Shot time at the required distance: measure directly if
                    // the compile succeeds; a shot is d rounds.
                    let shot = toolflow
                        .evaluate(required_d.clamp(2, 13), false)
                        .map(|m| m.qec_round_time_us * required_d as f64)
                        .unwrap_or(f64::NAN);
                    row.push(format!("{} us (d={required_d})", fmt_f64(shot)));
                    entry[format!("target_{target:e}")] = serde_json::json!({
                        "distance": required_d,
                        "shot_time_us": shot,
                    });
                }
                None => row.push("above threshold".to_string()),
            }
        }
        entry["sampled"] = serde_json::json!(curve
            .points
            .iter()
            .map(|(d, p, se)| serde_json::json!({"d": d, "ler": p, "std_error": se}))
            .collect::<Vec<_>>());
        artefact.push(entry);
        rows.push(row);
    }

    print_table(
        "Figure 13(b): QEC shot time vs target logical error rate (standard vs WISE, 5X gates)",
        &["Configuration", "Target 1e-6", "Target 1e-9"],
        &rows,
    );
    dump_json("fig13b", &serde_json::Value::Array(artefact));
}
