//! Table 2: compiler elapsed time and routing operations versus the
//! theoretical bounds, for QEC-code × QCCD-device pairs.
//!
//! The cases are independent compile jobs, so they are sharded across the
//! [`SweepEngine`]'s outer worker pool; rows come back in input order.

use qccd_bench::{dump_json, fmt_f64, print_table, DEFAULT_SWEEP_SEED};
use qccd_core::{theoretical, ArchitectureConfig, Compiler};
use qccd_decoder::SweepEngine;
use qccd_hardware::{TopologyKind, WiringMethod};
use qccd_qec::{repetition_code, rotated_surface_code, unrotated_surface_code, CodeLayout};

fn main() {
    let cases: Vec<(&str, CodeLayout, TopologyKind, usize)> = vec![
        (
            "Repetition d=3",
            repetition_code(3),
            TopologyKind::Linear,
            2,
        ),
        (
            "Repetition d=3",
            repetition_code(3),
            TopologyKind::Linear,
            3,
        ),
        (
            "Repetition d=3",
            repetition_code(3),
            TopologyKind::Linear,
            4,
        ),
        (
            "Repetition d=3",
            repetition_code(3),
            TopologyKind::Linear,
            64,
        ),
        (
            "Repetition d=6",
            repetition_code(6),
            TopologyKind::Linear,
            2,
        ),
        (
            "Repetition d=6",
            repetition_code(6),
            TopologyKind::Linear,
            3,
        ),
        (
            "Repetition d=6",
            repetition_code(6),
            TopologyKind::Linear,
            4,
        ),
        (
            "Repetition d=6",
            repetition_code(6),
            TopologyKind::Linear,
            64,
        ),
        (
            "Rotated surface d=2",
            rotated_surface_code(2),
            TopologyKind::Grid,
            2,
        ),
        (
            "Unrotated surface d=2",
            unrotated_surface_code(2),
            TopologyKind::Grid,
            3,
        ),
        (
            "Rotated surface d=3",
            rotated_surface_code(3),
            TopologyKind::Grid,
            2,
        ),
        (
            "Rotated surface d=3",
            rotated_surface_code(3),
            TopologyKind::Switch,
            2,
        ),
        (
            "Rotated surface d=6",
            rotated_surface_code(6),
            TopologyKind::Grid,
            2,
        ),
        (
            "Rotated surface d=12",
            rotated_surface_code(12),
            TopologyKind::Grid,
            2,
        ),
    ];

    let engine = SweepEngine::new(DEFAULT_SWEEP_SEED);
    let outcomes = engine.run(&cases, |task| {
        let (name, layout, topology, capacity) = task.point;
        let arch = ArchitectureConfig::new(*topology, *capacity, WiringMethod::Standard, 1.0);
        let compiler = Compiler::new(arch.clone());
        match compiler.compile_rounds(layout, 1) {
            Ok(program) => {
                let bounds =
                    theoretical::bounds(layout, &program.mapping, *topology, &arch.operation_times);
                let row = vec![
                    name.to_string(),
                    format!("{topology} c{capacity}"),
                    fmt_f64(bounds.parallel_lower_bound_us),
                    fmt_f64(program.elapsed_time_us()),
                    bounds.min_routing_ops.to_string(),
                    program.movement_ops().to_string(),
                ];
                let artefact = Some(serde_json::json!({
                    "case": name,
                    "topology": format!("{topology}"),
                    "capacity": capacity,
                    "lower_bound_us": bounds.parallel_lower_bound_us,
                    "measured_us": program.elapsed_time_us(),
                    "min_routing_ops": bounds.min_routing_ops,
                    "measured_routing_ops": program.movement_ops(),
                }));
                (row, artefact)
            }
            Err(e) => (
                vec![
                    name.to_string(),
                    format!("{topology} c{capacity}"),
                    "-".into(),
                    format!("failed: {e}"),
                    "-".into(),
                    "-".into(),
                ],
                None,
            ),
        }
    });

    let (rows, entries): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();
    let artefact: Vec<_> = entries.into_iter().flatten().collect();

    print_table(
        "Table 2: compiler vs theoretical bounds (one QEC round)",
        &[
            "QEC code",
            "QCCD device",
            "Min elapsed (us)",
            "Measured elapsed (us)",
            "Min routing ops",
            "Measured routing ops",
        ],
        &rows,
    );
    dump_json("table2", &serde_json::Value::Array(artefact));
}
