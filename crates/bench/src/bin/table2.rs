//! Table 2: compiler elapsed time and routing operations vs theoretical bounds.
//!
//! Legacy shim kept for artifact-script compatibility: delegates to the
//! experiment registry, which runs the same spec `artifacts run table2`
//! resolves — numbers are bit-identical by construction.

fn main() {
    qccd_bench::registry::run_legacy("table2");
}
