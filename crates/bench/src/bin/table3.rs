//! Table 3: our QEC compiler versus the QCCDSim-style and
//! Muzzle-the-Shuttle-style baselines — movement time and movement operation
//! counts for five rounds of error correction.

use qccd_baselines::{MuzzleShuttleCompiler, QccdSimCompiler};
use qccd_bench::{dump_json, fmt_f64, print_table};
use qccd_core::{ArchitectureConfig, Compiler};
use qccd_hardware::{TopologyKind, WiringMethod};
use qccd_qec::{repetition_code, rotated_surface_code, CodeLayout};

fn main() {
    // Configurations follow the paper's 4-tuples: code, distance, capacity,
    // topology (L = linear, G = grid).
    let mut cases: Vec<(String, CodeLayout, TopologyKind, usize)> = Vec::new();
    for d in [3usize, 5, 7] {
        for cap in [2usize, 3, 5] {
            cases.push((
                format!("R,{d},{cap},L"),
                repetition_code(d),
                TopologyKind::Linear,
                cap,
            ));
        }
    }
    for d in [2usize, 3, 4, 5] {
        for cap in [2usize, 3, 5] {
            cases.push((
                format!("S,{d},{cap},G"),
                rotated_surface_code(d),
                TopologyKind::Grid,
                cap,
            ));
        }
    }

    let rounds = 5;
    let mut rows = Vec::new();
    let mut artefact = Vec::new();
    for (label, layout, topology, capacity) in cases {
        let arch = ArchitectureConfig::new(topology, capacity, WiringMethod::Standard, 1.0);
        let run = |result: Result<qccd_core::CompiledProgram, qccd_core::CompileError>| match result
        {
            Ok(p) => (fmt_f64(p.movement_time_us()), p.movement_ops().to_string()),
            Err(_) => ("NaN".to_string(), "NaN".to_string()),
        };
        let ours = run(Compiler::new(arch.clone()).compile_rounds(&layout, rounds));
        let qccdsim = run(QccdSimCompiler::new(arch.clone()).compile_rounds(&layout, rounds));
        let muzzle = run(MuzzleShuttleCompiler::new(arch.clone()).compile_rounds(&layout, rounds));
        artefact.push(serde_json::json!({
            "config": label,
            "ours": {"movement_time_us": ours.0, "movement_ops": ours.1},
            "qccdsim": {"movement_time_us": qccdsim.0, "movement_ops": qccdsim.1},
            "muzzle": {"movement_time_us": muzzle.0, "movement_ops": muzzle.1},
        }));
        rows.push(vec![
            label, ours.0, qccdsim.0, muzzle.0, ours.1, qccdsim.1, muzzle.1,
        ]);
    }

    print_table(
        "Table 3: movement time (us, 5 rounds) and movement operations",
        &[
            "Config",
            "Ours time",
            "QCCDSim time",
            "Muzzle time",
            "Ours ops",
            "QCCDSim ops",
            "Muzzle ops",
        ],
        &rows,
    );
    dump_json("table3", &serde_json::Value::Array(artefact));
}
