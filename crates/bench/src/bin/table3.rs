//! Table 3: our QEC compiler vs the QCCDSim-style and Muzzle-the-Shuttle-style baselines.
//!
//! Legacy shim kept for artifact-script compatibility: delegates to the
//! experiment registry, which runs the same spec `artifacts run table3`
//! resolves — numbers are bit-identical by construction.

fn main() {
    qccd_bench::registry::run_legacy("table3");
}
