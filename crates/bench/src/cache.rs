//! Content-addressed artifact cache.
//!
//! Artifacts are cached on disk keyed by the
//! [content hash](crate::ExperimentSpec::content_hash) of the spec that
//! produced them, so re-running an unchanged spec is instant while *any*
//! semantic change to the spec (grid, seed, shots, decoder, …) misses the
//! cache and recomputes. Cache files are ordinary artifact JSON — the same
//! schema the `artifacts` CLI emits — so they can be inspected and
//! validated like any other output.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

use crate::artifact::{validate_artifact_json, Artifact};
use crate::spec::ExperimentSpec;

/// A directory of cached artifacts keyed by spec content hash.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    dir: PathBuf,
}

impl ArtifactCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ArtifactCache { dir: dir.into() }
    }

    /// The cache file a spec maps to: `<dir>/<name>-<hash>.json`.
    pub fn path_for(&self, spec: &ExperimentSpec) -> PathBuf {
        self.dir
            .join(format!("{}-{}.json", spec.name, spec.content_hash()))
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads the cached artifact of `spec`, if a valid one exists whose
    /// recorded spec hash still matches. The returned artifact is marked
    /// [`from_cache`](crate::artifact::ArtifactMetadata::from_cache).
    pub fn load(&self, spec: &ExperimentSpec) -> Option<Artifact> {
        let text = fs::read_to_string(self.path_for(spec)).ok()?;
        let value = serde_json::from_str(&text).ok()?;
        let mut artifact = Artifact::from_json(&value).ok()?;
        // A stale or foreign file (hand-edited, renamed, hash collision in
        // the name) must not be served.
        if artifact.metadata.spec_name != spec.name
            || artifact.metadata.spec_hash != spec.content_hash()
        {
            return None;
        }
        artifact.metadata.from_cache = true;
        Some(artifact)
    }

    /// Stores an artifact under its producing spec's key.
    ///
    /// The write is atomic — a temp file in the cache directory renamed
    /// into place — so an interrupted run can never leave a truncated or
    /// corrupt cache entry behind: the entry either fully exists or not at
    /// all.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating the directory or writing
    /// the file.
    pub fn store(&self, spec: &ExperimentSpec, artifact: &Artifact) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_for(spec);
        let text = serde_json::to_string_pretty(&artifact.to_json())
            .expect("artifact serialization cannot fail");
        qccd_sweeprun::write_atomic(&path, &text).map_err(io::Error::other)?;
        Ok(path)
    }

    /// Inspects every file in the cache directory (an absent directory is
    /// an empty cache).
    ///
    /// # Errors
    ///
    /// Propagates directory-read errors; per-entry problems are reported in
    /// each entry's [`status`](CacheEntry::status) instead of failing the
    /// scan.
    pub fn entries(&self) -> io::Result<Vec<CacheEntry>> {
        let read_dir = match fs::read_dir(&self.dir) {
            Ok(read_dir) => read_dir,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut entries = Vec::new();
        for item in read_dir {
            let item = item?;
            if !item.file_type()?.is_file() {
                continue;
            }
            entries.push(inspect_entry(&item.path())?);
        }
        entries.sort_by(|a, b| a.file_name.cmp(&b.file_name));
        Ok(entries)
    }

    /// Deletes every cache file `should_remove` selects; returns the
    /// removed paths. The removal policy (stale only, foreign too, …) is
    /// the caller's — the `artifacts cache prune` CLI builds it from flags.
    ///
    /// # Errors
    ///
    /// Propagates scan and deletion errors.
    pub fn prune<F>(&self, should_remove: F) -> io::Result<Vec<PathBuf>>
    where
        F: Fn(&CacheEntry) -> bool,
    {
        let mut removed = Vec::new();
        for entry in self.entries()? {
            if should_remove(&entry) {
                fs::remove_file(&entry.path)?;
                removed.push(entry.path);
            }
        }
        Ok(removed)
    }
}

/// Health of one file in the cache directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryStatus {
    /// A well-formed artifact whose recorded spec name/hash match its file
    /// name — exactly what [`ArtifactCache::load`] would serve.
    Valid,
    /// Not a cache entry at all: wrong extension or an unparseable
    /// `<name>-<hash>.json` file name.
    Foreign(String),
    /// Parses as an artifact but its recorded spec name/hash disagree with
    /// the file name (hand-edited, renamed, or produced by other code);
    /// [`ArtifactCache::load`] would refuse it.
    Stale(String),
    /// Unreadable, non-JSON, or failing the artifact schema.
    Corrupt(String),
}

/// One inspected file of the cache directory.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Absolute (or cache-relative) path of the file.
    pub path: PathBuf,
    /// File name within the cache directory.
    pub file_name: String,
    /// Spec name parsed from the file name, when it follows the
    /// `<name>-<hash>.json` convention.
    pub spec_name: Option<String>,
    /// Content hash parsed from the file name.
    pub spec_hash: Option<String>,
    /// File size in bytes.
    pub size_bytes: u64,
    /// Seconds since the file was last modified, when the filesystem
    /// reports it.
    pub age_secs: Option<u64>,
    /// Schema/consistency verdict.
    pub status: EntryStatus,
}

/// Splits `<name>-<hash>.json` into its parts; the hash is the 16-hex-digit
/// suffix [`ExperimentSpec::content_hash`] produces.
fn split_cache_file_name(file_name: &str) -> Option<(String, String)> {
    let stem = file_name.strip_suffix(".json")?;
    let (name, hash) = stem.rsplit_once('-')?;
    if name.is_empty() || hash.len() != 16 || !hash.chars().all(|c| c.is_ascii_hexdigit()) {
        return None;
    }
    Some((name.to_string(), hash.to_string()))
}

fn inspect_entry(path: &Path) -> io::Result<CacheEntry> {
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let metadata = fs::metadata(path)?;
    let age_secs = metadata
        .modified()
        .ok()
        .and_then(|t| SystemTime::now().duration_since(t).ok())
        .map(|d| d.as_secs());
    let parsed_name = split_cache_file_name(&file_name);
    let status = match &parsed_name {
        None => EntryStatus::Foreign("file name is not `<name>-<hash>.json`".to_string()),
        Some((name, hash)) => match fs::read_to_string(path) {
            Err(e) => EntryStatus::Corrupt(format!("unreadable: {e}")),
            Ok(text) => match serde_json::from_str(&text) {
                Err(e) => EntryStatus::Corrupt(format!("not JSON: {e}")),
                Ok(value) => match validate_artifact_json(&value) {
                    Err(e) => EntryStatus::Corrupt(e),
                    Ok(()) => match Artifact::from_json(&value) {
                        Err(e) => EntryStatus::Corrupt(e),
                        Ok(artifact)
                            if artifact.metadata.spec_name != *name
                                || artifact.metadata.spec_hash != *hash =>
                        {
                            EntryStatus::Stale(format!(
                                "records spec {}-{}, file name says {name}-{hash}",
                                artifact.metadata.spec_name, artifact.metadata.spec_hash
                            ))
                        }
                        Ok(_) => EntryStatus::Valid,
                    },
                },
            },
        },
    };
    let (spec_name, spec_hash) = match parsed_name {
        Some((name, hash)) => (Some(name), Some(hash)),
        None => (None, None),
    };
    Ok(CacheEntry {
        path: path.to_path_buf(),
        file_name,
        spec_name,
        spec_hash,
        size_bytes: metadata.len(),
        age_secs,
        status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ArtifactMetadata;
    use crate::registry::ExperimentRegistry;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qccd_bench_cache_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_artifact(spec: &ExperimentSpec) -> Artifact {
        Artifact {
            title: spec.title.clone(),
            headers: vec!["a".into()],
            rows: vec![vec!["1".into()]],
            notes: Vec::new(),
            data: serde_json::json!([]),
            metadata: ArtifactMetadata {
                spec_name: spec.name.clone(),
                spec_hash: spec.content_hash(),
                seed: spec.seed,
                git_describe: None,
                thread_invariant: true,
                from_cache: false,
            },
        }
    }

    #[test]
    fn store_then_load_round_trips_and_marks_cached() {
        let cache = ArtifactCache::new(scratch_dir("store_load"));
        let registry = ExperimentRegistry::builtin();
        let spec = registry.get("table2").unwrap();
        assert!(cache.load(spec).is_none(), "cold cache misses");
        let artifact = tiny_artifact(spec);
        let path = cache.store(spec, &artifact).unwrap();
        assert!(path.ends_with(format!("table2-{}.json", spec.content_hash())));
        let loaded = cache.load(spec).unwrap();
        assert!(loaded.metadata.from_cache);
        assert_eq!(loaded.rows, artifact.rows);
        assert_eq!(loaded.data, artifact.data);
    }

    #[test]
    fn changed_spec_misses_the_cache() {
        let cache = ArtifactCache::new(scratch_dir("changed_spec"));
        let registry = ExperimentRegistry::builtin();
        let spec = registry.get("table2").unwrap();
        cache.store(spec, &tiny_artifact(spec)).unwrap();
        let mut reseeded = spec.clone();
        reseeded.seed += 1;
        assert!(
            cache.load(&reseeded).is_none(),
            "different content hash maps to a different file"
        );
    }

    #[test]
    fn entries_classify_valid_stale_foreign_and_corrupt() {
        let cache = ArtifactCache::new(scratch_dir("entries"));
        let registry = ExperimentRegistry::builtin();
        let spec = registry.get("table2").unwrap();
        cache.store(spec, &tiny_artifact(spec)).unwrap();

        // A renamed (stale) entry, a foreign file, and a corrupt one.
        fs::write(
            cache.dir().join("other-0123456789abcdef.json"),
            serde_json::to_string_pretty(&tiny_artifact(spec).to_json()).unwrap(),
        )
        .unwrap();
        fs::write(cache.dir().join("notes.txt"), "not an artifact").unwrap();
        fs::write(cache.dir().join("table2-00000000deadbeef.json"), "{trunc").unwrap();

        let entries = cache.entries().unwrap();
        assert_eq!(entries.len(), 4);
        let by_name = |name: &str| {
            entries
                .iter()
                .find(|e| e.file_name == name)
                .unwrap_or_else(|| panic!("no entry {name}"))
        };
        assert_eq!(
            by_name(&format!("table2-{}.json", spec.content_hash())).status,
            EntryStatus::Valid
        );
        assert!(matches!(
            by_name("other-0123456789abcdef.json").status,
            EntryStatus::Stale(_)
        ));
        assert!(matches!(
            by_name("notes.txt").status,
            EntryStatus::Foreign(_)
        ));
        assert!(matches!(
            by_name("table2-00000000deadbeef.json").status,
            EntryStatus::Corrupt(_)
        ));
        let valid = by_name(&format!("table2-{}.json", spec.content_hash()));
        assert_eq!(valid.spec_name.as_deref(), Some("table2"));
        assert_eq!(
            valid.spec_hash.as_deref(),
            Some(spec.content_hash().as_str())
        );
        assert!(valid.size_bytes > 0);

        // Prune everything that isn't valid; the good entry survives.
        let removed = cache
            .prune(|entry| entry.status != EntryStatus::Valid)
            .unwrap();
        assert_eq!(removed.len(), 3);
        let remaining = cache.entries().unwrap();
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].status, EntryStatus::Valid);
        assert!(cache.load(spec).is_some(), "pruning spared the live entry");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn entries_on_missing_directory_is_empty() {
        let cache = ArtifactCache::new(scratch_dir("missing_dir"));
        assert!(cache.entries().unwrap().is_empty());
        assert!(cache.prune(|_| true).unwrap().is_empty());
    }

    #[test]
    fn stale_file_contents_are_rejected() {
        let cache = ArtifactCache::new(scratch_dir("stale_file"));
        let registry = ExperimentRegistry::builtin();
        let spec = registry.get("table2").unwrap();
        let mut artifact = tiny_artifact(spec);
        artifact.metadata.spec_hash = "0000000000000000".into();
        cache.store(spec, &artifact).unwrap();
        assert!(
            cache.load(spec).is_none(),
            "recorded hash must match the spec"
        );
    }
}
