//! Content-addressed artifact cache.
//!
//! Artifacts are cached on disk keyed by the
//! [content hash](crate::ExperimentSpec::content_hash) of the spec that
//! produced them, so re-running an unchanged spec is instant while *any*
//! semantic change to the spec (grid, seed, shots, decoder, …) misses the
//! cache and recomputes. Cache files are ordinary artifact JSON — the same
//! schema the `artifacts` CLI emits — so they can be inspected and
//! validated like any other output.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::artifact::Artifact;
use crate::spec::ExperimentSpec;

/// A directory of cached artifacts keyed by spec content hash.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    dir: PathBuf,
}

impl ArtifactCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ArtifactCache { dir: dir.into() }
    }

    /// The cache file a spec maps to: `<dir>/<name>-<hash>.json`.
    pub fn path_for(&self, spec: &ExperimentSpec) -> PathBuf {
        self.dir
            .join(format!("{}-{}.json", spec.name, spec.content_hash()))
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads the cached artifact of `spec`, if a valid one exists whose
    /// recorded spec hash still matches. The returned artifact is marked
    /// [`from_cache`](crate::artifact::ArtifactMetadata::from_cache).
    pub fn load(&self, spec: &ExperimentSpec) -> Option<Artifact> {
        let text = fs::read_to_string(self.path_for(spec)).ok()?;
        let value = serde_json::from_str(&text).ok()?;
        let mut artifact = Artifact::from_json(&value).ok()?;
        // A stale or foreign file (hand-edited, renamed, hash collision in
        // the name) must not be served.
        if artifact.metadata.spec_name != spec.name
            || artifact.metadata.spec_hash != spec.content_hash()
        {
            return None;
        }
        artifact.metadata.from_cache = true;
        Some(artifact)
    }

    /// Stores an artifact under its producing spec's key.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating the directory or writing
    /// the file.
    pub fn store(&self, spec: &ExperimentSpec, artifact: &Artifact) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_for(spec);
        let text = serde_json::to_string_pretty(&artifact.to_json())
            .expect("artifact serialization cannot fail");
        fs::write(&path, text)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ArtifactMetadata;
    use crate::registry::ExperimentRegistry;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qccd_bench_cache_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_artifact(spec: &ExperimentSpec) -> Artifact {
        Artifact {
            title: spec.title.clone(),
            headers: vec!["a".into()],
            rows: vec![vec!["1".into()]],
            notes: Vec::new(),
            data: serde_json::json!([]),
            metadata: ArtifactMetadata {
                spec_name: spec.name.clone(),
                spec_hash: spec.content_hash(),
                seed: spec.seed,
                git_describe: None,
                thread_invariant: true,
                from_cache: false,
            },
        }
    }

    #[test]
    fn store_then_load_round_trips_and_marks_cached() {
        let cache = ArtifactCache::new(scratch_dir("store_load"));
        let registry = ExperimentRegistry::builtin();
        let spec = registry.get("table2").unwrap();
        assert!(cache.load(spec).is_none(), "cold cache misses");
        let artifact = tiny_artifact(spec);
        let path = cache.store(spec, &artifact).unwrap();
        assert!(path.ends_with(format!("table2-{}.json", spec.content_hash())));
        let loaded = cache.load(spec).unwrap();
        assert!(loaded.metadata.from_cache);
        assert_eq!(loaded.rows, artifact.rows);
        assert_eq!(loaded.data, artifact.data);
    }

    #[test]
    fn changed_spec_misses_the_cache() {
        let cache = ArtifactCache::new(scratch_dir("changed_spec"));
        let registry = ExperimentRegistry::builtin();
        let spec = registry.get("table2").unwrap();
        cache.store(spec, &tiny_artifact(spec)).unwrap();
        let mut reseeded = spec.clone();
        reseeded.seed += 1;
        assert!(
            cache.load(&reseeded).is_none(),
            "different content hash maps to a different file"
        );
    }

    #[test]
    fn stale_file_contents_are_rejected() {
        let cache = ArtifactCache::new(scratch_dir("stale_file"));
        let registry = ExperimentRegistry::builtin();
        let spec = registry.get("table2").unwrap();
        let mut artifact = tiny_artifact(spec);
        artifact.metadata.spec_hash = "0000000000000000".into();
        cache.store(spec, &artifact).unwrap();
        assert!(
            cache.load(spec).is_none(),
            "recorded hash must match the spec"
        );
    }
}
