//! The `artifacts` command-line interface.
//!
//! One binary replaces the thirteen hand-wired per-figure binaries:
//!
//! ```text
//! artifacts list                         # every registered spec
//! artifacts show fig09                   # a spec's JSON
//! artifacts run fig09 table2             # run spec(s), pretty tables
//! artifacts run --all --format json --out out/
//! artifacts run fig09 --cache            # content-hash cached re-runs
//! artifacts run --spec sweep.json        # run a user-supplied spec file
//! artifacts check out/fig09.json         # artifact schema sanity check
//! ```
//!
//! `--spec` accepts any JSON file in the [`ExperimentSpec`] schema (the
//! format `artifacts show` prints), so external tools can sweep novel
//! architecture grids without recompiling; loaded specs validate before
//! anything runs and share the content-hash cache keying of registry specs.
//!
//! The parsing lives in the library (rather than the binary) so it is unit
//! testable; `src/bin/artifacts.rs` is a two-line shim over [`run`].

use std::fs;
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Duration;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use qccd_decoder::DecoderKind;
use qccd_service::net::{parse_arch, parse_decoder};
use qccd_service::{
    loadgen, DecodeProgram, DecodeService, LoadgenOptions, NetClient, NetServer, ServiceConfig,
};
use qccd_sweeprun::{
    query_status, render_progress_line, render_worker_lines, run_job, run_worker,
    CoordinatorConfig, PointJob, PointStore, SchedulerConfig, StoreState, WorkerOptions,
};
use qccd_telemetry::{
    cursor_home, render_dashboard, snapshot_from_json, RegistrySnapshot, TelemetryConfig, TraceSink,
};

use crate::artifact::{validate_artifact_json, Artifact};
use crate::cache::{ArtifactCache, CacheEntry, EntryStatus};
use crate::distributed::{job_factory, merge_artifact, spec_point_job};
use crate::registry::{run_spec, ExperimentRegistry};
use crate::spec::{ExperimentKind, ExperimentSpec};

/// Usage text printed for `--help` and argument errors.
pub const USAGE: &str = "\
usage: artifacts <command> [options]

commands:
  list                     list every registered experiment spec
  show <name>              print a spec as JSON
  run <name>... [options]  run one or more specs (or --all)
  check <file.json>        validate an emitted artifact against the schema
  serve [options]          run the real-time decode service (TCP JSON-lines)
  loadgen [options]        replay sampled syndromes against a decode service
  metrics --addr <host:port> [--text]   scrape a running service's telemetry
  sweep run [options]      run a LER sweep through the resumable point store
  sweep resume [options]   alias of `sweep run` (only missing points recompute)
  sweep status [options]   print a sweep's progress snapshot
  sweep worker [options]   join a coordinator as a remote evaluation worker
  cache <list|validate|prune> [options]   inspect the artifact cache

run options:
  --all                    run every registered spec
  --spec <file.json>       run a user-supplied spec file (repeatable,
                           combinable with registry names)
  --format <pretty|json|csv>   output format (default: pretty)
  --out <dir>              write artifacts to <dir>/<name>.<ext> instead of stdout
  --cache                  reuse cached results keyed by the spec content hash
  --cache-dir <dir>        cache location (default: target/experiments/cache)

serve options:
  --addr <host:port>       listen address (default: 127.0.0.1:7878)
  --workers <n>            decode worker threads (default: 2)
  --deadline-us <us>       partial-word flush deadline (default: 500)
  --batch-words <n>        64-shot words coalesced per decode job (default: 1)
  --queue-shots <n>        per-stream in-flight bound (default: 4096)
  --dense-entries <n>      dense-tier LRU entry cap (default: 65536)
  --no-dense-memo          disable the dense LRU tier (above-cap lanes
                           decode uncached)
  --no-telemetry           disable the telemetry registry entirely
  --sample-every <n>       stage-timing sample period (default: 16; 1 = all)
  --trace-out <file>       stream sampled stage spans as JSON lines

loadgen options:
  --addr <host:port>       drive a remote `artifacts serve` (default mode)
  --in-process             drive an in-process service instead of TCP
  --topology <grid|linear|switch>   architecture under test (default: grid)
  --capacity <n>           trap capacity (default: 2)
  --wiring <standard|wise> wiring method (default: standard)
  --improvement <x>        gate-improvement factor (default: 5.0)
  --distance <d>           code distance (default: 3)
  --decoder <union_find|greedy|exact>   decoder (default: union_find)
  --streams <n>            concurrent syndrome streams (default: 4)
  --connections <n>        TCP connections the streams ride on (default: 1;
                           clamped to the stream count; TCP only)
  --shots <n>              total shots replayed (default: 16384)
  --rate <shots/s>         target submission rate (default: unthrottled)
  --wire <packed|frames>   shot-major 64-shot word blocks (default) or
                           per-shot frames
  --frontier <points>      sweep the throughput/latency frontier: calibrate
                           unthrottled, then replay at <points> fractions of
                           saturation (TCP only)
  --seed <n>               replay sampling seed (default: 2026)
  --no-verify              skip the offline bit-identity check and baseline
  --shutdown               send a shutdown command after the run (TCP only)
  --format <pretty|json>   report format (default: pretty)
  --top                    live telemetry dashboard on stderr during the run
  --trace-out <file>       stream sampled stage spans as JSON lines
                           (in-process only; use `serve --trace-out` for TCP)
  --workers/--deadline-us/--batch-words/--queue-shots   service knobs
  --dense-entries/--no-dense-memo                       (in-process only)
  --no-telemetry/--sample-every <n>                     telemetry knobs

sweep run/resume options:
  <name> | --spec <file.json>   the LER-sweep spec to run (exactly one)
  --store <dir>            point-store base (default: target/experiments/sweep)
  --listen <host:port>     accept remote `sweep worker` processes (port 0
                           picks a free port; the bound address is printed)
  --local-workers <n>      in-process evaluation threads (default: 1;
                           0 needs --listen)
  --lease-timeout-ms <ms>  requeue a silent worker's lease after this
                           (default: 60000)
  --max-attempts <n>       evaluation attempts per point (default: 3)
  --backoff-ms <ms>        first retry delay, doubling per retry (default: 250)
  --progress-interval-ms <ms>   progress line / status.json period
                           (default: 2000)
  --quiet                  suppress the live progress line on stderr
  --no-telemetry           disable the coordinator's telemetry registry
  --sample-every <n>       stage-timing sample period (default: 16; 1 = all)
  --format <pretty|json|csv>    merged-artifact format (default: pretty)
  --out <dir>              write the merged artifact to <dir>/<name>.<ext>

sweep status options:
  --addr <host:port>       query a live coordinator, or:
  <name> | --spec <file.json> [--store <dir>]   read the store's status.json
  --format <pretty|json>   summary (incl. per-worker EWMA throughput and
                           heartbeat age) or the full snapshot

metrics options:
  --addr <host:port>       a running `artifacts serve` to scrape (required)
  --text                   Prometheus-style text instead of the JSON snapshot

sweep worker options:
  --addr <host:port>       coordinator to join (required)
  --throttle-ms <ms>       artificial delay before each evaluation (test hook)

cache options:
  --cache-dir <dir>        cache location (default: target/experiments/cache)
  --dry-run                (prune) report what would be removed, remove nothing";

/// Output format of `artifacts run`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Aligned text table with notes and provenance.
    Pretty,
    /// The full artifact JSON (table + data + metadata).
    Json,
    /// The table as CSV.
    Csv,
}

impl OutputFormat {
    fn parse(text: &str) -> Result<Self, String> {
        match text {
            "pretty" => Ok(OutputFormat::Pretty),
            "json" => Ok(OutputFormat::Json),
            "csv" => Ok(OutputFormat::Csv),
            other => Err(format!("unknown format `{other}` (pretty|json|csv)")),
        }
    }

    fn extension(self) -> &'static str {
        match self {
            OutputFormat::Pretty => "txt",
            OutputFormat::Json => "json",
            OutputFormat::Csv => "csv",
        }
    }

    fn render(self, artifact: &Artifact) -> String {
        match self {
            OutputFormat::Pretty => artifact.render_pretty(),
            OutputFormat::Json => serde_json::to_string_pretty(&artifact.to_json())
                .expect("artifact serialization cannot fail"),
            OutputFormat::Csv => artifact.to_csv(),
        }
    }
}

/// Parsed `artifacts run` options.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Spec names to run (empty with `all`).
    pub names: Vec<String>,
    /// User-supplied spec files to load and run (`--spec`).
    pub spec_files: Vec<PathBuf>,
    /// Run every registered spec.
    pub all: bool,
    /// Output format.
    pub format: OutputFormat,
    /// Output directory (stdout when absent).
    pub out: Option<PathBuf>,
    /// Whether to consult/populate the artifact cache.
    pub cache: bool,
    /// Cache directory.
    pub cache_dir: PathBuf,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            names: Vec::new(),
            spec_files: Vec::new(),
            all: false,
            format: OutputFormat::Pretty,
            out: None,
            cache: false,
            cache_dir: PathBuf::from("target/experiments/cache"),
        }
    }
}

/// Parses the arguments of `artifacts run` (everything after `run`).
///
/// # Errors
///
/// Returns a usage message on unknown flags, missing values or an empty
/// selection.
pub fn parse_run_options(args: &[String]) -> Result<RunOptions, String> {
    let mut options = RunOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--all" => options.all = true,
            "--spec" => {
                let value = iter.next().ok_or("--spec needs a JSON file path")?;
                options.spec_files.push(PathBuf::from(value));
            }
            "--format" => {
                let value = iter.next().ok_or("--format needs a value")?;
                options.format = OutputFormat::parse(value)?;
            }
            "--out" => {
                let value = iter.next().ok_or("--out needs a directory")?;
                options.out = Some(PathBuf::from(value));
            }
            "--cache" => options.cache = true,
            "--cache-dir" => {
                let value = iter.next().ok_or("--cache-dir needs a directory")?;
                options.cache_dir = PathBuf::from(value);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            name => options.names.push(name.to_string()),
        }
    }
    if options.names.is_empty() && options.spec_files.is_empty() && !options.all {
        return Err("nothing to run: name at least one spec, pass --spec, or pass --all".into());
    }
    if options.all && !(options.names.is_empty() && options.spec_files.is_empty()) {
        return Err("--all cannot be combined with explicit names or --spec files".into());
    }
    Ok(options)
}

/// Loads and validates one user-supplied spec file.
///
/// # Errors
///
/// Returns a message naming the file for unreadable paths, invalid JSON,
/// schema violations, and specs that fail [`ExperimentSpec::validate`].
pub fn load_spec_file(path: &std::path::Path) -> Result<ExperimentSpec, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let value =
        serde_json::from_str(&text).map_err(|_| format!("{} is not valid JSON", path.display()))?;
    let spec = ExperimentSpec::from_json(&value).map_err(|e| format!("{}: {e}", path.display()))?;
    spec.validate()
        .map_err(|e| format!("{}: invalid spec: {e}", path.display()))?;
    Ok(spec)
}

/// One-line summary of a spec's experiment family, for `artifacts list`.
pub fn kind_summary(spec: &ExperimentSpec) -> &'static str {
    match &spec.kind {
        ExperimentKind::LerSweep(_) => "ler_sweep",
        ExperimentKind::RareEventLer(_) => "rare_event_ler",
        ExperimentKind::TimingSweep(_) => "timing_sweep",
        ExperimentKind::CompilerBounds(_) => "compiler_bounds",
        ExperimentKind::BaselineComparison(_) => "baseline_comparison",
        ExperimentKind::Surgery(_) => "surgery",
        ExperimentKind::DecoderComparison(_) => "decoder_comparison",
        ExperimentKind::ClusteringAblation(_) => "clustering_ablation",
        ExperimentKind::DenseTail(_) => "dense_tail",
    }
}

/// Parsed `artifacts serve` options.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Listen address.
    pub addr: String,
    /// Decode-service tuning.
    pub service: ServiceConfig,
    /// Stream sampled stage spans to this file as JSON lines.
    pub trace_out: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7878".to_string(),
            service: ServiceConfig::default(),
            trace_out: None,
        }
    }
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
    let value = value.ok_or_else(|| format!("{flag} needs a value"))?;
    value
        .parse()
        .map_err(|_| format!("{flag}: cannot parse `{value}`"))
}

/// Consumes one service-tuning flag shared by `serve` and `loadgen
/// --in-process`; returns `false` when the flag is not a service flag.
fn parse_service_flag(
    flag: &str,
    iter: &mut std::slice::Iter<'_, String>,
    config: &mut ServiceConfig,
) -> Result<bool, String> {
    match flag {
        "--workers" => *config = config.with_workers(parse_number(flag, iter.next())?),
        "--deadline-us" => {
            *config =
                config.with_flush_deadline(Duration::from_micros(parse_number(flag, iter.next())?));
        }
        "--batch-words" => *config = config.with_max_batch_words(parse_number(flag, iter.next())?),
        "--queue-shots" => {
            *config = config.with_stream_queue_shots(parse_number(flag, iter.next())?);
        }
        "--dense-entries" => {
            *config = config.with_memo(
                config
                    .memo
                    .with_dense_max_entries(parse_number(flag, iter.next())?),
            );
        }
        "--no-dense-memo" => {
            *config = config.with_memo(config.memo.with_dense_max_entries(0));
        }
        "--no-telemetry" => {
            *config = config.with_telemetry(TelemetryConfig::disabled());
        }
        "--sample-every" => {
            let every: u32 = parse_number(flag, iter.next())?;
            if every == 0 {
                return Err("--sample-every must be at least 1".into());
            }
            *config = config.with_telemetry(config.telemetry.with_sample_every(every));
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Parses the arguments of `artifacts serve` (everything after `serve`).
///
/// # Errors
///
/// Returns a usage message on unknown flags or missing values.
pub fn parse_serve_options(args: &[String]) -> Result<ServeOptions, String> {
    let mut options = ServeOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                options.addr = iter.next().ok_or("--addr needs a host:port")?.clone();
            }
            "--trace-out" => {
                let value = iter.next().ok_or("--trace-out needs a file path")?;
                options.trace_out = Some(PathBuf::from(value));
            }
            flag if parse_service_flag(flag, &mut iter, &mut options.service)? => {}
            flag => return Err(format!("unknown serve flag `{flag}`")),
        }
    }
    Ok(options)
}

/// Parsed `artifacts loadgen` options.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenCliOptions {
    /// Remote server address (TCP mode).
    pub addr: Option<String>,
    /// Drive an in-process service instead of TCP.
    pub in_process: bool,
    /// Architecture under test (wire vocabulary).
    pub topology: String,
    /// Trap capacity.
    pub capacity: usize,
    /// Wiring method (wire vocabulary).
    pub wiring: String,
    /// Gate-improvement factor.
    pub improvement: f64,
    /// Code distance.
    pub distance: usize,
    /// Decoder.
    pub decoder: DecoderKind,
    /// Replay parameters.
    pub load: LoadgenOptions,
    /// Sweep the throughput/latency frontier with this many throttled
    /// points after an unthrottled calibration run (TCP only).
    pub frontier: Option<usize>,
    /// Send a shutdown command after the run (TCP only).
    pub shutdown: bool,
    /// Emit the report as JSON instead of the pretty summary.
    pub json: bool,
    /// Service tuning (in-process only).
    pub service: ServiceConfig,
    /// Redraw a live telemetry dashboard on stderr during the run.
    pub top: bool,
    /// Stream sampled stage spans to this file (in-process only; a TCP
    /// server traces on its own side via `serve --trace-out`).
    pub trace_out: Option<PathBuf>,
}

impl Default for LoadgenCliOptions {
    fn default() -> Self {
        LoadgenCliOptions {
            addr: None,
            in_process: false,
            topology: "grid".to_string(),
            capacity: 2,
            wiring: "standard".to_string(),
            improvement: 5.0,
            distance: 3,
            decoder: DecoderKind::UnionFind,
            load: LoadgenOptions::default(),
            frontier: None,
            shutdown: false,
            json: false,
            service: ServiceConfig::default(),
            top: false,
            trace_out: None,
        }
    }
}

/// Parses the arguments of `artifacts loadgen` (everything after
/// `loadgen`).
///
/// # Errors
///
/// Returns a usage message on unknown flags, missing values or a missing
/// target (`--addr` or `--in-process`).
pub fn parse_loadgen_options(args: &[String]) -> Result<LoadgenCliOptions, String> {
    let mut options = LoadgenCliOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => options.addr = Some(iter.next().ok_or("--addr needs a host:port")?.clone()),
            "--in-process" => options.in_process = true,
            "--topology" => {
                options.topology = iter.next().ok_or("--topology needs a value")?.clone();
            }
            "--capacity" => options.capacity = parse_number(arg, iter.next())?,
            "--wiring" => options.wiring = iter.next().ok_or("--wiring needs a value")?.clone(),
            "--improvement" => options.improvement = parse_number(arg, iter.next())?,
            "--distance" => options.distance = parse_number(arg, iter.next())?,
            "--decoder" => {
                options.decoder = parse_decoder(iter.next().ok_or("--decoder needs a value")?)?;
            }
            "--streams" => options.load.streams = parse_number(arg, iter.next())?,
            "--connections" => options.load.connections = parse_number(arg, iter.next())?,
            "--shots" => options.load.shots = parse_number(arg, iter.next())?,
            "--rate" => options.load.rate = Some(parse_number(arg, iter.next())?),
            "--wire" => match iter.next().map(String::as_str) {
                Some("packed") => options.load.shot_major = true,
                Some("frames") => options.load.shot_major = false,
                other => return Err(format!("--wire: packed|frames, got {other:?}")),
            },
            "--frontier" => options.frontier = Some(parse_number(arg, iter.next())?),
            "--seed" => options.load.seed = parse_number(arg, iter.next())?,
            "--no-verify" => options.load.verify = false,
            "--shutdown" => options.shutdown = true,
            "--format" => match iter.next().map(String::as_str) {
                Some("pretty") => options.json = false,
                Some("json") => options.json = true,
                other => return Err(format!("--format: pretty|json, got {other:?}")),
            },
            "--top" => options.top = true,
            "--trace-out" => {
                let value = iter.next().ok_or("--trace-out needs a file path")?;
                options.trace_out = Some(PathBuf::from(value));
            }
            flag if parse_service_flag(flag, &mut iter, &mut options.service)? => {}
            flag => return Err(format!("unknown loadgen flag `{flag}`")),
        }
    }
    if options.addr.is_none() && !options.in_process {
        return Err("loadgen needs a target: --addr <host:port> or --in-process".into());
    }
    if options.addr.is_some() && options.in_process {
        return Err("--addr and --in-process are mutually exclusive".into());
    }
    if options.distance < 2 {
        return Err("--distance must be at least 2".into());
    }
    if options.in_process && options.frontier.is_some() {
        return Err("--frontier needs a TCP target (--addr)".into());
    }
    if options.in_process && options.load.connections > 1 {
        return Err("--connections needs a TCP target (--addr)".into());
    }
    if options.frontier == Some(0) {
        return Err("--frontier needs at least 1 point".into());
    }
    if options.trace_out.is_some() && !options.in_process {
        return Err(
            "--trace-out needs --in-process (a TCP server traces via `serve --trace-out`)".into(),
        );
    }
    if options.top && options.frontier.is_some() {
        return Err("--top cannot run during a --frontier sweep".into());
    }
    Ok(options)
}

/// Parsed `artifacts sweep run` / `sweep resume` options.
#[derive(Debug)]
pub struct SweepRunOptions {
    /// Registry spec name (mutually exclusive with `spec_file`).
    pub name: Option<String>,
    /// User-supplied spec file (mutually exclusive with `name`).
    pub spec_file: Option<PathBuf>,
    /// Point-store base directory.
    pub store: PathBuf,
    /// Listen address for remote workers (`None` = local-only run).
    pub listen: Option<String>,
    /// In-process evaluation threads.
    pub local_workers: usize,
    /// Lease/retry tuning.
    pub scheduler: SchedulerConfig,
    /// Progress line / `status.json` period.
    pub progress_interval: Duration,
    /// Suppress the live progress line on stderr.
    pub quiet: bool,
    /// Coordinator telemetry registry configuration.
    pub telemetry: TelemetryConfig,
    /// Merged-artifact output format.
    pub format: OutputFormat,
    /// Output directory for the merged artifact (stdout when absent).
    pub out: Option<PathBuf>,
}

impl Default for SweepRunOptions {
    fn default() -> Self {
        SweepRunOptions {
            name: None,
            spec_file: None,
            store: PathBuf::from("target/experiments/sweep"),
            listen: None,
            local_workers: 1,
            scheduler: SchedulerConfig::default(),
            progress_interval: Duration::from_millis(2000),
            quiet: false,
            telemetry: TelemetryConfig::default(),
            format: OutputFormat::Pretty,
            out: None,
        }
    }
}

/// Parses the arguments of `artifacts sweep run` / `sweep resume`.
///
/// # Errors
///
/// Returns a usage message on unknown flags, missing values, an empty or
/// ambiguous spec selection, or a configuration that cannot make progress.
pub fn parse_sweep_run_options(args: &[String]) -> Result<SweepRunOptions, String> {
    let mut options = SweepRunOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--spec" => {
                let value = iter.next().ok_or("--spec needs a JSON file path")?;
                options.spec_file = Some(PathBuf::from(value));
            }
            "--store" => {
                let value = iter.next().ok_or("--store needs a directory")?;
                options.store = PathBuf::from(value);
            }
            "--listen" => {
                options.listen = Some(iter.next().ok_or("--listen needs a host:port")?.clone());
            }
            "--local-workers" => options.local_workers = parse_number(arg, iter.next())?,
            "--lease-timeout-ms" => {
                options.scheduler.lease_timeout =
                    Duration::from_millis(parse_number(arg, iter.next())?);
            }
            "--max-attempts" => options.scheduler.max_attempts = parse_number(arg, iter.next())?,
            "--backoff-ms" => {
                options.scheduler.backoff_base =
                    Duration::from_millis(parse_number(arg, iter.next())?);
            }
            "--progress-interval-ms" => {
                options.progress_interval = Duration::from_millis(parse_number(arg, iter.next())?);
            }
            "--quiet" => options.quiet = true,
            "--no-telemetry" => options.telemetry = TelemetryConfig::disabled(),
            "--sample-every" => {
                let every: u32 = parse_number(arg, iter.next())?;
                if every == 0 {
                    return Err("--sample-every must be at least 1".into());
                }
                options.telemetry = options.telemetry.with_sample_every(every);
            }
            "--format" => {
                let value = iter.next().ok_or("--format needs a value")?;
                options.format = OutputFormat::parse(value)?;
            }
            "--out" => {
                let value = iter.next().ok_or("--out needs a directory")?;
                options.out = Some(PathBuf::from(value));
            }
            flag if flag.starts_with("--") => return Err(format!("unknown sweep flag `{flag}`")),
            name => {
                if options.name.is_some() {
                    return Err("sweep runs exactly one spec at a time".into());
                }
                options.name = Some(name.to_string());
            }
        }
    }
    if options.name.is_some() == options.spec_file.is_some() {
        return Err("sweep needs exactly one spec: a registry name or --spec <file>".into());
    }
    if options.local_workers == 0 && options.listen.is_none() {
        return Err("--local-workers 0 needs --listen (someone has to evaluate points)".into());
    }
    if options.scheduler.max_attempts == 0 {
        return Err("--max-attempts must be at least 1".into());
    }
    Ok(options)
}

/// Parsed `artifacts sweep status` options.
#[derive(Debug)]
pub struct SweepStatusOptions {
    /// Live coordinator to query (mutually exclusive with the store path).
    pub addr: Option<String>,
    /// Registry spec name locating the store.
    pub name: Option<String>,
    /// Spec file locating the store.
    pub spec_file: Option<PathBuf>,
    /// Point-store base directory.
    pub store: PathBuf,
    /// Print the full JSON snapshot instead of the one-line summary.
    pub json: bool,
}

/// Parses the arguments of `artifacts sweep status`.
///
/// # Errors
///
/// Returns a usage message on unknown flags, missing values, or a target
/// that is neither an address nor a spec.
pub fn parse_sweep_status_options(args: &[String]) -> Result<SweepStatusOptions, String> {
    let mut options = SweepStatusOptions {
        addr: None,
        name: None,
        spec_file: None,
        store: PathBuf::from("target/experiments/sweep"),
        json: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => options.addr = Some(iter.next().ok_or("--addr needs a host:port")?.clone()),
            "--spec" => {
                let value = iter.next().ok_or("--spec needs a JSON file path")?;
                options.spec_file = Some(PathBuf::from(value));
            }
            "--store" => {
                let value = iter.next().ok_or("--store needs a directory")?;
                options.store = PathBuf::from(value);
            }
            "--format" => match iter.next().map(String::as_str) {
                Some("pretty") => options.json = false,
                Some("json") => options.json = true,
                other => return Err(format!("--format: pretty|json, got {other:?}")),
            },
            flag if flag.starts_with("--") => return Err(format!("unknown status flag `{flag}`")),
            name => {
                if options.name.is_some() {
                    return Err("status takes one spec name".into());
                }
                options.name = Some(name.to_string());
            }
        }
    }
    let has_spec = options.name.is_some() || options.spec_file.is_some();
    if options.addr.is_some() == has_spec {
        return Err("status needs one target: --addr <host:port>, or a spec (+ --store)".into());
    }
    if options.name.is_some() && options.spec_file.is_some() {
        return Err("status takes a registry name or --spec, not both".into());
    }
    Ok(options)
}

/// Parsed `artifacts sweep worker` options.
#[derive(Debug)]
pub struct SweepWorkerOptions {
    /// Coordinator address.
    pub addr: String,
    /// Artificial delay before each evaluation (kill-test hook).
    pub throttle: Duration,
}

/// Parses the arguments of `artifacts sweep worker`.
///
/// # Errors
///
/// Returns a usage message on unknown flags, missing values, or a missing
/// `--addr`.
pub fn parse_sweep_worker_options(args: &[String]) -> Result<SweepWorkerOptions, String> {
    let mut addr = None;
    let mut throttle = Duration::ZERO;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = Some(iter.next().ok_or("--addr needs a host:port")?.clone()),
            "--throttle-ms" => throttle = Duration::from_millis(parse_number(arg, iter.next())?),
            flag => return Err(format!("unknown worker flag `{flag}`")),
        }
    }
    Ok(SweepWorkerOptions {
        addr: addr.ok_or("worker needs --addr <host:port>")?,
        throttle,
    })
}

/// What `artifacts cache` should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAction {
    /// Print every entry (name, hash, age, size, status).
    List,
    /// Check every entry against the artifact schema; fail on problems.
    Validate,
    /// Delete stale/foreign/corrupt entries.
    Prune,
}

/// Parsed `artifacts cache` options.
#[derive(Debug)]
pub struct CacheCliOptions {
    /// The subcommand.
    pub action: CacheAction,
    /// Cache directory.
    pub cache_dir: PathBuf,
    /// Report what `prune` would remove without removing it.
    pub dry_run: bool,
}

/// Parses the arguments of `artifacts cache`.
///
/// # Errors
///
/// Returns a usage message on a missing/unknown action or unknown flags.
pub fn parse_cache_options(args: &[String]) -> Result<CacheCliOptions, String> {
    let action = match args.first().map(String::as_str) {
        Some("list") => CacheAction::List,
        Some("validate") => CacheAction::Validate,
        Some("prune") => CacheAction::Prune,
        other => {
            return Err(format!(
                "cache needs an action (list|validate|prune), got {other:?}"
            ))
        }
    };
    let mut options = CacheCliOptions {
        action,
        cache_dir: PathBuf::from("target/experiments/cache"),
        dry_run: false,
    };
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--cache-dir" => {
                let value = iter.next().ok_or("--cache-dir needs a directory")?;
                options.cache_dir = PathBuf::from(value);
            }
            "--dry-run" if action == CacheAction::Prune => options.dry_run = true,
            flag => return Err(format!("unknown cache flag `{flag}`")),
        }
    }
    Ok(options)
}

/// Writes a rendered artifact to `<out>/<name>.<ext>` or stdout.
fn emit_rendered(
    name: &str,
    rendered: &str,
    format: OutputFormat,
    out: &Option<PathBuf>,
) -> Result<(), String> {
    match out {
        Some(dir) => {
            fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
            let path = dir.join(format!("{name}.{}", format.extension()));
            fs::write(&path, rendered).map_err(|e| format!("cannot write {path:?}: {e}"))?;
            println!("(wrote {})", path.display());
        }
        None => println!("{rendered}"),
    }
    Ok(())
}

/// Resolves the single spec a sweep subcommand names.
fn resolve_sweep_spec(
    name: &Option<String>,
    spec_file: &Option<PathBuf>,
    registry: &ExperimentRegistry,
) -> Result<ExperimentSpec, String> {
    match (name, spec_file) {
        (Some(name), None) => registry
            .get(name)
            .cloned()
            .ok_or_else(|| format!("unknown experiment `{name}` (try `artifacts list`)")),
        (None, Some(path)) => load_spec_file(path),
        _ => Err("sweep needs exactly one spec: a registry name or --spec <file>".into()),
    }
}

fn sweep_run_command(
    options: SweepRunOptions,
    registry: &ExperimentRegistry,
) -> Result<(), String> {
    let spec = resolve_sweep_spec(&options.name, &options.spec_file, registry)?;
    let job = spec_point_job(&spec)?;
    let (store, state) = PointStore::open(&options.store, &job.descriptor(), job.seed_table())?;
    if state == StoreState::Resumed {
        println!(
            "resuming sweep `{}` at {}: {} of {} points already done",
            spec.name,
            store.root().display(),
            store.done_count(),
            store.num_points(),
        );
    } else {
        println!(
            "sweep `{}`: {} points, store {}",
            spec.name,
            store.num_points(),
            store.root().display(),
        );
    }
    let listener = match &options.listen {
        Some(addr) => {
            let listener =
                TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
            let bound = listener
                .local_addr()
                .map_err(|e| format!("cannot resolve bound address: {e}"))?;
            // The integration tests (and scripts driving workers) parse this
            // line to learn the port when `--listen` used port 0.
            println!("sweep coordinator listening on {bound}");
            Some(listener)
        }
        None => None,
    };
    let summary = run_job(
        &job,
        &store,
        CoordinatorConfig {
            listener,
            local_workers: options.local_workers,
            scheduler: options.scheduler,
            progress_interval: options.progress_interval,
            quiet: options.quiet,
            telemetry: options.telemetry,
        },
    )?;
    println!(
        "sweep `{}`: {} computed, {} resumed, {} failed in {:.1}s \
         (requeues {}, retries {}, duplicates {})",
        spec.name,
        summary.computed,
        summary.resumed,
        summary.progress.failed,
        summary.elapsed.as_secs_f64(),
        summary.progress.counters.requeues,
        summary.progress.counters.retries,
        summary.progress.counters.duplicates,
    );
    if summary.progress.failed > 0 {
        return Err(format!(
            "{} points failed terminally (see {}); fix the cause and `sweep resume`",
            summary.progress.failed,
            store.root().join("failed").display(),
        ));
    }
    let artifact = merge_artifact(&spec, &store)?;
    emit_rendered(
        &spec.name,
        &options.format.render(&artifact),
        options.format,
        &options.out,
    )
}

fn sweep_status_command(
    options: &SweepStatusOptions,
    registry: &ExperimentRegistry,
) -> Result<(), String> {
    let emit = |snapshot: &serde_json::Value| {
        if options.json {
            println!(
                "{}",
                serde_json::to_string_pretty(snapshot).expect("snapshot serialization cannot fail")
            );
        } else {
            println!("{}", render_progress_line(snapshot));
            for line in render_worker_lines(snapshot) {
                println!("{line}");
            }
        }
    };
    if let Some(addr) = &options.addr {
        emit(&query_status(addr)?);
        return Ok(());
    }
    let spec = resolve_sweep_spec(&options.name, &options.spec_file, registry)?;
    let job = spec_point_job(&spec)?;
    let (store, _) = PointStore::open(&options.store, &job.descriptor(), job.seed_table())?;
    match store.read_status() {
        Some(snapshot) => emit(&snapshot),
        None => println!(
            "no status snapshot yet: {}/{} points on disk, {} failed ({})",
            store.done_count(),
            store.num_points(),
            store.failures().len(),
            store.root().display(),
        ),
    }
    Ok(())
}

fn sweep_worker_command(options: &SweepWorkerOptions) -> Result<(), String> {
    let summary = run_worker(
        &options.addr,
        &job_factory,
        WorkerOptions {
            throttle: options.throttle,
        },
    )?;
    println!(
        "worker {}: {} completed, {} failed",
        summary.worker_id, summary.completed, summary.failed,
    );
    Ok(())
}

fn sweep_command(args: &[String], registry: &ExperimentRegistry) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("run") | Some("resume") => {
            sweep_run_command(parse_sweep_run_options(&args[1..])?, registry)
        }
        Some("status") => sweep_status_command(&parse_sweep_status_options(&args[1..])?, registry),
        Some("worker") => sweep_worker_command(&parse_sweep_worker_options(&args[1..])?),
        other => Err(format!(
            "sweep needs an action (run|resume|status|worker), got {other:?}"
        )),
    }
}

fn entry_status_cells(entry: &CacheEntry) -> (&'static str, String) {
    match &entry.status {
        EntryStatus::Valid => ("valid", String::new()),
        EntryStatus::Foreign(detail) => ("foreign", detail.clone()),
        EntryStatus::Stale(detail) => ("stale", detail.clone()),
        EntryStatus::Corrupt(detail) => ("corrupt", detail.clone()),
    }
}

fn format_age(age_secs: Option<u64>) -> String {
    match age_secs {
        None => "?".to_string(),
        Some(s) if s < 60 => format!("{s}s"),
        Some(s) if s < 3600 => format!("{}m", s / 60),
        Some(s) if s < 86_400 => format!("{}h", s / 3600),
        Some(s) => format!("{}d", s / 86_400),
    }
}

fn format_size(bytes: u64) -> String {
    if bytes < 1024 {
        format!("{bytes} B")
    } else if bytes < 1024 * 1024 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
    }
}

fn cache_command(options: &CacheCliOptions) -> Result<(), String> {
    let cache = ArtifactCache::new(&options.cache_dir);
    let entries = cache
        .entries()
        .map_err(|e| format!("cannot scan {}: {e}", options.cache_dir.display()))?;
    match options.action {
        CacheAction::List => {
            if entries.is_empty() {
                println!("cache {} is empty", options.cache_dir.display());
                return Ok(());
            }
            let rows: Vec<Vec<String>> = entries
                .iter()
                .map(|entry| {
                    let (status, _) = entry_status_cells(entry);
                    vec![
                        entry.spec_name.clone().unwrap_or_else(|| "-".to_string()),
                        entry.spec_hash.clone().unwrap_or_else(|| "-".to_string()),
                        format_age(entry.age_secs),
                        format_size(entry.size_bytes),
                        status.to_string(),
                        entry.file_name.clone(),
                    ]
                })
                .collect();
            print!(
                "{}",
                crate::format_table(
                    &format!("artifact cache: {}", options.cache_dir.display()),
                    &["SPEC", "HASH", "AGE", "SIZE", "STATUS", "FILE"],
                    &rows,
                )
            );
            Ok(())
        }
        CacheAction::Validate => {
            let mut bad = 0usize;
            for entry in &entries {
                let (status, detail) = entry_status_cells(entry);
                if entry.status == EntryStatus::Valid {
                    println!("{}: OK", entry.file_name);
                } else {
                    bad += 1;
                    println!("{}: {status} ({detail})", entry.file_name);
                }
            }
            if bad > 0 {
                return Err(format!(
                    "{bad} of {} cache entries are not valid (`artifacts cache prune` removes them)",
                    entries.len(),
                ));
            }
            println!("{} cache entries valid", entries.len());
            Ok(())
        }
        CacheAction::Prune => {
            if options.dry_run {
                let doomed: Vec<_> = entries
                    .iter()
                    .filter(|entry| entry.status != EntryStatus::Valid)
                    .collect();
                for entry in &doomed {
                    let (status, _) = entry_status_cells(entry);
                    println!("would remove {} ({status})", entry.path.display());
                }
                println!("{} entries would be removed", doomed.len());
                return Ok(());
            }
            let removed = cache
                .prune(|entry| entry.status != EntryStatus::Valid)
                .map_err(|e| format!("prune failed: {e}"))?;
            for path in &removed {
                println!("removed {}", path.display());
            }
            println!("{} entries removed", removed.len());
            Ok(())
        }
    }
}

fn serve_command(options: &ServeOptions) -> Result<(), String> {
    let server = NetServer::bind(&options.addr, options.service)
        .map_err(|e| format!("cannot bind {}: {e}", options.addr))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    if let Some(path) = &options.trace_out {
        let sink = TraceSink::create(path)
            .map_err(|e| format!("cannot create trace file {}: {e}", path.display()))?;
        server.service().telemetry().set_trace_sink(Arc::new(sink));
        println!("tracing sampled stage spans to {}", path.display());
    }
    println!("decode service listening on {addr} ({:?})", options.service);
    server.run().map_err(|e| e.to_string())
}

/// Redraws the live telemetry dashboard on stderr every 500 ms until `stop`
/// is set — the loadgen `--top` mode.
fn spawn_top_renderer(
    stop: Arc<AtomicBool>,
    mut snapshot: impl FnMut() -> Option<RegistrySnapshot> + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            if let Some(snapshot) = snapshot() {
                eprint!(
                    "{}{}",
                    cursor_home(),
                    render_dashboard(&snapshot, "loadgen")
                );
            }
            std::thread::sleep(Duration::from_millis(500));
        }
    })
}

fn loadgen_command(options: &LoadgenCliOptions) -> Result<(), String> {
    if let Some(points) = options.frontier {
        let report = loadgen::run_frontier_over_tcp(
            options.addr.as_deref().expect("validated by the parser"),
            (&options.topology, &options.wiring),
            options.capacity,
            options.improvement,
            options.distance,
            options.decoder,
            &options.load,
            points,
            options.shutdown,
        )?;
        if options.json {
            println!(
                "{}",
                serde_json::to_string_pretty(&report.to_json())
                    .expect("report serialization cannot fail")
            );
        } else {
            println!("{}", report.render_pretty());
        }
        if report.calibration.mismatches > 0 {
            return Err(format!(
                "{} corrections differ from the offline decode",
                report.calibration.mismatches
            ));
        }
        return Ok(());
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut top = None;
    let report = if options.in_process {
        let arch = parse_arch(
            &options.topology,
            options.capacity,
            &options.wiring,
            options.improvement,
        )?;
        let program = DecodeProgram::compile(&arch, options.distance, options.decoder)
            .map_err(|e| e.to_string())?;
        let service = DecodeService::new(options.service);
        if let Some(path) = &options.trace_out {
            let sink = TraceSink::create(path)
                .map_err(|e| format!("cannot create trace file {}: {e}", path.display()))?;
            service.telemetry().set_trace_sink(Arc::new(sink));
        }
        if options.top {
            let registry = service.telemetry();
            top = Some(spawn_top_renderer(Arc::clone(&stop), move || {
                Some(registry.snapshot())
            }));
        }
        let report = loadgen::run_in_process(
            &service,
            program.key(),
            program.circuit(),
            options.decoder,
            &options.load,
        )
        .map_err(|e| e.to_string());
        stop.store(true, Ordering::Relaxed);
        service.shutdown();
        report?
    } else {
        let addr = options.addr.as_deref().expect("validated by the parser");
        if options.top {
            // The dashboard polls the server's unified snapshot over its own
            // connection, reconnecting if a poll fails mid-run.
            let addr = addr.to_string();
            let mut client: Option<NetClient> = None;
            top = Some(spawn_top_renderer(Arc::clone(&stop), move || {
                if client.is_none() {
                    client = NetClient::connect(&addr).ok();
                }
                match client.as_mut()?.metrics_full() {
                    Ok(full) => Some(snapshot_from_json(full.get("telemetry")?)),
                    Err(_) => {
                        client = None;
                        None
                    }
                }
            }));
        }
        let report = loadgen::run_over_tcp(
            addr,
            (&options.topology, &options.wiring),
            options.capacity,
            options.improvement,
            options.distance,
            options.decoder,
            &options.load,
            options.shutdown,
        );
        stop.store(true, Ordering::Relaxed);
        report?
    };
    if let Some(top) = top {
        let _ = top.join();
    }
    if options.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.to_json())
                .expect("report serialization cannot fail")
        );
    } else {
        println!("{}", report.render_pretty());
    }
    if report.mismatches > 0 {
        return Err(format!(
            "{} corrections differ from the offline decode",
            report.mismatches
        ));
    }
    Ok(())
}

/// `artifacts metrics`: scrape a running service's unified telemetry
/// snapshot (JSON by default, Prometheus-style text with `--text`).
fn metrics_command(args: &[String]) -> Result<(), String> {
    let mut addr = None;
    let mut text = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = Some(iter.next().ok_or("--addr needs a host:port")?.clone()),
            "--text" => text = true,
            flag => return Err(format!("unknown metrics flag `{flag}`")),
        }
    }
    let addr = addr.ok_or("metrics needs --addr <host:port>")?;
    let mut client =
        NetClient::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    if text {
        print!("{}", client.metrics_text()?);
    } else {
        println!(
            "{}",
            serde_json::to_string_pretty(&client.metrics_full()?)
                .expect("metrics serialization cannot fail")
        );
    }
    Ok(())
}

fn run_command(options: &RunOptions, registry: &ExperimentRegistry) -> Result<(), String> {
    let names: Vec<String> = if options.all {
        registry.names().iter().map(|s| s.to_string()).collect()
    } else {
        options.names.clone()
    };
    // Resolve every name — and load every spec file — up front so a typo in
    // a later name (or a malformed file) fails fast instead of surfacing
    // only after earlier (expensive) specs have run.
    let loaded: Vec<ExperimentSpec> = options
        .spec_files
        .iter()
        .map(|path| load_spec_file(path))
        .collect::<Result<_, _>>()?;
    let mut specs: Vec<&ExperimentSpec> = names
        .iter()
        .map(|name| {
            registry
                .get(name)
                .ok_or_else(|| format!("unknown experiment `{name}` (try `artifacts list`)"))
        })
        .collect::<Result<_, _>>()?;
    specs.extend(loaded.iter());
    // Reject selections in which two *different* specs share a name: their
    // outputs would be written to (or printed under) the same `<name>.<ext>`
    // and one would silently overwrite the other. Identical content is fine
    // (e.g. `--spec` of a dumped registry spec next to its name).
    let mut seen: std::collections::BTreeMap<&str, String> = std::collections::BTreeMap::new();
    for spec in &specs {
        let hash = spec.content_hash();
        if let Some(earlier) = seen.get(spec.name.as_str()) {
            if *earlier != hash {
                return Err(format!(
                    "two different specs named `{}` selected; rename one (outputs would collide)",
                    spec.name
                ));
            }
        } else {
            seen.insert(&spec.name, hash);
        }
    }
    let cache = ArtifactCache::new(&options.cache_dir);
    for spec in specs {
        let name = &spec.name;
        let artifact = match options.cache.then(|| cache.load(spec)).flatten() {
            Some(cached) => cached,
            None => {
                let artifact = run_spec(spec).map_err(|e| e.to_string())?;
                if options.cache {
                    cache
                        .store(spec, &artifact)
                        .map_err(|e| format!("cannot write cache: {e}"))?;
                }
                artifact
            }
        };
        emit_rendered(
            name,
            &options.format.render(&artifact),
            options.format,
            &options.out,
        )?;
    }
    Ok(())
}

/// Entry point of the `artifacts` binary (arguments without the program
/// name).
///
/// # Errors
///
/// Returns the message the binary prints to stderr before exiting non-zero.
pub fn run(args: &[String]) -> Result<(), String> {
    let registry = ExperimentRegistry::builtin();
    match args.first().map(String::as_str) {
        None | Some("--help") | Some("-h") | Some("help") => {
            println!("{USAGE}");
            Ok(())
        }
        Some("list") => {
            println!("{:<24}  {:<20}  TITLE", "NAME", "KIND");
            for spec in registry.specs() {
                println!(
                    "{:<24}  {:<20}  {}",
                    spec.name,
                    kind_summary(spec),
                    spec.title
                );
            }
            Ok(())
        }
        Some("show") => {
            let name = args
                .get(1)
                .ok_or("show needs a spec name (try `artifacts list`)")?;
            let spec = registry
                .get(name)
                .ok_or_else(|| format!("unknown experiment `{name}` (try `artifacts list`)"))?;
            println!(
                "{}",
                serde_json::to_string_pretty(&spec.to_json())
                    .expect("spec serialization cannot fail")
            );
            Ok(())
        }
        Some("run") => {
            let options = parse_run_options(&args[1..])?;
            run_command(&options, &registry)
        }
        Some("serve") => serve_command(&parse_serve_options(&args[1..])?),
        Some("loadgen") => loadgen_command(&parse_loadgen_options(&args[1..])?),
        Some("metrics") => metrics_command(&args[1..]),
        Some("sweep") => sweep_command(&args[1..], &registry),
        Some("cache") => cache_command(&parse_cache_options(&args[1..])?),
        Some("check") => {
            let path = args.get(1).ok_or("check needs a JSON file path")?;
            let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let value =
                serde_json::from_str(&text).map_err(|_| format!("{path} is not valid JSON"))?;
            validate_artifact_json(&value).map_err(|e| format!("{path}: {e}"))?;
            println!("{path}: OK");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn run_options_parse_names_flags_and_defaults() {
        let options = parse_run_options(&strings(&[
            "fig09", "table2", "--format", "json", "--out", "out", "--cache",
        ]))
        .unwrap();
        assert_eq!(options.names, vec!["fig09", "table2"]);
        assert_eq!(options.format, OutputFormat::Json);
        assert_eq!(options.out, Some(PathBuf::from("out")));
        assert!(options.cache);
        assert!(!options.all);

        let defaults = parse_run_options(&strings(&["fig09"])).unwrap();
        assert_eq!(defaults.format, OutputFormat::Pretty);
        assert!(defaults.out.is_none());
        assert!(!defaults.cache);
    }

    #[test]
    fn run_options_reject_bad_input() {
        assert!(parse_run_options(&strings(&[])).is_err());
        assert!(parse_run_options(&strings(&["--format"])).is_err());
        assert!(parse_run_options(&strings(&["--format", "yaml", "x"])).is_err());
        assert!(parse_run_options(&strings(&["--bogus", "x"])).is_err());
        assert!(parse_run_options(&strings(&["--all", "fig09"])).is_err());
        assert!(parse_run_options(&strings(&["--all"])).is_ok());
        assert!(parse_run_options(&strings(&["--spec"])).is_err());
        assert!(parse_run_options(&strings(&["--all", "--spec", "s.json"])).is_err());
    }

    #[test]
    fn run_options_accept_spec_files_alone_and_with_names() {
        let options = parse_run_options(&strings(&["--spec", "a.json", "--spec", "b.json"]))
            .expect("spec files alone are a valid selection");
        assert_eq!(
            options.spec_files,
            vec![PathBuf::from("a.json"), PathBuf::from("b.json")]
        );
        assert!(options.names.is_empty());
        let mixed = parse_run_options(&strings(&["fig09", "--spec", "a.json"])).unwrap();
        assert_eq!(mixed.names, vec!["fig09"]);
        assert_eq!(mixed.spec_files, vec![PathBuf::from("a.json")]);
    }

    /// A scratch directory unique to one test, cleaned up on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("qccd-cli-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }

        fn path(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn spec_files_round_trip_through_load() {
        let dir = TempDir::new("roundtrip");
        let registry = ExperimentRegistry::builtin();
        let spec = registry.get("fig09").unwrap();
        let path = dir.path("fig09.json");
        fs::write(
            &path,
            serde_json::to_string_pretty(&spec.to_json()).unwrap(),
        )
        .unwrap();
        let loaded = load_spec_file(&path).expect("emitted spec JSON loads");
        assert_eq!(&loaded, spec);
        // The cache key of a file-loaded spec is the same content hash the
        // registry spec carries, so `--spec` runs share cached artifacts.
        assert_eq!(loaded.content_hash(), spec.content_hash());
        let cache = ArtifactCache::new(dir.path("cache"));
        assert_eq!(cache.path_for(&loaded), cache.path_for(spec));
    }

    #[test]
    fn bad_spec_files_are_rejected_with_the_file_named() {
        let dir = TempDir::new("badspec");
        let missing = dir.path("missing.json");
        let err = load_spec_file(&missing).unwrap_err();
        assert!(err.contains("missing.json"), "{err}");

        let not_json = dir.path("not.json");
        fs::write(&not_json, "not json at all").unwrap();
        let err = load_spec_file(&not_json).unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");

        let wrong_schema = dir.path("schema.json");
        fs::write(&wrong_schema, "{\"name\": \"x\"}").unwrap();
        assert!(load_spec_file(&wrong_schema).is_err());

        // Structurally valid but semantically invalid (empty title):
        // `validate` must reject it before anything runs.
        let invalid = dir.path("invalid.json");
        let registry = ExperimentRegistry::builtin();
        let mut spec = registry.get("fig09").unwrap().clone();
        spec.title = String::new();
        fs::write(
            &invalid,
            serde_json::to_string_pretty(&spec.to_json()).unwrap(),
        )
        .unwrap();
        let err = load_spec_file(&invalid).unwrap_err();
        assert!(err.contains("invalid spec"), "{err}");

        // And a run naming a bad file fails fast.
        assert!(run(&strings(&["run", "--spec", missing.to_str().unwrap()])).is_err());
    }

    #[test]
    fn colliding_spec_names_are_rejected_unless_identical() {
        let dir = TempDir::new("collide");
        let registry = ExperimentRegistry::builtin();
        let spec = registry.get("fig09").unwrap();
        // A *different* spec carrying the same name must be rejected before
        // anything runs (outputs would land in the same file)...
        let mut tweaked = spec.clone();
        tweaked.seed ^= 1;
        let path = dir.path("tweaked.json");
        fs::write(
            &path,
            serde_json::to_string_pretty(&tweaked.to_json()).unwrap(),
        )
        .unwrap();
        let err = run(&strings(&[
            "run",
            "fig09",
            "--spec",
            path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("two different specs named"), "{err}");
        // ...while a byte-identical dump of the registry spec is fine.
        let same = dir.path("same.json");
        fs::write(
            &same,
            serde_json::to_string_pretty(&spec.to_json()).unwrap(),
        )
        .unwrap();
        assert!(run(&strings(&[
            "run",
            "fig09",
            "--spec",
            same.to_str().unwrap(),
            "--out",
            dir.path("out").to_str().unwrap(),
        ]))
        .is_ok());
    }

    #[test]
    fn run_with_spec_file_emits_a_valid_artifact() {
        let dir = TempDir::new("runspec");
        let registry = ExperimentRegistry::builtin();
        // fig09 is compile-only, so this end-to-end run is cheap.
        let spec = registry.get("fig09").unwrap();
        let spec_path = dir.path("myspec.json");
        fs::write(
            &spec_path,
            serde_json::to_string_pretty(&spec.to_json()).unwrap(),
        )
        .unwrap();
        let out = dir.path("out");
        run(&strings(&[
            "run",
            "--spec",
            spec_path.to_str().unwrap(),
            "--format",
            "json",
            "--out",
            out.to_str().unwrap(),
        ]))
        .expect("spec file runs");
        let emitted = fs::read_to_string(out.join("fig09.json")).expect("artifact written");
        let value = serde_json::from_str(&emitted).expect("artifact is JSON");
        validate_artifact_json(&value).expect("artifact validates");
    }

    #[test]
    fn unknown_commands_and_names_error() {
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&strings(&["show", "fig99"])).is_err());
        assert!(run(&strings(&["show"])).is_err());
        assert!(run(&strings(&["check"])).is_err());
    }

    #[test]
    fn list_and_show_succeed() {
        assert!(run(&strings(&["list"])).is_ok());
        assert!(run(&strings(&["show", "fig09"])).is_ok());
        assert!(run(&strings(&["--help"])).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn serve_options_parse_and_reject() {
        let defaults = parse_serve_options(&strings(&[])).unwrap();
        assert_eq!(defaults, ServeOptions::default());
        let options = parse_serve_options(&strings(&[
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "4",
            "--deadline-us",
            "250",
            "--batch-words",
            "2",
            "--queue-shots",
            "128",
            "--dense-entries",
            "512",
        ]))
        .unwrap();
        assert_eq!(options.addr, "0.0.0.0:9000");
        assert_eq!(options.service.workers, 4);
        assert_eq!(options.service.flush_deadline, Duration::from_micros(250));
        assert_eq!(options.service.max_batch_words, 2);
        assert_eq!(options.service.stream_queue_shots, 128);
        assert_eq!(options.service.memo.dense_max_entries, 512);
        let dense_off = parse_serve_options(&strings(&["--no-dense-memo"])).unwrap();
        assert!(!dense_off.service.memo.dense_enabled());
        assert!(parse_serve_options(&strings(&["--workers"])).is_err());
        assert!(parse_serve_options(&strings(&["--workers", "x"])).is_err());
        assert!(parse_serve_options(&strings(&["--dense-entries"])).is_err());
        assert!(parse_serve_options(&strings(&["--bogus"])).is_err());
    }

    #[test]
    fn loadgen_options_parse_and_reject() {
        // A target is mandatory.
        assert!(parse_loadgen_options(&strings(&[])).is_err());
        assert!(parse_loadgen_options(&strings(&["--addr", "x:1", "--in-process"])).is_err());
        assert!(parse_loadgen_options(&strings(&["--in-process", "--distance", "1"])).is_err());
        assert!(parse_loadgen_options(&strings(&["--in-process", "--decoder", "magic"])).is_err());
        // Frontier sweeps and multi-connection replays are TCP-only.
        assert!(parse_loadgen_options(&strings(&["--in-process", "--frontier", "3"])).is_err());
        assert!(parse_loadgen_options(&strings(&["--in-process", "--connections", "2"])).is_err());
        assert!(parse_loadgen_options(&strings(&["--addr", "x:1", "--frontier", "0"])).is_err());
        assert!(parse_loadgen_options(&strings(&["--addr", "x:1", "--wire", "sideways"])).is_err());

        let options = parse_loadgen_options(&strings(&[
            "--addr",
            "127.0.0.1:7878",
            "--topology",
            "switch",
            "--capacity",
            "5",
            "--wiring",
            "wise",
            "--improvement",
            "10",
            "--distance",
            "5",
            "--decoder",
            "greedy",
            "--streams",
            "8",
            "--connections",
            "2",
            "--shots",
            "4096",
            "--rate",
            "50000",
            "--wire",
            "frames",
            "--frontier",
            "4",
            "--seed",
            "7",
            "--no-verify",
            "--shutdown",
            "--format",
            "json",
        ]))
        .unwrap();
        assert_eq!(options.addr.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(options.topology, "switch");
        assert_eq!(options.capacity, 5);
        assert_eq!(options.wiring, "wise");
        assert_eq!(options.improvement, 10.0);
        assert_eq!(options.distance, 5);
        assert_eq!(options.decoder, qccd_decoder::DecoderKind::GreedyMatching);
        assert_eq!(options.load.streams, 8);
        assert_eq!(options.load.connections, 2);
        assert_eq!(options.load.shots, 4096);
        assert_eq!(options.load.rate, Some(50_000.0));
        assert!(!options.load.shot_major);
        assert_eq!(options.frontier, Some(4));
        assert_eq!(options.load.seed, 7);
        assert!(!options.load.verify);
        assert!(options.shutdown);
        assert!(options.json);

        let in_process =
            parse_loadgen_options(&strings(&["--in-process", "--workers", "3"])).unwrap();
        assert!(in_process.in_process);
        assert_eq!(in_process.service.workers, 3);
    }

    #[test]
    fn loadgen_in_process_runs_end_to_end() {
        // The smallest sensible run: d=2, a few hundred shots, verified
        // against the offline decode — the CLI-level counterpart of the
        // service property suite.
        run(&strings(&[
            "loadgen",
            "--in-process",
            "--distance",
            "2",
            "--shots",
            "256",
            "--streams",
            "2",
            "--format",
            "json",
        ]))
        .expect("in-process loadgen succeeds and verifies");
    }

    #[test]
    fn format_extensions_match() {
        assert_eq!(OutputFormat::Json.extension(), "json");
        assert_eq!(OutputFormat::Csv.extension(), "csv");
        assert_eq!(OutputFormat::Pretty.extension(), "txt");
    }

    #[test]
    fn sweep_run_options_parse_and_reject() {
        let options = parse_sweep_run_options(&strings(&[
            "fig07",
            "--store",
            "mystore",
            "--listen",
            "127.0.0.1:0",
            "--local-workers",
            "3",
            "--lease-timeout-ms",
            "500",
            "--max-attempts",
            "5",
            "--backoff-ms",
            "10",
            "--progress-interval-ms",
            "100",
            "--quiet",
            "--format",
            "json",
            "--out",
            "out",
        ]))
        .unwrap();
        assert_eq!(options.name.as_deref(), Some("fig07"));
        assert_eq!(options.store, PathBuf::from("mystore"));
        assert_eq!(options.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(options.local_workers, 3);
        assert_eq!(options.scheduler.lease_timeout, Duration::from_millis(500));
        assert_eq!(options.scheduler.max_attempts, 5);
        assert_eq!(options.scheduler.backoff_base, Duration::from_millis(10));
        assert_eq!(options.progress_interval, Duration::from_millis(100));
        assert!(options.quiet);
        assert_eq!(options.format, OutputFormat::Json);
        assert_eq!(options.out, Some(PathBuf::from("out")));

        // Exactly one spec, a worker somewhere, and a sane attempt budget.
        assert!(parse_sweep_run_options(&strings(&[])).is_err());
        assert!(parse_sweep_run_options(&strings(&["a", "b"])).is_err());
        assert!(parse_sweep_run_options(&strings(&["a", "--spec", "b.json"])).is_err());
        assert!(parse_sweep_run_options(&strings(&["a", "--local-workers", "0"])).is_err());
        assert!(parse_sweep_run_options(&strings(&[
            "a",
            "--local-workers",
            "0",
            "--listen",
            "127.0.0.1:0"
        ]))
        .is_ok());
        assert!(parse_sweep_run_options(&strings(&["a", "--max-attempts", "0"])).is_err());
        assert!(parse_sweep_run_options(&strings(&["a", "--bogus"])).is_err());
    }

    #[test]
    fn sweep_status_and_worker_options_parse_and_reject() {
        let live =
            parse_sweep_status_options(&strings(&["--addr", "h:1", "--format", "json"])).unwrap();
        assert_eq!(live.addr.as_deref(), Some("h:1"));
        assert!(live.json);
        let stored = parse_sweep_status_options(&strings(&["fig07", "--store", "s"])).unwrap();
        assert_eq!(stored.name.as_deref(), Some("fig07"));
        assert_eq!(stored.store, PathBuf::from("s"));
        assert!(!stored.json);
        // One target: an address or a spec, never both or neither.
        assert!(parse_sweep_status_options(&strings(&[])).is_err());
        assert!(parse_sweep_status_options(&strings(&["--addr", "h:1", "fig07"])).is_err());
        assert!(parse_sweep_status_options(&strings(&["--format", "yaml", "x"])).is_err());

        let worker =
            parse_sweep_worker_options(&strings(&["--addr", "h:1", "--throttle-ms", "50"]))
                .unwrap();
        assert_eq!(worker.addr, "h:1");
        assert_eq!(worker.throttle, Duration::from_millis(50));
        assert!(parse_sweep_worker_options(&strings(&[])).is_err());
        assert!(parse_sweep_worker_options(&strings(&["--bogus"])).is_err());
    }

    #[test]
    fn cache_options_parse_and_reject() {
        let list = parse_cache_options(&strings(&["list", "--cache-dir", "c"])).unwrap();
        assert_eq!(list.action, CacheAction::List);
        assert_eq!(list.cache_dir, PathBuf::from("c"));
        let prune = parse_cache_options(&strings(&["prune", "--dry-run"])).unwrap();
        assert_eq!(prune.action, CacheAction::Prune);
        assert!(prune.dry_run);
        assert!(parse_cache_options(&strings(&[])).is_err());
        assert!(parse_cache_options(&strings(&["frobnicate"])).is_err());
        // --dry-run only makes sense for prune.
        assert!(parse_cache_options(&strings(&["list", "--dry-run"])).is_err());
    }

    #[test]
    fn cache_subcommands_run_end_to_end() {
        let dir = TempDir::new("cachecli");
        let cache_dir = dir.path("cache");
        let registry = ExperimentRegistry::builtin();
        let spec = registry.get("fig09").unwrap();
        // A populated cache: one real run plus one foreign file.
        run(&strings(&[
            "run",
            "fig09",
            "--cache",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
            "--out",
            dir.path("out").to_str().unwrap(),
        ]))
        .unwrap();
        fs::write(cache_dir.join("notes.txt"), "not an artifact").unwrap();

        let cache_args =
            |action: &str| strings(&["cache", action, "--cache-dir", cache_dir.to_str().unwrap()]);
        assert!(run(&cache_args("list")).is_ok());
        // Validate fails while the foreign file is present, prune removes
        // it, then validate passes and the real entry still serves.
        assert!(run(&cache_args("validate")).is_err());
        run(&cache_args("prune")).unwrap();
        assert!(run(&cache_args("validate")).is_ok());
        assert!(ArtifactCache::new(&cache_dir).load(spec).is_some());
    }

    /// The registry's smallest real LER sweep, shrunk for a fast CLI test.
    fn tiny_sweep_spec_file(dir: &TempDir) -> PathBuf {
        let registry = ExperimentRegistry::builtin();
        let mut spec = registry
            .names()
            .iter()
            .filter_map(|name| registry.get(name))
            .find(|spec| matches!(spec.kind, ExperimentKind::LerSweep(_)))
            .expect("the registry has LER sweeps")
            .clone();
        if let ExperimentKind::LerSweep(kind) = &mut spec.kind {
            kind.configurations.truncate(2);
            kind.sample_distances = vec![2, 3];
            kind.shots = 64;
        }
        spec.name = "cli-sweep-test".to_string();
        let path = dir.path("tiny-sweep.json");
        fs::write(
            &path,
            serde_json::to_string_pretty(&spec.to_json()).unwrap(),
        )
        .unwrap();
        path
    }

    #[test]
    fn sweep_run_resume_and_status_work_through_the_cli() {
        let dir = TempDir::new("sweepcli");
        let spec_path = tiny_sweep_spec_file(&dir);
        let store = dir.path("store");
        let out = dir.path("out");
        let base_args = |extra: &[&str]| {
            let mut args = vec![
                "sweep",
                "run",
                "--spec",
                spec_path.to_str().unwrap(),
                "--store",
                store.to_str().unwrap(),
                "--quiet",
            ];
            args.extend_from_slice(extra);
            strings(&args)
        };
        run(&base_args(&[
            "--local-workers",
            "2",
            "--format",
            "json",
            "--out",
            out.to_str().unwrap(),
        ]))
        .expect("sweep run completes");
        let emitted = fs::read_to_string(out.join("cli-sweep-test.json")).unwrap();
        let value = serde_json::from_str(&emitted).unwrap();
        validate_artifact_json(&value).expect("merged artifact validates");

        // Resume on the full store recomputes nothing and re-merges the
        // same artifact bytes.
        run(&base_args(&[
            "--format",
            "json",
            "--out",
            out.to_str().unwrap(),
        ]))
        .expect("sweep resume completes");
        assert_eq!(
            fs::read_to_string(out.join("cli-sweep-test.json")).unwrap(),
            emitted,
            "resume must reproduce the artifact bit for bit"
        );

        // Status reads the store's final snapshot.
        run(&strings(&[
            "sweep",
            "status",
            "--spec",
            spec_path.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--format",
            "json",
        ]))
        .expect("sweep status reads the snapshot");

        // Non-LER specs are refused by the sweep tier.
        let err = run(&strings(&[
            "sweep",
            "run",
            "fig09",
            "--store",
            store.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("not a LER sweep"), "{err}");
        // And an action is mandatory.
        assert!(run(&strings(&["sweep"])).is_err());
        assert!(run(&strings(&["sweep", "frobnicate"])).is_err());
    }
}
