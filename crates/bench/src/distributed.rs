//! Experiment-spec glue for the sweeprun orchestration tier.
//!
//! qccd-sweeprun is domain-agnostic: it schedules, persists, and
//! distributes any [`PointJob`]. This module supplies the LER-sweep flavour
//! of that job — the grid is [`ler_sweep_points`] of the spec, point seeds
//! come from the same [`SweepEngine`] a single-process `artifacts run`
//! would use, and each point evaluates through the shared
//! [`evaluate_ler_point`] body. Because index assignment, seeds, and the
//! evaluation body are all identical to the in-process path, an artifact
//! [merged](merge_artifact) from a point store is bit-identical to
//! `run_spec` output (modulo `from_cache`/timing metadata).
//!
//! Only [`ExperimentKind::LerSweep`] and [`ExperimentKind::RareEventLer`]
//! specs are orchestrable: they are the Monte-Carlo sweeps that run for days
//! below threshold, and their outcomes are pure functions of
//! `(spec, index, seed)`. Timing sweeps measure wall-clock and would break
//! bit-identity.

use serde_json::Value;

use qccd_decoder::{CacheStats, LogicalErrorEstimate, SweepEngine};
use qccd_sweeprun::{JobDescriptor, PointJob, PointStore};

use crate::spec::{decoder_from_name, decoder_name};
use crate::sweep::{evaluate_ler_point, ler_sweep_points, rare_event_points, LerOutcome, LerPoint};
use crate::{
    ler_artifact_from_outcomes, rare_event_artifact_from_outcomes,
    registry::{ler_sweep_configurations, rare_event_configurations},
    Artifact, ExperimentKind, ExperimentSpec,
};

/// Job kind tag understood by [`job_factory`].
pub const JOB_KIND: &str = "experiment_spec";

/// A LER-sweep experiment spec as a sweeprun [`PointJob`].
pub struct SpecPointJob {
    spec: ExperimentSpec,
    points: Vec<LerPoint>,
    engine: SweepEngine,
}

impl SpecPointJob {
    /// The spec this job runs.
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// The full per-point seed table, in grid order.
    pub fn seed_table(&self) -> Vec<u64> {
        (0..self.points.len())
            .map(|index| self.engine.point_seed(index))
            .collect()
    }
}

/// Builds the sweeprun job of `spec`.
///
/// # Errors
///
/// Fails for invalid specs and for kinds other than
/// [`ExperimentKind::LerSweep`] and [`ExperimentKind::RareEventLer`] (see
/// the [module docs](self)).
pub fn spec_point_job(spec: &ExperimentSpec) -> Result<SpecPointJob, String> {
    spec.validate().map_err(|e| e.to_string())?;
    let points = match &spec.kind {
        ExperimentKind::LerSweep(kind) => ler_sweep_points(
            &ler_sweep_configurations(kind),
            &kind.sample_distances,
            kind.shots,
            kind.decoder,
            kind.estimator,
        ),
        ExperimentKind::RareEventLer(kind) => rare_event_points(
            &rare_event_configurations(kind),
            &kind.sample_distances,
            kind.shots,
            kind.biased_shots,
            kind.bias,
            kind.decoder,
            kind.estimator,
        ),
        _ => {
            return Err(format!(
                "`{}` is not a LER sweep; only LER and rare-event sweeps support point-store \
                 orchestration",
                spec.name
            ));
        }
    };
    Ok(SpecPointJob {
        spec: spec.clone(),
        points,
        engine: SweepEngine::new(spec.seed),
    })
}

impl PointJob for SpecPointJob {
    fn descriptor(&self) -> JobDescriptor {
        JobDescriptor {
            kind: JOB_KIND.to_string(),
            name: self.spec.name.clone(),
            hash: self.spec.content_hash(),
            payload: self.spec.to_json(),
        }
    }

    fn num_points(&self) -> usize {
        self.points.len()
    }

    fn point_seed(&self, index: usize) -> u64 {
        self.engine.point_seed(index)
    }

    fn eval(&self, index: usize, seed: u64) -> Result<Value, String> {
        let point = self
            .points
            .get(index)
            .ok_or_else(|| format!("point index {index} out of range"))?;
        if seed != self.engine.point_seed(index) {
            return Err(format!(
                "seed {seed:#x} for point {index} is not this spec's grid seed {:#x}",
                self.engine.point_seed(index)
            ));
        }
        // Compile failures round-trip inside the payload (they render as
        // table cells); an Err here is reserved for infrastructure faults
        // the scheduler should retry.
        Ok(outcome_to_json(&evaluate_ler_point(point, seed)))
    }
}

/// Rebuilds a [`SpecPointJob`] from a wire descriptor — the factory handed
/// to `sweeprun::run_worker`. Verifies the rebuilt spec's content hash
/// against the descriptor so coordinator/worker version skew is refused.
///
/// # Errors
///
/// Fails on unknown job kinds, unparseable spec payloads, or hash
/// mismatches.
pub fn job_factory(descriptor: &JobDescriptor) -> Result<Box<dyn PointJob>, String> {
    if descriptor.kind != JOB_KIND {
        return Err(format!("unknown job kind `{}`", descriptor.kind));
    }
    let spec = ExperimentSpec::from_json(&descriptor.payload).map_err(|e| e.to_string())?;
    if spec.content_hash() != descriptor.hash {
        return Err(format!(
            "rebuilt spec hashes to {}, descriptor says {} — coordinator/worker version skew",
            spec.content_hash(),
            descriptor.hash
        ));
    }
    Ok(Box::new(spec_point_job(&spec)?))
}

/// Merges a completed point store back into the spec's artifact.
///
/// # Errors
///
/// Fails if any point is missing (the sweep has not finished — rerun or
/// resume first), a stored payload does not parse, or the spec/store do
/// not correspond.
pub fn merge_artifact(spec: &ExperimentSpec, store: &PointStore) -> Result<Artifact, String> {
    let missing = store.missing_indices();
    if !missing.is_empty() {
        let failures = store.failures();
        let detail = if failures.is_empty() {
            String::new()
        } else {
            format!(
                " ({} terminally failed, e.g. point {}: {})",
                failures.len(),
                failures[0].0,
                failures[0].1
            )
        };
        return Err(format!(
            "{} of {} points still missing{detail}; resume the sweep before merging",
            missing.len(),
            store.num_points()
        ));
    }
    let mut outcomes = Vec::with_capacity(store.num_points());
    for index in 0..store.num_points() {
        let payload = store
            .load_point(index)?
            .ok_or_else(|| format!("point {index} vanished mid-merge"))?;
        outcomes.push(outcome_from_json(&payload)?);
    }
    match &spec.kind {
        ExperimentKind::RareEventLer(_) => {
            rare_event_artifact_from_outcomes(spec, &outcomes).map_err(|e| e.to_string())
        }
        _ => ler_artifact_from_outcomes(spec, &outcomes).map_err(|e| e.to_string()),
    }
}

// ---------------------------------------------------------------------------
// Outcome wire/store codec
// ---------------------------------------------------------------------------

/// Field order of [`CacheStats`] in the JSON codec.
const CACHE_FIELDS: [&str; 14] = [
    "hits",
    "misses",
    "uncacheable",
    "prefilled",
    "quiet_words",
    "sparse_words",
    "dense_words",
    "word_merged",
    "dense_hits",
    "dense_misses",
    "dense_evictions",
    "cluster_lanes",
    "cluster_components",
    "cluster_conflicts",
];

fn cache_to_json(cache: &CacheStats) -> Value {
    let values = [
        cache.hits,
        cache.misses,
        cache.uncacheable,
        cache.prefilled,
        cache.quiet_words,
        cache.sparse_words,
        cache.dense_words,
        cache.word_merged,
        cache.dense_hits,
        cache.dense_misses,
        cache.dense_evictions,
        cache.cluster_lanes,
        cache.cluster_components,
        cache.cluster_conflicts,
    ];
    let mut map = serde_json::Map::new();
    for (key, value) in CACHE_FIELDS.iter().zip(values) {
        map.insert((*key).to_string(), Value::from(value));
    }
    Value::Object(map)
}

fn cache_from_json(value: &Value) -> Result<CacheStats, String> {
    let field = |key: &str| -> Result<u64, String> {
        value
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("cache stats need a numeric `{key}`"))
    };
    Ok(CacheStats {
        hits: field("hits")?,
        misses: field("misses")?,
        uncacheable: field("uncacheable")?,
        prefilled: field("prefilled")?,
        quiet_words: field("quiet_words")?,
        sparse_words: field("sparse_words")?,
        dense_words: field("dense_words")?,
        word_merged: field("word_merged")?,
        dense_hits: field("dense_hits")?,
        dense_misses: field("dense_misses")?,
        dense_evictions: field("dense_evictions")?,
        cluster_lanes: field("cluster_lanes")?,
        cluster_components: field("cluster_components")?,
        cluster_conflicts: field("cluster_conflicts")?,
    })
}

/// Serializes one sweep outcome for the point store / the wire.
///
/// Integers stay `u64` and the two LER floats round-trip exactly through
/// the vendored serde_json (shortest-representation `Display`), so decoding
/// with [`outcome_from_json`] reproduces the outcome bit for bit — the
/// foundation of merge bit-identity.
pub fn outcome_to_json(outcome: &LerOutcome) -> Value {
    let result = match &outcome.result {
        Ok(estimate) => serde_json::json!({
            "ok": {
                "shots": estimate.shots as u64,
                "failures": estimate.failures as u64,
                "logical_error_rate": estimate.logical_error_rate,
                "std_error": estimate.std_error,
            }
        }),
        Err(message) => serde_json::json!({ "err": message }),
    };
    serde_json::json!({
        "label": outcome.label,
        "distance": outcome.distance as u64,
        "decoder": decoder_name(outcome.decoder),
        "seed": Value::from(outcome.seed),
        "shots_requested": outcome.shots_requested as u64,
        "result": result,
        "cache": match &outcome.cache {
            Some(cache) => cache_to_json(cache),
            None => Value::Null,
        },
    })
}

/// Parses an outcome back from its [`outcome_to_json`] encoding.
///
/// # Errors
///
/// Returns a message on missing or ill-typed fields.
pub fn outcome_from_json(value: &Value) -> Result<LerOutcome, String> {
    let text = |key: &str| -> Result<String, String> {
        value
            .get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("outcome needs a string `{key}`"))
    };
    let number = |key: &str| -> Result<u64, String> {
        value
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("outcome needs a numeric `{key}`"))
    };
    let result_value = value.get("result").ok_or("outcome needs a `result`")?;
    let result = if let Some(ok) = result_value.get("ok") {
        let field = |key: &str| -> Result<&Value, String> {
            ok.get(key)
                .ok_or_else(|| format!("estimate needs a `{key}`"))
        };
        Ok(LogicalErrorEstimate {
            shots: field("shots")?
                .as_u64()
                .ok_or("estimate `shots` must be an integer")? as usize,
            failures: field("failures")?
                .as_u64()
                .ok_or("estimate `failures` must be an integer")? as usize,
            logical_error_rate: field("logical_error_rate")?
                .as_f64()
                .ok_or("estimate `logical_error_rate` must be a number")?,
            std_error: field("std_error")?
                .as_f64()
                .ok_or("estimate `std_error` must be a number")?,
        })
    } else if let Some(err) = result_value.get("err").and_then(Value::as_str) {
        Err(err.to_string())
    } else {
        return Err("outcome `result` needs `ok` or `err`".to_string());
    };
    let cache = match value.get("cache") {
        None => return Err("outcome needs a `cache` (may be null)".to_string()),
        Some(Value::Null) => None,
        Some(cache) => Some(cache_from_json(cache)?),
    };
    Ok(LerOutcome {
        label: text("label")?,
        distance: number("distance")? as usize,
        decoder: decoder_from_name(&text("decoder")?).map_err(|e| e.to_string())?,
        seed: number("seed")?,
        shots_requested: number("shots_requested")? as usize,
        result,
        cache,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ExperimentRegistry;
    use qccd_decoder::DecoderKind;

    /// The registry's smallest real LER sweep for tests.
    fn tiny_spec() -> ExperimentSpec {
        let registry = ExperimentRegistry::builtin();
        let mut spec = registry
            .names()
            .iter()
            .filter_map(|name| registry.get(name))
            .find(|spec| matches!(spec.kind, ExperimentKind::LerSweep(_)))
            .expect("the registry has LER sweeps")
            .clone();
        // Shrink the grid so the test evaluates quickly.
        if let ExperimentKind::LerSweep(kind) = &mut spec.kind {
            kind.configurations.truncate(2);
            kind.sample_distances = vec![2, 3];
            kind.shots = 64;
        }
        spec.name = "tiny-sweep-test".to_string();
        spec
    }

    /// The registry's rare-event comparison, shrunk to a fast grid.
    fn tiny_rare_event_spec() -> ExperimentSpec {
        let registry = ExperimentRegistry::builtin();
        let mut spec = registry
            .get("rare_event_ler")
            .expect("the registry has the rare-event comparison")
            .clone();
        if let ExperimentKind::RareEventLer(kind) = &mut spec.kind {
            kind.configurations = vec![
                crate::spec::ArchPoint::grid(2, 10.0).with_label("10X c2"),
                crate::spec::ArchPoint::grid(2, 1000.0).with_label("1000X c2"),
            ];
            kind.sample_distances = vec![2, 3];
            kind.shots = 128;
            kind.biased_shots = 64;
            kind.bias = 8.0;
        } else {
            panic!("rare_event_ler changed kind");
        }
        spec.name = "tiny-rare-event-test".to_string();
        spec
    }

    #[test]
    fn rare_event_merge_is_bit_identical_to_run_spec() {
        let spec = tiny_rare_event_spec();
        let reference = crate::run_spec(&spec).unwrap();

        let base = std::env::temp_dir().join(format!(
            "qccd-distributed-rare-event-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();

        let job = spec_point_job(&spec).unwrap();
        // 2 configurations x 2 distances x (plain + biased).
        assert_eq!(job.num_points(), 8);
        let (store, _) = PointStore::open(&base, &job.descriptor(), job.seed_table()).unwrap();
        let summary = qccd_sweeprun::run_job(
            &job,
            &store,
            qccd_sweeprun::CoordinatorConfig {
                local_workers: 2,
                ..qccd_sweeprun::CoordinatorConfig::default()
            },
        )
        .unwrap();
        assert_eq!(summary.computed, 8);

        let merged = merge_artifact(&spec, &store).unwrap();
        assert_eq!(merged.title, reference.title);
        assert_eq!(merged.headers, reference.headers);
        assert_eq!(merged.rows, reference.rows);
        assert_eq!(merged.notes, reference.notes);
        assert_eq!(merged.data.to_string(), reference.data.to_string());
        assert_eq!(merged.metadata.spec_hash, reference.metadata.spec_hash);

        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn outcome_codec_round_trips_bit_exactly() {
        let ok = LerOutcome {
            label: "grid c4".to_string(),
            distance: 3,
            decoder: DecoderKind::GreedyMatching,
            seed: 0xdead_beef_cafe_f00d,
            shots_requested: 4096,
            result: Ok(LogicalErrorEstimate {
                shots: 4096,
                failures: 17,
                logical_error_rate: 17.0 / 4096.0,
                std_error: 0.001_234_567_890_123_4,
            }),
            cache: Some(CacheStats {
                hits: 1,
                misses: 2,
                uncacheable: 3,
                prefilled: 4,
                quiet_words: 5,
                sparse_words: 6,
                dense_words: 7,
                word_merged: 8,
                dense_hits: 9,
                dense_misses: 10,
                dense_evictions: 11,
                cluster_lanes: 12,
                cluster_components: 13,
                cluster_conflicts: u64::MAX,
            }),
        };
        let err = LerOutcome {
            label: "hex c8".to_string(),
            distance: 9,
            decoder: DecoderKind::UnionFind,
            seed: 1,
            shots_requested: 10,
            result: Err("compile failed: capacity".to_string()),
            cache: None,
        };
        for outcome in [&ok, &err] {
            // Round-trip through a serialized string, like the store does.
            let json = outcome_to_json(outcome);
            let reparsed = serde_json::from_str(&json.to_string()).unwrap();
            let decoded = outcome_from_json(&reparsed).unwrap();
            assert_eq!(decoded.label, outcome.label);
            assert_eq!(decoded.distance, outcome.distance);
            assert_eq!(decoded.decoder, outcome.decoder);
            assert_eq!(decoded.seed, outcome.seed);
            assert_eq!(decoded.shots_requested, outcome.shots_requested);
            match (&decoded.result, &outcome.result) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.shots, b.shots);
                    assert_eq!(a.failures, b.failures);
                    assert_eq!(
                        a.logical_error_rate.to_bits(),
                        b.logical_error_rate.to_bits()
                    );
                    assert_eq!(a.std_error.to_bits(), b.std_error.to_bits());
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                other => panic!("result variant changed: {other:?}"),
            }
            assert_eq!(decoded.cache, outcome.cache);
        }
    }

    #[test]
    fn job_round_trips_through_the_factory() {
        let spec = tiny_spec();
        let job = spec_point_job(&spec).unwrap();
        assert_eq!(job.num_points(), 4);
        let descriptor = job.descriptor();
        assert_eq!(descriptor.hash, spec.content_hash());
        let rebuilt = job_factory(&descriptor).unwrap();
        assert_eq!(rebuilt.num_points(), job.num_points());
        for index in 0..job.num_points() {
            assert_eq!(rebuilt.point_seed(index), job.point_seed(index));
        }

        // Skewed payloads are refused.
        let mut skewed = descriptor.clone();
        skewed.hash = "0000000000000000".to_string();
        let err = job_factory(&skewed).err().expect("skew must be refused");
        assert!(err.contains("version skew"), "unexpected error: {err}");
    }

    #[test]
    fn non_ler_specs_are_rejected() {
        let registry = ExperimentRegistry::builtin();
        let other = registry
            .names()
            .iter()
            .filter_map(|name| registry.get(name))
            .find(|spec| !matches!(spec.kind, ExperimentKind::LerSweep(_)))
            .expect("the registry has non-LER specs");
        let err = spec_point_job(other)
            .err()
            .expect("non-LER specs must be refused");
        assert!(err.contains("not a LER sweep"), "unexpected error: {err}");
    }

    #[test]
    fn distributed_merge_is_bit_identical_to_run_spec() {
        let spec = tiny_spec();
        let reference = crate::run_spec(&spec).unwrap();

        let base =
            std::env::temp_dir().join(format!("qccd-distributed-merge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();

        let job = spec_point_job(&spec).unwrap();
        let (store, _) = PointStore::open(&base, &job.descriptor(), job.seed_table()).unwrap();
        let summary = qccd_sweeprun::run_job(
            &job,
            &store,
            qccd_sweeprun::CoordinatorConfig {
                local_workers: 2,
                ..qccd_sweeprun::CoordinatorConfig::default()
            },
        )
        .unwrap();
        assert_eq!(summary.computed, 4);

        let merged = merge_artifact(&spec, &store).unwrap();
        // Everything but the cache marker must match bit for bit — the
        // acceptance criterion of the orchestration tier.
        assert_eq!(merged.title, reference.title);
        assert_eq!(merged.headers, reference.headers);
        assert_eq!(merged.rows, reference.rows);
        assert_eq!(merged.notes, reference.notes);
        assert_eq!(merged.data.to_string(), reference.data.to_string());
        assert_eq!(merged.metadata.spec_hash, reference.metadata.spec_hash);

        // Resume path: delete a point, recompute only it, merge again.
        let victim = 2usize;
        std::fs::remove_file(store.root().join("points").join(format!(
            "point-{victim:06}-{:016x}.json",
            store.seed(victim)
        )))
        .unwrap();
        let summary =
            qccd_sweeprun::run_job(&job, &store, qccd_sweeprun::CoordinatorConfig::default())
                .unwrap();
        assert_eq!((summary.computed, summary.resumed), (1, 3));
        let resumed = merge_artifact(&spec, &store).unwrap();
        assert_eq!(resumed.rows, reference.rows);
        assert_eq!(resumed.data.to_string(), reference.data.to_string());

        let _ = std::fs::remove_dir_all(&base);
    }
}
