//! # qccd-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§7).
//!
//! Experiments are *data*, not binaries: a declarative
//! [`ExperimentSpec`] (workload × architecture grid × distances × noise
//! scaling × decoder × estimator config × outputs) describes each artefact,
//! the [`registry`] registers all thirteen paper artefacts as named specs,
//! and the single `artifacts` binary resolves, runs, caches and emits them:
//!
//! ```text
//! cargo run -p qccd-bench --release --bin artifacts -- list
//! cargo run -p qccd-bench --release --bin artifacts -- run fig09 --format json --out out/
//! cargo run -p qccd-bench --release --bin artifacts -- run --all --cache
//! ```
//!
//! The legacy per-figure binaries (`--bin fig09`, `--bin table2`, …) remain
//! as thin shims over [`registry::run_legacy`] for artifact-script
//! compatibility; they run the exact same code path as `artifacts run`, so
//! their numbers are bit-identical by construction. Tables, timing-series
//! keys and the table2/table3/ext_* JSON payloads match the legacy output;
//! the LER artefacts use the unified entry schema (`sampled` points plus a
//! `lambda` object with confidence intervals).
//!
//! Shared plumbing lives here: architecture helpers, aligned-table
//! rendering, JSON artefact dumping, and the [`sweep`] module that shards
//! whole `(architecture, distance, decoder)` points across a deterministic
//! worker pool.

#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod cli;
pub mod distributed;
pub mod registry;
pub mod spec;
pub mod sweep;

use std::fs;
use std::path::PathBuf;

use qccd_core::ArchitectureConfig;
use qccd_decoder::{LambdaFit, SweepEngine};
use qccd_hardware::{TopologyKind, WiringMethod};

pub use artifact::{validate_artifact_json, Artifact, ArtifactMetadata};
pub use cache::{ArtifactCache, CacheEntry, EntryStatus};
pub use distributed::{job_factory, merge_artifact, spec_point_job, SpecPointJob};
pub use registry::{
    ler_artifact_from_outcomes, rare_event_artifact_from_outcomes, run_spec, ExperimentRegistry,
    RunError,
};
pub use spec::{
    ArchPoint, CodeSpec, CompileCase, ExperimentKind, ExperimentSpec, LerOutput, LerSweepSpec,
    RareEventLerSpec, SpecError, TimingMetric, TimingSweepSpec,
};
pub use sweep::{
    evaluate_ler_point, ler_curves, ler_curves_from_outcomes, ler_curves_with, ler_sweep_points,
    rare_event_points, run_ler_sweep, LerCurve, LerOutcome, LerPoint, DEFAULT_SWEEP_SEED,
};

/// Renders an aligned text table (the pretty emitter of every artifact).
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = format!("\n=== {title} ===\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String], out: &mut String| {
        let mut text = String::new();
        for (i, cell) in cells.iter().enumerate() {
            text.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        out.push_str(text.trim_end());
        out.push('\n');
    };
    line(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &mut out,
    );
    line(
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
        &mut out,
    );
    for row in rows {
        line(row, &mut out);
    }
    out
}

/// Prints an aligned text table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", format_table(title, headers, rows));
}

/// Writes a JSON artefact under `target/experiments/<name>.json`.
pub fn dump_json(name: &str, value: &serde_json::Value) {
    let mut path = PathBuf::from("target/experiments");
    if fs::create_dir_all(&path).is_ok() {
        path.push(format!("{name}.json"));
        if let Ok(text) = serde_json::to_string_pretty(value) {
            let _ = fs::write(&path, text);
            println!("(wrote {})", path.display());
        }
    }
}

/// Formats a float compactly, using scientific notation for small values.
pub fn fmt_f64(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() < 1e-3 || value.abs() >= 1e6 {
        format!("{value:.2e}")
    } else {
        format!("{value:.1}")
    }
}

/// Builds the standard-wiring grid architecture at a given capacity and gate
/// improvement.
pub fn grid_arch(capacity: usize, improvement: f64) -> ArchitectureConfig {
    ArchitectureConfig::new(
        TopologyKind::Grid,
        capacity,
        WiringMethod::Standard,
        improvement,
    )
}

/// Builds an architecture for any topology/wiring combination.
pub fn arch(
    topology: TopologyKind,
    capacity: usize,
    wiring: WiringMethod,
    improvement: f64,
) -> ArchitectureConfig {
    ArchitectureConfig::new(topology, capacity, wiring, improvement)
}

/// Samples the logical error rate at the given distances and fits the
/// exponential suppression law; returns the points and the fit.
///
/// Built on the sharded [`sweep`] engine: the distances run in parallel
/// with deterministic per-point seeds, and the fit is weighted by each
/// point's Monte-Carlo standard error.
pub fn ler_curve(
    architecture: &ArchitectureConfig,
    distances: &[usize],
    shots: usize,
) -> (Vec<(usize, f64)>, Option<LambdaFit>) {
    let engine = SweepEngine::new(DEFAULT_SWEEP_SEED);
    let configurations = vec![(architecture.label(), architecture.clone())];
    let curve = ler_curves(&engine, &configurations, distances, shots)
        .pop()
        .expect("one configuration yields one curve");
    (curve.rate_points(), curve.fit)
}

/// Monte-Carlo shot count used by the figure generators. Kept moderate so
/// every figure regenerates in minutes; increase for tighter error bars.
pub const DEFAULT_SHOTS: usize = 2_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.5), "1234.5");
        assert!(fmt_f64(1.2e-7).contains('e'));
    }

    #[test]
    fn arch_helpers() {
        assert_eq!(grid_arch(2, 5.0).capacity(), 2);
        let a = arch(TopologyKind::Switch, 3, WiringMethod::Wise, 1.0);
        assert_eq!(a.wiring, WiringMethod::Wise);
    }
}
