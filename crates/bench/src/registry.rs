//! The experiment registry: every paper artefact as a named declarative
//! spec, plus the executor that lowers specs onto the sweep engine.
//!
//! [`ExperimentRegistry::builtin`] registers all thirteen paper artefacts
//! (fig08a/fig08b/fig09/fig10/fig11/fig12/fig13a/fig13b/table2/table3/
//! ext_surgery/ext_decoder_comparison/ext_ablation_clustering) plus the
//! decoder_dense_tail profile;
//! [`ExperimentRegistry::run`] resolves a name and executes its spec on the
//! [`SweepEngine`], producing an [`Artifact`]. The legacy per-figure
//! binaries are thin shims over [`run_legacy`], so `artifacts run <name>`
//! and `cargo run --bin <name>` are the *same code path* — numbers are
//! bit-identical by construction, and the golden tests pin them.

use std::collections::BTreeMap;

use qccd_baselines::{MuzzleShuttleCompiler, QccdSimCompiler};
use qccd_circuit::Instruction;
use qccd_core::{
    cluster_qubits_with_strategy, cut_weight, theoretical, ArchitectureConfig, ClusteringStrategy,
    CompileError, CompiledProgram, Compiler, Toolflow,
};
use qccd_decoder::{
    estimate_logical_error_rate, DecodeScratch, Decoder, DecoderKind, DecodingGraph, LambdaFit,
    MemoConfig, SweepEngine, UnionFindDecoder, DEFAULT_MEMO_MAX_DEFECTS,
};
use qccd_hardware::{estimate_resources, OperationTimes, TopologyKind, WiringMethod};
use qccd_qec::{memory_experiment, rotated_surface_code, surgery_workload, MemoryBasis, MergeKind};
use qccd_sim::{sample_detector_chunks, DetectorErrorModel, NoiseChannel, NoisyCircuit};
use serde_json::Value;

use crate::artifact::{Artifact, ArtifactMetadata};
use crate::spec::{
    ArchPoint, ClusteringAblationSpec, CodeSpec, CompileCase, CompilerBoundsSpec,
    DecoderComparisonSpec, DenseTailSpec, ExperimentKind, ExperimentSpec, LerOutput, LerSweepSpec,
    RareEventLerSpec, SpecError, SurgerySpec, TimingMetric, TimingSweepSpec,
};
use crate::sweep::{rare_event_points, run_ler_sweep, LerCurve, LerOutcome, DEFAULT_SWEEP_SEED};
use crate::{dump_json, fmt_f64, ler_curves_with, print_table};

/// Errors surfaced when resolving or executing a registered experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// No spec with that name is registered.
    UnknownName(String),
    /// The spec failed validation.
    Invalid(SpecError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::UnknownName(name) => {
                write!(f, "unknown experiment `{name}` (try `artifacts list`)")
            }
            RunError::Invalid(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Name → spec map of every runnable experiment.
#[derive(Debug, Clone, Default)]
pub struct ExperimentRegistry {
    specs: BTreeMap<String, ExperimentSpec>,
}

impl ExperimentRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        ExperimentRegistry::default()
    }

    /// The built-in registry: every paper table/figure plus the extension
    /// experiments, under the names the legacy binaries carried.
    pub fn builtin() -> Self {
        let mut registry = ExperimentRegistry::empty();
        for spec in builtin_specs() {
            registry
                .register(spec)
                .expect("built-in specs are valid and uniquely named");
        }
        registry
    }

    /// Registers a spec under its own name.
    ///
    /// # Errors
    ///
    /// Rejects invalid specs and duplicate names.
    pub fn register(&mut self, spec: ExperimentSpec) -> Result<(), SpecError> {
        spec.validate()?;
        if self.specs.contains_key(&spec.name) {
            return Err(SpecError(format!("duplicate spec name `{}`", spec.name)));
        }
        self.specs.insert(spec.name.clone(), spec);
        Ok(())
    }

    /// Resolves a spec by name.
    pub fn get(&self, name: &str) -> Option<&ExperimentSpec> {
        self.specs.get(name)
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.specs.keys().map(String::as_str).collect()
    }

    /// The registered specs, sorted by name.
    pub fn specs(&self) -> impl Iterator<Item = &ExperimentSpec> {
        self.specs.values()
    }

    /// Number of registered specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Resolves `name` and executes its spec.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::UnknownName`] for unregistered names and
    /// [`RunError::Invalid`] for specs that fail validation.
    pub fn run(&self, name: &str) -> Result<Artifact, RunError> {
        let spec = self
            .get(name)
            .ok_or_else(|| RunError::UnknownName(name.to_string()))?;
        run_spec(spec)
    }
}

/// Executes one experiment spec end to end and returns its artifact.
///
/// # Errors
///
/// Returns [`RunError::Invalid`] when the spec fails validation. Compile
/// failures of individual points do not fail the run — they are rendered
/// into the affected cells, exactly as the legacy binaries did.
pub fn run_spec(spec: &ExperimentSpec) -> Result<Artifact, RunError> {
    spec.validate().map_err(RunError::Invalid)?;
    let (headers, rows, notes, data) = match &spec.kind {
        ExperimentKind::LerSweep(kind) => run_ler_sweep_spec(kind, spec.seed),
        ExperimentKind::RareEventLer(kind) => run_rare_event_ler(kind, spec.seed),
        ExperimentKind::TimingSweep(kind) => run_timing_sweep(kind, spec.seed),
        ExperimentKind::CompilerBounds(kind) => run_compiler_bounds(kind, spec.seed),
        ExperimentKind::BaselineComparison(kind) => run_baseline_comparison(kind),
        ExperimentKind::Surgery(kind) => run_surgery(kind, spec.seed),
        ExperimentKind::DecoderComparison(kind) => run_decoder_comparison(kind, spec.seed),
        ExperimentKind::ClusteringAblation(kind) => run_clustering_ablation(kind, spec.seed),
        ExperimentKind::DenseTail(kind) => run_dense_tail(kind, spec.seed),
    };
    Ok(Artifact {
        title: spec.title.clone(),
        headers,
        rows,
        notes,
        data,
        metadata: ArtifactMetadata::for_spec(spec),
    })
}

/// Executes a registered experiment and prints it exactly like the legacy
/// binary did: the aligned table, any reading notes, then the JSON artefact
/// under `target/experiments/<name>.json`. The thirteen legacy binaries are
/// thin shims over this function.
pub fn run_legacy(name: &str) {
    match ExperimentRegistry::builtin().run(name) {
        Ok(artifact) => {
            let headers: Vec<&str> = artifact.headers.iter().map(String::as_str).collect();
            print_table(&artifact.title, &headers, &artifact.rows);
            for note in &artifact.notes {
                println!("\n{note}");
            }
            dump_json(name, &artifact.data);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

type RunnerOutput = (Vec<String>, Vec<Vec<String>>, Vec<String>, Value);

// ---------------------------------------------------------------------------
// LER sweeps (Figures 8b, 10, 11, 12, 13a, 13b)
// ---------------------------------------------------------------------------

fn lambda_json(fit: &Option<LambdaFit>) -> Value {
    match fit {
        Some(fit) => {
            let (lo, hi) = fit.lambda_confidence_interval(1.96);
            serde_json::json!({
                "value": fit.lambda(),
                "std_error": fit.lambda_std_error(),
                "ci95_low": lo,
                "ci95_high": hi,
                "dropped_points": fit.dropped_points as u64,
            })
        }
        None => Value::Null,
    }
}

fn lambda_cell(fit: &Option<LambdaFit>) -> String {
    match fit {
        Some(fit) => {
            let (lo, hi) = fit.lambda_confidence_interval(1.96);
            let mut cell = format!(
                "{} [{}, {}]",
                fmt_f64(fit.lambda()),
                fmt_f64(lo),
                fmt_f64(hi)
            );
            if fit.dropped_points > 0 {
                cell.push_str(&format!(" ({} pt dropped)", fit.dropped_points));
            }
            cell
        }
        None => "-".to_string(),
    }
}

/// `z` of the 95% confidence bands propagated into required-distance /
/// electrode / data-rate columns.
const CI_Z: f64 = 1.96;

/// The CI-banded required distance for `target`: the point estimate, the
/// rendered `d=… [lo, hi]` cell fragment, and the matching JSON object. The
/// band evaluates the fit at the Λ slope confidence edges
/// ([`LambdaFit::distance_range_for_target`]); an above-threshold shallow
/// edge renders as an unbounded `inf` upper edge.
fn distance_with_ci(fit: &LambdaFit, target: f64) -> Option<(usize, String, Value)> {
    let d = fit.distance_for_target(target)?;
    let (lo, hi) = fit
        .distance_range_for_target(target, CI_Z)
        .expect("point-estimate distance exists");
    let cell = match hi {
        Some(hi) if (lo, hi) == (d, d) => format!("d={d}"),
        Some(hi) => format!("d={d} [{lo}, {hi}]"),
        None => format!("d={d} [{lo}, inf)"),
    };
    let json = serde_json::json!({
        "distance": d as u64,
        "ci95_low": lo as u64,
        "ci95_high": match hi {
            Some(hi) => Value::from(hi as u64),
            None => Value::Null,
        },
    });
    Some((d, cell, json))
}

/// The distance required to reach `target` under `fit`, together with the
/// resource estimate of the device sized for that distance — the common core
/// of the `Electrodes` and `DataRate` outputs. The returned cell fragment
/// and JSON carry the 95% CI distance band of [`distance_with_ci`].
fn resources_at_target(
    fit: &Option<LambdaFit>,
    target: f64,
    configuration: &ArchitectureConfig,
) -> Option<(String, Value, qccd_hardware::ResourceEstimate)> {
    let (required_d, cell, json) = distance_with_ci(fit.as_ref()?, target)?;
    let layout = rotated_surface_code(required_d.max(2));
    let device = configuration.device_for(layout.num_qubits());
    Some((
        cell,
        json,
        estimate_resources(&device, configuration.wiring),
    ))
}

fn run_ler_sweep_spec(kind: &LerSweepSpec, seed: u64) -> RunnerOutput {
    let configurations = ler_sweep_configurations(kind);
    let engine = SweepEngine::new(seed);
    let curves = ler_curves_with(
        &engine,
        &configurations,
        &kind.sample_distances,
        kind.shots,
        kind.decoder,
        kind.estimator,
    );
    ler_sweep_output(kind, &configurations, &curves)
}

/// The built `(label, architecture)` pairs of a LER-sweep spec, in grid
/// order.
pub(crate) fn ler_sweep_configurations(kind: &LerSweepSpec) -> Vec<(String, ArchitectureConfig)> {
    kind.configurations
        .iter()
        .map(|point| (point.display_label(), point.build()))
        .collect()
}

/// Assembles a LER-sweep artifact of `spec` from per-point outcomes that
/// were computed elsewhere — the merge half of the sweeprun orchestration
/// tier. `outcomes` must be the full grid in [`crate::ler_sweep_points`]
/// order.
///
/// [`run_spec`] routes its own in-process results through the exact same
/// [`ler_sweep_output`] assembly, so an artifact merged from a distributed
/// or resumed point store is bit-identical to a single-process run (modulo
/// [`ArtifactMetadata::from_cache`]).
///
/// # Errors
///
/// Returns [`RunError::Invalid`] when the spec fails validation, is not a
/// LER sweep, or the outcome count does not match the spec's grid.
pub fn ler_artifact_from_outcomes(
    spec: &ExperimentSpec,
    outcomes: &[crate::LerOutcome],
) -> Result<Artifact, RunError> {
    spec.validate().map_err(RunError::Invalid)?;
    let ExperimentKind::LerSweep(kind) = &spec.kind else {
        return Err(RunError::Invalid(crate::spec::SpecError(format!(
            "`{}` is not a LER sweep; only LER sweeps support point-store orchestration",
            spec.name
        ))));
    };
    let configurations = ler_sweep_configurations(kind);
    let expected = configurations.len() * kind.sample_distances.len();
    if outcomes.len() != expected {
        return Err(RunError::Invalid(crate::spec::SpecError(format!(
            "`{}` expects {expected} outcomes, got {}",
            spec.name,
            outcomes.len()
        ))));
    }
    let curves = crate::ler_curves_from_outcomes(&configurations, &kind.sample_distances, outcomes);
    let (headers, rows, notes, data) = ler_sweep_output(kind, &configurations, &curves);
    Ok(Artifact {
        title: spec.title.clone(),
        headers,
        rows,
        notes,
        data,
        metadata: ArtifactMetadata::for_spec(spec),
    })
}

fn ler_sweep_output(
    kind: &LerSweepSpec,
    configurations: &[(String, ArchitectureConfig)],
    curves: &[LerCurve],
) -> RunnerOutput {
    let mut headers = vec!["Configuration".to_string()];
    for output in &kind.outputs {
        match output {
            LerOutput::SampledRates => {
                headers.extend(kind.sample_distances.iter().map(|d| format!("d={d} LER")));
            }
            LerOutput::Lambda => headers.push("Lambda [95% CI]".to_string()),
            LerOutput::Projection { distances, target } => {
                headers.extend(distances.iter().map(|d| format!("d={d} (proj)")));
                headers.push(format!("d for {target:e}"));
            }
            LerOutput::Electrodes { targets } => {
                headers.extend(targets.iter().map(|t| format!("LER {t:e}")));
            }
            LerOutput::DataRate { targets, .. } | LerOutput::ShotTime { targets } => {
                headers.extend(targets.iter().map(|t| format!("Target {t:e}")));
            }
        }
    }

    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for (curve, ((label, configuration), point)) in curves
        .iter()
        .zip(configurations.iter().zip(&kind.configurations))
    {
        let mut row = vec![label.clone()];
        let mut entry = serde_json::json!({
            "label": label,
            "topology": format!("{}", point.topology),
            "capacity": point.capacity,
            "wiring": format!("{}", point.wiring),
            "gate_improvement": point.gate_improvement,
            "sampled": curve
                .outcomes
                .iter()
                .filter_map(|outcome| {
                    outcome.result.as_ref().ok().map(|est| {
                        serde_json::json!({
                            "d": outcome.distance,
                            "ler": est.logical_error_rate,
                            "std_error": est.std_error,
                            "upper_bound": est.is_upper_bound(),
                        })
                    })
                })
                .collect::<Vec<_>>(),
            "lambda": lambda_json(&curve.fit),
        });

        for output in &kind.outputs {
            match output {
                LerOutput::SampledRates => {
                    for &d in &kind.sample_distances {
                        row.push(sampled_rate_cell(curve, d));
                    }
                }
                LerOutput::Lambda => row.push(lambda_cell(&curve.fit)),
                LerOutput::Projection { distances, target } => match curve.fit {
                    Some(fit) if fit.below_threshold() => {
                        let mut projected = Vec::new();
                        for &d in distances {
                            let p = fit.project(d);
                            row.push(fmt_f64(p));
                            projected.push(serde_json::json!({"d": d, "ler": p}));
                        }
                        entry["projection"] = Value::Array(projected);
                        match distance_with_ci(&fit, *target) {
                            Some((d, cell, ci_json)) => {
                                row.push(cell);
                                entry["required_distance"] = Value::from(d as u64);
                                entry["required_distance_ci"] = ci_json;
                            }
                            None => {
                                row.push("-".to_string());
                                entry["required_distance"] = Value::Null;
                                entry["required_distance_ci"] = Value::Null;
                            }
                        }
                    }
                    _ => {
                        row.extend(vec!["above-threshold".to_string(); distances.len()]);
                        row.push("-".to_string());
                        entry["projection"] = Value::Array(Vec::new());
                        entry["required_distance"] = Value::Null;
                        entry["required_distance_ci"] = Value::Null;
                    }
                },
                LerOutput::Electrodes { targets } => {
                    for &target in targets {
                        match resources_at_target(&curve.fit, target, configuration) {
                            Some((cell, mut ci_json, resources)) => {
                                ci_json["electrodes"] =
                                    serde_json::json!(resources.total_electrodes);
                                row.push(format!("{} ({cell})", resources.total_electrodes));
                                entry[format!("target_{target:e}")] = ci_json;
                            }
                            None => row.push("above threshold".to_string()),
                        }
                    }
                }
                LerOutput::DataRate {
                    targets,
                    include_power,
                } => {
                    for &target in targets {
                        match resources_at_target(&curve.fit, target, configuration) {
                            Some((ci_cell, mut ci_json, resources)) => {
                                let mut cell =
                                    format!("{} Gbit/s", fmt_f64(resources.data_rate_gbit_s));
                                ci_json["data_rate_gbit_s"] =
                                    serde_json::json!(resources.data_rate_gbit_s);
                                if *include_power {
                                    cell.push_str(&format!(", {} W", fmt_f64(resources.power_w)));
                                    ci_json["power_w"] = Value::from(resources.power_w);
                                }
                                row.push(format!("{cell} ({ci_cell})"));
                                entry[format!("target_{target:e}")] = ci_json;
                            }
                            None => row.push("above threshold".to_string()),
                        }
                    }
                }
                LerOutput::ShotTime { targets } => {
                    let toolflow = Toolflow::new(configuration.clone());
                    for &target in targets {
                        match curve.fit.as_ref().and_then(|f| distance_with_ci(f, target)) {
                            Some((required_d, ci_cell, mut ci_json)) => {
                                // Shot time at the required distance: measure
                                // directly if the compile succeeds; a shot is
                                // d rounds.
                                let shot = toolflow
                                    .evaluate(required_d.clamp(2, 13), false)
                                    .map(|m| m.qec_round_time_us * required_d as f64)
                                    .unwrap_or(f64::NAN);
                                row.push(format!("{} us ({ci_cell})", fmt_f64(shot)));
                                ci_json["shot_time_us"] = Value::from(shot);
                                entry[format!("target_{target:e}")] = ci_json;
                            }
                            None => row.push("above threshold".to_string()),
                        }
                    }
                }
            }
        }
        rows.push(row);
        entries.push(entry);
    }
    (headers, rows, Vec::new(), Value::Array(entries))
}

/// The table cell of one sampled `(configuration, distance)` rate: the point
/// estimate, or — when the estimate saw zero failures — its 95% upper bound
/// rendered as `< bound`, so points below the sweep's resolution are never
/// reported as exactly zero.
fn sampled_rate_cell(curve: &LerCurve, d: usize) -> String {
    match curve.outcomes.iter().find(|o| o.distance == d) {
        Some(outcome) => match &outcome.result {
            Ok(est) => match est.upper_bound_95() {
                Some(bound) => upper_bound_cell(bound),
                None => fmt_f64(est.logical_error_rate),
            },
            Err(_) => "NaN".into(),
        },
        None => "NaN".into(),
    }
}

/// Renders a zero-failure 95% upper bound as `< bound`. Always scientific
/// notation: rule-of-three bounds land anywhere in (0, 1), and the compact
/// `fmt_f64` would round e.g. 0.023 down to a misleading `0.0`.
fn upper_bound_cell(bound: f64) -> String {
    format!("< {bound:.1e}")
}

// ---------------------------------------------------------------------------
// Rare-event LER comparison (importance-sampling validation)
// ---------------------------------------------------------------------------

/// The built `(label, architecture)` pairs of a rare-event comparison spec,
/// in grid order.
pub(crate) fn rare_event_configurations(
    kind: &RareEventLerSpec,
) -> Vec<(String, ArchitectureConfig)> {
    kind.configurations
        .iter()
        .map(|point| (point.display_label(), point.build()))
        .collect()
}

/// JSON encoding of one estimate (plain or biased) in the rare-event
/// artifact.
fn rare_event_estimate_json(outcome: &LerOutcome) -> Value {
    match &outcome.result {
        Ok(est) => serde_json::json!({
            "seed": Value::from(outcome.seed),
            "shots": est.shots as u64,
            "failures": est.failures as u64,
            "ler": est.logical_error_rate,
            "std_error": est.std_error,
            "upper_bound": est.is_upper_bound(),
        }),
        Err(e) => serde_json::json!({ "error": e.clone() }),
    }
}

/// Renders one rare-event estimate cell: `ler ± σ`, `< bound` for
/// zero-failure estimates, or the compile-error marker.
fn rare_event_estimate_cell(outcome: &LerOutcome) -> String {
    match &outcome.result {
        Ok(est) => match est.upper_bound_95() {
            Some(bound) => upper_bound_cell(bound),
            None => format!(
                "{} +/- {}",
                fmt_f64(est.logical_error_rate),
                fmt_f64(est.std_error)
            ),
        },
        Err(_) => "compile error".to_string(),
    }
}

/// The agreement cell and JSON of a plain/biased estimate pair: the gap in
/// combined standard deviations when both estimates resolved, or the bound
/// check when one of them saw zero failures.
fn rare_event_agreement(
    plain: &qccd_decoder::LogicalErrorEstimate,
    biased: &qccd_decoder::LogicalErrorEstimate,
) -> (String, Value) {
    match (plain.is_upper_bound(), biased.is_upper_bound()) {
        (false, false) => {
            let gap = (plain.logical_error_rate - biased.logical_error_rate).abs();
            let sigma = gap / plain.std_error.hypot(biased.std_error);
            (
                format!("{} sigma", fmt_f64(sigma)),
                serde_json::json!({ "sigma": sigma }),
            )
        }
        (true, false) => {
            // Plain MC never saw a failure: the resolved importance-sampled
            // estimate must sit below the plain 95% upper bound.
            let below = biased.logical_error_rate <= plain.std_error;
            (
                if below { "below bound" } else { "ABOVE BOUND" }.to_string(),
                serde_json::json!({ "below_bound": below }),
            )
        }
        (false, true) => {
            let below = plain.logical_error_rate <= biased.std_error;
            (
                if below { "below bound" } else { "ABOVE BOUND" }.to_string(),
                serde_json::json!({ "below_bound": below }),
            )
        }
        (true, true) => ("unresolved".to_string(), Value::Null),
    }
}

/// The shot-efficiency factor of the importance-sampled estimate: how many
/// times more decoded shots the plain-MC estimator would need to reach the
/// importance-sampled relative error — `(N_plain·r_plain²)/(N_is·r_is²)`
/// with `r = σ/p̂` (shots to reach relative error ρ scale as `N·(r/ρ)²`).
/// `None` when either side has no resolved relative error (zero failures).
fn rare_event_efficiency(
    plain: &qccd_decoder::LogicalErrorEstimate,
    biased: &qccd_decoder::LogicalErrorEstimate,
) -> Option<f64> {
    if plain.is_upper_bound() || biased.is_upper_bound() || plain.shots == 0 || biased.shots == 0 {
        return None;
    }
    let rp = plain.std_error / plain.logical_error_rate;
    let rb = biased.std_error / biased.logical_error_rate;
    Some((plain.shots as f64 * rp * rp) / (biased.shots as f64 * rb * rb))
}

fn run_rare_event_ler(kind: &RareEventLerSpec, seed: u64) -> RunnerOutput {
    let configurations = rare_event_configurations(kind);
    let points = rare_event_points(
        &configurations,
        &kind.sample_distances,
        kind.shots,
        kind.biased_shots,
        kind.bias,
        kind.decoder,
        kind.estimator,
    );
    let engine = SweepEngine::new(seed);
    let outcomes = run_ler_sweep(&engine, &points);
    rare_event_output(kind, &outcomes)
}

/// Assembles a rare-event artifact of `spec` from per-point outcomes
/// computed elsewhere — the merge half of the sweeprun orchestration tier
/// for [`ExperimentKind::RareEventLer`] specs. `outcomes` must be the full
/// grid in [`crate::rare_event_points`] order. [`run_spec`] routes its own
/// results through the same assembly, so a merged artifact is bit-identical
/// to a single-process run (modulo cache metadata).
///
/// # Errors
///
/// Returns [`RunError::Invalid`] when the spec fails validation, is not a
/// rare-event comparison, or the outcome count does not match the grid.
pub fn rare_event_artifact_from_outcomes(
    spec: &ExperimentSpec,
    outcomes: &[LerOutcome],
) -> Result<Artifact, RunError> {
    spec.validate().map_err(RunError::Invalid)?;
    let ExperimentKind::RareEventLer(kind) = &spec.kind else {
        return Err(RunError::Invalid(SpecError(format!(
            "`{}` is not a rare-event LER comparison",
            spec.name
        ))));
    };
    let expected = kind.configurations.len() * kind.sample_distances.len() * 2;
    if outcomes.len() != expected {
        return Err(RunError::Invalid(SpecError(format!(
            "`{}` expects {expected} outcomes, got {}",
            spec.name,
            outcomes.len()
        ))));
    }
    let (headers, rows, notes, data) = rare_event_output(kind, outcomes);
    Ok(Artifact {
        title: spec.title.clone(),
        headers,
        rows,
        notes,
        data,
        metadata: ArtifactMetadata::for_spec(spec),
    })
}

fn rare_event_output(kind: &RareEventLerSpec, outcomes: &[LerOutcome]) -> RunnerOutput {
    let headers = vec![
        "Configuration".to_string(),
        "d".to_string(),
        format!("Plain MC ({} shots)", kind.shots),
        format!(
            "Importance ({} shots, bias {})",
            kind.biased_shots, kind.bias
        ),
        "Agreement".to_string(),
        "Speedup @ equal rel. error".to_string(),
    ];

    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut pairs = outcomes.chunks(2);
    for point in &kind.configurations {
        let label = point.display_label();
        for &d in &kind.sample_distances {
            let pair = pairs.next().expect("outcome count was validated");
            let (plain, biased) = (&pair[0], &pair[1]);
            let mut entry = serde_json::json!({
                "label": label,
                "topology": format!("{}", point.topology),
                "capacity": point.capacity,
                "wiring": format!("{}", point.wiring),
                "gate_improvement": point.gate_improvement,
                "distance": d,
                "bias": kind.bias,
                "plain": rare_event_estimate_json(plain),
                "biased": rare_event_estimate_json(biased),
            });
            let (agreement_cell, speedup_cell) = match (&plain.result, &biased.result) {
                (Ok(p), Ok(b)) => {
                    let (cell, json) = rare_event_agreement(p, b);
                    entry["agreement"] = json;
                    let speedup = rare_event_efficiency(p, b);
                    entry["speedup"] = match speedup {
                        Some(x) => Value::from(x),
                        None => Value::Null,
                    };
                    (
                        cell,
                        speedup.map(fmt_f64).unwrap_or_else(|| "inf".to_string()),
                    )
                }
                _ => {
                    entry["agreement"] = Value::Null;
                    entry["speedup"] = Value::Null;
                    ("-".to_string(), "-".to_string())
                }
            };
            rows.push(vec![
                label.clone(),
                format!("d={d}"),
                rare_event_estimate_cell(plain),
                rare_event_estimate_cell(biased),
                agreement_cell,
                speedup_cell,
            ]);
            entries.push(entry);
        }
    }

    let notes = vec![
        format!(
            "Importance sampling scales every physical noise probability by {} (clamped at 0.5), \
             decodes against the unbiased error model, and reweights each shot by its likelihood \
             ratio — both columns are unbiased estimators of the same logical error rate.",
            kind.bias
        ),
        "Reading: `< b` marks a zero-failure estimate reported as its 95% upper bound (rule of \
         three); agreement is the gap between the two estimates in combined standard deviations \
         (or the bound check when plain MC never failed); the speedup column is how many times \
         more decoded shots plain MC would need to match the importance-sampled relative error \
         (`inf` when plain MC saw no failures at all)."
            .to_string(),
    ];
    (headers, rows, notes, Value::Array(entries))
}

// ---------------------------------------------------------------------------
// Timing sweeps (Figures 8a, 9)
// ---------------------------------------------------------------------------

fn run_timing_sweep(kind: &TimingSweepSpec, seed: u64) -> RunnerOutput {
    let engine = SweepEngine::new(seed);
    let distances = &kind.distances;
    let metric = kind.metric;
    // Series values keep the metric-specific key the legacy artefacts used
    // (`round_time_us` for fig08a, `shot_time_us` for fig09) so downstream
    // plotting scripts keep working.
    let metric_key = match metric {
        TimingMetric::RoundTime => "round_time_us",
        TimingMetric::ShotTime => "shot_time_us",
    };
    let outcomes = engine.run(&kind.configurations, |task| {
        let point = task.point;
        let toolflow = Toolflow::new(point.build());
        let mut row = vec![point.display_label()];
        let mut series = Vec::new();
        for &d in distances {
            let value = toolflow.evaluate(d, false).ok().map(|m| match metric {
                TimingMetric::RoundTime => m.qec_round_time_us,
                TimingMetric::ShotTime => m.shot_time_us,
            });
            row.push(value.map(fmt_f64).unwrap_or_else(|| "NaN".into()));
            let mut sample = serde_json::json!({ "d": d });
            sample[metric_key] = Value::from(value);
            series.push(sample);
        }
        let entry = serde_json::json!({
            "label": point.display_label(),
            "topology": format!("{}", point.topology),
            "capacity": point.capacity,
            "series": series,
        });
        (row, entry)
    });
    let (mut rows, entries): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();

    if kind.include_bounds {
        // Frame the sweep with the fully-parallel lower bound and the
        // fully-serial (single ion chain) upper bound; for the shot-time
        // metric a shot is d rounds.
        let times = OperationTimes::paper_defaults();
        let mut lower = vec!["lower bound (no movement)".to_string()];
        let mut upper = vec!["upper bound (single chain)".to_string()];
        for &d in distances {
            let layout = rotated_surface_code(d);
            let rounds = match metric {
                TimingMetric::ShotTime => d as f64,
                TimingMetric::RoundTime => 1.0,
            };
            lower.push(fmt_f64(
                rounds * theoretical::parallel_round_lower_bound_us(&layout, &times),
            ));
            upper.push(fmt_f64(
                rounds * theoretical::serial_round_upper_bound_us(&layout, &times),
            ));
        }
        rows.push(lower);
        rows.push(upper);
    }

    let mut headers = vec!["Configuration".to_string()];
    headers.extend(distances.iter().map(|d| format!("d={d} (us)")));
    (headers, rows, Vec::new(), Value::Array(entries))
}

// ---------------------------------------------------------------------------
// Compiler vs theoretical bounds (Table 2)
// ---------------------------------------------------------------------------

fn run_compiler_bounds(kind: &CompilerBoundsSpec, seed: u64) -> RunnerOutput {
    let engine = SweepEngine::new(seed);
    let outcomes = engine.run(&kind.cases, |task| {
        let case = task.point;
        let layout = case.code.build();
        let arch =
            ArchitectureConfig::new(case.topology, case.capacity, WiringMethod::Standard, 1.0);
        let compiler = Compiler::new(arch.clone());
        match compiler.compile_rounds(&layout, 1) {
            Ok(program) => {
                let bounds = theoretical::bounds(
                    &layout,
                    &program.mapping,
                    case.topology,
                    &arch.operation_times,
                );
                let row = vec![
                    case.label.clone(),
                    format!("{} c{}", case.topology, case.capacity),
                    fmt_f64(bounds.parallel_lower_bound_us),
                    fmt_f64(program.elapsed_time_us()),
                    bounds.min_routing_ops.to_string(),
                    program.movement_ops().to_string(),
                ];
                let artefact = Some(serde_json::json!({
                    "case": case.label,
                    "topology": format!("{}", case.topology),
                    "capacity": case.capacity,
                    "lower_bound_us": bounds.parallel_lower_bound_us,
                    "measured_us": program.elapsed_time_us(),
                    "min_routing_ops": bounds.min_routing_ops,
                    "measured_routing_ops": program.movement_ops(),
                }));
                (row, artefact)
            }
            Err(e) => (
                vec![
                    case.label.clone(),
                    format!("{} c{}", case.topology, case.capacity),
                    "-".into(),
                    format!("failed: {e}"),
                    "-".into(),
                    "-".into(),
                ],
                None,
            ),
        }
    });
    let (rows, entries): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();
    let data: Vec<_> = entries.into_iter().flatten().collect();
    let headers = vec![
        "QEC code".to_string(),
        "QCCD device".to_string(),
        "Min elapsed (us)".to_string(),
        "Measured elapsed (us)".to_string(),
        "Min routing ops".to_string(),
        "Measured routing ops".to_string(),
    ];
    (headers, rows, Vec::new(), Value::Array(data))
}

// ---------------------------------------------------------------------------
// Baseline comparison (Table 3)
// ---------------------------------------------------------------------------

fn run_baseline_comparison(kind: &crate::spec::BaselineComparisonSpec) -> RunnerOutput {
    let rounds = kind.rounds;
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for case in &kind.cases {
        let layout = case.code.build();
        let arch =
            ArchitectureConfig::new(case.topology, case.capacity, WiringMethod::Standard, 1.0);
        let run = |result: Result<CompiledProgram, CompileError>| match result {
            Ok(p) => (fmt_f64(p.movement_time_us()), p.movement_ops().to_string()),
            Err(_) => ("NaN".to_string(), "NaN".to_string()),
        };
        let ours = run(Compiler::new(arch.clone()).compile_rounds(&layout, rounds));
        let qccdsim = run(QccdSimCompiler::new(arch.clone()).compile_rounds(&layout, rounds));
        let muzzle = run(MuzzleShuttleCompiler::new(arch.clone()).compile_rounds(&layout, rounds));
        data.push(serde_json::json!({
            "config": case.label,
            "ours": {"movement_time_us": ours.0, "movement_ops": ours.1},
            "qccdsim": {"movement_time_us": qccdsim.0, "movement_ops": qccdsim.1},
            "muzzle": {"movement_time_us": muzzle.0, "movement_ops": muzzle.1},
        }));
        rows.push(vec![
            case.label.clone(),
            ours.0,
            qccdsim.0,
            muzzle.0,
            ours.1,
            qccdsim.1,
            muzzle.1,
        ]);
    }
    let headers = vec![
        "Config".to_string(),
        "Ours time".to_string(),
        "QCCDSim time".to_string(),
        "Muzzle time".to_string(),
        "Ours ops".to_string(),
        "QCCDSim ops".to_string(),
        "Muzzle ops".to_string(),
    ];
    (headers, rows, Vec::new(), Value::Array(data))
}

// ---------------------------------------------------------------------------
// Extension experiments
// ---------------------------------------------------------------------------

fn run_surgery(kind: &SurgerySpec, seed: u64) -> RunnerOutput {
    let cases: Vec<(usize, usize)> = kind
        .capacities
        .iter()
        .flat_map(|&capacity| kind.distances.iter().map(move |&d| (capacity, d)))
        .collect();
    let merge = kind.merge;
    let improvement = kind.gate_improvement;
    let engine = SweepEngine::new(seed);
    let outcomes = engine.run(&cases, |task| {
        let (capacity, d) = *task.point;
        let toolflow = Toolflow::new(ArchitectureConfig::new(
            TopologyKind::Grid,
            capacity,
            WiringMethod::Standard,
            improvement,
        ));
        let workload = surgery_workload(d, merge);
        let patch = toolflow.evaluate_layout(&workload.patch, 1, false);
        let merged = toolflow.evaluate_layout(&workload.merged, 1, false);
        let (patch_us, patch_moves) = match &patch {
            Ok(m) => (Some(m.qec_round_time_us), Some(m.movement_ops_per_round)),
            Err(_) => (None, None),
        };
        let (merged_us, merged_moves) = match &merged {
            Ok(m) => (Some(m.qec_round_time_us), Some(m.movement_ops_per_round)),
            Err(_) => (None, None),
        };
        let ratio = match (patch_us, merged_us) {
            (Some(p), Some(m)) if p > 0.0 => Some(m / p),
            _ => None,
        };
        let row = vec![
            format!("c{capacity} d={d}"),
            format!("{}", workload.patch.num_qubits()),
            format!("{}", workload.merged.num_qubits()),
            patch_us.map(fmt_f64).unwrap_or_else(|| "NaN".into()),
            merged_us.map(fmt_f64).unwrap_or_else(|| "NaN".into()),
            ratio
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "NaN".into()),
            patch_moves
                .map(|m| m.to_string())
                .unwrap_or_else(|| "NaN".into()),
            merged_moves
                .map(|m| m.to_string())
                .unwrap_or_else(|| "NaN".into()),
        ];
        let entry = serde_json::json!({
            "capacity": capacity,
            "distance": d,
            "patch_qubits": workload.patch.num_qubits(),
            "merged_qubits": workload.merged.num_qubits(),
            "patch_round_us": patch_us,
            "merged_round_us": merged_us,
            "merged_over_patch": ratio,
            "patch_movement_ops": patch_moves,
            "merged_movement_ops": merged_moves,
        });
        (row, entry)
    });
    let (rows, entries): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();
    let headers = [
        "Configuration",
        "Patch qubits",
        "Merged qubits",
        "Patch round (us)",
        "Merged round (us)",
        "Merged / patch",
        "Patch moves",
        "Merged moves",
    ]
    .map(String::from)
    .to_vec();
    let notes = vec![
        "Reading: a merged/patch ratio near 1.0 at capacity 2 confirms the paper's §8 claim \
         that the capacity-2 grid keeps its constant round time under lattice surgery."
            .to_string(),
    ];
    (headers, rows, notes, Value::Array(entries))
}

fn run_decoder_comparison(kind: &DecoderComparisonSpec, seed: u64) -> RunnerOutput {
    let cases: Vec<(f64, usize)> = kind
        .improvements
        .iter()
        .flat_map(|&improvement| kind.distances.iter().map(move |&d| (improvement, d)))
        .collect();
    let decoders = kind.decoders.clone();
    let shots = kind.shots;
    let capacity = kind.capacity;
    let engine = SweepEngine::new(seed);
    let outcomes = engine.run(&cases, |task| {
        let (improvement, d) = *task.point;
        let layout = rotated_surface_code(d);
        let compiler = Compiler::new(ArchitectureConfig::new(
            TopologyKind::Grid,
            capacity,
            WiringMethod::Standard,
            improvement,
        ));
        let mut row = vec![format!("{improvement:.0}X d={d}")];
        let mut entry = serde_json::json!({
            "gate_improvement": improvement,
            "distance": d,
            "shots": shots,
            "seed": task.seed,
        });
        // Like every other runner, render compile failures into the row
        // instead of failing the whole sweep.
        let program = match compiler.compile_memory_experiment(&layout, d, MemoryBasis::Z) {
            Ok(program) => program,
            Err(e) => {
                row.extend(vec![format!("failed: {e}"); decoders.len()]);
                entry["error"] = Value::from(e.to_string());
                return (row, entry);
            }
        };
        let noisy = program.to_noisy_circuit();
        for &decoder in &decoders {
            let estimate = estimate_logical_error_rate(&noisy, shots, task.seed, decoder)
                .expect("compiled circuits carry consistent annotations");
            row.push(fmt_f64(estimate.logical_error_rate));
            entry[format!("{decoder:?}")] = serde_json::json!(estimate.logical_error_rate);
        }
        (row, entry)
    });
    let (rows, entries): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();
    let mut headers = vec!["Configuration".to_string()];
    headers.extend(kind.decoders.iter().map(|decoder| {
        match decoder {
            DecoderKind::UnionFind => "Union-find",
            DecoderKind::GreedyMatching => "Greedy",
            DecoderKind::ExactMatching => "Exact matching",
        }
        .to_string()
    }));
    let notes = vec![format!(
        "Reading: the exact matching decoder is the accuracy reference; union-find should sit \
         within a small factor of it and greedy should be the worst. The ordering of \
         architectures (not shown here) is unchanged by the decoder choice — see the Toolflow \
         decoder option ({:?} is the default).",
        DecoderKind::default()
    )];
    (headers, rows, notes, Value::Array(entries))
}

fn run_clustering_ablation(kind: &ClusteringAblationSpec, seed: u64) -> RunnerOutput {
    let cases: Vec<(usize, usize)> = kind
        .distances
        .iter()
        .flat_map(|&d| kind.capacities.iter().map(move |&capacity| (d, capacity)))
        .collect();
    let engine = SweepEngine::new(seed);
    let outcomes = engine.run(&cases, |task| {
        let (d, capacity) = *task.point;
        let layout = rotated_surface_code(d);
        let cluster_size = capacity - 1;
        let geometric_cut = cut_weight(
            &layout,
            &cluster_qubits_with_strategy(&layout, cluster_size, ClusteringStrategy::Geometric),
        );
        let blind_cut = cut_weight(
            &layout,
            &cluster_qubits_with_strategy(&layout, cluster_size, ClusteringStrategy::RoundRobin),
        );

        let arch =
            ArchitectureConfig::new(TopologyKind::Grid, capacity, WiringMethod::Standard, 1.0);
        let geometric = Compiler::new(arch.clone()).compile_rounds(&layout, 1).ok();
        let blind = Compiler::new(arch)
            .with_mapping_strategy(ClusteringStrategy::RoundRobin)
            .compile_rounds(&layout, 1)
            .ok();

        let fmt_opt_time = |p: &Option<CompiledProgram>| {
            p.as_ref()
                .map(|p| fmt_f64(p.elapsed_time_us()))
                .unwrap_or_else(|| "NaN".into())
        };
        let fmt_opt_moves = |p: &Option<CompiledProgram>| {
            p.as_ref()
                .map(|p| p.movement_ops().to_string())
                .unwrap_or_else(|| "NaN".into())
        };
        let row = vec![
            format!("d={d} c{capacity}"),
            fmt_f64(geometric_cut),
            fmt_f64(blind_cut),
            fmt_opt_moves(&geometric),
            fmt_opt_moves(&blind),
            fmt_opt_time(&geometric),
            fmt_opt_time(&blind),
        ];
        let entry = serde_json::json!({
            "distance": d,
            "capacity": capacity,
            "geometric_cut_weight": geometric_cut,
            "round_robin_cut_weight": blind_cut,
            "geometric_movement_ops": geometric.as_ref().map(|p| p.movement_ops()),
            "round_robin_movement_ops": blind.as_ref().map(|p| p.movement_ops()),
            "geometric_round_us": geometric.as_ref().map(|p| p.elapsed_time_us()),
            "round_robin_round_us": blind.as_ref().map(|p| p.elapsed_time_us()),
        });
        (row, entry)
    });
    let (rows, entries): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();
    let headers = [
        "Configuration",
        "Cut weight (geo)",
        "Cut weight (RR)",
        "Moves (geo)",
        "Moves (RR)",
        "Round us (geo)",
        "Round us (RR)",
    ]
    .map(String::from)
    .to_vec();
    let notes = vec![
        "Reading: the round-robin ablation cuts far more interaction edges, which turns into \
         more ion movement and longer rounds — the gap is the value of the §4.2 geometric \
         partition."
            .to_string(),
    ];
    (headers, rows, notes, Value::Array(entries))
}

/// A rotated-surface-code memory experiment with code-capacity depolarising
/// noise at rate `p` on every data qubit each round — the same construction
/// the decoder benchmarks pin their evaluation point on.
fn code_capacity_memory(d: usize, p: f64) -> NoisyCircuit {
    let code = rotated_surface_code(d);
    let exp = memory_experiment(&code, d, MemoryBasis::Z);
    let data = code.data_qubits();
    let mut noisy = NoisyCircuit::new();
    noisy.pad_qubits(exp.circuit.num_qubits());
    let first_ancilla = code.ancilla_qubits()[0];
    for instruction in exp.circuit.iter() {
        if let Instruction::Reset(q) = instruction {
            if *q == first_ancilla {
                for &dq in &data {
                    noisy.push_noise(NoiseChannel::Depolarize1 { qubit: dq, p });
                }
            }
        }
        noisy.push_gate(*instruction);
    }
    for det in exp.circuit.detectors() {
        noisy.add_detector(det.clone());
    }
    for obs in exp.circuit.observables() {
        noisy.add_observable(obs.clone());
    }
    noisy
}

/// Times `passes` warm batch decodes of `chunk` under `memo`, after one
/// untimed pass that fills the caches (for the disabled config the untimed
/// pass just equalises the protocol). Returns the mean wall-clock seconds
/// per pass and the scratch, so the caller can read the final cache stats.
fn timed_warm_decode(
    decoder: &UnionFindDecoder,
    chunk: &qccd_sim::SyndromeChunk,
    memo: MemoConfig,
    passes: u32,
) -> (f64, DecodeScratch) {
    let mut scratch = DecodeScratch::with_memo_config(memo);
    decoder.decode_batch(chunk, &mut scratch);
    let start = std::time::Instant::now();
    for _ in 0..passes {
        decoder.decode_batch(chunk, &mut scratch);
    }
    (start.elapsed().as_secs_f64() / f64::from(passes), scratch)
}

fn run_dense_tail(kind: &DenseTailSpec, seed: u64) -> RunnerOutput {
    const TIMED_PASSES: u32 = 3;
    let cap = DEFAULT_MEMO_MAX_DEFECTS;
    let engine = SweepEngine::new(seed);
    let outcomes = engine.run(&kind.distances, |task| {
        let d = *task.point;
        let noisy = code_capacity_memory(d, kind.p);
        let dem = DetectorErrorModel::from_circuit(&noisy).expect("valid annotations");
        let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
        let sampler = sample_detector_chunks(&noisy, kind.shots, task.seed, kind.shots)
            .expect("valid annotations");
        let chunk = sampler.sample_chunk(0);

        // Defect-count histogram over the sampled lanes: buckets 0..=cap
        // count the memoizable tiers, the last bucket is the dense tail
        // (> cap defects) that the LRU tier and cluster matcher absorb.
        let mut histogram = vec![0u64; cap + 2];
        let mut fired = Vec::new();
        for shot in 0..chunk.num_shots() {
            chunk.fired_detectors_into(shot, &mut fired);
            histogram[fired.len().min(cap + 1)] += 1;
        }
        let noisy_lanes: u64 = histogram[1..].iter().sum();
        let dense_lanes = histogram[cap + 1];
        let dense_share = dense_lanes as f64 / chunk.num_shots() as f64;

        // Per-tier time share: warm passes with the full dense tier, with
        // the dense LRU switched off (dense lanes replay through the
        // cluster matcher and union-find every pass), and with the memo
        // disabled entirely (PR 1's raw batch path).
        let (full_s, scratch) =
            timed_warm_decode(&decoder, &chunk, MemoConfig::default(), TIMED_PASSES);
        let (no_dense_s, _) = timed_warm_decode(
            &decoder,
            &chunk,
            MemoConfig::default().with_dense_max_entries(0),
            TIMED_PASSES,
        );
        let (uncached_s, _) =
            timed_warm_decode(&decoder, &chunk, MemoConfig::disabled(), TIMED_PASSES);
        let stats = scratch.cache_stats();
        let speedup = uncached_s / full_s;

        let row = vec![
            format!("d={d}"),
            noisy_lanes.to_string(),
            dense_lanes.to_string(),
            fmt_f64(dense_share),
            fmt_f64(full_s * 1e3),
            fmt_f64(no_dense_s * 1e3),
            fmt_f64(uncached_s * 1e3),
            fmt_f64(speedup),
        ];
        let entry = serde_json::json!({
            "distance": d,
            "p": kind.p,
            "shots": kind.shots,
            "seed": task.seed,
            "memo_defect_cap": cap,
            "defect_histogram": histogram,
            "noisy_lanes": noisy_lanes,
            "dense_lanes": dense_lanes,
            "dense_share": dense_share,
            "warm_full_ms": full_s * 1e3,
            "warm_no_dense_ms": no_dense_s * 1e3,
            "uncached_ms": uncached_s * 1e3,
            "warm_speedup": speedup,
            "cache": {
                "quiet_words": stats.quiet_words,
                "sparse_words": stats.sparse_words,
                "dense_words": stats.dense_words,
                "dense_hits": stats.dense_hits,
                "dense_misses": stats.dense_misses,
                "dense_evictions": stats.dense_evictions,
                "cluster_lanes": stats.cluster_lanes,
                "cluster_components": stats.cluster_components,
                "cluster_conflicts": stats.cluster_conflicts,
            },
        });
        (row, entry)
    });
    let (rows, entries): (Vec<_>, Vec<_>) = outcomes.into_iter().unzip();
    let headers = [
        "Distance",
        "Noisy lanes",
        "Dense lanes",
        "Dense share",
        "Warm full (ms)",
        "Warm no-dense (ms)",
        "Uncached (ms)",
        "Speedup",
    ]
    .map(String::from)
    .to_vec();
    let notes = vec![
        format!(
            "Reading: lanes with more than {cap} defects are the dense tail the LRU tier and \
             cluster matcher absorb; the warm full-config pass should beat the uncached pass, \
             and the gap to the no-dense column is the dense tier's own share."
        ),
        "Timings are wall-clock on this machine — the histogram and cache counters are \
         seed-deterministic, the millisecond columns are not."
            .to_string(),
    ];
    (headers, rows, notes, Value::Array(entries))
}

// ---------------------------------------------------------------------------
// Built-in specs (the thirteen paper artefacts plus the decoder profile)
// ---------------------------------------------------------------------------

fn ler_spec(
    name: &str,
    title: &str,
    configurations: Vec<ArchPoint>,
    sample_distances: Vec<usize>,
    outputs: Vec<LerOutput>,
) -> ExperimentSpec {
    ExperimentSpec {
        name: name.into(),
        title: title.into(),
        seed: DEFAULT_SWEEP_SEED,
        kind: ExperimentKind::LerSweep(LerSweepSpec {
            configurations,
            sample_distances,
            shots: crate::DEFAULT_SHOTS,
            decoder: DecoderKind::default(),
            estimator: Default::default(),
            outputs,
        }),
    }
}

fn builtin_specs() -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();

    // Table 2: compiler vs theoretical bounds.
    let mut table2_cases = Vec::new();
    for d in [3usize, 6] {
        for capacity in [2usize, 3, 4, 64] {
            table2_cases.push(CompileCase::new(
                format!("Repetition d={d}"),
                CodeSpec::Repetition { distance: d },
                TopologyKind::Linear,
                capacity,
            ));
        }
    }
    table2_cases.push(CompileCase::new(
        "Rotated surface d=2",
        CodeSpec::RotatedSurface { distance: 2 },
        TopologyKind::Grid,
        2,
    ));
    table2_cases.push(CompileCase::new(
        "Unrotated surface d=2",
        CodeSpec::UnrotatedSurface { distance: 2 },
        TopologyKind::Grid,
        3,
    ));
    table2_cases.push(CompileCase::new(
        "Rotated surface d=3",
        CodeSpec::RotatedSurface { distance: 3 },
        TopologyKind::Grid,
        2,
    ));
    table2_cases.push(CompileCase::new(
        "Rotated surface d=3",
        CodeSpec::RotatedSurface { distance: 3 },
        TopologyKind::Switch,
        2,
    ));
    table2_cases.push(CompileCase::new(
        "Rotated surface d=6",
        CodeSpec::RotatedSurface { distance: 6 },
        TopologyKind::Grid,
        2,
    ));
    table2_cases.push(CompileCase::new(
        "Rotated surface d=12",
        CodeSpec::RotatedSurface { distance: 12 },
        TopologyKind::Grid,
        2,
    ));
    specs.push(ExperimentSpec {
        name: "table2".into(),
        title: "Table 2: compiler vs theoretical bounds (one QEC round)".into(),
        seed: DEFAULT_SWEEP_SEED,
        kind: ExperimentKind::CompilerBounds(CompilerBoundsSpec {
            cases: table2_cases,
        }),
    });

    // Table 3: baseline compiler comparison.
    let mut table3_cases = Vec::new();
    for d in [3usize, 5, 7] {
        for cap in [2usize, 3, 5] {
            table3_cases.push(CompileCase::new(
                format!("R,{d},{cap},L"),
                CodeSpec::Repetition { distance: d },
                TopologyKind::Linear,
                cap,
            ));
        }
    }
    for d in [2usize, 3, 4, 5] {
        for cap in [2usize, 3, 5] {
            table3_cases.push(CompileCase::new(
                format!("S,{d},{cap},G"),
                CodeSpec::RotatedSurface { distance: d },
                TopologyKind::Grid,
                cap,
            ));
        }
    }
    specs.push(ExperimentSpec {
        name: "table3".into(),
        title: "Table 3: movement time (us, 5 rounds) and movement operations".into(),
        seed: DEFAULT_SWEEP_SEED,
        kind: ExperimentKind::BaselineComparison(crate::spec::BaselineComparisonSpec {
            cases: table3_cases,
            rounds: 5,
        }),
    });

    // Figure 8(a): round time vs distance per topology and capacity.
    let fig08a_configs: Vec<ArchPoint> = [
        TopologyKind::Linear,
        TopologyKind::Grid,
        TopologyKind::Switch,
    ]
    .iter()
    .flat_map(|&topology| {
        [2usize, 5, 12]
            .iter()
            .map(move |&capacity| ArchPoint::new(topology, capacity, WiringMethod::Standard, 1.0))
    })
    .collect();
    specs.push(ExperimentSpec {
        name: "fig08a".into(),
        title: "Figure 8(a): QEC round time vs code distance".into(),
        seed: DEFAULT_SWEEP_SEED,
        kind: ExperimentKind::TimingSweep(TimingSweepSpec {
            configurations: fig08a_configs,
            distances: vec![2, 3, 4, 5, 7, 9],
            metric: TimingMetric::RoundTime,
            include_bounds: false,
        }),
    });

    // Figure 8(b): LER vs distance per topology and capacity (5X gates).
    let fig08b_configs: Vec<ArchPoint> = [TopologyKind::Grid, TopologyKind::Switch]
        .iter()
        .flat_map(|&topology| {
            [2usize, 5, 12].iter().map(move |&capacity| {
                ArchPoint::new(topology, capacity, WiringMethod::Standard, 5.0)
            })
        })
        .collect();
    specs.push(ler_spec(
        "fig08b",
        "Figure 8(b): logical error rate vs code distance (5X gates)",
        fig08b_configs,
        vec![3, 5],
        vec![LerOutput::SampledRates, LerOutput::Lambda],
    ));

    // Figure 9: shot time vs trap capacity, framed by theoretical bounds.
    specs.push(ExperimentSpec {
        name: "fig09".into(),
        title: "Figure 9: QEC shot time vs trap capacity".into(),
        seed: DEFAULT_SWEEP_SEED,
        kind: ExperimentKind::TimingSweep(TimingSweepSpec {
            configurations: [2usize, 3, 5, 12, 30]
                .iter()
                .map(|&capacity| {
                    ArchPoint::grid(capacity, 1.0).with_label(format!("capacity {capacity}"))
                })
                .collect(),
            distances: vec![3, 5, 7, 9],
            metric: TimingMetric::ShotTime,
            include_bounds: true,
        }),
    });

    // Figure 10: projected LER vs distance and gate improvement.
    let fig10_configs: Vec<ArchPoint> = [1.0f64, 5.0, 10.0]
        .iter()
        .flat_map(|&improvement| {
            [2usize, 5, 12].iter().map(move |&capacity| {
                ArchPoint::grid(capacity, improvement)
                    .with_label(format!("{improvement:.0}X c{capacity}"))
            })
        })
        .collect();
    specs.push(ler_spec(
        "fig10",
        "Figure 10: logical error rate vs distance and gate improvement (grid)",
        fig10_configs,
        vec![3, 5],
        vec![
            LerOutput::SampledRates,
            LerOutput::Projection {
                distances: vec![7, 9, 11, 13, 15, 17],
                target: 1e-9,
            },
            LerOutput::Lambda,
        ],
    ));

    // Figure 11: electrodes required for a target LER.
    specs.push(ler_spec(
        "fig11",
        "Figure 11: electrodes required for a target logical error rate (5X gates)",
        [2usize, 5, 12]
            .iter()
            .map(|&capacity| {
                ArchPoint::grid(capacity, 5.0).with_label(format!("capacity {capacity}"))
            })
            .collect(),
        vec![3, 5],
        vec![
            LerOutput::Electrodes {
                targets: vec![1e-6, 1e-9, 1e-12],
            },
            LerOutput::Lambda,
        ],
    ));

    // Figure 12: data rate and power for a target LER.
    specs.push(ler_spec(
        "fig12",
        "Figure 12: data rate and power needed for a target logical error rate \
         (standard wiring, 5X gates)",
        [2usize, 5, 12]
            .iter()
            .map(|&capacity| {
                ArchPoint::grid(capacity, 5.0).with_label(format!("capacity {capacity}"))
            })
            .collect(),
        vec![3, 5],
        vec![
            LerOutput::DataRate {
                targets: vec![1e-6, 1e-9],
                include_power: true,
            },
            LerOutput::Lambda,
        ],
    ));

    // Figure 13(a): data rate, standard vs WISE wiring.
    specs.push(ler_spec(
        "fig13a",
        "Figure 13(a): data rate vs target logical error rate (standard vs WISE, 5X gates)",
        vec![
            ArchPoint::grid(2, 5.0).with_label("standard c2"),
            ArchPoint::new(TopologyKind::Grid, 2, WiringMethod::Wise, 5.0).with_label("WISE c2"),
            ArchPoint::new(TopologyKind::Grid, 5, WiringMethod::Wise, 5.0).with_label("WISE c5"),
            ArchPoint::new(TopologyKind::Grid, 12, WiringMethod::Wise, 5.0).with_label("WISE c12"),
        ],
        vec![3, 5],
        vec![
            LerOutput::DataRate {
                targets: vec![1e-6, 1e-9],
                include_power: false,
            },
            LerOutput::Lambda,
        ],
    ));

    // Figure 13(b): shot time, standard vs WISE wiring.
    specs.push(ler_spec(
        "fig13b",
        "Figure 13(b): QEC shot time vs target logical error rate (standard vs WISE, 5X gates)",
        vec![
            ArchPoint::grid(2, 5.0).with_label("standard c2"),
            ArchPoint::new(TopologyKind::Grid, 2, WiringMethod::Wise, 5.0).with_label("WISE c2"),
            ArchPoint::new(TopologyKind::Grid, 5, WiringMethod::Wise, 5.0).with_label("WISE c5"),
        ],
        vec![3, 5],
        vec![
            LerOutput::ShotTime {
                targets: vec![1e-6, 1e-9],
            },
            LerOutput::Lambda,
        ],
    ));

    // Extension E1: lattice surgery.
    specs.push(ExperimentSpec {
        name: "ext_surgery".into(),
        title: "Extension E1: lattice-surgery merged patch vs isolated patch \
                (grid, standard wiring, 1X gates)"
            .into(),
        seed: DEFAULT_SWEEP_SEED,
        kind: ExperimentKind::Surgery(SurgerySpec {
            capacities: vec![2, 6, 12],
            distances: vec![2, 3, 4],
            merge: MergeKind::ZZ,
            gate_improvement: 1.0,
        }),
    });

    // Extension E3: decoder ablation.
    specs.push(ExperimentSpec {
        name: "ext_decoder_comparison".into(),
        title: "Extension E3: logical error rate per decoder (grid, capacity 2, standard wiring)"
            .into(),
        seed: DEFAULT_SWEEP_SEED,
        kind: ExperimentKind::DecoderComparison(DecoderComparisonSpec {
            distances: vec![3, 5],
            improvements: vec![5.0, 10.0],
            decoders: vec![
                DecoderKind::UnionFind,
                DecoderKind::GreedyMatching,
                DecoderKind::ExactMatching,
            ],
            shots: crate::DEFAULT_SHOTS,
            capacity: 2,
        }),
    });

    // Decoder profile: the dense-shot tail the word path's LRU tier and
    // cluster matcher target. p is biased above the benchmarks' pinned
    // evaluation point so every distance shows a visible >cap tail.
    specs.push(ExperimentSpec {
        name: "decoder_dense_tail".into(),
        title: "Decoder profile: dense-tail defect histogram and per-tier warm decode time".into(),
        seed: DEFAULT_SWEEP_SEED,
        kind: ExperimentKind::DenseTail(DenseTailSpec {
            distances: vec![3, 5, 7],
            p: 0.005,
            shots: 8192,
        }),
    });

    // Rare-event validation: the importance-sampled estimator against plain
    // Monte Carlo in the low-LER regime (very high gate improvement, where
    // failures are rare events). At 1000X both estimators converge — the
    // overlap rows cross-check them within their combined error bars and the
    // speedup column shows the biased run needing >10x fewer decoded shots
    // at equal relative error. At 8000X plain MC sees no failures at all in
    // 40k shots and renders its 95% upper bound, while the biased run still
    // produces a resolved estimate below that bound.
    specs.push(ExperimentSpec {
        name: "rare_event_ler".into(),
        title: "Rare-event validation: importance-sampled vs plain Monte-Carlo LER \
                (grid c2, standard wiring)"
            .into(),
        seed: DEFAULT_SWEEP_SEED,
        kind: ExperimentKind::RareEventLer(RareEventLerSpec {
            configurations: vec![
                ArchPoint::grid(2, 1000.0).with_label("1000X c2"),
                ArchPoint::grid(2, 8000.0).with_label("8000X c2"),
            ],
            sample_distances: vec![5, 7, 9],
            shots: 40_000,
            biased_shots: 8_000,
            bias: 32.0,
            decoder: DecoderKind::default(),
            estimator: Default::default(),
        }),
    });

    // Extension E2: clustering ablation.
    specs.push(ExperimentSpec {
        name: "ext_ablation_clustering".into(),
        title: "Extension E2: geometric vs round-robin clustering \
                (grid, standard wiring, 1X gates)"
            .into(),
        seed: DEFAULT_SWEEP_SEED,
        kind: ExperimentKind::ClusteringAblation(ClusteringAblationSpec {
            distances: vec![3, 5],
            capacities: vec![3, 5, 9],
        }),
    });

    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_contains_all_paper_artefacts() {
        let registry = ExperimentRegistry::builtin();
        let expected = [
            "decoder_dense_tail",
            "ext_ablation_clustering",
            "ext_decoder_comparison",
            "ext_surgery",
            "fig08a",
            "fig08b",
            "fig09",
            "fig10",
            "fig11",
            "fig12",
            "fig13a",
            "fig13b",
            "rare_event_ler",
            "table2",
            "table3",
        ];
        assert_eq!(registry.names(), expected);
        for spec in registry.specs() {
            assert!(spec.validate().is_ok(), "{} must validate", spec.name);
        }
    }

    #[test]
    fn register_rejects_duplicates_and_invalid_specs() {
        let mut registry = ExperimentRegistry::empty();
        let spec = builtin_specs().remove(0);
        registry.register(spec.clone()).unwrap();
        assert!(registry.register(spec.clone()).is_err(), "duplicate name");
        let mut invalid = spec;
        invalid.name = "broken".into();
        if let ExperimentKind::CompilerBounds(ref mut kind) = invalid.kind {
            kind.cases.clear();
        }
        assert!(registry.register(invalid).is_err());
    }

    #[test]
    fn unknown_name_is_reported() {
        let registry = ExperimentRegistry::builtin();
        assert_eq!(
            registry.run("fig99"),
            Err(RunError::UnknownName("fig99".into()))
        );
    }

    #[test]
    fn fig09_artifact_has_bounds_rows_and_valid_schema() {
        let registry = ExperimentRegistry::builtin();
        let artifact = registry.run("fig09").unwrap();
        // 5 capacities + lower/upper bound rows.
        assert_eq!(artifact.rows.len(), 7);
        assert_eq!(artifact.headers.len(), 5);
        assert!(artifact.rows[5][0].contains("lower bound"));
        assert!(artifact.rows[6][0].contains("upper bound"));
        assert_eq!(artifact.metadata.spec_name, "fig09");
        assert!(artifact.metadata.thread_invariant);
        crate::artifact::validate_artifact_json(&artifact.to_json()).unwrap();
    }

    #[test]
    fn required_distance_cells_carry_ci_bands() {
        // A synthetic tight fit: slope −0.8 ± 0.05.
        let fit = LambdaFit {
            log_intercept: -1.2,
            log_slope: -0.8,
            log_intercept_std_error: 0.1,
            log_slope_std_error: 0.05,
            dropped_points: 0,
        };
        let (d, cell, json) = distance_with_ci(&fit, 1e-9).unwrap();
        assert_eq!(d, fit.distance_for_target(1e-9).unwrap());
        let lo = json.get("ci95_low").and_then(Value::as_u64).unwrap() as usize;
        let hi = json.get("ci95_high").and_then(Value::as_u64).unwrap() as usize;
        assert!(lo <= d && d <= hi, "{lo} <= {d} <= {hi}");
        assert!(cell.starts_with(&format!("d={d}")), "{cell}");
        assert!(
            cell.contains(&format!("[{lo}, {hi}]")) || lo == hi,
            "{cell}"
        );
        // A slope whose CI crosses zero renders an unbounded upper edge.
        let wobbly = LambdaFit {
            log_slope_std_error: 0.5,
            ..fit
        };
        let (_, cell, json) = distance_with_ci(&wobbly, 1e-9).unwrap();
        assert!(cell.ends_with("inf)"), "{cell}");
        assert!(json.get("ci95_high").unwrap().is_null());
        // Above threshold: no distance, no band.
        let above = LambdaFit {
            log_slope: 0.3,
            ..fit
        };
        assert!(distance_with_ci(&above, 1e-9).is_none());
    }

    #[test]
    fn rare_event_artifact_renders_bounds_and_agreement() {
        let registry = ExperimentRegistry::builtin();
        let mut spec = registry.get("rare_event_ler").unwrap().clone();
        if let ExperimentKind::RareEventLer(kind) = &mut spec.kind {
            kind.configurations = vec![
                crate::spec::ArchPoint::grid(2, 1.0).with_label("1X c2"),
                crate::spec::ArchPoint::grid(2, 1000.0).with_label("1000X c2"),
            ];
            kind.sample_distances = vec![2, 3];
            kind.shots = 128;
            kind.biased_shots = 64;
            kind.bias = 8.0;
        } else {
            panic!("rare_event_ler changed kind");
        }
        spec.name = "tiny-rare-event-render-test".to_string();
        let artifact = run_spec(&spec).unwrap();

        assert_eq!(
            artifact.headers,
            vec![
                "Configuration",
                "d",
                "Plain MC (128 shots)",
                "Importance (64 shots, bias 8)",
                "Agreement",
                "Speedup @ equal rel. error",
            ]
        );
        assert_eq!(artifact.rows.len(), 4);
        // The noisy 1X configuration resolves on both estimators: its cells
        // carry error bars and a sigma-agreement figure.
        assert!(
            artifact.rows[0][2].contains("+/-"),
            "{:?}",
            artifact.rows[0]
        );
        assert!(
            artifact.rows[0][4].ends_with("sigma"),
            "{:?}",
            artifact.rows[0]
        );
        // The 1000X configuration never fails at these shot counts: both
        // estimates render as rule-of-three upper bounds (3/128 and 3/64),
        // never as a bare zero.
        for row in &artifact.rows[2..] {
            assert_eq!(row[2], "< 2.3e-2", "{row:?}");
            assert_eq!(row[3], "< 4.6e-2", "{row:?}");
            assert_eq!(row[4], "unresolved", "{row:?}");
            assert_eq!(row[5], "inf", "{row:?}");
        }
        crate::artifact::validate_artifact_json(&artifact.to_json()).unwrap();
    }

    #[test]
    fn table2_artifact_matches_legacy_shape() {
        let artifact = ExperimentRegistry::builtin().run("table2").unwrap();
        assert_eq!(artifact.headers.len(), 6);
        assert_eq!(artifact.rows.len(), 14);
        assert_eq!(artifact.rows[0][0], "Repetition d=3");
        assert_eq!(artifact.rows[0][1], "linear c2");
    }
}
