//! Declarative experiment specifications.
//!
//! The paper's Figure-2 toolflow is a design-space exploration loop: sweep
//! `(workload, architecture, distance, noise scaling, decoder)` points and
//! emit figures/tables. An [`ExperimentSpec`] captures one such experiment
//! as *data* — serializable, hashable, diffable — instead of as a dedicated
//! binary. The [registry](crate::registry) registers every paper artefact as
//! a named spec, and the single `artifacts` CLI resolves names through it.
//!
//! # Serialization
//!
//! Specs round-trip through JSON: [`ExperimentSpec::to_json`] →
//! [`serde_json::to_string`] → [`serde_json::from_str`] →
//! [`ExperimentSpec::from_json`] is the identity (property-tested in
//! `tests/spec_registry.rs`). The conversions are hand-written against the
//! vendored `serde_json` shim because the vendored `serde` derives are
//! no-ops (see `vendor/README.md`); the `#[serde]`-style field order is
//! irrelevant since objects are canonical `BTreeMap`s.
//!
//! # Content hashing
//!
//! [`ExperimentSpec::content_hash`] is an FNV-1a hash of the canonical
//! compact JSON encoding, so any semantic change to a spec changes its hash
//! while formatting cannot. The [artifact cache](crate::cache) keys cached
//! results by this hash.

use qccd_core::ArchitectureConfig;
use qccd_decoder::{DecoderKind, EstimatorConfig, MemoConfig};
use qccd_hardware::{TopologyKind, WiringMethod};
use qccd_qec::MergeKind;
use serde_json::Value;

/// Error produced when parsing or validating a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err<T>(message: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(message.into()))
}

// ---------------------------------------------------------------------------
// JSON codec helpers
// ---------------------------------------------------------------------------

fn field<'a>(value: &'a Value, key: &str) -> Result<&'a Value, SpecError> {
    match value.get(key) {
        Some(v) if !v.is_null() => Ok(v),
        _ => err(format!("missing field `{key}`")),
    }
}

fn str_field(value: &Value, key: &str) -> Result<String, SpecError> {
    field(value, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| SpecError(format!("field `{key}` must be a string")))
}

fn u64_field(value: &Value, key: &str) -> Result<u64, SpecError> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| SpecError(format!("field `{key}` must be a non-negative integer")))
}

fn usize_field(value: &Value, key: &str) -> Result<usize, SpecError> {
    Ok(u64_field(value, key)? as usize)
}

fn f64_field(value: &Value, key: &str) -> Result<f64, SpecError> {
    field(value, key)?
        .as_f64()
        .ok_or_else(|| SpecError(format!("field `{key}` must be a number")))
}

fn bool_field(value: &Value, key: &str) -> Result<bool, SpecError> {
    field(value, key)?
        .as_bool()
        .ok_or_else(|| SpecError(format!("field `{key}` must be a boolean")))
}

fn array_field<'a>(value: &'a Value, key: &str) -> Result<&'a Vec<Value>, SpecError> {
    field(value, key)?
        .as_array()
        .ok_or_else(|| SpecError(format!("field `{key}` must be an array")))
}

fn usize_list(value: &Value, key: &str) -> Result<Vec<usize>, SpecError> {
    array_field(value, key)?
        .iter()
        .map(|v| {
            v.as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| SpecError(format!("`{key}` entries must be integers")))
        })
        .collect()
}

fn f64_list(value: &Value, key: &str) -> Result<Vec<f64>, SpecError> {
    array_field(value, key)?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| SpecError(format!("`{key}` entries must be numbers")))
        })
        .collect()
}

fn topology_name(kind: TopologyKind) -> &'static str {
    match kind {
        TopologyKind::Grid => "grid",
        TopologyKind::Linear => "linear",
        TopologyKind::Switch => "switch",
    }
}

fn topology_from_name(name: &str) -> Result<TopologyKind, SpecError> {
    match name {
        "grid" => Ok(TopologyKind::Grid),
        "linear" => Ok(TopologyKind::Linear),
        "switch" => Ok(TopologyKind::Switch),
        other => err(format!("unknown topology `{other}`")),
    }
}

fn wiring_name(wiring: WiringMethod) -> &'static str {
    match wiring {
        WiringMethod::Standard => "standard",
        WiringMethod::Wise => "wise",
    }
}

fn wiring_from_name(name: &str) -> Result<WiringMethod, SpecError> {
    match name {
        "standard" => Ok(WiringMethod::Standard),
        "wise" => Ok(WiringMethod::Wise),
        other => err(format!("unknown wiring `{other}`")),
    }
}

/// Canonical spec name of a decoder kind.
pub fn decoder_name(decoder: DecoderKind) -> &'static str {
    match decoder {
        DecoderKind::UnionFind => "union_find",
        DecoderKind::GreedyMatching => "greedy_matching",
        DecoderKind::ExactMatching => "exact_matching",
    }
}

/// Parses a decoder kind from its canonical spec name.
pub fn decoder_from_name(name: &str) -> Result<DecoderKind, SpecError> {
    match name {
        "union_find" => Ok(DecoderKind::UnionFind),
        "greedy_matching" => Ok(DecoderKind::GreedyMatching),
        "exact_matching" => Ok(DecoderKind::ExactMatching),
        other => err(format!("unknown decoder `{other}`")),
    }
}

fn merge_name(kind: MergeKind) -> &'static str {
    kind.label()
}

fn merge_from_name(name: &str) -> Result<MergeKind, SpecError> {
    match name {
        "zz" => Ok(MergeKind::ZZ),
        "xx" => Ok(MergeKind::XX),
        other => err(format!("unknown merge kind `{other}`")),
    }
}

fn estimator_to_json(config: &EstimatorConfig) -> Value {
    let mut value = serde_json::json!({
        "chunk_shots": config.chunk_shots,
        "num_threads": config.num_threads,
        "target_std_error": config.target_std_error,
        "max_failures": config.max_failures,
        "memo": {
            "max_defects": config.memo.max_defects,
            "max_entries": config.memo.max_entries,
            "dense_max_entries": config.memo.dense_max_entries,
        },
        "word_decode": config.word_decode,
        "shared_memo": config.shared_memo,
    });
    // Emitted only when set so every pre-rare-event spec keeps its canonical
    // encoding — and therefore its content hash and cached artifacts.
    if let Some(bias) = config.importance_bias {
        value["importance_bias"] = serde_json::json!(bias);
    }
    value
}

/// An optional boolean field defaulting to `default` when absent or null
/// (keeps pre-word-path spec files parseable).
fn bool_field_or(value: &Value, key: &str, default: bool) -> Result<bool, SpecError> {
    match value.get(key) {
        Some(v) if !v.is_null() => v
            .as_bool()
            .ok_or_else(|| SpecError(format!("`{key}` must be a boolean"))),
        _ => Ok(default),
    }
}

/// An optional integer field defaulting to `default` when absent or null
/// (keeps pre-dense-tier spec files parseable).
fn usize_field_or(value: &Value, key: &str, default: usize) -> Result<usize, SpecError> {
    match value.get(key) {
        Some(v) if !v.is_null() => v
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| SpecError(format!("`{key}` must be an integer"))),
        _ => Ok(default),
    }
}

fn estimator_from_json(value: &Value) -> Result<EstimatorConfig, SpecError> {
    let memo = field(value, "memo")?;
    Ok(EstimatorConfig {
        chunk_shots: usize_field(value, "chunk_shots")?,
        num_threads: match value.get("num_threads") {
            Some(v) if !v.is_null() => Some(
                v.as_u64()
                    .ok_or_else(|| SpecError("`num_threads` must be an integer".into()))?
                    as usize,
            ),
            _ => None,
        },
        target_std_error: match value.get("target_std_error") {
            Some(v) if !v.is_null() => Some(
                v.as_f64()
                    .ok_or_else(|| SpecError("`target_std_error` must be a number".into()))?,
            ),
            _ => None,
        },
        max_failures: match value.get("max_failures") {
            Some(v) if !v.is_null() => Some(
                v.as_u64()
                    .ok_or_else(|| SpecError("`max_failures` must be an integer".into()))?
                    as usize,
            ),
            _ => None,
        },
        memo: MemoConfig {
            max_defects: usize_field(memo, "max_defects")?,
            max_entries: usize_field(memo, "max_entries")?,
            dense_max_entries: usize_field_or(
                memo,
                "dense_max_entries",
                qccd_decoder::DEFAULT_DENSE_MAX_ENTRIES,
            )?,
        },
        word_decode: bool_field_or(value, "word_decode", true)?,
        shared_memo: bool_field_or(value, "shared_memo", true)?,
        importance_bias: match value.get("importance_bias") {
            Some(v) if !v.is_null() => Some(
                v.as_f64()
                    .ok_or_else(|| SpecError("`importance_bias` must be a number".into()))?,
            ),
            _ => None,
        },
    })
}

// ---------------------------------------------------------------------------
// Architecture and workload points
// ---------------------------------------------------------------------------

/// One architecture point of a spec's grid: the declarative subset of
/// [`ArchitectureConfig`] (timing model and noise parameters are derived
/// from the wiring and gate improvement, exactly as
/// [`ArchitectureConfig::new`] does).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchPoint {
    /// Display label (defaults to `"{topology} c{capacity}"`).
    pub label: Option<String>,
    /// Communication topology family.
    pub topology: TopologyKind,
    /// Trap capacity.
    pub capacity: usize,
    /// Control-system wiring.
    pub wiring: WiringMethod,
    /// Uniform gate-improvement factor (the noise-scaling axis).
    pub gate_improvement: f64,
}

impl ArchPoint {
    /// A point with every axis explicit and the default label.
    pub fn new(
        topology: TopologyKind,
        capacity: usize,
        wiring: WiringMethod,
        gate_improvement: f64,
    ) -> Self {
        ArchPoint {
            label: None,
            topology,
            capacity,
            wiring,
            gate_improvement,
        }
    }

    /// A standard-wiring grid point (the paper's recommended family).
    pub fn grid(capacity: usize, gate_improvement: f64) -> Self {
        ArchPoint::new(
            TopologyKind::Grid,
            capacity,
            WiringMethod::Standard,
            gate_improvement,
        )
    }

    /// Overrides the display label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The display label ("{topology} c{capacity}" unless overridden).
    pub fn display_label(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| format!("{} c{}", self.topology, self.capacity))
    }

    /// Builds the full architecture configuration of this point.
    pub fn build(&self) -> ArchitectureConfig {
        ArchitectureConfig::new(
            self.topology,
            self.capacity,
            self.wiring,
            self.gate_improvement,
        )
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "label": self.label,
            "topology": topology_name(self.topology),
            "capacity": self.capacity,
            "wiring": wiring_name(self.wiring),
            "gate_improvement": self.gate_improvement,
        })
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on missing or ill-typed fields.
    pub fn from_json(value: &Value) -> Result<Self, SpecError> {
        Ok(ArchPoint {
            label: match value.get("label") {
                Some(v) if !v.is_null() => Some(
                    v.as_str()
                        .ok_or_else(|| SpecError("`label` must be a string".into()))?
                        .to_string(),
                ),
                _ => None,
            },
            topology: topology_from_name(&str_field(value, "topology")?)?,
            capacity: usize_field(value, "capacity")?,
            wiring: wiring_from_name(&str_field(value, "wiring")?)?,
            gate_improvement: f64_field(value, "gate_improvement")?,
        })
    }

    fn validate(&self) -> Result<(), SpecError> {
        if self.capacity == 0 {
            return err("trap capacity must be positive");
        }
        if !(self.gate_improvement.is_finite() && self.gate_improvement > 0.0) {
            return err("gate improvement must be a positive finite number");
        }
        Ok(())
    }
}

fn arch_points_to_json(points: &[ArchPoint]) -> Value {
    Value::Array(points.iter().map(ArchPoint::to_json).collect())
}

fn arch_points_from_json(value: &Value, key: &str) -> Result<Vec<ArchPoint>, SpecError> {
    array_field(value, key)?
        .iter()
        .map(ArchPoint::from_json)
        .collect()
}

/// A declarative QEC-code workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeSpec {
    /// 1-D repetition code of the given distance.
    Repetition {
        /// Code distance.
        distance: usize,
    },
    /// Rotated surface code of the given distance (the primary workload).
    RotatedSurface {
        /// Code distance.
        distance: usize,
    },
    /// Unrotated surface code of the given distance.
    UnrotatedSurface {
        /// Code distance.
        distance: usize,
    },
}

impl CodeSpec {
    /// Builds the code layout this spec describes.
    pub fn build(&self) -> qccd_qec::CodeLayout {
        match *self {
            CodeSpec::Repetition { distance } => qccd_qec::repetition_code(distance),
            CodeSpec::RotatedSurface { distance } => qccd_qec::rotated_surface_code(distance),
            CodeSpec::UnrotatedSurface { distance } => qccd_qec::unrotated_surface_code(distance),
        }
    }

    /// The code distance.
    pub fn distance(&self) -> usize {
        match *self {
            CodeSpec::Repetition { distance }
            | CodeSpec::RotatedSurface { distance }
            | CodeSpec::UnrotatedSurface { distance } => distance,
        }
    }

    fn family(&self) -> &'static str {
        match self {
            CodeSpec::Repetition { .. } => "repetition",
            CodeSpec::RotatedSurface { .. } => "rotated_surface",
            CodeSpec::UnrotatedSurface { .. } => "unrotated_surface",
        }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> Value {
        serde_json::json!({"family": self.family(), "distance": self.distance()})
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on an unknown family or bad distance.
    pub fn from_json(value: &Value) -> Result<Self, SpecError> {
        let distance = usize_field(value, "distance")?;
        match str_field(value, "family")?.as_str() {
            "repetition" => Ok(CodeSpec::Repetition { distance }),
            "rotated_surface" => Ok(CodeSpec::RotatedSurface { distance }),
            "unrotated_surface" => Ok(CodeSpec::UnrotatedSurface { distance }),
            other => err(format!("unknown code family `{other}`")),
        }
    }

    fn validate(&self) -> Result<(), SpecError> {
        if self.distance() < 2 {
            return err("code distance must be at least 2");
        }
        Ok(())
    }
}

/// One labelled compile case: a code on a topology at a trap capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileCase {
    /// Display label.
    pub label: String,
    /// The QEC-code workload.
    pub code: CodeSpec,
    /// Communication topology.
    pub topology: TopologyKind,
    /// Trap capacity.
    pub capacity: usize,
}

impl CompileCase {
    /// Creates a case.
    pub fn new(
        label: impl Into<String>,
        code: CodeSpec,
        topology: TopologyKind,
        capacity: usize,
    ) -> Self {
        CompileCase {
            label: label.into(),
            code,
            topology,
            capacity,
        }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "label": self.label,
            "code": self.code.to_json(),
            "topology": topology_name(self.topology),
            "capacity": self.capacity,
        })
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on missing or ill-typed fields.
    pub fn from_json(value: &Value) -> Result<Self, SpecError> {
        Ok(CompileCase {
            label: str_field(value, "label")?,
            code: CodeSpec::from_json(field(value, "code")?)?,
            topology: topology_from_name(&str_field(value, "topology")?)?,
            capacity: usize_field(value, "capacity")?,
        })
    }

    fn validate(&self) -> Result<(), SpecError> {
        if self.label.is_empty() {
            return err("compile case label must be non-empty");
        }
        if self.capacity == 0 {
            return err("trap capacity must be positive");
        }
        self.code.validate()
    }
}

fn cases_to_json(cases: &[CompileCase]) -> Value {
    Value::Array(cases.iter().map(CompileCase::to_json).collect())
}

fn cases_from_json(value: &Value, key: &str) -> Result<Vec<CompileCase>, SpecError> {
    array_field(value, key)?
        .iter()
        .map(CompileCase::from_json)
        .collect()
}

// ---------------------------------------------------------------------------
// Experiment kinds
// ---------------------------------------------------------------------------

/// Which derived quantity a [`LerSweepSpec`] reports per configuration,
/// beyond the sampled points that every LER artefact carries.
#[derive(Debug, Clone, PartialEq)]
pub enum LerOutput {
    /// One table column per sampled distance with the raw LER.
    SampledRates,
    /// The error-suppression factor Λ with its 95% confidence interval.
    Lambda,
    /// Projected LERs at larger distances plus the distance required to
    /// reach `target`.
    Projection {
        /// Distances to project the fit to.
        distances: Vec<usize>,
        /// Target logical error rate for the required-distance column.
        target: f64,
    },
    /// Electrode counts of the device sized for each target LER.
    Electrodes {
        /// Target logical error rates.
        targets: Vec<f64>,
    },
    /// Controller-to-QPU data rate (and optionally power) at each target.
    DataRate {
        /// Target logical error rates.
        targets: Vec<f64>,
        /// Whether to report power dissipation alongside the data rate.
        include_power: bool,
    },
    /// QEC shot time at the distance required for each target.
    ShotTime {
        /// Target logical error rates.
        targets: Vec<f64>,
    },
}

impl LerOutput {
    /// Serializes to JSON.
    pub fn to_json(&self) -> Value {
        match self {
            LerOutput::SampledRates => serde_json::json!({"output": "sampled_rates"}),
            LerOutput::Lambda => serde_json::json!({"output": "lambda"}),
            LerOutput::Projection { distances, target } => serde_json::json!({
                "output": "projection",
                "distances": distances.clone(),
                "target": *target,
            }),
            LerOutput::Electrodes { targets } => serde_json::json!({
                "output": "electrodes",
                "targets": targets.clone(),
            }),
            LerOutput::DataRate {
                targets,
                include_power,
            } => serde_json::json!({
                "output": "data_rate",
                "targets": targets.clone(),
                "include_power": *include_power,
            }),
            LerOutput::ShotTime { targets } => serde_json::json!({
                "output": "shot_time",
                "targets": targets.clone(),
            }),
        }
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on an unknown output kind.
    pub fn from_json(value: &Value) -> Result<Self, SpecError> {
        match str_field(value, "output")?.as_str() {
            "sampled_rates" => Ok(LerOutput::SampledRates),
            "lambda" => Ok(LerOutput::Lambda),
            "projection" => Ok(LerOutput::Projection {
                distances: usize_list(value, "distances")?,
                target: f64_field(value, "target")?,
            }),
            "electrodes" => Ok(LerOutput::Electrodes {
                targets: f64_list(value, "targets")?,
            }),
            "data_rate" => Ok(LerOutput::DataRate {
                targets: f64_list(value, "targets")?,
                include_power: bool_field(value, "include_power")?,
            }),
            "shot_time" => Ok(LerOutput::ShotTime {
                targets: f64_list(value, "targets")?,
            }),
            other => err(format!("unknown LER output `{other}`")),
        }
    }

    fn validate(&self) -> Result<(), SpecError> {
        let targets = match self {
            LerOutput::SampledRates | LerOutput::Lambda => return Ok(()),
            LerOutput::Projection { distances, target } => {
                if distances.is_empty() {
                    return err("projection distances must be non-empty");
                }
                std::slice::from_ref(target)
            }
            LerOutput::Electrodes { targets }
            | LerOutput::DataRate { targets, .. }
            | LerOutput::ShotTime { targets } => targets.as_slice(),
        };
        if targets.is_empty() {
            return err("target list must be non-empty");
        }
        for &t in targets {
            if !(t.is_finite() && t > 0.0 && t < 1.0) {
                return err(format!("target LER {t} must be in (0, 1)"));
            }
        }
        Ok(())
    }
}

/// A Monte-Carlo logical-error-rate sweep over an architecture grid, with
/// Λ fits and declarative derived outputs (Figures 8b and 10–13).
#[derive(Debug, Clone, PartialEq)]
pub struct LerSweepSpec {
    /// The architecture grid.
    pub configurations: Vec<ArchPoint>,
    /// Code distances to sample by Monte Carlo.
    pub sample_distances: Vec<usize>,
    /// Shots per `(configuration, distance)` point.
    pub shots: usize,
    /// Decoder for every point.
    pub decoder: DecoderKind,
    /// Monte-Carlo pipeline configuration.
    pub estimator: EstimatorConfig,
    /// Derived columns to report.
    pub outputs: Vec<LerOutput>,
}

/// Which compile-only timing metric a [`TimingSweepSpec`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingMetric {
    /// Elapsed time of one QEC round (Figure 8a).
    RoundTime,
    /// Elapsed time of one QEC shot, i.e. `d` rounds (Figure 9).
    ShotTime,
}

impl TimingMetric {
    fn name(self) -> &'static str {
        match self {
            TimingMetric::RoundTime => "round_time",
            TimingMetric::ShotTime => "shot_time",
        }
    }

    fn from_name(name: &str) -> Result<Self, SpecError> {
        match name {
            "round_time" => Ok(TimingMetric::RoundTime),
            "shot_time" => Ok(TimingMetric::ShotTime),
            other => err(format!("unknown timing metric `{other}`")),
        }
    }
}

/// A compile-only timing sweep over architectures × distances (Figures 8a
/// and 9).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingSweepSpec {
    /// The architecture grid.
    pub configurations: Vec<ArchPoint>,
    /// Code distances to evaluate.
    pub distances: Vec<usize>,
    /// Which elapsed-time metric to report.
    pub metric: TimingMetric,
    /// Whether to append the fully-parallel lower bound and fully-serial
    /// upper bound rows (Figure 9's framing).
    pub include_bounds: bool,
}

/// Compiler results versus theoretical bounds per compile case (Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerBoundsSpec {
    /// The compile cases.
    pub cases: Vec<CompileCase>,
}

/// Our compiler versus the QCCDSim-style and Muzzle-the-Shuttle-style
/// baselines (Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineComparisonSpec {
    /// The compile cases.
    pub cases: Vec<CompileCase>,
    /// QEC rounds per compile.
    pub rounds: usize,
}

/// Lattice-surgery merged patch versus isolated patch round times
/// (extension E1).
#[derive(Debug, Clone, PartialEq)]
pub struct SurgerySpec {
    /// Trap capacities of the grid devices.
    pub capacities: Vec<usize>,
    /// Patch distances.
    pub distances: Vec<usize>,
    /// Merge orientation.
    pub merge: MergeKind,
    /// Gate-improvement factor of the architectures.
    pub gate_improvement: f64,
}

/// Logical error rate per decoder on identical compiled experiments
/// (extension E3).
#[derive(Debug, Clone, PartialEq)]
pub struct DecoderComparisonSpec {
    /// Code distances.
    pub distances: Vec<usize>,
    /// Gate-improvement factors.
    pub improvements: Vec<f64>,
    /// Decoders to compare (each sees the same sampled shots).
    pub decoders: Vec<DecoderKind>,
    /// Monte-Carlo shots per case.
    pub shots: usize,
    /// Trap capacity of the grid device.
    pub capacity: usize,
}

/// Geometric versus round-robin clustering ablation (extension E2).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringAblationSpec {
    /// Code distances.
    pub distances: Vec<usize>,
    /// Trap capacities.
    pub capacities: Vec<usize>,
}

/// Dense-tail triage profile: the defect-count histogram of a sampled
/// syndrome stream plus the warm decode time under each memo tier
/// configuration (full dense tier, dense tier off, memo off).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTailSpec {
    /// Code distances.
    pub distances: Vec<usize>,
    /// Code-capacity depolarising rate per data qubit per round.
    pub p: f64,
    /// Sampled shots per distance.
    pub shots: usize,
}

/// Importance-sampled rare-event LER validation: every `(configuration,
/// distance)` point is evaluated twice — plain Monte Carlo with `shots`
/// shots and importance-sampled with `biased_shots` shots at bias factor
/// `bias` — and the artefact reports both estimates side by side with their
/// 2σ agreement and the shot-efficiency ratio at equal relative error.
#[derive(Debug, Clone, PartialEq)]
pub struct RareEventLerSpec {
    /// The architecture grid.
    pub configurations: Vec<ArchPoint>,
    /// Code distances to evaluate under both estimators.
    pub sample_distances: Vec<usize>,
    /// Plain Monte-Carlo shots per point.
    pub shots: usize,
    /// Importance-sampled shots per point (typically far fewer).
    pub biased_shots: usize,
    /// Bias factor: every noise probability is scaled by this (clamped at
    /// 0.5) in the sampled circuit.
    pub bias: f64,
    /// Decoder for every point.
    pub decoder: DecoderKind,
    /// Monte-Carlo pipeline configuration shared by both estimators (the
    /// biased points additionally carry `importance_bias = bias`).
    pub estimator: EstimatorConfig,
}

/// The experiment family and its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentKind {
    /// Monte-Carlo LER sweep with fits and derived outputs.
    LerSweep(LerSweepSpec),
    /// Importance-sampled vs plain-MC rare-event LER comparison.
    RareEventLer(RareEventLerSpec),
    /// Compile-only timing sweep.
    TimingSweep(TimingSweepSpec),
    /// Compiler versus theoretical bounds.
    CompilerBounds(CompilerBoundsSpec),
    /// Compiler versus baseline compilers.
    BaselineComparison(BaselineComparisonSpec),
    /// Lattice-surgery merged-patch experiment.
    Surgery(SurgerySpec),
    /// Decoder ablation.
    DecoderComparison(DecoderComparisonSpec),
    /// Clustering-strategy ablation.
    ClusteringAblation(ClusteringAblationSpec),
    /// Dense-tail triage and tier-timing profile.
    DenseTail(DenseTailSpec),
}

/// One fully-declarative experiment: a named point of the paper's
/// design-space exploration loop (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Registry name (e.g. `"fig09"`).
    pub name: String,
    /// Human-readable title printed above the table.
    pub title: String,
    /// Sweep-engine seed: every Monte-Carlo point derives its sampling seed
    /// from this and its point index.
    pub seed: u64,
    /// The experiment family and parameters.
    pub kind: ExperimentKind,
}

impl ExperimentSpec {
    /// Serializes the spec to a JSON value.
    pub fn to_json(&self) -> Value {
        let experiment = match &self.kind {
            ExperimentKind::LerSweep(spec) => serde_json::json!({
                "experiment": "ler_sweep",
                "configurations": arch_points_to_json(&spec.configurations),
                "sample_distances": spec.sample_distances.clone(),
                "shots": spec.shots,
                "decoder": decoder_name(spec.decoder),
                "estimator": estimator_to_json(&spec.estimator),
                "outputs": Value::Array(spec.outputs.iter().map(LerOutput::to_json).collect()),
            }),
            ExperimentKind::RareEventLer(spec) => serde_json::json!({
                "experiment": "rare_event_ler",
                "configurations": arch_points_to_json(&spec.configurations),
                "sample_distances": spec.sample_distances.clone(),
                "shots": spec.shots,
                "biased_shots": spec.biased_shots,
                "bias": spec.bias,
                "decoder": decoder_name(spec.decoder),
                "estimator": estimator_to_json(&spec.estimator),
            }),
            ExperimentKind::TimingSweep(spec) => serde_json::json!({
                "experiment": "timing_sweep",
                "configurations": arch_points_to_json(&spec.configurations),
                "distances": spec.distances.clone(),
                "metric": spec.metric.name(),
                "include_bounds": spec.include_bounds,
            }),
            ExperimentKind::CompilerBounds(spec) => serde_json::json!({
                "experiment": "compiler_bounds",
                "cases": cases_to_json(&spec.cases),
            }),
            ExperimentKind::BaselineComparison(spec) => serde_json::json!({
                "experiment": "baseline_comparison",
                "cases": cases_to_json(&spec.cases),
                "rounds": spec.rounds,
            }),
            ExperimentKind::Surgery(spec) => serde_json::json!({
                "experiment": "surgery",
                "capacities": spec.capacities.clone(),
                "distances": spec.distances.clone(),
                "merge": merge_name(spec.merge),
                "gate_improvement": spec.gate_improvement,
            }),
            ExperimentKind::DecoderComparison(spec) => serde_json::json!({
                "experiment": "decoder_comparison",
                "distances": spec.distances.clone(),
                "improvements": spec.improvements.clone(),
                "decoders": Value::Array(
                    spec.decoders.iter().map(|d| Value::from(decoder_name(*d))).collect(),
                ),
                "shots": spec.shots,
                "capacity": spec.capacity,
            }),
            ExperimentKind::ClusteringAblation(spec) => serde_json::json!({
                "experiment": "clustering_ablation",
                "distances": spec.distances.clone(),
                "capacities": spec.capacities.clone(),
            }),
            ExperimentKind::DenseTail(spec) => serde_json::json!({
                "experiment": "dense_tail",
                "distances": spec.distances.clone(),
                "p": spec.p,
                "shots": spec.shots,
            }),
        };
        serde_json::json!({
            "name": self.name,
            "title": self.title,
            "seed": self.seed,
            "experiment": experiment,
        })
    }

    /// Parses a spec from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on missing fields, ill-typed values or an
    /// unknown experiment family.
    pub fn from_json(value: &Value) -> Result<Self, SpecError> {
        let experiment = field(value, "experiment")?;
        let kind = match str_field(experiment, "experiment")?.as_str() {
            "ler_sweep" => {
                let decoders = str_field(experiment, "decoder")?;
                ExperimentKind::LerSweep(LerSweepSpec {
                    configurations: arch_points_from_json(experiment, "configurations")?,
                    sample_distances: usize_list(experiment, "sample_distances")?,
                    shots: usize_field(experiment, "shots")?,
                    decoder: decoder_from_name(&decoders)?,
                    estimator: estimator_from_json(field(experiment, "estimator")?)?,
                    outputs: array_field(experiment, "outputs")?
                        .iter()
                        .map(LerOutput::from_json)
                        .collect::<Result<_, _>>()?,
                })
            }
            "rare_event_ler" => ExperimentKind::RareEventLer(RareEventLerSpec {
                configurations: arch_points_from_json(experiment, "configurations")?,
                sample_distances: usize_list(experiment, "sample_distances")?,
                shots: usize_field(experiment, "shots")?,
                biased_shots: usize_field(experiment, "biased_shots")?,
                bias: f64_field(experiment, "bias")?,
                decoder: decoder_from_name(&str_field(experiment, "decoder")?)?,
                estimator: estimator_from_json(field(experiment, "estimator")?)?,
            }),
            "timing_sweep" => ExperimentKind::TimingSweep(TimingSweepSpec {
                configurations: arch_points_from_json(experiment, "configurations")?,
                distances: usize_list(experiment, "distances")?,
                metric: TimingMetric::from_name(&str_field(experiment, "metric")?)?,
                include_bounds: bool_field(experiment, "include_bounds")?,
            }),
            "compiler_bounds" => ExperimentKind::CompilerBounds(CompilerBoundsSpec {
                cases: cases_from_json(experiment, "cases")?,
            }),
            "baseline_comparison" => ExperimentKind::BaselineComparison(BaselineComparisonSpec {
                cases: cases_from_json(experiment, "cases")?,
                rounds: usize_field(experiment, "rounds")?,
            }),
            "surgery" => ExperimentKind::Surgery(SurgerySpec {
                capacities: usize_list(experiment, "capacities")?,
                distances: usize_list(experiment, "distances")?,
                merge: merge_from_name(&str_field(experiment, "merge")?)?,
                gate_improvement: f64_field(experiment, "gate_improvement")?,
            }),
            "decoder_comparison" => ExperimentKind::DecoderComparison(DecoderComparisonSpec {
                distances: usize_list(experiment, "distances")?,
                improvements: f64_list(experiment, "improvements")?,
                decoders: array_field(experiment, "decoders")?
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .ok_or_else(|| SpecError("`decoders` entries must be strings".into()))
                            .and_then(decoder_from_name)
                    })
                    .collect::<Result<_, _>>()?,
                shots: usize_field(experiment, "shots")?,
                capacity: usize_field(experiment, "capacity")?,
            }),
            "clustering_ablation" => ExperimentKind::ClusteringAblation(ClusteringAblationSpec {
                distances: usize_list(experiment, "distances")?,
                capacities: usize_list(experiment, "capacities")?,
            }),
            "dense_tail" => ExperimentKind::DenseTail(DenseTailSpec {
                distances: usize_list(experiment, "distances")?,
                p: f64_field(experiment, "p")?,
                shots: usize_field(experiment, "shots")?,
            }),
            other => return err(format!("unknown experiment kind `{other}`")),
        };
        Ok(ExperimentSpec {
            name: str_field(value, "name")?,
            title: str_field(value, "title")?,
            seed: u64_field(value, "seed")?,
            kind,
        })
    }

    /// Validates the spec's parameters (non-empty grids, positive shot
    /// counts, workload distances ≥ 2, targets in `(0, 1)`, …). A spec that
    /// validates never panics at execution time.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] found.
    pub fn validate(&self) -> Result<(), SpecError> {
        // The code constructors assert `distance >= 2`; reject smaller
        // workload distances here so a validated spec cannot panic inside
        // the sweep engine's worker pool.
        fn distances_at_least_two(distances: &[usize], what: &str) -> Result<(), SpecError> {
            match distances.iter().find(|&&d| d < 2) {
                Some(d) => err(format!("{what} distance {d} is below the minimum of 2")),
                None => Ok(()),
            }
        }
        if self.name.is_empty() {
            return err("spec name must be non-empty");
        }
        if self.title.is_empty() {
            return err("spec title must be non-empty");
        }
        match &self.kind {
            ExperimentKind::LerSweep(spec) => {
                if spec.configurations.is_empty() {
                    return err("LER sweep needs at least one configuration");
                }
                if spec.sample_distances.is_empty() {
                    return err("LER sweep needs at least one sample distance");
                }
                distances_at_least_two(&spec.sample_distances, "LER sweep")?;
                if spec.shots == 0 {
                    return err("LER sweep needs a positive shot count");
                }
                for point in &spec.configurations {
                    point.validate()?;
                }
                for output in &spec.outputs {
                    output.validate()?;
                }
                Ok(())
            }
            ExperimentKind::RareEventLer(spec) => {
                if spec.configurations.is_empty() {
                    return err("rare-event LER comparison needs at least one configuration");
                }
                if spec.sample_distances.is_empty() {
                    return err("rare-event LER comparison needs at least one sample distance");
                }
                distances_at_least_two(&spec.sample_distances, "rare-event LER comparison")?;
                if spec.shots == 0 || spec.biased_shots == 0 {
                    return err("rare-event LER comparison needs positive shot counts");
                }
                if !(spec.bias.is_finite() && spec.bias >= 1.0) {
                    return err("rare-event bias must be a finite factor of at least 1");
                }
                for point in &spec.configurations {
                    point.validate()?;
                }
                Ok(())
            }
            ExperimentKind::TimingSweep(spec) => {
                if spec.configurations.is_empty() || spec.distances.is_empty() {
                    return err("timing sweep needs configurations and distances");
                }
                distances_at_least_two(&spec.distances, "timing sweep")?;
                for point in &spec.configurations {
                    point.validate()?;
                }
                Ok(())
            }
            ExperimentKind::CompilerBounds(spec) => {
                if spec.cases.is_empty() {
                    return err("compiler-bounds experiment needs at least one case");
                }
                spec.cases.iter().try_for_each(CompileCase::validate)
            }
            ExperimentKind::BaselineComparison(spec) => {
                if spec.cases.is_empty() {
                    return err("baseline comparison needs at least one case");
                }
                if spec.rounds == 0 {
                    return err("baseline comparison needs a positive round count");
                }
                spec.cases.iter().try_for_each(CompileCase::validate)
            }
            ExperimentKind::Surgery(spec) => {
                if spec.capacities.is_empty() || spec.distances.is_empty() {
                    return err("surgery experiment needs capacities and distances");
                }
                distances_at_least_two(&spec.distances, "surgery")?;
                if spec.capacities.contains(&0) {
                    return err("surgery capacities must be positive");
                }
                if !(spec.gate_improvement.is_finite() && spec.gate_improvement > 0.0) {
                    return err("gate improvement must be a positive finite number");
                }
                Ok(())
            }
            ExperimentKind::DecoderComparison(spec) => {
                if spec.distances.is_empty()
                    || spec.improvements.is_empty()
                    || spec.decoders.is_empty()
                {
                    return err("decoder comparison needs distances, improvements and decoders");
                }
                distances_at_least_two(&spec.distances, "decoder comparison")?;
                if spec.shots == 0 || spec.capacity == 0 {
                    return err("decoder comparison needs positive shots and capacity");
                }
                if spec
                    .improvements
                    .iter()
                    .any(|&x| !(x.is_finite() && x > 0.0))
                {
                    return err("gate improvements must be positive finite numbers");
                }
                Ok(())
            }
            ExperimentKind::ClusteringAblation(spec) => {
                if spec.distances.is_empty() || spec.capacities.is_empty() {
                    return err("clustering ablation needs distances and capacities");
                }
                distances_at_least_two(&spec.distances, "clustering ablation")?;
                if spec.capacities.iter().any(|&c| c < 2) {
                    return err("clustering ablation capacities must be at least 2");
                }
                Ok(())
            }
            ExperimentKind::DenseTail(spec) => {
                if spec.distances.is_empty() {
                    return err("dense-tail profile needs at least one distance");
                }
                distances_at_least_two(&spec.distances, "dense-tail profile")?;
                if spec.shots == 0 {
                    return err("dense-tail profile needs a positive shot count");
                }
                if !(spec.p.is_finite() && spec.p > 0.0 && spec.p < 1.0) {
                    return err("dense-tail physical error rate must lie in (0, 1)");
                }
                Ok(())
            }
        }
    }

    /// Canonical compact JSON encoding (object keys sorted, no whitespace)
    /// — the preimage of [`ExperimentSpec::content_hash`].
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(&self.to_json()).expect("serialization cannot fail")
    }

    /// A stable content hash of the spec (FNV-1a over the canonical JSON),
    /// used to key the artifact cache: any semantic change to the spec
    /// changes the hash; formatting cannot.
    pub fn content_hash(&self) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.canonical_json().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{hash:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "demo".into(),
            title: "Demo sweep".into(),
            seed: 2026,
            kind: ExperimentKind::LerSweep(LerSweepSpec {
                configurations: vec![
                    ArchPoint::grid(2, 5.0).with_label("grid c2"),
                    ArchPoint::new(TopologyKind::Switch, 3, WiringMethod::Wise, 1.5),
                ],
                sample_distances: vec![3, 5],
                shots: 512,
                decoder: DecoderKind::UnionFind,
                estimator: EstimatorConfig::default(),
                outputs: vec![
                    LerOutput::SampledRates,
                    LerOutput::Lambda,
                    LerOutput::Projection {
                        distances: vec![7, 9],
                        target: 1e-9,
                    },
                ],
            }),
        }
    }

    #[test]
    fn spec_round_trips_through_json_text() {
        let spec = sample_spec();
        let text = serde_json::to_string_pretty(&spec.to_json()).unwrap();
        let parsed = ExperimentSpec::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn content_hash_tracks_semantics_not_formatting() {
        let spec = sample_spec();
        let mut reseeded = sample_spec();
        reseeded.seed += 1;
        assert_eq!(spec.content_hash(), sample_spec().content_hash());
        assert_ne!(spec.content_hash(), reseeded.content_hash());
        assert_eq!(spec.content_hash().len(), 16);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let mut spec = sample_spec();
        assert!(spec.validate().is_ok());
        if let ExperimentKind::LerSweep(ref mut s) = spec.kind {
            s.shots = 0;
        }
        assert!(spec.validate().is_err());

        let mut bad_target = sample_spec();
        if let ExperimentKind::LerSweep(ref mut s) = bad_target.kind {
            s.outputs = vec![LerOutput::Electrodes { targets: vec![2.0] }];
        }
        assert!(bad_target.validate().is_err());

        // Workload distances below 2 would panic in the code constructors;
        // validation must reject them first.
        let mut bad_distance = sample_spec();
        if let ExperimentKind::LerSweep(ref mut s) = bad_distance.kind {
            s.sample_distances = vec![3, 1];
        }
        assert!(bad_distance.validate().is_err());
        let surgery_d1 = ExperimentSpec {
            name: "s".into(),
            title: "s".into(),
            seed: 0,
            kind: ExperimentKind::Surgery(SurgerySpec {
                capacities: vec![2],
                distances: vec![1],
                merge: MergeKind::ZZ,
                gate_improvement: 1.0,
            }),
        };
        assert!(surgery_d1.validate().is_err());

        let empty_name = ExperimentSpec {
            name: String::new(),
            ..sample_spec()
        };
        assert!(empty_name.validate().is_err());
    }

    #[test]
    fn arch_point_builds_the_architecture_it_describes() {
        let point = ArchPoint::new(TopologyKind::Switch, 3, WiringMethod::Wise, 5.0);
        let arch = point.build();
        assert_eq!(arch.capacity(), 3);
        assert_eq!(arch.topology_kind(), TopologyKind::Switch);
        assert!(arch.noise.cooled, "WISE wiring derives the cooled noise");
        assert_eq!(point.display_label(), "switch c3");
        assert_eq!(point.clone().with_label("x").display_label(), "x");
    }

    #[test]
    fn code_spec_builds_layouts() {
        assert_eq!(
            CodeSpec::RotatedSurface { distance: 3 }
                .build()
                .num_qubits(),
            17
        );
        assert_eq!(CodeSpec::Repetition { distance: 5 }.build().num_qubits(), 9);
        let round_trip =
            CodeSpec::from_json(&CodeSpec::UnrotatedSurface { distance: 4 }.to_json()).unwrap();
        assert_eq!(round_trip, CodeSpec::UnrotatedSurface { distance: 4 });
    }

    #[test]
    fn unknown_fields_and_kinds_are_rejected() {
        assert!(ExperimentSpec::from_json(&serde_json::json!({})).is_err());
        let bad_kind = serde_json::json!({
            "name": "x", "title": "x", "seed": 1,
            "experiment": {"experiment": "nonsense"},
        });
        assert!(ExperimentSpec::from_json(&bad_kind).is_err());
        assert!(decoder_from_name("quantum").is_err());
        assert!(topology_from_name("torus").is_err());
    }
}
