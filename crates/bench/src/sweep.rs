//! Sharded logical-error-rate sweeps over architecture points.
//!
//! The figure/table binaries evaluate grids of `(architecture, distance,
//! decoder)` points. This module flattens such grids into [`LerPoint`]s and
//! shards them across a [`SweepEngine`] worker pool — whole points run in
//! parallel in the outer pool while each point's Monte-Carlo pipeline keeps
//! its inner chunk parallelism.
//!
//! # Determinism
//!
//! Every point samples with the seed `sweep_seed(engine seed, point index)`
//! and results come back in input order, so a sweep's outcome is a pure
//! function of `(engine seed, points)` — independent of thread counts or
//! scheduling. The golden regression test in `tests/golden_sweep.rs` pins
//! this end to end (compiler → sampler → decoder → estimator).

use qccd_core::{ArchitectureConfig, Toolflow, ToolflowSpec};
use qccd_decoder::{
    fit_lambda_weighted, CacheStats, DecoderKind, EstimatorConfig, LambdaFit, LogicalErrorEstimate,
    SweepEngine,
};

/// Engine seed used by the figure/table binaries (matches the historical
/// `Toolflow` default).
pub const DEFAULT_SWEEP_SEED: u64 = 2026;

/// One logical-error-rate sweep point.
#[derive(Debug, Clone)]
pub struct LerPoint {
    /// Display label of the architecture/configuration.
    pub label: String,
    /// Architecture under evaluation.
    pub arch: ArchitectureConfig,
    /// Code distance of the rotated-surface-code workload.
    pub distance: usize,
    /// Decoder used for the estimate.
    pub decoder: DecoderKind,
    /// Monte-Carlo shots requested.
    pub shots: usize,
    /// Monte-Carlo pipeline configuration (chunking, threads, early stop,
    /// memoization).
    pub estimator: EstimatorConfig,
}

impl LerPoint {
    /// A point with the default (union-find) decoder and pipeline defaults.
    pub fn new(
        label: impl Into<String>,
        arch: ArchitectureConfig,
        distance: usize,
        shots: usize,
    ) -> Self {
        LerPoint {
            label: label.into(),
            arch,
            distance,
            decoder: DecoderKind::default(),
            shots,
            estimator: EstimatorConfig::default(),
        }
    }

    /// Overrides the decoder.
    pub fn with_decoder(mut self, decoder: DecoderKind) -> Self {
        self.decoder = decoder;
        self
    }

    /// Overrides the Monte-Carlo pipeline configuration.
    pub fn with_estimator(mut self, estimator: EstimatorConfig) -> Self {
        self.estimator = estimator;
        self
    }

    /// The declarative [`ToolflowSpec`] this point lowers onto for a given
    /// sampling seed.
    pub fn toolflow_spec(&self, seed: u64) -> ToolflowSpec {
        ToolflowSpec {
            arch: self.arch.clone(),
            distance: self.distance,
            shots: self.shots,
            seed,
            decoder: self.decoder,
            estimator: self.estimator,
            estimate_ler: true,
        }
    }
}

/// The result of one sweep point.
#[derive(Debug, Clone)]
pub struct LerOutcome {
    /// Label of the evaluated point (copied from the input).
    pub label: String,
    /// Code distance of the evaluated point.
    pub distance: usize,
    /// Decoder used.
    pub decoder: DecoderKind,
    /// Deterministic per-point sampling seed the engine assigned.
    pub seed: u64,
    /// Shots requested (the estimate may stop earlier).
    pub shots_requested: usize,
    /// The Monte-Carlo estimate, or the compile error message.
    pub result: Result<LogicalErrorEstimate, String>,
    /// Aggregate decoder cache statistics of the estimate (word-triage
    /// verdicts, memo hit/miss counters); `None` on compile failure. The
    /// `*_words` counters and `uncacheable` are scheduling-invariant; see
    /// [`qccd_decoder::EstimateReport`] for the exact contract.
    pub cache: Option<CacheStats>,
}

/// Evaluates one sweep point at an explicit sampling seed, through the
/// declarative toolflow entry point ([`Toolflow::run_spec`]: compile →
/// sample → batch decode).
///
/// This is the single evaluation body shared by every execution tier —
/// [`run_ler_sweep`]'s in-process sharding, and the sweeprun store/worker
/// paths in [`crate::distributed`] — so the outcome is a pure function of
/// `(point, seed)` no matter which tier computed it.
pub fn evaluate_ler_point(point: &LerPoint, seed: u64) -> LerOutcome {
    let (result, cache) = match Toolflow::run_spec_report(&point.toolflow_spec(seed)) {
        Ok(report) => (
            Ok(report
                .metrics
                .logical_error
                .expect("evaluate(_, true) always estimates the LER")),
            report.decode_cache,
        ),
        Err(e) => (Err(e.to_string()), None),
    };
    LerOutcome {
        label: point.label.clone(),
        distance: point.distance,
        decoder: point.decoder,
        seed,
        shots_requested: point.shots,
        result,
        cache,
    }
}

/// Runs every point through [`evaluate_ler_point`], sharded across the
/// engine's outer pool. Results are in input order.
pub fn run_ler_sweep(engine: &SweepEngine, points: &[LerPoint]) -> Vec<LerOutcome> {
    engine.run(points, |task| evaluate_ler_point(task.point, task.seed))
}

/// A fitted logical-error-rate curve of one configuration.
#[derive(Debug, Clone)]
pub struct LerCurve {
    /// Label of the configuration.
    pub label: String,
    /// Successful `(distance, LER, standard error)` points.
    pub points: Vec<(usize, f64, f64)>,
    /// Weighted exponential-suppression fit over the points.
    pub fit: Option<LambdaFit>,
    /// Raw per-point outcomes (including failures).
    pub outcomes: Vec<LerOutcome>,
}

impl LerCurve {
    /// The `(distance, LER)` pairs (dropping the standard errors).
    pub fn rate_points(&self) -> Vec<(usize, f64)> {
        self.points.iter().map(|&(d, p, _)| (d, p)).collect()
    }
}

/// Samples the logical error rate of every `configuration × distance` pair
/// in one sharded sweep and fits each configuration's suppression curve with
/// standard-error weighting.
///
/// Point indices (and therefore seeds) are assigned configuration-major:
/// configuration `c`, distance `d` gets index `c · distances.len() + d`.
/// Compile failures are reported to stderr and excluded from the fit,
/// mirroring the previous serial behaviour.
pub fn ler_curves(
    engine: &SweepEngine,
    configurations: &[(String, ArchitectureConfig)],
    distances: &[usize],
    shots: usize,
) -> Vec<LerCurve> {
    ler_curves_with(
        engine,
        configurations,
        distances,
        shots,
        DecoderKind::default(),
        EstimatorConfig::default(),
    )
}

/// [`ler_curves`] with an explicit decoder and Monte-Carlo pipeline
/// configuration on every point (the experiment registry's entry point;
/// the defaults reproduce [`ler_curves`] bit-identically).
pub fn ler_curves_with(
    engine: &SweepEngine,
    configurations: &[(String, ArchitectureConfig)],
    distances: &[usize],
    shots: usize,
    decoder: DecoderKind,
    estimator: EstimatorConfig,
) -> Vec<LerCurve> {
    let points = ler_sweep_points(configurations, distances, shots, decoder, estimator);
    let outcomes = run_ler_sweep(engine, &points);
    ler_curves_from_outcomes(configurations, distances, &outcomes)
}

/// The flat configuration-major point grid of a LER sweep: configuration
/// `c`, distance `d` gets index `c · distances.len() + d` — the index (and
/// therefore seed) assignment every execution tier must agree on.
pub fn ler_sweep_points(
    configurations: &[(String, ArchitectureConfig)],
    distances: &[usize],
    shots: usize,
    decoder: DecoderKind,
    estimator: EstimatorConfig,
) -> Vec<LerPoint> {
    configurations
        .iter()
        .flat_map(|(label, arch)| {
            distances.iter().map(|&d| {
                LerPoint::new(label.clone(), arch.clone(), d, shots)
                    .with_decoder(decoder)
                    .with_estimator(estimator)
            })
        })
        .collect()
}

/// The flat point grid of a rare-event LER comparison: configuration-major,
/// then distance, with the plain Monte-Carlo point immediately before its
/// importance-sampled twin — configuration `c`, distance index `d` maps to
/// indices `2·(c·distances.len() + d)` (plain) and `+1` (biased). Like
/// [`ler_sweep_points`], this is the index (and therefore seed) assignment
/// every execution tier must agree on.
#[allow(clippy::too_many_arguments)]
pub fn rare_event_points(
    configurations: &[(String, ArchitectureConfig)],
    distances: &[usize],
    shots: usize,
    biased_shots: usize,
    bias: f64,
    decoder: DecoderKind,
    estimator: EstimatorConfig,
) -> Vec<LerPoint> {
    configurations
        .iter()
        .flat_map(|(label, arch)| {
            distances.iter().flat_map(move |&d| {
                let plain = LerPoint::new(label.clone(), arch.clone(), d, shots)
                    .with_decoder(decoder)
                    .with_estimator(estimator);
                let biased = LerPoint::new(label.clone(), arch.clone(), d, biased_shots)
                    .with_decoder(decoder)
                    .with_estimator(estimator.with_importance_bias(bias));
                [plain, biased]
            })
        })
        .collect()
}

/// Groups configuration-major sweep outcomes back into per-configuration
/// fitted curves. Outcomes must be in grid order ([`ler_sweep_points`]) —
/// exactly `configurations.len() × distances.len()` entries.
///
/// Compile failures are reported to stderr and excluded from the fit,
/// mirroring the historical serial behaviour; with empty `distances` every
/// configuration yields one empty (unfittable) curve.
pub fn ler_curves_from_outcomes(
    configurations: &[(String, ArchitectureConfig)],
    distances: &[usize],
    outcomes: &[LerOutcome],
) -> Vec<LerCurve> {
    if distances.is_empty() {
        return configurations
            .iter()
            .map(|(label, _)| LerCurve {
                label: label.clone(),
                points: Vec::new(),
                fit: None,
                outcomes: Vec::new(),
            })
            .collect();
    }
    outcomes
        .chunks(distances.len())
        .zip(configurations)
        .map(|(outcomes, (label, _))| {
            let mut curve_points = Vec::with_capacity(outcomes.len());
            for outcome in outcomes {
                match &outcome.result {
                    Ok(estimate) => curve_points.push((
                        outcome.distance,
                        estimate.logical_error_rate,
                        estimate.std_error,
                    )),
                    Err(e) => eprintln!("  [{label}] d={}: {e}", outcome.distance),
                }
            }
            LerCurve {
                label: label.clone(),
                fit: fit_lambda_weighted(&curve_points),
                points: curve_points,
                outcomes: outcomes.to_vec(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid_arch;

    #[test]
    fn sweep_points_get_distinct_seeds_and_keep_order() {
        let engine = SweepEngine::new(DEFAULT_SWEEP_SEED);
        let points: Vec<LerPoint> = [2usize, 3]
            .iter()
            .map(|&d| LerPoint::new("g", grid_arch(2, 10.0), d, 64))
            .collect();
        let outcomes = run_ler_sweep(&engine, &points);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].distance, 2);
        assert_eq!(outcomes[1].distance, 3);
        assert_ne!(outcomes[0].seed, outcomes[1].seed);
        for outcome in &outcomes {
            assert!(outcome.result.is_ok(), "{:?}", outcome.result);
            let cache = outcome.cache.expect("successful points carry stats");
            assert_eq!(cache.words(), 1, "64 shots fit one word");
        }
    }

    #[test]
    fn empty_distances_yield_one_empty_curve_per_configuration() {
        let engine = SweepEngine::new(1);
        let configurations = vec![
            ("a".to_string(), grid_arch(2, 10.0)),
            ("b".to_string(), grid_arch(3, 10.0)),
        ];
        let curves = ler_curves(&engine, &configurations, &[], 64);
        assert_eq!(curves.len(), 2);
        for curve in &curves {
            assert!(curve.points.is_empty());
            assert!(curve.fit.is_none());
            assert!(curve.outcomes.is_empty());
        }
    }

    #[test]
    fn ler_curves_with_defaults_is_identical_to_ler_curves() {
        let engine = SweepEngine::new(3);
        let configurations = vec![("g".to_string(), grid_arch(2, 10.0))];
        let plain = ler_curves(&engine, &configurations, &[2, 3], 64);
        let explicit = ler_curves_with(
            &engine,
            &configurations,
            &[2, 3],
            64,
            DecoderKind::default(),
            EstimatorConfig::default(),
        );
        assert_eq!(plain.len(), explicit.len());
        for (a, b) in plain.iter().zip(&explicit) {
            assert_eq!(a.points, b.points);
        }
    }

    #[test]
    fn rare_event_points_pair_plain_before_biased() {
        let configurations = vec![
            ("a".to_string(), grid_arch(2, 10.0)),
            ("b".to_string(), grid_arch(3, 10.0)),
        ];
        let distances = [2usize, 3];
        let points = rare_event_points(
            &configurations,
            &distances,
            64,
            16,
            8.0,
            DecoderKind::GreedyMatching,
            EstimatorConfig::default(),
        );
        assert_eq!(points.len(), configurations.len() * distances.len() * 2);
        for (c, (label, _)) in configurations.iter().enumerate() {
            for (i, &d) in distances.iter().enumerate() {
                let base = 2 * (c * distances.len() + i);
                let (plain, biased) = (&points[base], &points[base + 1]);
                for point in [plain, biased] {
                    assert_eq!(&point.label, label);
                    assert_eq!(point.distance, d);
                    assert_eq!(point.decoder, DecoderKind::GreedyMatching);
                }
                assert_eq!(plain.shots, 64);
                assert_eq!(plain.estimator.importance_bias, None);
                assert_eq!(biased.shots, 16);
                assert_eq!(biased.estimator.importance_bias, Some(8.0));
            }
        }
    }

    #[test]
    fn curves_group_configuration_major() {
        let engine = SweepEngine::new(1);
        let configurations = vec![
            ("a".to_string(), grid_arch(2, 10.0)),
            ("b".to_string(), grid_arch(3, 10.0)),
        ];
        let curves = ler_curves(&engine, &configurations, &[2, 3], 64);
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].label, "a");
        assert_eq!(curves[1].label, "b");
        for curve in &curves {
            assert_eq!(curve.outcomes.len(), 2);
            assert_eq!(curve.rate_points().len(), curve.points.len());
        }
    }
}
