//! Golden regression test for the experiment registry.
//!
//! `artifacts run fig09` must reproduce the committed golden numbers
//! bit-identically: the registry resolves the `fig09` spec and executes it
//! through the same `run_spec` path the CLI and the legacy `--bin fig09`
//! shim use, so a diff here means every consumer drifted. fig09 is
//! compile-only (no Monte Carlo), so this pins the compiler → scheduler →
//! performance-model half of the pipeline; `golden_sweep.rs` pins the
//! sampling/decoding half.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p qccd-bench --test golden_artifacts
//! ```

use std::path::PathBuf;

use qccd_bench::ExperimentRegistry;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("artifact_fig09.json")
}

/// The comparable portion of the artifact: everything except metadata
/// (which carries the volatile `git describe`).
fn comparable(artifact: &qccd_bench::Artifact) -> serde_json::Value {
    serde_json::json!({
        "title": artifact.title.clone(),
        "headers": artifact.headers.clone(),
        "rows": serde_json::Value::Array(
            artifact
                .rows
                .iter()
                .map(|row| serde_json::Value::from(row.clone()))
                .collect(),
        ),
        "data": artifact.data,
    })
}

#[test]
fn artifacts_run_fig09_matches_committed_golden() {
    let artifact = ExperimentRegistry::builtin()
        .run("fig09")
        .expect("fig09 is registered and valid");
    let rendered = serde_json::to_string_pretty(&comparable(&artifact)).expect("serializable");
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, &rendered).expect("write golden");
        eprintln!("golden expectation rewritten at {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden expectation at {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered.trim(),
        committed.trim(),
        "fig09 artifact drifted from the committed golden; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 cargo test -p qccd-bench --test golden_artifacts"
    );
}

#[test]
fn fig09_artifact_is_stable_across_runs_and_carries_provenance() {
    let registry = ExperimentRegistry::builtin();
    let a = registry.run("fig09").unwrap();
    let b = registry.run("fig09").unwrap();
    assert_eq!(comparable(&a), comparable(&b), "reruns are bit-identical");
    assert_eq!(a.metadata.spec_hash, b.metadata.spec_hash);
    assert_eq!(
        a.metadata.spec_hash,
        registry.get("fig09").unwrap().content_hash()
    );
    assert!(a.metadata.thread_invariant);
    assert!(!a.metadata.from_cache);
}
