//! Golden regression test for the sharded sweep engine.
//!
//! Runs a small fixed-seed sweep (d ∈ {3, 5}, two architectures, both the
//! union-find and greedy decoders on the first point) through the same
//! `run_ler_sweep` path the figure/table binaries use, and compares the
//! outcome — per-point seeds, shot counts and exact failure counts — against
//! a committed JSON expectation. The sweep pipeline is bit-deterministic by
//! construction (per-point seeds depend only on the engine seed and point
//! index; the estimator is chunk/thread invariant), so any diff here means a
//! figure or table binary would silently drift.
//!
//! Regenerate the expectation after an *intentional* pipeline change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p qccd-bench --test golden_sweep
//! ```

use std::path::PathBuf;

use qccd_bench::{grid_arch, run_ler_sweep, LerPoint, DEFAULT_SWEEP_SEED};
use qccd_core::ArchitectureConfig;
use qccd_decoder::{DecoderKind, SweepEngine};
use qccd_hardware::{TopologyKind, WiringMethod};

const GOLDEN_SHOTS: usize = 1024;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("sweep_d3d5.json")
}

fn golden_points() -> Vec<LerPoint> {
    let grid = grid_arch(2, 5.0);
    let switch = ArchitectureConfig::new(TopologyKind::Switch, 3, WiringMethod::Wise, 5.0);
    let mut points = Vec::new();
    for (label, arch) in [("grid c2 5X", grid), ("switch c3 WISE 5X", switch)] {
        for d in [3usize, 5] {
            points.push(LerPoint::new(label, arch.clone(), d, GOLDEN_SHOTS));
        }
    }
    // One greedy-decoder point exercises the decoder dimension of the sweep.
    points.push(
        LerPoint::new("grid c2 5X greedy", grid_arch(2, 5.0), 3, GOLDEN_SHOTS)
            .with_decoder(DecoderKind::GreedyMatching),
    );
    points
}

fn outcomes_as_json() -> serde_json::Value {
    let engine = SweepEngine::new(DEFAULT_SWEEP_SEED);
    let outcomes = run_ler_sweep(&engine, &golden_points());
    serde_json::Value::Array(
        outcomes
            .iter()
            .map(|outcome| {
                let (shots, failures, error) = match &outcome.result {
                    Ok(estimate) => (
                        Some(estimate.shots as u64),
                        Some(estimate.failures as u64),
                        None,
                    ),
                    Err(e) => (None, None, Some(e.clone())),
                };
                serde_json::json!({
                    "label": outcome.label,
                    "distance": outcome.distance as u64,
                    "decoder": format!("{:?}", outcome.decoder),
                    // Seeds are u64; hex strings avoid JSON number precision.
                    "seed": format!("{:#018x}", outcome.seed),
                    "shots_requested": outcome.shots_requested as u64,
                    "shots": shots,
                    "failures": failures,
                    "error": error,
                })
            })
            .collect(),
    )
}

#[test]
fn sweep_outcomes_match_committed_golden() {
    let actual = outcomes_as_json();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&actual).expect("serializable"),
        )
        .expect("write golden");
        eprintln!("golden expectation rewritten at {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden expectation at {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    // The golden serialization contains only integers, strings and nulls, so
    // comparing the canonical pretty-printing is an exact value comparison.
    let rendered = serde_json::to_string_pretty(&actual).expect("serializable");
    assert_eq!(
        rendered.trim(),
        committed.trim(),
        "sweep outcome drifted from the committed golden; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 cargo test -p qccd-bench --test golden_sweep"
    );
}

#[test]
fn sweep_outcomes_are_thread_invariant() {
    let points = golden_points();
    let reference: Vec<(u64, usize, String)> = run_ler_sweep(
        &SweepEngine::new(DEFAULT_SWEEP_SEED).with_num_threads(1),
        &points,
    )
    .into_iter()
    .map(|o| {
        (
            o.seed,
            o.result.as_ref().map(|e| e.failures).unwrap_or(usize::MAX),
            o.label,
        )
    })
    .collect();
    let parallel: Vec<(u64, usize, String)> = run_ler_sweep(
        &SweepEngine::new(DEFAULT_SWEEP_SEED).with_num_threads(4),
        &points,
    )
    .into_iter()
    .map(|o| {
        (
            o.seed,
            o.result.as_ref().map(|e| e.failures).unwrap_or(usize::MAX),
            o.label,
        )
    })
    .collect();
    assert_eq!(reference, parallel);
}
