//! Golden regression for the word-parallel decode path's cache statistics.
//!
//! A pinned single-threaded, single-chunk Monte-Carlo run must reproduce
//! the committed estimate *and* the full `CacheStats` — including the
//! word-triage counters (quiet/sparse/dense words, word-merged shots) —
//! bit-identically. A diff here means the word path changed its triage or
//! accounting behaviour.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p qccd-bench --test golden_word_stats
//! ```

use std::path::PathBuf;

use qccd_core::{ArchitectureConfig, Toolflow, ToolflowSpec};
use qccd_decoder::EstimatorConfig;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("word_path_stats.json")
}

/// The pinned evaluation point: one chunk, one thread, so every counter —
/// including the scheduling-sensitive hit/miss split — is deterministic.
fn pinned_spec() -> ToolflowSpec {
    ToolflowSpec {
        shots: 4096,
        seed: 2026,
        estimator: EstimatorConfig::default().with_num_threads(1),
        ..ToolflowSpec::new(ArchitectureConfig::recommended(5.0), 3)
    }
}

#[test]
fn word_path_stats_match_committed_golden() {
    let report = Toolflow::run_spec_report(&pinned_spec()).expect("pinned spec evaluates");
    let estimate = report.metrics.logical_error.expect("estimate ran");
    let cache = report.decode_cache.expect("cache stats ran");
    let rendered = serde_json::to_string_pretty(&serde_json::json!({
        "shots": estimate.shots,
        "failures": estimate.failures,
        "cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "uncacheable": cache.uncacheable,
            "prefilled": cache.prefilled,
            "quiet_words": cache.quiet_words,
            "sparse_words": cache.sparse_words,
            "dense_words": cache.dense_words,
            "word_merged": cache.word_merged,
            "dense_hits": cache.dense_hits,
            "dense_misses": cache.dense_misses,
            "dense_evictions": cache.dense_evictions,
            "cluster_lanes": cache.cluster_lanes,
            "cluster_components": cache.cluster_components,
            "cluster_conflicts": cache.cluster_conflicts,
        },
    }))
    .expect("stats serialize");
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, &rendered).expect("write golden");
        eprintln!("golden expectation rewritten at {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden expectation at {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered.trim(),
        committed.trim(),
        "word-path stats drifted from the committed golden; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 cargo test -p qccd-bench --test golden_word_stats"
    );
}

#[test]
fn per_shot_path_reproduces_the_estimate_without_word_counters() {
    let mut spec = pinned_spec();
    let word = Toolflow::run_spec_report(&spec).unwrap();
    spec.estimator = spec.estimator.with_word_decode(false);
    let per_shot = Toolflow::run_spec_report(&spec).unwrap();
    assert_eq!(
        word.metrics.logical_error.unwrap().failures,
        per_shot.metrics.logical_error.unwrap().failures,
        "both decode paths are bit-identical"
    );
    let word_cache = word.decode_cache.unwrap();
    let per_shot_cache = per_shot.decode_cache.unwrap();
    assert_eq!(
        (word_cache.hits, word_cache.misses, word_cache.uncacheable),
        (
            per_shot_cache.hits,
            per_shot_cache.misses,
            per_shot_cache.uncacheable
        ),
        "hit/miss accounting matches across paths"
    );
    assert_eq!(word_cache.words(), 64, "4096 shots triage into 64 words");
    assert_eq!(
        per_shot_cache.words(),
        0,
        "the reference loop performs no word triage"
    );
}
