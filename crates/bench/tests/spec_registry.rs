//! Spec serialization and registry completeness tests.
//!
//! * Property: `ExperimentSpec → JSON text → ExperimentSpec` is the
//!   identity, for randomized specs of every experiment kind (the
//!   "serde-round-trippable" contract of the declarative API).
//! * The built-in registry registers every paper artefact, every spec
//!   validates, round-trips, and hashes uniquely.

use proptest::prelude::*;

use qccd_bench::spec::{
    ArchPoint, ClusteringAblationSpec, CodeSpec, CompileCase, CompilerBoundsSpec,
    DecoderComparisonSpec, DenseTailSpec, ExperimentKind, ExperimentSpec, LerOutput, LerSweepSpec,
    RareEventLerSpec, SurgerySpec, TimingMetric, TimingSweepSpec,
};
use qccd_bench::ExperimentRegistry;
use qccd_decoder::{DecoderKind, EstimatorConfig, MemoConfig};
use qccd_hardware::{TopologyKind, WiringMethod};
use qccd_qec::MergeKind;

fn topologies() -> impl Strategy<Value = TopologyKind> {
    prop::sample::select(vec![
        TopologyKind::Grid,
        TopologyKind::Linear,
        TopologyKind::Switch,
    ])
}

fn wirings() -> impl Strategy<Value = WiringMethod> {
    prop::sample::select(vec![WiringMethod::Standard, WiringMethod::Wise])
}

fn decoders() -> impl Strategy<Value = DecoderKind> {
    prop::sample::select(vec![
        DecoderKind::UnionFind,
        DecoderKind::GreedyMatching,
        DecoderKind::ExactMatching,
    ])
}

fn arch_points() -> impl Strategy<Value = Vec<ArchPoint>> {
    prop::collection::vec(
        (
            topologies(),
            1usize..32,
            wirings(),
            0.5f64..10.0,
            any::<bool>(),
        )
            .prop_map(|(topology, capacity, wiring, improvement, labelled)| {
                let point = ArchPoint::new(topology, capacity, wiring, improvement);
                if labelled {
                    point.with_label(format!("{topology} c{capacity} custom"))
                } else {
                    point
                }
            }),
        1..4,
    )
}

fn compile_cases() -> impl Strategy<Value = Vec<CompileCase>> {
    prop::collection::vec(
        (2usize..8, topologies(), 2usize..8, 0usize..3).prop_map(
            |(distance, topology, capacity, family)| {
                let code = match family {
                    0 => CodeSpec::Repetition { distance },
                    1 => CodeSpec::RotatedSurface { distance },
                    _ => CodeSpec::UnrotatedSurface { distance },
                };
                CompileCase::new(format!("case d={distance}"), code, topology, capacity)
            },
        ),
        1..5,
    )
}

fn estimators() -> impl Strategy<Value = EstimatorConfig> {
    (
        (1usize..100_000, any::<bool>(), any::<bool>(), 1usize..8),
        (any::<bool>(), any::<bool>(), any::<bool>(), 1.0f64..64.0),
    )
        .prop_map(
            |(
                (chunk_shots, early_stop, disable_memo, max_defects),
                (word_decode, shared_memo, biased, bias),
            )| {
                let mut config = EstimatorConfig::default()
                    .with_chunk_shots(chunk_shots)
                    .with_word_decode(word_decode)
                    .with_shared_memo(shared_memo);
                if early_stop {
                    config = config.with_target_std_error(1e-3).with_max_failures(100);
                }
                if biased {
                    config = config.with_importance_bias(bias);
                }
                config.with_memo(if disable_memo {
                    MemoConfig::disabled()
                } else {
                    MemoConfig::default().with_max_defects(max_defects)
                })
            },
        )
}

fn ler_outputs() -> impl Strategy<Value = Vec<LerOutput>> {
    (0usize..6, prop::collection::vec(2usize..20, 1..4)).prop_map(|(selector, distances)| {
        let mut outputs = vec![LerOutput::SampledRates, LerOutput::Lambda];
        outputs.push(match selector {
            0 => LerOutput::Projection {
                distances,
                target: 1e-9,
            },
            1 => LerOutput::Electrodes {
                targets: vec![1e-6, 1e-9],
            },
            2 => LerOutput::DataRate {
                targets: vec![1e-6],
                include_power: true,
            },
            3 => LerOutput::DataRate {
                targets: vec![1e-9],
                include_power: false,
            },
            4 => LerOutput::ShotTime {
                targets: vec![1e-6, 1e-12],
            },
            _ => LerOutput::SampledRates,
        });
        outputs
    })
}

/// Every experiment kind built from one randomized parameter draw.
fn spec_suite() -> impl Strategy<Value = Vec<ExperimentSpec>> {
    (
        (arch_points(), compile_cases(), estimators(), ler_outputs()),
        (
            prop::collection::vec(2usize..12, 1..4),
            1usize..1_000_000,
            decoders(),
            any::<u64>(),
            any::<bool>(),
        ),
    )
        .prop_map(
            |((points, cases, estimator, outputs), (distances, shots, decoder, seed, flag))| {
                let spec = |name: &str, kind: ExperimentKind| ExperimentSpec {
                    name: name.to_string(),
                    title: format!("randomized {name}"),
                    seed,
                    kind,
                };
                vec![
                    spec(
                        "ler",
                        ExperimentKind::LerSweep(LerSweepSpec {
                            configurations: points.clone(),
                            sample_distances: distances.clone(),
                            shots,
                            decoder,
                            estimator,
                            outputs,
                        }),
                    ),
                    spec(
                        "rare_event",
                        ExperimentKind::RareEventLer(RareEventLerSpec {
                            configurations: points.clone(),
                            sample_distances: distances.clone(),
                            shots,
                            biased_shots: 1 + shots / 3,
                            bias: 1.0 + (shots % 50) as f64,
                            decoder,
                            estimator,
                        }),
                    ),
                    spec(
                        "timing",
                        ExperimentKind::TimingSweep(TimingSweepSpec {
                            configurations: points,
                            distances: distances.clone(),
                            metric: if flag {
                                TimingMetric::RoundTime
                            } else {
                                TimingMetric::ShotTime
                            },
                            include_bounds: flag,
                        }),
                    ),
                    spec(
                        "bounds",
                        ExperimentKind::CompilerBounds(CompilerBoundsSpec {
                            cases: cases.clone(),
                        }),
                    ),
                    spec(
                        "baselines",
                        ExperimentKind::BaselineComparison(
                            qccd_bench::spec::BaselineComparisonSpec {
                                cases,
                                rounds: 1 + shots % 7,
                            },
                        ),
                    ),
                    spec(
                        "surgery",
                        ExperimentKind::Surgery(SurgerySpec {
                            capacities: distances.clone(),
                            distances: distances.clone(),
                            merge: if flag { MergeKind::ZZ } else { MergeKind::XX },
                            gate_improvement: 1.0 + (shots % 10) as f64 / 2.0,
                        }),
                    ),
                    spec(
                        "decoders",
                        ExperimentKind::DecoderComparison(DecoderComparisonSpec {
                            distances: distances.clone(),
                            improvements: vec![1.0, 5.5],
                            decoders: vec![decoder],
                            shots,
                            capacity: 2 + shots % 5,
                        }),
                    ),
                    spec(
                        "clustering",
                        ExperimentKind::ClusteringAblation(ClusteringAblationSpec {
                            distances: distances.clone(),
                            capacities: vec![3, 5],
                        }),
                    ),
                    spec(
                        "dense_tail",
                        ExperimentKind::DenseTail(DenseTailSpec {
                            distances,
                            p: 0.001 + (shots % 100) as f64 / 1000.0,
                            shots,
                        }),
                    ),
                ]
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_spec_kind_round_trips_through_json_text(specs in spec_suite()) {
        for spec in specs {
            let text = serde_json::to_string_pretty(&spec.to_json())
                .expect("spec serialization cannot fail");
            let value = serde_json::from_str(&text).expect("emitted JSON parses");
            let parsed = ExperimentSpec::from_json(&value).expect("round-trip parses");
            prop_assert_eq!(&parsed, &spec, "kind {}", spec.name);
            // The canonical encoding (and therefore the content hash) is
            // reproducible across the round trip.
            prop_assert_eq!(parsed.content_hash(), spec.content_hash());
        }
    }
}

#[test]
fn registry_is_complete_and_every_spec_resolves_validates_and_round_trips() {
    let registry = ExperimentRegistry::builtin();
    let expected = [
        "decoder_dense_tail",
        "ext_ablation_clustering",
        "ext_decoder_comparison",
        "ext_surgery",
        "fig08a",
        "fig08b",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "fig13a",
        "fig13b",
        "rare_event_ler",
        "table2",
        "table3",
    ];
    assert_eq!(registry.len(), expected.len());
    let mut hashes = std::collections::BTreeSet::new();
    for name in expected {
        let spec = registry
            .get(name)
            .unwrap_or_else(|| panic!("{name} must be registered"));
        assert_eq!(spec.name, name, "registry key matches spec name");
        spec.validate()
            .unwrap_or_else(|e| panic!("{name} must validate: {e}"));
        let text = serde_json::to_string_pretty(&spec.to_json()).unwrap();
        let round_trip = ExperimentSpec::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(&round_trip, spec, "{name} must round-trip");
        assert!(
            hashes.insert(spec.content_hash()),
            "{name} hash must be unique"
        );
    }
}
