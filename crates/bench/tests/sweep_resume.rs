//! End-to-end kill-and-resume smoke test of the distributed sweep tier.
//!
//! Drives the real `artifacts` binary: a coordinator (`sweep run --listen`)
//! with no local workers, two remote worker processes, one of which is
//! SIGKILLed mid-lease. The coordinator must requeue the orphaned lease,
//! the surviving worker must finish the grid, and the merged artifact must
//! be bit-identical to an uninterrupted in-process `run_spec` — the
//! acceptance criterion of the orchestration tier.

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use qccd_bench::{run_spec, ExperimentKind, ExperimentRegistry, ExperimentSpec};
use serde_json::Value;

/// A scratch directory unique to this test binary, cleaned up on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!("qccd-sweep-resume-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Kills the child on drop so a failing assertion can't leak processes.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// The registry's smallest real LER sweep, shrunk so the whole scenario
/// runs in seconds.
fn tiny_spec() -> ExperimentSpec {
    let registry = ExperimentRegistry::builtin();
    let mut spec = registry
        .names()
        .iter()
        .filter_map(|name| registry.get(name))
        .find(|spec| matches!(spec.kind, ExperimentKind::LerSweep(_)))
        .expect("the registry has LER sweeps")
        .clone();
    if let ExperimentKind::LerSweep(kind) = &mut spec.kind {
        kind.configurations.truncate(2);
        kind.sample_distances = vec![2, 3];
        kind.shots = 64;
    }
    spec.name = "resume-smoke".to_string();
    spec
}

fn artifacts(args: &[&str]) -> Command {
    let mut command = Command::new(env!("CARGO_BIN_EXE_artifacts"));
    command.args(args);
    command
}

/// Everything but volatile provenance must match bit for bit.
fn assert_artifacts_match(merged: &Value, reference: &Value) {
    for key in ["title", "headers", "rows", "notes", "data"] {
        assert_eq!(
            merged.get(key),
            reference.get(key),
            "artifact `{key}` differs between the distributed and local runs"
        );
    }
    let hash = |value: &Value| {
        value
            .get("metadata")
            .and_then(|m| m.get("spec_hash"))
            .cloned()
    };
    assert_eq!(hash(merged), hash(reference), "spec hashes differ");
}

#[test]
fn killed_worker_is_requeued_and_the_resumed_artifact_is_bit_identical() {
    let dir = TempDir::new();
    let spec = tiny_spec();
    let spec_path = dir.path("spec.json");
    fs::write(
        &spec_path,
        serde_json::to_string_pretty(&spec.to_json()).unwrap(),
    )
    .unwrap();
    let store = dir.path("store");
    let out = dir.path("out");
    let spec_arg = spec_path.to_str().unwrap();
    let store_arg = store.to_str().unwrap();

    // The uninterrupted single-process reference.
    let reference = run_spec(&spec).expect("reference run succeeds").to_json();

    // Coordinator: remote workers only, a short lease so the killed
    // worker's point requeues quickly.
    let mut coordinator = Reaper(
        artifacts(&[
            "sweep",
            "run",
            "--spec",
            spec_arg,
            "--store",
            store_arg,
            "--listen",
            "127.0.0.1:0",
            "--local-workers",
            "0",
            "--lease-timeout-ms",
            "500",
            "--backoff-ms",
            "10",
            "--progress-interval-ms",
            "100",
            "--quiet",
            "--format",
            "json",
            "--out",
            out.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("coordinator spawns"),
    );
    let mut stdout = BufReader::new(coordinator.0.stdout.take().expect("stdout piped"));
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            stdout.read_line(&mut line).expect("coordinator stdout"),
            0,
            "coordinator exited before announcing its address"
        );
        if let Some(addr) = line.trim().strip_prefix("sweep coordinator listening on ") {
            break addr.to_string();
        }
    };

    // Worker 1 leases a point immediately, then stalls in its throttle —
    // long enough that it is still mid-lease when killed.
    let mut stalled = Reaper(
        artifacts(&["sweep", "worker", "--addr", &addr, "--throttle-ms", "10000"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("stalled worker spawns"),
    );
    // Give it time to connect and take its lease before competition starts.
    std::thread::sleep(Duration::from_millis(700));

    // Worker 2 does the actual work.
    let worker = Reaper(
        artifacts(&["sweep", "worker", "--addr", &addr])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("second worker spawns"),
    );

    // SIGKILL the stalled worker mid-lease: no goodbye, no more heartbeats.
    std::thread::sleep(Duration::from_millis(200));
    stalled.0.kill().expect("kill the stalled worker");
    stalled.0.wait().expect("reap the stalled worker");

    // The coordinator must requeue the orphaned point after the lease
    // timeout, hand it to the surviving worker, finish, and merge.
    let status = coordinator.0.wait().expect("coordinator exits");
    assert!(status.success(), "coordinator failed: {status:?}");
    drop(worker); // exits on its own once the run finishes; reap it

    let merged_text = fs::read_to_string(out.join(format!("{}.json", spec.name)))
        .expect("the coordinator wrote the merged artifact");
    let merged = serde_json::from_str(&merged_text).expect("merged artifact is JSON");
    assert_artifacts_match(&merged, &reference);

    // The requeue is visible in `sweep status` (reading the final
    // status.json snapshot the coordinator persisted).
    let status_out = artifacts(&[
        "sweep", "status", "--spec", spec_arg, "--store", store_arg, "--format", "json",
    ])
    .output()
    .expect("sweep status runs");
    assert!(status_out.status.success());
    let snapshot =
        serde_json::from_str(&String::from_utf8_lossy(&status_out.stdout)).expect("status JSON");
    let count = |key: &str| snapshot.get(key).and_then(Value::as_u64).unwrap_or(0);
    assert!(
        count("requeues") >= 1,
        "the killed worker's lease was never requeued: {snapshot}"
    );
    assert_eq!(count("failed"), 0, "no point may fail: {snapshot}");
    assert_eq!(count("done"), count("total"), "incomplete: {snapshot}");

    // Resume on the completed store: nothing recomputes, and the re-merged
    // artifact is byte-identical.
    let resume_out = dir.path("resume-out");
    let resume = artifacts(&[
        "sweep",
        "resume",
        "--spec",
        spec_arg,
        "--store",
        store_arg,
        "--quiet",
        "--format",
        "json",
        "--out",
        resume_out.to_str().unwrap(),
    ])
    .output()
    .expect("sweep resume runs");
    assert!(resume.status.success(), "resume failed: {resume:?}");
    let resume_stdout = String::from_utf8_lossy(&resume.stdout);
    assert!(
        resume_stdout.contains("0 computed, 4 resumed"),
        "resume recomputed points it should have kept:\n{resume_stdout}"
    );
    assert_eq!(
        fs::read_to_string(resume_out.join(format!("{}.json", spec.name))).unwrap(),
        merged_text,
        "resume must reproduce the artifact bit for bit"
    );
}
