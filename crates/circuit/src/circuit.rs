//! Circuit container.
//!
//! A [`Circuit`] is an ordered list of [`Instruction`]s together with the
//! annotations a QEC experiment needs: *detectors* (parities of measurement
//! outcomes that are deterministic in the absence of noise) and *logical
//! observables* (parities of measurements whose flip constitutes a logical
//! error).
//!
//! Measurements are referenced by [`MeasurementRef`] — the pair *(qubit,
//! occurrence on that qubit)* — rather than by global position. This makes
//! detector definitions robust against the instruction reordering performed
//! by the QCCD compiler: the compiler may interleave operations on different
//! ions, but it never reorders two operations acting on the same qubit.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Instruction, QubitId};

/// A stable reference to one measurement outcome.
///
/// `occurrence` counts measurements *on this particular qubit*, starting at
/// zero. The pair is invariant under any schedule transformation that
/// preserves per-qubit operation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MeasurementRef {
    /// Qubit that was measured.
    pub qubit: QubitId,
    /// Zero-based index among measurements of that qubit.
    pub occurrence: u32,
}

impl MeasurementRef {
    /// Creates a measurement reference.
    pub const fn new(qubit: QubitId, occurrence: u32) -> Self {
        MeasurementRef { qubit, occurrence }
    }
}

impl fmt::Display for MeasurementRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.qubit, self.occurrence)
    }
}

/// A detector: a set of measurement outcomes whose parity is deterministic
/// (even) when the circuit is executed without noise.
///
/// The optional coordinate is purely diagnostic metadata (it mirrors Stim's
/// `DETECTOR(x, y, t)` annotation) and is used by decoders and debugging
/// output to localise detection events in space-time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detector {
    /// The measurement outcomes whose parity this detector checks.
    pub measurements: Vec<MeasurementRef>,
    /// Optional (x, y, t) coordinate of the detector in the code layout.
    pub coordinate: Option<[f64; 3]>,
}

impl Detector {
    /// Creates a detector over the given measurements with no coordinate.
    pub fn new(measurements: Vec<MeasurementRef>) -> Self {
        Detector {
            measurements,
            coordinate: None,
        }
    }

    /// Creates a detector with an attached space-time coordinate.
    pub fn with_coordinate(measurements: Vec<MeasurementRef>, coordinate: [f64; 3]) -> Self {
        Detector {
            measurements,
            coordinate: Some(coordinate),
        }
    }
}

/// A logical observable: a parity of measurement outcomes that encodes the
/// value of a logical qubit at the end of the experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicalObservable {
    /// The measurement outcomes whose parity defines the observable.
    pub measurements: Vec<MeasurementRef>,
}

impl LogicalObservable {
    /// Creates a logical observable over the given measurements.
    pub fn new(measurements: Vec<MeasurementRef>) -> Self {
        LogicalObservable { measurements }
    }
}

/// Summary statistics of a circuit, produced by [`Circuit::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Number of qubits referenced by the circuit.
    pub num_qubits: usize,
    /// Total number of instructions.
    pub num_instructions: usize,
    /// Number of single-qubit unitary gates.
    pub single_qubit_gates: usize,
    /// Number of two-qubit unitary gates.
    pub two_qubit_gates: usize,
    /// Number of measurement instructions.
    pub measurements: usize,
    /// Number of reset instructions.
    pub resets: usize,
}

/// An ordered Clifford + measurement circuit with QEC annotations.
///
/// # Examples
///
/// Building a two-qubit parity measurement:
///
/// ```
/// use qccd_circuit::{Circuit, Instruction, MeasurementRef, QubitId};
///
/// let d0 = QubitId::new(0);
/// let d1 = QubitId::new(1);
/// let anc = QubitId::new(2);
///
/// let mut circuit = Circuit::new();
/// circuit.push(Instruction::Reset(anc));
/// circuit.push(Instruction::Cnot { control: d0, target: anc });
/// circuit.push(Instruction::Cnot { control: d1, target: anc });
/// circuit.push(Instruction::Measure(anc));
///
/// assert_eq!(circuit.num_qubits(), 3);
/// assert_eq!(circuit.num_measurements(), 1);
/// assert_eq!(circuit.measurement_refs(), vec![MeasurementRef::new(anc, 0)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    instructions: Vec<Instruction>,
    detectors: Vec<Detector>,
    observables: Vec<LogicalObservable>,
    num_qubits: usize,
    num_measurements: usize,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Creates an empty circuit with instruction capacity reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Circuit {
            instructions: Vec::with_capacity(capacity),
            ..Circuit::default()
        }
    }

    /// Appends an instruction to the circuit.
    pub fn push(&mut self, instruction: Instruction) {
        for q in instruction.qubits() {
            self.num_qubits = self.num_qubits.max(q.index() + 1);
        }
        if instruction.is_measurement() {
            self.num_measurements += 1;
        }
        self.instructions.push(instruction);
    }

    /// Appends every instruction from an iterator.
    pub fn extend<I: IntoIterator<Item = Instruction>>(&mut self, iter: I) {
        for instruction in iter {
            self.push(instruction);
        }
    }

    /// Adds a detector annotation.
    pub fn add_detector(&mut self, detector: Detector) {
        self.detectors.push(detector);
    }

    /// Adds a logical observable annotation.
    pub fn add_observable(&mut self, observable: LogicalObservable) {
        self.observables.push(observable);
    }

    /// Returns the instructions in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Returns the detector annotations.
    pub fn detectors(&self) -> &[Detector] {
        &self.detectors
    }

    /// Returns the logical observable annotations.
    pub fn observables(&self) -> &[LogicalObservable] {
        &self.observables
    }

    /// Number of qubits referenced (highest index + 1).
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Ensures the circuit reports at least `n` qubits even if some are idle.
    pub fn pad_qubits(&mut self, n: usize) {
        self.num_qubits = self.num_qubits.max(n);
    }

    /// Number of measurement instructions.
    pub fn num_measurements(&self) -> usize {
        self.num_measurements
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` if the circuit contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Returns the measurement references of every measurement instruction,
    /// in program order.
    pub fn measurement_refs(&self) -> Vec<MeasurementRef> {
        let mut per_qubit: HashMap<QubitId, u32> = HashMap::new();
        let mut refs = Vec::with_capacity(self.num_measurements);
        for instruction in &self.instructions {
            if instruction.is_measurement() {
                let qubit = instruction.qubits()[0];
                let occurrence = per_qubit.entry(qubit).or_insert(0);
                refs.push(MeasurementRef::new(qubit, *occurrence));
                *occurrence += 1;
            }
        }
        refs
    }

    /// Maps every [`MeasurementRef`] to its global measurement-record index
    /// in program order.
    ///
    /// Simulators use this to resolve detector and observable definitions.
    pub fn measurement_index_map(&self) -> HashMap<MeasurementRef, usize> {
        self.measurement_refs()
            .into_iter()
            .enumerate()
            .map(|(i, r)| (r, i))
            .collect()
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> CircuitStats {
        let mut stats = CircuitStats {
            num_qubits: self.num_qubits,
            num_instructions: self.instructions.len(),
            ..CircuitStats::default()
        };
        for instruction in &self.instructions {
            if instruction.is_measurement() {
                stats.measurements += 1;
            } else if instruction.is_reset() {
                stats.resets += 1;
            } else if instruction.is_two_qubit() {
                stats.two_qubit_gates += 1;
            } else {
                stats.single_qubit_gates += 1;
            }
        }
        stats
    }

    /// Computes the circuit depth: the number of *moments* when instructions
    /// are greedily packed subject only to qubit-availability dependencies.
    ///
    /// This ignores gate durations and hardware constraints; it is a purely
    /// logical measure used in tests and diagnostics.
    pub fn depth(&self) -> usize {
        let mut qubit_depth: HashMap<QubitId, usize> = HashMap::new();
        let mut depth = 0;
        for instruction in &self.instructions {
            let qubits = instruction.qubits();
            let start = qubits
                .iter()
                .map(|q| qubit_depth.get(q).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            let end = start + 1;
            for q in qubits {
                qubit_depth.insert(q, end);
            }
            depth = depth.max(end);
        }
        depth
    }

    /// Returns the set of qubits that appear in at least one instruction.
    pub fn used_qubits(&self) -> Vec<QubitId> {
        let mut used: Vec<QubitId> = self.instructions.iter().flat_map(|i| i.qubits()).collect();
        used.sort_unstable();
        used.dedup();
        used
    }

    /// Validates that every detector and observable references a measurement
    /// that actually exists in the circuit.
    ///
    /// # Errors
    ///
    /// Returns the first dangling [`MeasurementRef`] found, if any.
    pub fn validate_annotations(&self) -> Result<(), MeasurementRef> {
        let index_map = self.measurement_index_map();
        for detector in &self.detectors {
            for m in &detector.measurements {
                if !index_map.contains_key(m) {
                    return Err(*m);
                }
            }
        }
        for observable in &self.observables {
            for m in &observable.measurements {
                if !index_map.contains_key(m) {
                    return Err(*m);
                }
            }
        }
        Ok(())
    }
}

impl FromIterator<Instruction> for Circuit {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        let mut circuit = Circuit::new();
        circuit.extend(iter);
        circuit
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for instruction in &self.instructions {
            writeln!(f, "{instruction}")?;
        }
        for detector in &self.detectors {
            write!(f, "DETECTOR")?;
            for m in &detector.measurements {
                write!(f, " {m}")?;
            }
            writeln!(f)?;
        }
        for (i, observable) in self.observables.iter().enumerate() {
            write!(f, "OBSERVABLE({i})")?;
            for m in &observable.measurements {
                write!(f, " {m}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new();
        c.push(Instruction::Reset(q(2)));
        c.push(Instruction::H(q(2)));
        c.push(Instruction::Cnot {
            control: q(2),
            target: q(0),
        });
        c.push(Instruction::Cnot {
            control: q(2),
            target: q(1),
        });
        c.push(Instruction::H(q(2)));
        c.push(Instruction::Measure(q(2)));
        c
    }

    #[test]
    fn push_tracks_qubits_and_measurements() {
        let c = sample_circuit();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.num_measurements(), 1);
        assert_eq!(c.len(), 6);
        assert!(!c.is_empty());
    }

    #[test]
    fn stats_classify_instructions() {
        let stats = sample_circuit().stats();
        assert_eq!(stats.single_qubit_gates, 2);
        assert_eq!(stats.two_qubit_gates, 2);
        assert_eq!(stats.measurements, 1);
        assert_eq!(stats.resets, 1);
        assert_eq!(stats.num_instructions, 6);
        assert_eq!(stats.num_qubits, 3);
    }

    #[test]
    fn depth_is_longest_qubit_chain() {
        let c = sample_circuit();
        // q2 participates in every instruction, so depth == number of
        // instructions touching q2.
        assert_eq!(c.depth(), 6);

        let mut parallel = Circuit::new();
        parallel.push(Instruction::H(q(0)));
        parallel.push(Instruction::H(q(1)));
        parallel.push(Instruction::H(q(2)));
        assert_eq!(parallel.depth(), 1);
    }

    #[test]
    fn measurement_refs_count_per_qubit_occurrences() {
        let mut c = Circuit::new();
        c.push(Instruction::Measure(q(0)));
        c.push(Instruction::Measure(q(1)));
        c.push(Instruction::Measure(q(0)));
        let refs = c.measurement_refs();
        assert_eq!(
            refs,
            vec![
                MeasurementRef::new(q(0), 0),
                MeasurementRef::new(q(1), 0),
                MeasurementRef::new(q(0), 1),
            ]
        );
        let map = c.measurement_index_map();
        assert_eq!(map[&MeasurementRef::new(q(0), 1)], 2);
    }

    #[test]
    fn annotations_validate() {
        let mut c = sample_circuit();
        c.add_detector(Detector::new(vec![MeasurementRef::new(q(2), 0)]));
        c.add_observable(LogicalObservable::new(vec![MeasurementRef::new(q(2), 0)]));
        assert!(c.validate_annotations().is_ok());

        c.add_detector(Detector::new(vec![MeasurementRef::new(q(2), 5)]));
        assert_eq!(c.validate_annotations(), Err(MeasurementRef::new(q(2), 5)));
    }

    #[test]
    fn from_iterator_collects() {
        let c: Circuit = vec![Instruction::H(q(0)), Instruction::Measure(q(0))]
            .into_iter()
            .collect();
        assert_eq!(c.len(), 2);
        assert_eq!(c.num_measurements(), 1);
    }

    #[test]
    fn used_qubits_sorted_unique() {
        let c = sample_circuit();
        assert_eq!(c.used_qubits(), vec![q(0), q(1), q(2)]);
    }

    #[test]
    fn pad_qubits_only_grows() {
        let mut c = sample_circuit();
        c.pad_qubits(10);
        assert_eq!(c.num_qubits(), 10);
        c.pad_qubits(2);
        assert_eq!(c.num_qubits(), 10);
    }

    #[test]
    fn display_includes_annotations() {
        let mut c = Circuit::new();
        c.push(Instruction::Measure(q(0)));
        c.add_detector(Detector::new(vec![MeasurementRef::new(q(0), 0)]));
        c.add_observable(LogicalObservable::new(vec![MeasurementRef::new(q(0), 0)]));
        let text = c.to_string();
        assert!(text.contains("M q0"));
        assert!(text.contains("DETECTOR q0#0"));
        assert!(text.contains("OBSERVABLE(0) q0#0"));
    }
}
