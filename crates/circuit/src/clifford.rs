//! Clifford conjugation of Pauli operators.
//!
//! Every unitary instruction in this crate is a Clifford gate, so conjugating
//! a Pauli string `P` by a gate `U` yields another Pauli string `U P U†`
//! (with a ±1 sign). This is the core primitive behind:
//!
//! * the Pauli-frame simulator (errors are propagated forward through the
//!   remaining circuit),
//! * detector error model extraction (each elementary error is propagated to
//!   the measurements it flips), and
//! * unit-testing the tableau simulator against first principles.

use crate::{Instruction, Pauli, QubitId, SparsePauli};

/// Returns the image `U P U†` of the generator Pauli `pauli` acting on
/// `qubit`, under the unitary instruction `instruction`.
///
/// `pauli` must be `X` or `Z` (generators); images of `Y` are derived from
/// `Y = iXZ` by the caller. Qubits not involved in the gate map to
/// themselves.
fn generator_image(instruction: &Instruction, qubit: QubitId, pauli: Pauli) -> SparsePauli {
    use Instruction::*;
    debug_assert!(matches!(pauli, Pauli::X | Pauli::Z));

    let single = |p: Pauli| SparsePauli::single(qubit, p);
    let single_neg = |p: Pauli| {
        let mut s = SparsePauli::single(qubit, p);
        s.set_phase_exponent(2);
        s
    };
    let pair = |p1: Pauli, q2: QubitId, p2: Pauli| {
        let mut s = SparsePauli::single(qubit, p1);
        s.set(q2, p2);
        s
    };
    let pair_neg = |p1: Pauli, q2: QubitId, p2: Pauli| {
        let mut s = pair(p1, q2, p2);
        s.set_phase_exponent(2);
        s
    };

    match (*instruction, pauli) {
        // Single-qubit gates -------------------------------------------------
        (I(_), p) => single(p),
        (X(_), Pauli::X) => single(Pauli::X),
        (X(_), Pauli::Z) => single_neg(Pauli::Z),
        (Y(_), Pauli::X) => single_neg(Pauli::X),
        (Y(_), Pauli::Z) => single_neg(Pauli::Z),
        (Z(_), Pauli::X) => single_neg(Pauli::X),
        (Z(_), Pauli::Z) => single(Pauli::Z),
        (H(_), Pauli::X) => single(Pauli::Z),
        (H(_), Pauli::Z) => single(Pauli::X),
        (S(_), Pauli::X) => single(Pauli::Y),
        (S(_), Pauli::Z) => single(Pauli::Z),
        (Sdg(_), Pauli::X) => single_neg(Pauli::Y),
        (Sdg(_), Pauli::Z) => single(Pauli::Z),
        (SqrtX(_), Pauli::X) => single(Pauli::X),
        (SqrtX(_), Pauli::Z) => single_neg(Pauli::Y),
        (SqrtXdg(_), Pauli::X) => single(Pauli::X),
        (SqrtXdg(_), Pauli::Z) => single(Pauli::Y),

        // Two-qubit gates ----------------------------------------------------
        (Cnot { control, target }, p) => {
            if qubit == control {
                match p {
                    Pauli::X => pair(Pauli::X, target, Pauli::X),
                    _ => single(Pauli::Z),
                }
            } else {
                match p {
                    Pauli::X => single(Pauli::X),
                    _ => pair(Pauli::Z, control, Pauli::Z),
                }
            }
        }
        (Cz(a, b), p) => {
            let other = if qubit == a { b } else { a };
            match p {
                Pauli::X => pair(Pauli::X, other, Pauli::Z),
                _ => single(Pauli::Z),
            }
        }
        (Swap(a, b), p) => {
            let other = if qubit == a { b } else { a };
            SparsePauli::single(other, p)
        }
        (Ms(a, b), p) => {
            // MS = exp(-i π/4 X⊗X):
            //   X_a → X_a,          X_b → X_b,
            //   Z_a → −Y_a X_b,     Z_b → −X_a Y_b.
            let other = if qubit == a { b } else { a };
            match p {
                Pauli::X => single(Pauli::X),
                _ => pair_neg(Pauli::Y, other, Pauli::X),
            }
        }

        // Non-unitary instructions have no conjugation action (the caller
        // filters these out), and the generator argument is always X or Z so
        // the remaining combinations are unreachable in practice.
        (Measure(_), _) | (MeasureX(_), _) | (Reset(_), _) => single(pauli),
        (_, p) => single(p),
    }
}

/// Conjugates a Pauli string through a single unitary instruction, returning
/// `U P U†`.
///
/// Returns `None` if the instruction is not unitary (measurement or reset);
/// those require state-dependent treatment which is the responsibility of the
/// simulators.
///
/// # Examples
///
/// ```
/// use qccd_circuit::{clifford, Instruction, Pauli, QubitId, SparsePauli};
///
/// let q0 = QubitId::new(0);
/// let q1 = QubitId::new(1);
/// let cnot = Instruction::Cnot { control: q0, target: q1 };
///
/// // X on the control propagates to XX.
/// let x0 = SparsePauli::single(q0, Pauli::X);
/// let image = clifford::conjugate(&cnot, &x0).unwrap();
/// assert_eq!(image.get(q0), Pauli::X);
/// assert_eq!(image.get(q1), Pauli::X);
/// ```
pub fn conjugate(instruction: &Instruction, pauli: &SparsePauli) -> Option<SparsePauli> {
    if !instruction.is_unitary() {
        return None;
    }
    let involved = instruction.qubits();
    let mut result = SparsePauli::identity();
    result.set_phase_exponent(pauli.phase_exponent());
    for (q, p) in pauli.iter() {
        if !involved.contains(&q) {
            result.mul_assign(&SparsePauli::single(q, p));
            continue;
        }
        let factor = match p {
            Pauli::I => continue,
            Pauli::X => generator_image(instruction, q, Pauli::X),
            Pauli::Z => generator_image(instruction, q, Pauli::Z),
            Pauli::Y => {
                // Y = i·X·Z, so image(Y) = i·image(X)·image(Z).
                let mut img = generator_image(instruction, q, Pauli::X);
                img.mul_assign(&generator_image(instruction, q, Pauli::Z));
                img.set_phase_exponent((img.phase_exponent() + 1) % 4);
                img
            }
        };
        result.mul_assign(&factor);
    }
    Some(result)
}

/// Conjugates a Pauli string through a sequence of unitary instructions in
/// order, i.e. computes `U_n … U_1 P U_1† … U_n†`.
///
/// Non-unitary instructions in the slice are skipped (the propagated operator
/// is unchanged by them); this matches the "propagate an error forward
/// through the rest of the circuit" usage where the caller separately
/// records which measurements the operator anticommutes with.
pub fn conjugate_through(instructions: &[Instruction], pauli: &SparsePauli) -> SparsePauli {
    let mut current = pauli.clone();
    for instruction in instructions {
        if let Some(next) = conjugate(instruction, &current) {
            current = next;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    fn single(i: u32, p: Pauli) -> SparsePauli {
        SparsePauli::single(q(i), p)
    }

    #[test]
    fn hadamard_swaps_x_and_z() {
        let h = Instruction::H(q(0));
        assert_eq!(
            conjugate(&h, &single(0, Pauli::X)).unwrap(),
            single(0, Pauli::Z)
        );
        assert_eq!(
            conjugate(&h, &single(0, Pauli::Z)).unwrap(),
            single(0, Pauli::X)
        );
        // H Y H = -Y.
        let y_image = conjugate(&h, &single(0, Pauli::Y)).unwrap();
        assert_eq!(y_image.get(q(0)), Pauli::Y);
        assert!(y_image.is_negative());
    }

    #[test]
    fn phase_gate_action() {
        let s = Instruction::S(q(0));
        assert_eq!(
            conjugate(&s, &single(0, Pauli::X)).unwrap(),
            single(0, Pauli::Y)
        );
        // S Y S† = -X.
        let y_image = conjugate(&s, &single(0, Pauli::Y)).unwrap();
        assert_eq!(y_image.get(q(0)), Pauli::X);
        assert!(y_image.is_negative());
        // S and S† are inverses.
        let sdg = Instruction::Sdg(q(0));
        let round_trip = conjugate(&sdg, &conjugate(&s, &single(0, Pauli::X)).unwrap()).unwrap();
        assert_eq!(round_trip, single(0, Pauli::X));
    }

    #[test]
    fn cnot_propagation_rules() {
        let cnot = Instruction::Cnot {
            control: q(0),
            target: q(1),
        };
        // X on control spreads to the target.
        let img = conjugate(&cnot, &single(0, Pauli::X)).unwrap();
        assert_eq!(img.get(q(0)), Pauli::X);
        assert_eq!(img.get(q(1)), Pauli::X);
        // Z on target spreads to the control.
        let img = conjugate(&cnot, &single(1, Pauli::Z)).unwrap();
        assert_eq!(img.get(q(0)), Pauli::Z);
        assert_eq!(img.get(q(1)), Pauli::Z);
        // Z on control and X on target are unchanged.
        assert_eq!(
            conjugate(&cnot, &single(0, Pauli::Z)).unwrap(),
            single(0, Pauli::Z)
        );
        assert_eq!(
            conjugate(&cnot, &single(1, Pauli::X)).unwrap(),
            single(1, Pauli::X)
        );
    }

    #[test]
    fn cz_propagation_rules() {
        let cz = Instruction::Cz(q(0), q(1));
        let img = conjugate(&cz, &single(0, Pauli::X)).unwrap();
        assert_eq!(img.get(q(0)), Pauli::X);
        assert_eq!(img.get(q(1)), Pauli::Z);
        let img = conjugate(&cz, &single(1, Pauli::X)).unwrap();
        assert_eq!(img.get(q(0)), Pauli::Z);
        assert_eq!(img.get(q(1)), Pauli::X);
        assert_eq!(
            conjugate(&cz, &single(0, Pauli::Z)).unwrap(),
            single(0, Pauli::Z)
        );
    }

    #[test]
    fn swap_exchanges_qubits() {
        let swap = Instruction::Swap(q(0), q(1));
        assert_eq!(
            conjugate(&swap, &single(0, Pauli::Y)).unwrap(),
            single(1, Pauli::Y)
        );
        assert_eq!(
            conjugate(&swap, &single(1, Pauli::Z)).unwrap(),
            single(0, Pauli::Z)
        );
    }

    #[test]
    fn ms_gate_action_is_self_consistent() {
        let ms = Instruction::Ms(q(0), q(1));
        // X factors are untouched.
        assert_eq!(
            conjugate(&ms, &single(0, Pauli::X)).unwrap(),
            single(0, Pauli::X)
        );
        // Applying MS twice must equal conjugation by X⊗X: Z → −Z.
        let once = conjugate(&ms, &single(0, Pauli::Z)).unwrap();
        let twice = conjugate(&ms, &once).unwrap();
        assert_eq!(twice.get(q(0)), Pauli::Z);
        assert_eq!(twice.get(q(1)), Pauli::I);
        assert!(twice.is_negative());
    }

    #[test]
    fn conjugation_preserves_commutation_relations() {
        // For a fixed gate, images of anticommuting operators anticommute and
        // images of commuting operators commute.
        let gates = [
            Instruction::H(q(0)),
            Instruction::S(q(0)),
            Instruction::SqrtX(q(0)),
            Instruction::Cnot {
                control: q(0),
                target: q(1),
            },
            Instruction::Cz(q(0), q(1)),
            Instruction::Ms(q(0), q(1)),
            Instruction::Swap(q(0), q(1)),
        ];
        let paulis = [
            single(0, Pauli::X),
            single(0, Pauli::Y),
            single(0, Pauli::Z),
            single(1, Pauli::X),
            single(1, Pauli::Z),
            SparsePauli::uniform([q(0), q(1)], Pauli::X),
            SparsePauli::uniform([q(0), q(1)], Pauli::Z),
        ];
        for gate in &gates {
            for a in &paulis {
                for b in &paulis {
                    let ia = conjugate(gate, a).unwrap();
                    let ib = conjugate(gate, b).unwrap();
                    assert_eq!(
                        a.commutes_with(b),
                        ia.commutes_with(&ib),
                        "gate {gate} broke commutation of {a} and {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn bell_circuit_stabilizer_flow() {
        // H(0); CNOT(0,1) maps Z0 → X0X1 and Z1 → Z0Z1 (the Bell stabilizers).
        let mut circuit = Circuit::new();
        circuit.push(Instruction::H(q(0)));
        circuit.push(Instruction::Cnot {
            control: q(0),
            target: q(1),
        });
        let z0 = conjugate_through(circuit.instructions(), &single(0, Pauli::Z));
        assert_eq!(z0.get(q(0)), Pauli::X);
        assert_eq!(z0.get(q(1)), Pauli::X);
        let z1 = conjugate_through(circuit.instructions(), &single(1, Pauli::Z));
        assert_eq!(z1.get(q(0)), Pauli::Z);
        assert_eq!(z1.get(q(1)), Pauli::Z);
    }

    #[test]
    fn non_unitary_returns_none() {
        assert!(conjugate(&Instruction::Measure(q(0)), &single(0, Pauli::X)).is_none());
        assert!(conjugate(&Instruction::Reset(q(0)), &single(0, Pauli::X)).is_none());
    }
}
