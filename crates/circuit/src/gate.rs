//! Circuit instructions.
//!
//! The instruction set is deliberately restricted to the Clifford group plus
//! measurement and reset: this is exactly what surface-code parity-check
//! circuits require, and it is what a stabilizer simulator can handle
//! efficiently. The translation to the trapped-ion *native* gate set
//! (Mølmer–Sørensen entangling gates and single-ion rotations) lives in
//! [`crate::native`] and is only used for timing/scheduling purposes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::QubitId;

/// A single instruction of a Clifford + measurement circuit.
///
/// Two-qubit instructions list the *control* first where the distinction is
/// meaningful ([`Instruction::Cnot`]); symmetric gates such as
/// [`Instruction::Cz`] and [`Instruction::Swap`] treat both operands
/// equivalently.
///
/// # Examples
///
/// ```
/// use qccd_circuit::{Instruction, QubitId};
///
/// let cnot = Instruction::Cnot {
///     control: QubitId::new(0),
///     target: QubitId::new(1),
/// };
/// assert_eq!(cnot.qubits(), vec![QubitId::new(0), QubitId::new(1)]);
/// assert!(cnot.is_two_qubit());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instruction {
    /// Identity (explicit idle marker, occasionally useful in schedules).
    I(QubitId),
    /// Pauli X.
    X(QubitId),
    /// Pauli Y.
    Y(QubitId),
    /// Pauli Z.
    Z(QubitId),
    /// Hadamard.
    H(QubitId),
    /// Phase gate `S = diag(1, i)`.
    S(QubitId),
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdg(QubitId),
    /// Square root of X (`√X`), a Clifford rotation by π/2 about the X axis.
    SqrtX(QubitId),
    /// Inverse square root of X.
    SqrtXdg(QubitId),
    /// Controlled-NOT with explicit control and target.
    Cnot {
        /// Control qubit.
        control: QubitId,
        /// Target qubit.
        target: QubitId,
    },
    /// Controlled-Z (symmetric).
    Cz(QubitId, QubitId),
    /// SWAP (symmetric).
    Swap(QubitId, QubitId),
    /// Mølmer–Sørensen XX(π/4) interaction (symmetric, Clifford).
    ///
    /// This is the native trapped-ion entangling gate. At the Clifford level
    /// it is equivalent to `exp(-i π/4 · X⊗X)`.
    Ms(QubitId, QubitId),
    /// Measurement in the computational (Z) basis, producing one measurement
    /// record.
    Measure(QubitId),
    /// Measurement in the X basis, producing one measurement record.
    MeasureX(QubitId),
    /// Reset to |0⟩.
    Reset(QubitId),
}

impl Instruction {
    /// Returns the qubits this instruction acts on, in operand order.
    pub fn qubits(&self) -> Vec<QubitId> {
        match *self {
            Instruction::I(q)
            | Instruction::X(q)
            | Instruction::Y(q)
            | Instruction::Z(q)
            | Instruction::H(q)
            | Instruction::S(q)
            | Instruction::Sdg(q)
            | Instruction::SqrtX(q)
            | Instruction::SqrtXdg(q)
            | Instruction::Measure(q)
            | Instruction::MeasureX(q)
            | Instruction::Reset(q) => vec![q],
            Instruction::Cnot { control, target } => vec![control, target],
            Instruction::Cz(a, b) | Instruction::Swap(a, b) | Instruction::Ms(a, b) => {
                vec![a, b]
            }
        }
    }

    /// Returns `true` if this instruction acts on exactly two qubits.
    pub fn is_two_qubit(&self) -> bool {
        matches!(
            self,
            Instruction::Cnot { .. }
                | Instruction::Cz(_, _)
                | Instruction::Swap(_, _)
                | Instruction::Ms(_, _)
        )
    }

    /// Returns `true` if this instruction produces a measurement record.
    pub fn is_measurement(&self) -> bool {
        matches!(self, Instruction::Measure(_) | Instruction::MeasureX(_))
    }

    /// Returns `true` if this instruction is a reset.
    pub fn is_reset(&self) -> bool {
        matches!(self, Instruction::Reset(_))
    }

    /// Returns `true` if this instruction is a unitary Clifford gate
    /// (i.e. not a measurement and not a reset).
    pub fn is_unitary(&self) -> bool {
        !self.is_measurement() && !self.is_reset()
    }

    /// Returns `true` if the instruction acts on the given qubit.
    pub fn acts_on(&self, qubit: QubitId) -> bool {
        self.qubits().contains(&qubit)
    }

    /// A short mnemonic name for the instruction kind.
    pub fn name(&self) -> &'static str {
        match self {
            Instruction::I(_) => "I",
            Instruction::X(_) => "X",
            Instruction::Y(_) => "Y",
            Instruction::Z(_) => "Z",
            Instruction::H(_) => "H",
            Instruction::S(_) => "S",
            Instruction::Sdg(_) => "SDG",
            Instruction::SqrtX(_) => "SQRT_X",
            Instruction::SqrtXdg(_) => "SQRT_X_DAG",
            Instruction::Cnot { .. } => "CNOT",
            Instruction::Cz(_, _) => "CZ",
            Instruction::Swap(_, _) => "SWAP",
            Instruction::Ms(_, _) => "MS",
            Instruction::Measure(_) => "M",
            Instruction::MeasureX(_) => "MX",
            Instruction::Reset(_) => "R",
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qubits = self.qubits();
        write!(f, "{}", self.name())?;
        for q in qubits {
            write!(f, " {q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn qubit_lists() {
        assert_eq!(Instruction::H(q(3)).qubits(), vec![q(3)]);
        assert_eq!(
            Instruction::Cnot {
                control: q(1),
                target: q(2)
            }
            .qubits(),
            vec![q(1), q(2)]
        );
        assert_eq!(Instruction::Swap(q(5), q(6)).qubits(), vec![q(5), q(6)]);
    }

    #[test]
    fn classification() {
        assert!(Instruction::Cz(q(0), q(1)).is_two_qubit());
        assert!(!Instruction::H(q(0)).is_two_qubit());
        assert!(Instruction::Measure(q(0)).is_measurement());
        assert!(Instruction::MeasureX(q(0)).is_measurement());
        assert!(!Instruction::Reset(q(0)).is_measurement());
        assert!(Instruction::Reset(q(0)).is_reset());
        assert!(Instruction::H(q(0)).is_unitary());
        assert!(!Instruction::Measure(q(0)).is_unitary());
        assert!(!Instruction::Reset(q(0)).is_unitary());
    }

    #[test]
    fn acts_on() {
        let g = Instruction::Cnot {
            control: q(1),
            target: q(4),
        };
        assert!(g.acts_on(q(1)));
        assert!(g.acts_on(q(4)));
        assert!(!g.acts_on(q(2)));
    }

    #[test]
    fn display_format() {
        assert_eq!(Instruction::H(q(2)).to_string(), "H q2");
        assert_eq!(
            Instruction::Cnot {
                control: q(0),
                target: q(1)
            }
            .to_string(),
            "CNOT q0 q1"
        );
        assert_eq!(Instruction::Ms(q(3), q(7)).to_string(), "MS q3 q7");
    }

    #[test]
    fn names_are_unique_per_kind() {
        let gates = [
            Instruction::I(q(0)),
            Instruction::X(q(0)),
            Instruction::Y(q(0)),
            Instruction::Z(q(0)),
            Instruction::H(q(0)),
            Instruction::S(q(0)),
            Instruction::Sdg(q(0)),
            Instruction::SqrtX(q(0)),
            Instruction::SqrtXdg(q(0)),
            Instruction::Cnot {
                control: q(0),
                target: q(1),
            },
            Instruction::Cz(q(0), q(1)),
            Instruction::Swap(q(0), q(1)),
            Instruction::Ms(q(0), q(1)),
            Instruction::Measure(q(0)),
            Instruction::MeasureX(q(0)),
            Instruction::Reset(q(0)),
        ];
        let names: std::collections::HashSet<_> = gates.iter().map(|g| g.name()).collect();
        assert_eq!(names.len(), gates.len());
    }
}
