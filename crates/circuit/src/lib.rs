//! # qccd-circuit
//!
//! Quantum circuit intermediate representation for the QCCD surface-code
//! architecture study.
//!
//! This crate provides the shared vocabulary used by every other crate in the
//! workspace:
//!
//! * [`QubitId`] / [`MeasurementIndex`] / [`MeasurementRef`] — identifiers,
//! * [`Instruction`] and [`Circuit`] — Clifford + measurement circuits with
//!   detector and logical-observable annotations,
//! * [`Pauli`] and [`SparsePauli`] — Pauli algebra,
//! * [`clifford`] — conjugation of Pauli strings through Clifford gates,
//! * [`native`] — translation into the trapped-ion native gate set
//!   (Mølmer–Sørensen gates and single-ion rotations) used for timing.
//!
//! # Example
//!
//! Building and inspecting a small parity-check circuit:
//!
//! ```
//! use qccd_circuit::{native, Circuit, Instruction, QubitId};
//!
//! let data = [QubitId::new(0), QubitId::new(1)];
//! let ancilla = QubitId::new(2);
//!
//! let mut circuit = Circuit::new();
//! circuit.push(Instruction::Reset(ancilla));
//! for d in data {
//!     circuit.push(Instruction::Cnot { control: d, target: ancilla });
//! }
//! circuit.push(Instruction::Measure(ancilla));
//!
//! assert_eq!(circuit.stats().two_qubit_gates, 2);
//! // The native translation needs 2 MS gates for the two CNOTs.
//! assert_eq!(native::circuit_native_counts(&circuit).ms, 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod circuit;
pub mod clifford;
mod gate;
pub mod native;
mod pauli;
mod qubit;

pub use circuit::{Circuit, CircuitStats, Detector, LogicalObservable, MeasurementRef};
pub use gate::Instruction;
pub use native::{NativeGateKind, NativeGateOp, NativeOpCounts, RotationAxis};
pub use pauli::{Pauli, SparsePauli};
pub use qubit::{MeasurementIndex, QubitId};
