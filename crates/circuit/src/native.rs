//! Translation to the native trapped-ion gate set.
//!
//! QCCD trapped-ion hardware exposes a small set of primitive quantum
//! operations (§2 of the paper):
//!
//! * (t1) the two-qubit Mølmer–Sørensen (MS) entangling gate,
//! * (t2–t4) single-ion rotations about the X, Y and Z axes,
//! * (t5) qubit measurement, and
//! * (t6) qubit reset.
//!
//! Surface-code parity-check circuits are written in terms of Hadamard,
//! CNOT, measurement and reset; this module converts those instructions into
//! native-gate sequences using standard gate identities (Figgatt 2018). The
//! translation is used for *timing and scheduling*: the Clifford-level
//! circuit retains the semantics used by the stabilizer simulator, while the
//! native sequence determines how long each parity check takes on hardware
//! and how many serialized operations each trap must execute.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Circuit, Instruction, QubitId};

/// Rotation axis of a single-ion rotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RotationAxis {
    /// Rotation about the X axis (t2).
    X,
    /// Rotation about the Y axis (t3).
    Y,
    /// Rotation about the Z axis (t4).
    Z,
}

impl fmt::Display for RotationAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RotationAxis::X => write!(f, "X"),
            RotationAxis::Y => write!(f, "Y"),
            RotationAxis::Z => write!(f, "Z"),
        }
    }
}

/// Broad class of a native gate operation, used to look up durations and
/// error rates in the hardware timing model without creating a dependency
/// cycle between the circuit and hardware crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NativeGateKind {
    /// Two-qubit Mølmer–Sørensen gate (t1).
    TwoQubitMs,
    /// Single-ion rotation (t2–t4).
    Rotation,
    /// Qubit measurement (t5).
    Measurement,
    /// Qubit reset (t6).
    Reset,
}

/// A native trapped-ion quantum operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NativeGateOp {
    /// Two-qubit Mølmer–Sørensen XX(π/4) gate between two ions in the same
    /// trap.
    Ms(QubitId, QubitId),
    /// Single-ion rotation by `angle` radians about `axis`.
    Rotation {
        /// The ion being rotated.
        qubit: QubitId,
        /// Rotation axis.
        axis: RotationAxis,
        /// Rotation angle in radians.
        angle: f64,
    },
    /// State-selective fluorescence measurement of one ion.
    Measure(QubitId),
    /// Optical-pumping reset of one ion to |0⟩.
    Reset(QubitId),
}

impl NativeGateOp {
    /// Convenience constructor for a rotation.
    pub fn rotation(qubit: QubitId, axis: RotationAxis, angle: f64) -> Self {
        NativeGateOp::Rotation { qubit, axis, angle }
    }

    /// The qubits this operation acts on.
    pub fn qubits(&self) -> Vec<QubitId> {
        match *self {
            NativeGateOp::Ms(a, b) => vec![a, b],
            NativeGateOp::Rotation { qubit, .. }
            | NativeGateOp::Measure(qubit)
            | NativeGateOp::Reset(qubit) => vec![qubit],
        }
    }

    /// The timing/error class of this operation.
    pub fn kind(&self) -> NativeGateKind {
        match self {
            NativeGateOp::Ms(_, _) => NativeGateKind::TwoQubitMs,
            NativeGateOp::Rotation { .. } => NativeGateKind::Rotation,
            NativeGateOp::Measure(_) => NativeGateKind::Measurement,
            NativeGateOp::Reset(_) => NativeGateKind::Reset,
        }
    }

    /// Returns `true` if this is a two-qubit operation.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, NativeGateOp::Ms(_, _))
    }
}

impl fmt::Display for NativeGateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NativeGateOp::Ms(a, b) => write!(f, "MS {a} {b}"),
            NativeGateOp::Rotation { qubit, axis, angle } => {
                write!(f, "R{axis}({angle:.3}) {qubit}")
            }
            NativeGateOp::Measure(q) => write!(f, "MEASURE {q}"),
            NativeGateOp::Reset(q) => write!(f, "RESET {q}"),
        }
    }
}

use std::f64::consts::{FRAC_PI_2, PI};

/// Decomposes one Clifford-level instruction into native trapped-ion
/// operations.
///
/// The decompositions follow standard trapped-ion identities:
///
/// * `H = RY(π/2) · RX(π)`
/// * `CNOT(c,t) = RY(π/2)_c · MS(π/4) · RX(−π/2)_c · RX(−π/2)_t · RY(−π/2)_c`
/// * `CZ(a,b) = H_b · CNOT(a,b) · H_b`
/// * `SWAP(a,b) = CNOT(a,b) · CNOT(b,a) · CNOT(a,b)` (3 MS gates, as the
///   paper's "gate swap" movement cost assumes)
///
/// Pauli gates, `S`, and `√X` map to single rotations. Measurement in the X
/// basis becomes a basis-change rotation followed by a Z-basis measurement.
///
/// # Examples
///
/// ```
/// use qccd_circuit::{native, Instruction, QubitId};
///
/// let cnot = Instruction::Cnot {
///     control: QubitId::new(0),
///     target: QubitId::new(1),
/// };
/// let ops = native::decompose(&cnot);
/// let ms_count = ops.iter().filter(|op| op.is_two_qubit()).count();
/// assert_eq!(ms_count, 1);
/// assert_eq!(ops.len(), 5);
/// ```
pub fn decompose(instruction: &Instruction) -> Vec<NativeGateOp> {
    use Instruction::*;
    use NativeGateOp as N;
    use RotationAxis as A;

    match *instruction {
        I(_) => vec![],
        X(q) => vec![N::rotation(q, A::X, PI)],
        Y(q) => vec![N::rotation(q, A::Y, PI)],
        Z(q) => vec![N::rotation(q, A::Z, PI)],
        S(q) => vec![N::rotation(q, A::Z, FRAC_PI_2)],
        Sdg(q) => vec![N::rotation(q, A::Z, -FRAC_PI_2)],
        SqrtX(q) => vec![N::rotation(q, A::X, FRAC_PI_2)],
        SqrtXdg(q) => vec![N::rotation(q, A::X, -FRAC_PI_2)],
        H(q) => vec![N::rotation(q, A::Y, FRAC_PI_2), N::rotation(q, A::X, PI)],
        Cnot { control, target } => cnot_sequence(control, target),
        Cz(a, b) => {
            let mut ops = vec![N::rotation(b, A::Y, FRAC_PI_2), N::rotation(b, A::X, PI)];
            ops.extend(cnot_sequence(a, b));
            ops.push(N::rotation(b, A::Y, FRAC_PI_2));
            ops.push(N::rotation(b, A::X, PI));
            ops
        }
        Swap(a, b) => {
            let mut ops = cnot_sequence(a, b);
            ops.extend(cnot_sequence(b, a));
            ops.extend(cnot_sequence(a, b));
            ops
        }
        Ms(a, b) => vec![N::Ms(a, b)],
        Measure(q) => vec![N::Measure(q)],
        MeasureX(q) => vec![N::rotation(q, A::Y, -FRAC_PI_2), N::Measure(q)],
        Reset(q) => vec![N::Reset(q)],
    }
}

fn cnot_sequence(control: QubitId, target: QubitId) -> Vec<NativeGateOp> {
    use NativeGateOp as N;
    use RotationAxis as A;
    vec![
        N::rotation(control, A::Y, FRAC_PI_2),
        N::Ms(control, target),
        N::rotation(control, A::X, -FRAC_PI_2),
        N::rotation(target, A::X, -FRAC_PI_2),
        N::rotation(control, A::Y, -FRAC_PI_2),
    ]
}

/// Decomposes every instruction of a circuit, preserving order.
pub fn decompose_circuit(circuit: &Circuit) -> Vec<NativeGateOp> {
    circuit.iter().flat_map(decompose).collect()
}

/// Counts of native operations produced by decomposing an instruction; used
/// by the theoretical-minimum elapsed-time model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NativeOpCounts {
    /// Number of two-qubit MS gates.
    pub ms: usize,
    /// Number of single-ion rotations.
    pub rotations: usize,
    /// Number of measurements.
    pub measurements: usize,
    /// Number of resets.
    pub resets: usize,
}

impl NativeOpCounts {
    /// Accumulates the counts of another tally into this one.
    pub fn add(&mut self, other: NativeOpCounts) {
        self.ms += other.ms;
        self.rotations += other.rotations;
        self.measurements += other.measurements;
        self.resets += other.resets;
    }
}

/// Tallies the native operations required by one instruction.
pub fn native_counts(instruction: &Instruction) -> NativeOpCounts {
    let mut counts = NativeOpCounts::default();
    for op in decompose(instruction) {
        match op.kind() {
            NativeGateKind::TwoQubitMs => counts.ms += 1,
            NativeGateKind::Rotation => counts.rotations += 1,
            NativeGateKind::Measurement => counts.measurements += 1,
            NativeGateKind::Reset => counts.resets += 1,
        }
    }
    counts
}

/// Tallies the native operations required by a whole circuit.
pub fn circuit_native_counts(circuit: &Circuit) -> NativeOpCounts {
    let mut counts = NativeOpCounts::default();
    for instruction in circuit.iter() {
        counts.add(native_counts(instruction));
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn hadamard_is_two_rotations() {
        let ops = decompose(&Instruction::H(q(0)));
        assert_eq!(ops.len(), 2);
        assert!(ops.iter().all(|op| op.kind() == NativeGateKind::Rotation));
    }

    #[test]
    fn cnot_uses_one_ms_and_four_rotations() {
        let counts = native_counts(&Instruction::Cnot {
            control: q(0),
            target: q(1),
        });
        assert_eq!(counts.ms, 1);
        assert_eq!(counts.rotations, 4);
        assert_eq!(counts.measurements, 0);
        assert_eq!(counts.resets, 0);
    }

    #[test]
    fn swap_uses_three_ms_gates() {
        let counts = native_counts(&Instruction::Swap(q(0), q(1)));
        assert_eq!(counts.ms, 3, "the paper counts a gate swap as 3 MS gates");
        assert_eq!(counts.rotations, 12);
    }

    #[test]
    fn cz_uses_one_ms() {
        let counts = native_counts(&Instruction::Cz(q(0), q(1)));
        assert_eq!(counts.ms, 1);
    }

    #[test]
    fn pauli_gates_are_single_rotations() {
        for instr in [
            Instruction::X(q(0)),
            Instruction::Y(q(0)),
            Instruction::Z(q(0)),
            Instruction::S(q(0)),
            Instruction::Sdg(q(0)),
            Instruction::SqrtX(q(0)),
            Instruction::SqrtXdg(q(0)),
        ] {
            let ops = decompose(&instr);
            assert_eq!(ops.len(), 1, "{instr} should be one rotation");
            assert_eq!(ops[0].kind(), NativeGateKind::Rotation);
        }
    }

    #[test]
    fn identity_is_free() {
        assert!(decompose(&Instruction::I(q(0))).is_empty());
    }

    #[test]
    fn measurement_and_reset_pass_through() {
        assert_eq!(
            decompose(&Instruction::Measure(q(3))),
            vec![NativeGateOp::Measure(q(3))]
        );
        assert_eq!(
            decompose(&Instruction::Reset(q(3))),
            vec![NativeGateOp::Reset(q(3))]
        );
        let mx = decompose(&Instruction::MeasureX(q(3)));
        assert_eq!(mx.len(), 2);
        assert_eq!(mx[1], NativeGateOp::Measure(q(3)));
    }

    #[test]
    fn decompose_circuit_preserves_counts() {
        let mut c = Circuit::new();
        c.push(Instruction::Reset(q(2)));
        c.push(Instruction::H(q(2)));
        c.push(Instruction::Cnot {
            control: q(2),
            target: q(0),
        });
        c.push(Instruction::Cnot {
            control: q(2),
            target: q(1),
        });
        c.push(Instruction::Measure(q(2)));

        let counts = circuit_native_counts(&c);
        assert_eq!(counts.ms, 2);
        assert_eq!(counts.rotations, 2 + 4 + 4);
        assert_eq!(counts.measurements, 1);
        assert_eq!(counts.resets, 1);

        let ops = decompose_circuit(&c);
        assert_eq!(
            ops.len(),
            counts.ms + counts.rotations + counts.measurements + counts.resets
        );
    }

    #[test]
    fn native_op_metadata() {
        let ms = NativeGateOp::Ms(q(0), q(1));
        assert!(ms.is_two_qubit());
        assert_eq!(ms.qubits(), vec![q(0), q(1)]);
        assert_eq!(ms.kind(), NativeGateKind::TwoQubitMs);
        let rot = NativeGateOp::rotation(q(2), RotationAxis::Y, FRAC_PI_2);
        assert!(!rot.is_two_qubit());
        assert_eq!(rot.qubits(), vec![q(2)]);
        assert!(rot.to_string().starts_with("RY"));
    }
}
