//! Pauli operators and sparse Pauli strings.
//!
//! The QEC layer describes stabilizers as Pauli strings, the noise model
//! injects Pauli errors, and the simulators propagate Pauli *frames* through
//! Clifford circuits. This module provides the shared algebra: single-qubit
//! [`Pauli`] operators with phase-tracked multiplication, and sparse
//! multi-qubit [`SparsePauli`] strings.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::QubitId;

/// A single-qubit Pauli operator.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum Pauli {
    /// Identity.
    #[default]
    I,
    /// Bit flip.
    X,
    /// Bit-and-phase flip.
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// All four Pauli operators, in `I, X, Y, Z` order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// Builds a Pauli from its X and Z components (`Y` has both).
    #[inline]
    pub const fn from_xz(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Returns the `(x, z)` component pair of this Pauli.
    #[inline]
    pub const fn xz(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Returns `true` if this is the identity.
    #[inline]
    pub const fn is_identity(self) -> bool {
        matches!(self, Pauli::I)
    }

    /// Returns `true` if `self` and `other` commute.
    ///
    /// Two single-qubit Paulis commute iff either is the identity or they are
    /// equal.
    #[inline]
    pub fn commutes_with(self, other: Pauli) -> bool {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        // Symplectic product: they anticommute iff x1·z2 + z1·x2 is odd.
        !((x1 & z2) ^ (z1 & x2))
    }

    /// Multiplies two Paulis, returning the phase as a power of `i`
    /// (0 ⇒ +1, 1 ⇒ +i, 2 ⇒ −1, 3 ⇒ −i) and the resulting Pauli.
    ///
    /// # Examples
    ///
    /// ```
    /// use qccd_circuit::Pauli;
    ///
    /// // X · Y = iZ
    /// assert_eq!(Pauli::X.mul(Pauli::Y), (1, Pauli::Z));
    /// // Y · X = −iZ
    /// assert_eq!(Pauli::Y.mul(Pauli::X), (3, Pauli::Z));
    /// ```
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Pauli) -> (u8, Pauli) {
        use Pauli::*;
        match (self, other) {
            (I, p) | (p, I) => (0, p),
            (X, X) | (Y, Y) | (Z, Z) => (0, I),
            (X, Y) => (1, Z),
            (Y, X) => (3, Z),
            (Y, Z) => (1, X),
            (Z, Y) => (3, X),
            (Z, X) => (1, Y),
            (X, Z) => (3, Y),
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// A sparse multi-qubit Pauli string with a tracked phase.
///
/// Only non-identity factors are stored. The phase is a power of `i`
/// (`phase_exponent` ∈ {0, 1, 2, 3}); Hermitian Pauli strings produced by
/// Clifford conjugation always carry phase exponent 0 or 2 (i.e. ±1).
///
/// # Examples
///
/// ```
/// use qccd_circuit::{Pauli, QubitId, SparsePauli};
///
/// let mut zz = SparsePauli::identity();
/// zz.set(QubitId::new(0), Pauli::Z);
/// zz.set(QubitId::new(3), Pauli::Z);
/// assert_eq!(zz.weight(), 2);
/// assert_eq!(zz.get(QubitId::new(1)), Pauli::I);
/// assert_eq!(format!("{zz}"), "+Z0*Z3");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SparsePauli {
    terms: BTreeMap<QubitId, Pauli>,
    phase_exponent: u8,
}

impl SparsePauli {
    /// Creates the identity Pauli string (weight 0, phase +1).
    pub fn identity() -> Self {
        SparsePauli::default()
    }

    /// Creates a single-qubit Pauli string.
    pub fn single(qubit: QubitId, pauli: Pauli) -> Self {
        let mut s = SparsePauli::identity();
        s.set(qubit, pauli);
        s
    }

    /// Creates a Pauli string acting with `pauli` on each listed qubit.
    pub fn uniform<I: IntoIterator<Item = QubitId>>(qubits: I, pauli: Pauli) -> Self {
        let mut s = SparsePauli::identity();
        for q in qubits {
            s.set(q, pauli);
        }
        s
    }

    /// Returns the Pauli acting on `qubit` (identity if unset).
    pub fn get(&self, qubit: QubitId) -> Pauli {
        self.terms.get(&qubit).copied().unwrap_or(Pauli::I)
    }

    /// Sets the Pauli acting on `qubit`, removing the entry if identity.
    pub fn set(&mut self, qubit: QubitId, pauli: Pauli) {
        if pauli.is_identity() {
            self.terms.remove(&qubit);
        } else {
            self.terms.insert(qubit, pauli);
        }
    }

    /// Number of qubits acted on non-trivially.
    pub fn weight(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if this is the identity string (any phase).
    pub fn is_identity(&self) -> bool {
        self.terms.is_empty()
    }

    /// The phase exponent `k` such that the string equals `i^k · P`.
    pub fn phase_exponent(&self) -> u8 {
        self.phase_exponent
    }

    /// Returns `true` if the tracked phase is −1 or −i.
    pub fn is_negative(&self) -> bool {
        self.phase_exponent == 2 || self.phase_exponent == 3
    }

    /// Overrides the phase exponent (mod 4).
    pub fn set_phase_exponent(&mut self, exponent: u8) {
        self.phase_exponent = exponent % 4;
    }

    /// Iterates over the non-identity `(qubit, pauli)` factors in qubit order.
    pub fn iter(&self) -> impl Iterator<Item = (QubitId, Pauli)> + '_ {
        self.terms.iter().map(|(&q, &p)| (q, p))
    }

    /// Returns the qubits acted on non-trivially, in ascending order.
    pub fn support(&self) -> Vec<QubitId> {
        self.terms.keys().copied().collect()
    }

    /// Multiplies `other` into `self` (i.e. `self ← self · other`), tracking
    /// the accumulated phase.
    pub fn mul_assign(&mut self, other: &SparsePauli) {
        self.phase_exponent = (self.phase_exponent + other.phase_exponent) % 4;
        for (q, p) in other.iter() {
            let (phase, prod) = self.get(q).mul(p);
            self.phase_exponent = (self.phase_exponent + phase) % 4;
            self.set(q, prod);
        }
    }

    /// Returns the product `self · other`.
    pub fn mul(&self, other: &SparsePauli) -> SparsePauli {
        let mut result = self.clone();
        result.mul_assign(other);
        result
    }

    /// Returns `true` if `self` commutes with `other`.
    ///
    /// Two Pauli strings commute iff they anticommute on an even number of
    /// qubits.
    pub fn commutes_with(&self, other: &SparsePauli) -> bool {
        let mut anticommuting = 0usize;
        for (q, p) in self.iter() {
            let o = other.get(q);
            if o.is_identity() {
                continue;
            }
            let (x1, z1) = p.xz();
            let (x2, z2) = o.xz();
            if (x1 & z2) ^ (z1 & x2) {
                anticommuting += 1;
            }
        }
        anticommuting.is_multiple_of(2)
    }

    /// Returns the qubits where this string has an X component (X or Y).
    pub fn x_support(&self) -> Vec<QubitId> {
        self.iter()
            .filter(|(_, p)| p.xz().0)
            .map(|(q, _)| q)
            .collect()
    }

    /// Returns the qubits where this string has a Z component (Z or Y).
    pub fn z_support(&self) -> Vec<QubitId> {
        self.iter()
            .filter(|(_, p)| p.xz().1)
            .map(|(q, _)| q)
            .collect()
    }
}

impl fmt::Display for SparsePauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = match self.phase_exponent {
            0 => "+",
            1 => "+i",
            2 => "-",
            _ => "-i",
        };
        write!(f, "{sign}")?;
        if self.terms.is_empty() {
            return write!(f, "I");
        }
        let mut first = true;
        for (q, p) in self.iter() {
            if !first {
                write!(f, "*")?;
            }
            write!(f, "{p}{}", q.index())?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<(QubitId, Pauli)> for SparsePauli {
    fn from_iter<T: IntoIterator<Item = (QubitId, Pauli)>>(iter: T) -> Self {
        let mut s = SparsePauli::identity();
        for (q, p) in iter {
            s.set(q, p);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn pauli_from_xz_round_trips() {
        for p in Pauli::ALL {
            let (x, z) = p.xz();
            assert_eq!(Pauli::from_xz(x, z), p);
        }
    }

    #[test]
    fn pauli_multiplication_table() {
        use Pauli::*;
        // Products of equal Paulis are identity with no phase.
        for p in Pauli::ALL {
            assert_eq!(p.mul(p), (0, I));
        }
        // Cyclic products pick up ±i.
        assert_eq!(X.mul(Y), (1, Z));
        assert_eq!(Y.mul(Z), (1, X));
        assert_eq!(Z.mul(X), (1, Y));
        assert_eq!(Y.mul(X), (3, Z));
        assert_eq!(Z.mul(Y), (3, X));
        assert_eq!(X.mul(Z), (3, Y));
    }

    #[test]
    fn pauli_commutation() {
        use Pauli::*;
        assert!(I.commutes_with(X));
        assert!(X.commutes_with(X));
        assert!(!X.commutes_with(Z));
        assert!(!Y.commutes_with(Z));
        assert!(!X.commutes_with(Y));
    }

    #[test]
    fn sparse_pauli_set_get() {
        let mut s = SparsePauli::identity();
        assert!(s.is_identity());
        s.set(q(5), Pauli::X);
        assert_eq!(s.get(q(5)), Pauli::X);
        assert_eq!(s.get(q(0)), Pauli::I);
        assert_eq!(s.weight(), 1);
        s.set(q(5), Pauli::I);
        assert!(s.is_identity());
    }

    #[test]
    fn sparse_pauli_multiplication_xor_behaviour() {
        let x0 = SparsePauli::single(q(0), Pauli::X);
        let z0 = SparsePauli::single(q(0), Pauli::Z);
        let y0 = x0.mul(&z0);
        // X·Z = −iY
        assert_eq!(y0.get(q(0)), Pauli::Y);
        assert_eq!(y0.phase_exponent(), 3);

        // Multiplying a string by itself gives the identity with +1 phase.
        let mut s = SparsePauli::identity();
        s.set(q(0), Pauli::X);
        s.set(q(1), Pauli::Y);
        s.set(q(2), Pauli::Z);
        let prod = s.mul(&s);
        assert!(prod.is_identity());
        assert_eq!(prod.phase_exponent(), 0);
    }

    #[test]
    fn sparse_pauli_commutation() {
        // XX commutes with ZZ (anticommute on two qubits).
        let xx = SparsePauli::uniform([q(0), q(1)], Pauli::X);
        let zz = SparsePauli::uniform([q(0), q(1)], Pauli::Z);
        assert!(xx.commutes_with(&zz));

        // X0 anticommutes with Z0.
        let x0 = SparsePauli::single(q(0), Pauli::X);
        let z0 = SparsePauli::single(q(0), Pauli::Z);
        assert!(!x0.commutes_with(&z0));

        // Disjoint supports always commute.
        let x1 = SparsePauli::single(q(1), Pauli::X);
        assert!(x1.commutes_with(&z0));
    }

    #[test]
    fn supports() {
        let mut s = SparsePauli::identity();
        s.set(q(0), Pauli::X);
        s.set(q(1), Pauli::Y);
        s.set(q(2), Pauli::Z);
        assert_eq!(s.support(), vec![q(0), q(1), q(2)]);
        assert_eq!(s.x_support(), vec![q(0), q(1)]);
        assert_eq!(s.z_support(), vec![q(1), q(2)]);
    }

    #[test]
    fn display() {
        let mut s = SparsePauli::identity();
        assert_eq!(s.to_string(), "+I");
        s.set(q(2), Pauli::X);
        s.set(q(4), Pauli::Z);
        assert_eq!(s.to_string(), "+X2*Z4");
        s.set_phase_exponent(2);
        assert_eq!(s.to_string(), "-X2*Z4");
    }

    #[test]
    fn from_iterator() {
        let s: SparsePauli = vec![(q(0), Pauli::X), (q(1), Pauli::I), (q(2), Pauli::Z)]
            .into_iter()
            .collect();
        assert_eq!(s.weight(), 2);
    }
}
