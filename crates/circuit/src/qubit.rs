//! Qubit identifiers.
//!
//! A [`QubitId`] is a dense index into the qubit register of a
//! [`Circuit`](crate::Circuit). The QEC layer assigns semantic roles (data
//! qubit, ancilla qubit) on top of these raw indices, and the QCCD compiler
//! maps them onto physical ions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a qubit inside a circuit.
///
/// `QubitId` is a thin newtype around `u32` so that qubit indices cannot be
/// accidentally confused with other integer quantities (trap indices, ion
/// indices, measurement indices, ...).
///
/// # Examples
///
/// ```
/// use qccd_circuit::QubitId;
///
/// let q = QubitId::new(3);
/// assert_eq!(q.index(), 3);
/// assert_eq!(format!("{q}"), "q3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QubitId(u32);

impl QubitId {
    /// Creates a qubit identifier from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        QubitId(index)
    }

    /// Returns the raw index of this qubit.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index as a `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for QubitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for QubitId {
    fn from(value: u32) -> Self {
        QubitId(value)
    }
}

impl From<QubitId> for u32 {
    fn from(value: QubitId) -> Self {
        value.0
    }
}

impl From<QubitId> for usize {
    fn from(value: QubitId) -> Self {
        value.index()
    }
}

/// Index of a measurement record produced by a circuit.
///
/// Measurement results are numbered in the order the measurement
/// instructions appear in the circuit, starting from zero. Detectors and
/// logical observables reference measurements through this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MeasurementIndex(pub usize);

impl MeasurementIndex {
    /// Creates a measurement index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        MeasurementIndex(index)
    }

    /// Returns the zero-based position of the measurement in the circuit.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MeasurementIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<usize> for MeasurementIndex {
    fn from(value: usize) -> Self {
        MeasurementIndex(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn qubit_id_round_trip() {
        let q = QubitId::new(42);
        assert_eq!(q.index(), 42);
        assert_eq!(q.raw(), 42);
        assert_eq!(u32::from(q), 42);
        assert_eq!(usize::from(q), 42);
        assert_eq!(QubitId::from(42u32), q);
    }

    #[test]
    fn qubit_id_display() {
        assert_eq!(QubitId::new(0).to_string(), "q0");
        assert_eq!(QubitId::new(17).to_string(), "q17");
    }

    #[test]
    fn qubit_id_ordering_matches_index() {
        let a = QubitId::new(1);
        let b = QubitId::new(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn qubit_id_hashable() {
        let mut set = HashSet::new();
        set.insert(QubitId::new(1));
        set.insert(QubitId::new(1));
        set.insert(QubitId::new(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn measurement_index_round_trip() {
        let m = MeasurementIndex::new(7);
        assert_eq!(m.index(), 7);
        assert_eq!(m.to_string(), "m7");
        assert_eq!(MeasurementIndex::from(7usize), m);
    }
}
