//! Property-based tests for the circuit intermediate representation.
//!
//! Random instruction streams exercise the bookkeeping the rest of the stack
//! relies on: measurement counting and indexing, qubit usage, depth and
//! statistics.

use proptest::prelude::*;

use qccd_circuit::{Circuit, Instruction, QubitId};

const NUM_QUBITS: u32 = 6;

/// Strategy: one random instruction over qubits `0..NUM_QUBITS`.
fn instruction() -> impl Strategy<Value = Instruction> {
    let q = || (0..NUM_QUBITS).prop_map(QubitId::new);
    let two = (0..NUM_QUBITS, 0..NUM_QUBITS - 1).prop_map(|(a, b)| {
        // Ensure the two operands are distinct.
        let b = if b >= a { b + 1 } else { b };
        (QubitId::new(a), QubitId::new(b))
    });
    prop_oneof![
        q().prop_map(Instruction::X),
        q().prop_map(Instruction::Z),
        q().prop_map(Instruction::H),
        q().prop_map(Instruction::S),
        q().prop_map(Instruction::SqrtX),
        q().prop_map(Instruction::Measure),
        q().prop_map(Instruction::MeasureX),
        q().prop_map(Instruction::Reset),
        two.clone()
            .prop_map(|(control, target)| Instruction::Cnot { control, target }),
        two.clone().prop_map(|(a, b)| Instruction::Cz(a, b)),
        two.clone().prop_map(|(a, b)| Instruction::Ms(a, b)),
        two.prop_map(|(a, b)| Instruction::Swap(a, b)),
    ]
}

/// Strategy: a random circuit of up to 60 instructions.
fn circuit() -> impl Strategy<Value = Circuit> {
    prop::collection::vec(instruction(), 0..60).prop_map(|instructions| {
        let mut circuit = Circuit::new();
        circuit.pad_qubits(NUM_QUBITS as usize);
        circuit.extend(instructions);
        circuit
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn operand_arity_matches_the_two_qubit_predicate(instruction in instruction()) {
        let qubits = instruction.qubits();
        prop_assert_eq!(instruction.is_two_qubit(), qubits.len() == 2);
        prop_assert!(!qubits.is_empty() && qubits.len() <= 2);
        for q in &qubits {
            prop_assert!(instruction.acts_on(*q));
        }
        // Two-qubit instructions never have repeated operands in this IR.
        if qubits.len() == 2 {
            prop_assert_ne!(qubits[0], qubits[1]);
        }
    }

    #[test]
    fn measurement_bookkeeping_is_consistent(circuit in circuit()) {
        let expected = circuit
            .iter()
            .filter(|instruction| instruction.is_measurement())
            .count();
        prop_assert_eq!(circuit.num_measurements(), expected);
        let refs = circuit.measurement_refs();
        prop_assert_eq!(refs.len(), expected);

        // The measurement index map inverts the reference list.
        let map = circuit.measurement_index_map();
        prop_assert_eq!(map.len(), refs.len());
        for (index, reference) in refs.iter().enumerate() {
            prop_assert_eq!(map.get(reference).copied(), Some(index));
        }
    }

    #[test]
    fn depth_is_bounded_by_length(circuit in circuit()) {
        prop_assert!(circuit.depth() <= circuit.len());
        if circuit.is_empty() {
            prop_assert_eq!(circuit.depth(), 0);
        } else {
            prop_assert!(circuit.depth() >= 1);
        }
    }

    #[test]
    fn used_qubits_are_within_the_declared_range(circuit in circuit()) {
        for q in circuit.used_qubits() {
            prop_assert!(q.index() < circuit.num_qubits());
        }
        prop_assert!(circuit.num_qubits() >= NUM_QUBITS as usize);
    }

    #[test]
    fn stats_partition_the_instruction_stream(circuit in circuit()) {
        let stats = circuit.stats();
        let single: usize = circuit
            .iter()
            .filter(|i| i.is_unitary() && !i.is_two_qubit())
            .count();
        let double: usize = circuit.iter().filter(|i| i.is_two_qubit()).count();
        let measurements = circuit.iter().filter(|i| i.is_measurement()).count();
        let resets = circuit.iter().filter(|i| i.is_reset()).count();
        prop_assert_eq!(single + double + measurements + resets, circuit.len());
        // The reported statistics must agree with direct counting.
        prop_assert_eq!(stats.two_qubit_gates, double);
        prop_assert_eq!(stats.measurements, measurements);
        prop_assert_eq!(stats.resets, resets);
    }
}
