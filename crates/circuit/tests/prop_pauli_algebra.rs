//! Property-based tests for the Pauli algebra.
//!
//! The compiler, simulator and decoder all rest on this algebra being a
//! faithful representation of the Pauli group; these tests check the group
//! laws on randomly generated sparse Pauli strings rather than hand-picked
//! cases.

use proptest::prelude::*;

use qccd_circuit::{Pauli, QubitId, SparsePauli};

/// Strategy: a random sparse Pauli string over qubits `0..num_qubits`.
fn sparse_pauli(num_qubits: u32) -> impl Strategy<Value = SparsePauli> {
    prop::collection::vec((0..num_qubits, 0..4u8), 0..num_qubits as usize).prop_map(|entries| {
        let mut pauli = SparsePauli::identity();
        for (qubit, which) in entries {
            let p = match which {
                0 => Pauli::I,
                1 => Pauli::X,
                2 => Pauli::Y,
                _ => Pauli::Z,
            };
            pauli.set(QubitId::new(qubit), p);
        }
        pauli
    })
}

/// The number of qubit positions where the two strings anticommute locally.
fn anticommuting_sites(a: &SparsePauli, b: &SparsePauli) -> usize {
    let mut qubits: Vec<QubitId> = a.support();
    qubits.extend(b.support());
    qubits.sort_unstable();
    qubits.dedup();
    qubits
        .into_iter()
        .filter(|&q| !a.get(q).commutes_with(b.get(q)))
        .count()
}

#[test]
fn single_qubit_pauli_multiplication_is_associative() {
    // The single-qubit Pauli group is small enough to check exhaustively:
    // the operator part of (a·b)·c equals a·(b·c) and the accumulated phases
    // agree modulo 4.
    for a in Pauli::ALL {
        for b in Pauli::ALL {
            for c in Pauli::ALL {
                let (p_ab, ab) = a.mul(b);
                let (p_ab_c, ab_c) = ab.mul(c);
                let (p_bc, bc) = b.mul(c);
                let (p_a_bc, a_bc) = a.mul(bc);
                assert_eq!(ab_c, a_bc, "{a:?} {b:?} {c:?}");
                assert_eq!(
                    (p_ab + p_ab_c) % 4,
                    (p_bc + p_a_bc) % 4,
                    "phase mismatch for {a:?} {b:?} {c:?}"
                );
            }
        }
    }
}

#[test]
fn single_qubit_commutation_matches_the_multiplication_table() {
    // a and b commute exactly when a·b and b·a produce the same phase.
    for a in Pauli::ALL {
        for b in Pauli::ALL {
            let (p_ab, _) = a.mul(b);
            let (p_ba, _) = b.mul(a);
            assert_eq!(a.commutes_with(b), p_ab == p_ba, "{a:?} {b:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn commutation_is_symmetric(a in sparse_pauli(8), b in sparse_pauli(8)) {
        prop_assert_eq!(a.commutes_with(&b), b.commutes_with(&a));
    }

    #[test]
    fn commutation_counts_anticommuting_sites(a in sparse_pauli(8), b in sparse_pauli(8)) {
        // Two Pauli strings commute iff they anticommute on an even number
        // of qubits.
        let expected = anticommuting_sites(&a, &b).is_multiple_of(2);
        prop_assert_eq!(a.commutes_with(&b), expected);
    }

    #[test]
    fn everything_commutes_with_the_identity(a in sparse_pauli(8)) {
        prop_assert!(a.commutes_with(&SparsePauli::identity()));
        prop_assert!(SparsePauli::identity().commutes_with(&a));
    }

    #[test]
    fn multiplying_by_itself_cancels(a in sparse_pauli(8)) {
        // Every Pauli is its own inverse (up to phase), so the operator part
        // of a·a has no support.
        prop_assert_eq!(a.mul(&a).weight(), 0);
    }

    #[test]
    fn multiplying_by_identity_is_a_no_op(a in sparse_pauli(8)) {
        let product = a.mul(&SparsePauli::identity());
        for q in (0..8).map(QubitId::new) {
            prop_assert_eq!(product.get(q), a.get(q));
        }
    }

    #[test]
    fn product_support_stays_within_the_union(a in sparse_pauli(8), b in sparse_pauli(8)) {
        let product = a.mul(&b);
        for q in product.support() {
            prop_assert!(
                a.get(q) != Pauli::I || b.get(q) != Pauli::I,
                "product acts on {q} but neither factor does"
            );
        }
    }

    #[test]
    fn weight_equals_support_size(a in sparse_pauli(8)) {
        prop_assert_eq!(a.weight(), a.support().len());
        prop_assert_eq!(a.is_identity(), a.weight() == 0);
    }

    #[test]
    fn uniform_strings_have_the_requested_support(
        qubits in prop::collection::btree_set(0..16u32, 0..10),
        which in 1..4u8,
    ) {
        let p = match which {
            1 => Pauli::X,
            2 => Pauli::Y,
            _ => Pauli::Z,
        };
        let ids: Vec<QubitId> = qubits.iter().copied().map(QubitId::new).collect();
        let string = SparsePauli::uniform(ids.clone(), p);
        prop_assert_eq!(string.weight(), ids.len());
        for q in ids {
            prop_assert_eq!(string.get(q), p);
        }
    }
}
