//! Candidate architecture configurations.
//!
//! An [`ArchitectureConfig`] bundles everything that defines one point of the
//! paper's design space (§3, §6.2): communication topology, trap capacity,
//! control-system wiring, the gate-timing model and the physical noise
//! parameters (including the gate-improvement factor). The design-space
//! exploration toolflow sweeps these configurations.

use serde::{Deserialize, Serialize};

use qccd_hardware::{Device, OperationTimes, TopologyKind, TopologySpec, WiringMethod};
use qccd_noise::NoiseParams;

/// One candidate QCCD architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchitectureConfig {
    /// Communication topology and trap capacity.
    pub topology: TopologySpec,
    /// Control-system wiring method.
    pub wiring: WiringMethod,
    /// Uniform gate-improvement factor (1.0 = today's hardware).
    pub gate_improvement: f64,
    /// Operation timing model (Table 1 by default).
    pub operation_times: OperationTimes,
    /// Physical noise parameters.
    pub noise: NoiseParams,
}

impl ArchitectureConfig {
    /// Creates a configuration with the paper's default timing model and a
    /// noise model derived from the wiring method (WISE implies cooling).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `gate_improvement` is not positive.
    pub fn new(
        topology: TopologyKind,
        capacity: usize,
        wiring: WiringMethod,
        gate_improvement: f64,
    ) -> Self {
        assert!(capacity >= 1, "trap capacity must be positive");
        let noise = if wiring.requires_cooling() {
            NoiseParams::wise_cooled(gate_improvement)
        } else {
            NoiseParams::standard(gate_improvement)
        };
        ArchitectureConfig {
            topology: TopologySpec::new(topology, capacity),
            wiring,
            gate_improvement,
            operation_times: OperationTimes::paper_defaults(),
            noise,
        }
    }

    /// The standard-wiring grid configuration the paper recommends: trap
    /// capacity two, grid connectivity, direct DAC wiring.
    pub fn recommended(gate_improvement: f64) -> Self {
        ArchitectureConfig::new(
            TopologyKind::Grid,
            2,
            WiringMethod::Standard,
            gate_improvement,
        )
    }

    /// The trap capacity of this configuration.
    pub fn capacity(&self) -> usize {
        self.topology.capacity
    }

    /// The topology family of this configuration.
    pub fn topology_kind(&self) -> TopologyKind {
        self.topology.kind
    }

    /// Builds a device of this architecture sized for `num_qubits` code
    /// qubits.
    pub fn device_for(&self, num_qubits: usize) -> Device {
        self.topology.build_for_qubits(num_qubits)
    }

    /// A short human-readable label, e.g. `"grid c2 standard 5x"`.
    pub fn label(&self) -> String {
        format!(
            "{} c{} {} {:.0}x",
            self.topology.kind, self.topology.capacity, self.wiring, self.gate_improvement
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_configuration() {
        let arch = ArchitectureConfig::recommended(5.0);
        assert_eq!(arch.capacity(), 2);
        assert_eq!(arch.topology_kind(), TopologyKind::Grid);
        assert_eq!(arch.wiring, WiringMethod::Standard);
        assert!(!arch.noise.cooled);
        assert_eq!(arch.label(), "grid c2 standard 5x");
    }

    #[test]
    fn wise_configuration_enables_cooling() {
        let arch = ArchitectureConfig::new(TopologyKind::Grid, 5, WiringMethod::Wise, 5.0);
        assert!(arch.noise.cooled);
        assert_eq!(arch.noise.gate_improvement, 5.0);
    }

    #[test]
    fn device_sizing_uses_topology_spec() {
        let arch = ArchitectureConfig::new(TopologyKind::Linear, 3, WiringMethod::Standard, 1.0);
        let device = arch.device_for(17);
        assert!(device.mappable_qubits() >= 17);
        assert_eq!(device.kind(), TopologyKind::Linear);
        assert_eq!(device.capacity(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        ArchitectureConfig::new(TopologyKind::Grid, 0, WiringMethod::Standard, 1.0);
    }
}
