//! Cross-spec compiled-program cache.
//!
//! Every sweep point, experiment spec and decode-service stream that
//! evaluates the same `(architecture, workload)` pair pays the same compile
//! (map → route → schedule). Compilation is a pure function of its inputs,
//! so the result can be shared freely: [`ProgramCache`] memoizes
//! `Arc<CompiledProgram>`s under a caller-supplied canonical key, and
//! [`shared`] exposes one process-wide instance that
//! [`Toolflow`](crate::Toolflow) (and therefore `artifacts run --all`) and
//! the streaming decode service consult, so each shared
//! `(architecture, distance)` program is compiled exactly once per process.
//!
//! Caching never changes results — cached and fresh compiles are the same
//! value by purity — and the cache is bounded: when it reaches its capacity
//! it is cleared wholesale (compilations are cheap enough that an occasional
//! cold restart beats eviction bookkeeping).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use qccd_qec::MemoryBasis;

use crate::{ArchitectureConfig, CompileError, CompiledProgram};

/// Default entry capacity of a [`ProgramCache`].
pub const DEFAULT_PROGRAM_CACHE_CAPACITY: usize = 256;

/// Hit/miss counters of a [`ProgramCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
}

/// A bounded, thread-safe memo of compiled programs keyed by a canonical
/// description of `(architecture, workload)`.
#[derive(Debug, Default)]
pub struct ProgramCache {
    entries: Mutex<HashMap<String, Arc<CompiledProgram>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProgramCache {
    /// A cache bounded at `capacity` entries (cleared wholesale when full).
    pub fn new(capacity: usize) -> Self {
        ProgramCache {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached program under `key`, or runs `compile`, caches its
    /// result and returns it. Compile errors are never cached (the next
    /// lookup retries).
    ///
    /// The compile runs *outside* the cache lock, so concurrent misses on
    /// the same key may compile twice — the first insert wins and both
    /// callers observe the same purity-guaranteed value.
    ///
    /// # Errors
    ///
    /// Propagates the [`CompileError`] of `compile`.
    pub fn get_or_compile(
        &self,
        key: &str,
        compile: impl FnOnce() -> Result<CompiledProgram, CompileError>,
    ) -> Result<Arc<CompiledProgram>, CompileError> {
        if let Some(hit) = self
            .entries
            .lock()
            .expect("program cache lock")
            .get(key)
            .cloned()
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let program = Arc::new(compile()?);
        let mut entries = self.entries.lock().expect("program cache lock");
        if entries.len() >= self.capacity {
            entries.clear();
        }
        Ok(entries.entry(key.to_string()).or_insert(program).clone())
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("program cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached program.
    pub fn clear(&self) {
        self.entries.lock().expect("program cache lock").clear();
    }

    /// Accumulated hit/miss counters.
    pub fn stats(&self) -> ProgramCacheStats {
        ProgramCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// The process-wide shared cache used by
/// [`Toolflow::evaluate_report`](crate::Toolflow::evaluate_report) for its
/// rotated-surface-code workloads.
pub fn shared() -> &'static ProgramCache {
    static SHARED: OnceLock<ProgramCache> = OnceLock::new();
    SHARED.get_or_init(|| ProgramCache::new(DEFAULT_PROGRAM_CACHE_CAPACITY))
}

/// Canonical cache key for `rounds` rounds of parity checks of the
/// rotated surface code at `distance` under `arch` (the default geometric
/// mapping strategy). The `Debug` rendering of the architecture covers every
/// field that feeds the compiler — topology, capacity, wiring, timing model
/// and noise parameters — with exact float formatting, so distinct
/// configurations cannot collide.
pub fn rounds_key(arch: &ArchitectureConfig, distance: usize, rounds: usize) -> String {
    format!("rounds|d{distance}|r{rounds}|{arch:?}")
}

/// Canonical cache key for a full memory experiment of the rotated surface
/// code at `distance` (`rounds` rounds, measurement `basis`) under `arch`.
pub fn memory_key(
    arch: &ArchitectureConfig,
    distance: usize,
    rounds: usize,
    basis: MemoryBasis,
) -> String {
    format!("memory|d{distance}|r{rounds}|{basis:?}|{arch:?}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;
    use qccd_qec::rotated_surface_code;

    #[test]
    fn cache_compiles_once_per_key_and_results_are_shared() {
        let cache = ProgramCache::new(8);
        let arch = ArchitectureConfig::recommended(1.0);
        let key = rounds_key(&arch, 3, 1);
        let compile = || Compiler::new(arch.clone()).compile_rounds(&rotated_surface_code(3), 1);
        let a = cache.get_or_compile(&key, compile).unwrap();
        let b = cache.get_or_compile(&key, compile).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup is a hit");
        assert_eq!(cache.stats(), ProgramCacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
        // A different distance is a different key.
        let other = rounds_key(&arch, 5, 1);
        cache
            .get_or_compile(&other, || {
                Compiler::new(arch.clone()).compile_rounds(&rotated_surface_code(5), 1)
            })
            .unwrap();
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn keys_separate_architectures_and_workloads() {
        let a = ArchitectureConfig::recommended(1.0);
        let b = ArchitectureConfig::recommended(5.0);
        assert_ne!(rounds_key(&a, 3, 1), rounds_key(&b, 3, 1));
        assert_ne!(rounds_key(&a, 3, 1), rounds_key(&a, 3, 2));
        assert_ne!(
            memory_key(&a, 3, 3, MemoryBasis::Z),
            memory_key(&a, 3, 3, MemoryBasis::X)
        );
        assert_ne!(rounds_key(&a, 3, 1), memory_key(&a, 3, 1, MemoryBasis::Z));
    }

    #[test]
    fn errors_are_not_cached_and_capacity_bounds_entries() {
        let cache = ProgramCache::new(1);
        let arch = ArchitectureConfig::recommended(1.0);
        let failing = cache.get_or_compile("bogus", || {
            Err(CompileError::RoutingStuck {
                pending_instructions: 1,
            })
        });
        assert!(failing.is_err());
        assert!(cache.is_empty(), "errors are not cached");
        // Filling past capacity clears rather than grows.
        for d in [3usize, 5] {
            cache
                .get_or_compile(&rounds_key(&arch, d, 1), || {
                    Compiler::new(arch.clone()).compile_rounds(&rotated_surface_code(d), 1)
                })
                .unwrap();
        }
        assert_eq!(cache.len(), 1);
    }
}
