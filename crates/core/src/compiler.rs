//! The end-to-end QEC-to-QCCD compiler (Figure 5 of the paper).
//!
//! [`Compiler::compile_circuit`] runs the full pipeline for one architecture:
//!
//! 1. size a device of the configured topology for the code,
//! 2. map code qubits onto traps (clustering + Hungarian matching, §4.2),
//! 3. route ion movement so every two-qubit gate is local (§4.3),
//! 4. schedule the routed operations under resource constraints (§4.4).
//!
//! The resulting [`CompiledProgram`] exposes the evaluation quantities the
//! paper reports (elapsed time, movement operations, movement time) and can
//! be lowered to a noisy stabilizer circuit for logical-error-rate
//! simulation.

use serde::{Deserialize, Serialize};

use qccd_circuit::Circuit;
use qccd_hardware::Device;
use qccd_noise::NoiseParams;
use qccd_qec::{memory_experiment, parity_check_round, CodeLayout, MemoryBasis};
use qccd_sim::NoisyCircuit;

use crate::{
    lower_to_noisy_circuit, map_qubits_with_strategy, route, schedule, ArchitectureConfig,
    ClusteringStrategy, CompileError, QubitMapping, RoutedProgram, Schedule,
};

/// The output of the compilation pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledProgram {
    /// The architecture the program was compiled for.
    pub arch: ArchitectureConfig,
    /// The annotated input circuit (detectors / observables preserved).
    pub circuit: Circuit,
    /// The device instance the program runs on.
    pub device: Device,
    /// The qubit-to-trap mapping.
    pub mapping: QubitMapping,
    /// The routed operation stream.
    pub routed: RoutedProgram,
    /// The timed execution schedule.
    pub schedule: Schedule,
}

impl CompiledProgram {
    /// Total elapsed (wall-clock) time of the program in microseconds.
    pub fn elapsed_time_us(&self) -> f64 {
        self.schedule.makespan_us
    }

    /// Number of ion-reconfiguration operations (movement primitives plus
    /// gate swaps).
    pub fn movement_ops(&self) -> usize {
        self.schedule.movement_ops
    }

    /// Total time spent in ion reconfiguration, summed over operations.
    pub fn movement_time_us(&self) -> f64 {
        self.schedule.movement_time_us
    }

    /// Lowers the schedule into a noisy stabilizer circuit using the
    /// architecture's noise model.
    pub fn to_noisy_circuit(&self) -> NoisyCircuit {
        self.to_noisy_circuit_with(&self.arch.noise)
    }

    /// Lowers the schedule with explicitly provided noise parameters.
    pub fn to_noisy_circuit_with(&self, params: &NoiseParams) -> NoisyCircuit {
        lower_to_noisy_circuit(&self.schedule, &self.circuit, params)
    }
}

/// The QEC- and device-topology-aware compiler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Compiler {
    arch: ArchitectureConfig,
    #[serde(default)]
    mapping_strategy: ClusteringStrategy,
}

impl Compiler {
    /// Creates a compiler for one candidate architecture.
    pub fn new(arch: ArchitectureConfig) -> Self {
        Compiler {
            arch,
            mapping_strategy: ClusteringStrategy::Geometric,
        }
    }

    /// Overrides the qubit-clustering strategy of the mapping pass
    /// (ablation; see [`ClusteringStrategy`]).
    pub fn with_mapping_strategy(mut self, strategy: ClusteringStrategy) -> Self {
        self.mapping_strategy = strategy;
        self
    }

    /// The architecture this compiler targets.
    pub fn arch(&self) -> &ArchitectureConfig {
        &self.arch
    }

    /// The clustering strategy used by the mapping pass.
    pub fn mapping_strategy(&self) -> ClusteringStrategy {
        self.mapping_strategy
    }

    /// Compiles an arbitrary annotated circuit defined over the given code
    /// layout.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if the device cannot host the code or the
    /// routing constraints cannot be satisfied.
    pub fn compile_circuit(
        &self,
        circuit: &Circuit,
        layout: &CodeLayout,
    ) -> Result<CompiledProgram, CompileError> {
        let device = self.arch.device_for(layout.num_qubits());
        let mapping = map_qubits_with_strategy(layout, &device, self.mapping_strategy)?;
        let routed = route(circuit, layout, &device, &mapping)?;
        let timed = schedule(&routed, &self.arch.operation_times, self.arch.wiring);
        Ok(CompiledProgram {
            arch: self.arch.clone(),
            circuit: circuit.clone(),
            device,
            mapping,
            routed,
            schedule: timed,
        })
    }

    /// Compiles `rounds` rounds of parity checks for a code (no logical
    /// initialisation or readout); this is the workload used for the
    /// elapsed-time and movement metrics (Tables 2 and 3, Figures 8a and 9).
    pub fn compile_rounds(
        &self,
        layout: &CodeLayout,
        rounds: usize,
    ) -> Result<CompiledProgram, CompileError> {
        let mut circuit = Circuit::new();
        circuit.pad_qubits(layout.num_qubits());
        let round = parity_check_round(layout);
        for _ in 0..rounds {
            circuit.extend(round.iter().copied());
        }
        self.compile_circuit(&circuit, layout)
    }

    /// Compiles a full memory (logical identity) experiment with detectors
    /// and a logical observable; this is the workload used for logical error
    /// rate estimation (Figures 8b, 10–13).
    pub fn compile_memory_experiment(
        &self,
        layout: &CodeLayout,
        rounds: usize,
        basis: MemoryBasis,
    ) -> Result<CompiledProgram, CompileError> {
        let experiment = memory_experiment(layout, rounds, basis);
        self.compile_circuit(&experiment.circuit, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_resource_exclusivity;
    use qccd_hardware::{TopologyKind, WiringMethod};
    use qccd_qec::{repetition_code, rotated_surface_code};
    use qccd_sim::verify_detectors;

    #[test]
    fn compile_round_produces_valid_schedule() {
        let arch = ArchitectureConfig::recommended(1.0);
        let compiler = Compiler::new(arch);
        let layout = rotated_surface_code(3);
        let program = compiler.compile_rounds(&layout, 1).unwrap();
        assert!(program.elapsed_time_us() > 0.0);
        assert!(program.movement_ops() > 0);
        assert!(check_resource_exclusivity(&program.schedule, WiringMethod::Standard).is_ok());
    }

    #[test]
    fn capacity_two_round_time_is_independent_of_distance() {
        // The paper's headline observation (Figure 9): with trap capacity 2
        // on a grid, the QEC round time is constant in the code distance.
        let compiler = Compiler::new(ArchitectureConfig::recommended(1.0));
        let t3 = compiler
            .compile_rounds(&rotated_surface_code(3), 1)
            .unwrap()
            .elapsed_time_us();
        let t5 = compiler
            .compile_rounds(&rotated_surface_code(5), 1)
            .unwrap()
            .elapsed_time_us();
        let ratio = t5 / t3;
        assert!(
            ratio < 1.35,
            "round time should be nearly constant: d=3 {t3} µs vs d=5 {t5} µs"
        );
    }

    #[test]
    fn single_chain_round_time_grows_with_distance() {
        let arch = ArchitectureConfig::new(TopologyKind::Linear, 200, WiringMethod::Standard, 1.0);
        let compiler = Compiler::new(arch);
        let t3 = compiler
            .compile_rounds(&rotated_surface_code(3), 1)
            .unwrap()
            .elapsed_time_us();
        let t5 = compiler
            .compile_rounds(&rotated_surface_code(5), 1)
            .unwrap()
            .elapsed_time_us();
        assert!(
            t5 > 2.0 * t3,
            "a monolithic trap serialises everything: d=3 {t3} µs vs d=5 {t5} µs"
        );
    }

    #[test]
    fn memory_experiment_detectors_stay_deterministic_after_compilation() {
        // The compiler reorders operations across qubits; detector
        // definitions must survive because per-qubit order is preserved.
        let compiler = Compiler::new(ArchitectureConfig::recommended(1.0));
        let layout = rotated_surface_code(3);
        let program = compiler
            .compile_memory_experiment(&layout, 2, MemoryBasis::Z)
            .unwrap();
        let noiseless = lower_to_noisy_circuit(
            &program.schedule,
            &program.circuit,
            &NoiseParams {
                // Zero out all noise so only determinism is checked.
                t2_seconds: f64::INFINITY,
                background_heating_per_us: 0.0,
                laser_instability_a0: 0.0,
                reset_error: 0.0,
                measurement_error: 0.0,
                ..NoiseParams::standard(1.0)
            },
        );
        verify_detectors(&noiseless, &[1, 5]).expect("compiled detectors remain deterministic");
    }

    #[test]
    fn wise_wiring_slows_the_clock() {
        let layout = rotated_surface_code(3);
        let standard = Compiler::new(ArchitectureConfig::new(
            TopologyKind::Grid,
            2,
            WiringMethod::Standard,
            1.0,
        ));
        let wise = Compiler::new(ArchitectureConfig::new(
            TopologyKind::Grid,
            2,
            WiringMethod::Wise,
            1.0,
        ));
        let t_standard = standard
            .compile_rounds(&layout, 1)
            .unwrap()
            .elapsed_time_us();
        let t_wise = wise.compile_rounds(&layout, 1).unwrap().elapsed_time_us();
        assert!(
            t_wise > 2.0 * t_standard,
            "WISE transport serialisation + cooling must slow the round: {t_wise} vs {t_standard}"
        );
    }

    #[test]
    fn geometric_mapping_beats_round_robin_ablation() {
        // The ablation baseline ignores the code geometry when clustering;
        // it must cost more ion movement (and hence a longer round) than the
        // paper's geometric partition on a multi-qubit-per-trap device.
        let arch = ArchitectureConfig::new(TopologyKind::Grid, 5, WiringMethod::Standard, 1.0);
        let layout = rotated_surface_code(3);
        let geometric = Compiler::new(arch.clone())
            .compile_rounds(&layout, 1)
            .unwrap();
        let blind = Compiler::new(arch)
            .with_mapping_strategy(ClusteringStrategy::RoundRobin)
            .compile_rounds(&layout, 1)
            .unwrap();
        assert!(
            geometric.movement_ops() < blind.movement_ops(),
            "geometric {} vs round-robin {} movement ops",
            geometric.movement_ops(),
            blind.movement_ops()
        );
        assert!(geometric.elapsed_time_us() <= blind.elapsed_time_us());
    }

    #[test]
    fn repetition_code_compiles_on_small_linear_device() {
        let arch = ArchitectureConfig::new(TopologyKind::Linear, 2, WiringMethod::Standard, 1.0);
        let compiler = Compiler::new(arch);
        let layout = repetition_code(3);
        let program = compiler.compile_rounds(&layout, 5).unwrap();
        assert_eq!(
            program.routed.num_gate_ops(),
            5 * parity_check_round(&layout).len()
        );
    }

    #[test]
    fn insufficient_capacity_is_reported() {
        // A single trap that cannot hold the whole code.
        let arch = ArchitectureConfig::new(TopologyKind::Linear, 3, WiringMethod::Standard, 1.0);
        let compiler = Compiler::new(arch);
        let layout = rotated_surface_code(3);
        // Build a deliberately undersized device by compiling against a
        // layout bigger than the device the spec would produce: force it by
        // using a one-trap device.
        let device = qccd_hardware::Device::single_chain(4);
        let result = crate::map_qubits(&layout, &device);
        assert!(matches!(
            result,
            Err(CompileError::InsufficientCapacity { .. })
        ));
        // The normal pipeline sizes the device correctly, so it succeeds.
        assert!(compiler.compile_rounds(&layout, 1).is_ok());
    }
}
