//! Compiler error types.

use qccd_circuit::QubitId;

/// Errors produced by the QEC-to-QCCD compiler.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The device does not have enough usable ion slots for the code.
    InsufficientCapacity {
        /// Qubits required by the code.
        required: usize,
        /// Usable slots on the device (traps filled to capacity − 1).
        available: usize,
    },
    /// The router could not make progress; the configuration is unroutable
    /// under the QCCD hardware constraints.
    RoutingStuck {
        /// Number of instructions that were still pending.
        pending_instructions: usize,
    },
    /// An instruction references a qubit that the mapping does not cover.
    UnmappedQubit(QubitId),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::InsufficientCapacity { required, available } => write!(
                f,
                "device provides {available} usable ion slots but the code needs {required}"
            ),
            CompileError::RoutingStuck {
                pending_instructions,
            } => write!(
                f,
                "ion routing could not make progress with {pending_instructions} instructions pending"
            ),
            CompileError::UnmappedQubit(q) => write!(f, "qubit {q} is not mapped to any trap"),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CompileError::InsufficientCapacity {
            required: 17,
            available: 10,
        };
        assert!(e.to_string().contains("17"));
        let e = CompileError::RoutingStuck {
            pending_instructions: 3,
        };
        assert!(e.to_string().contains("3"));
        let e = CompileError::UnmappedQubit(QubitId::new(5));
        assert!(e.to_string().contains("q5"));
    }
}
