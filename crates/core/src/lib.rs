//! # qccd-core
//!
//! The paper's primary contribution: a **QEC- and device-topology-aware
//! compiler** that maps surface-code parity-check circuits onto QCCD
//! trapped-ion hardware, plus the **design-space exploration toolflow** that
//! evaluates candidate architectures (Figure 2 of the paper).
//!
//! The compilation pipeline (Figure 5):
//!
//! 1. **Mapping** ([`map_qubits`]) — cluster code qubits by top-down regular
//!    partitioning of the layout, then place clusters onto traps with a
//!    Hungarian-algorithm geometric matching (§4.2);
//! 2. **Routing** ([`route`]) — insert ion-transport primitives so that every
//!    two-qubit gate happens within one trap, respecting trap capacity and
//!    junction / segment exclusivity (§4.3);
//! 3. **Scheduling** ([`schedule`]) — assign start times under resource
//!    constraints, honouring the WISE transport-serialisation rule when that
//!    wiring method is selected (§4.4);
//! 4. **Noise lowering** ([`lower_to_noisy_circuit`]) — replay the schedule
//!    and inject the five-channel error model of §5.1, producing a noisy
//!    stabilizer circuit for logical-error-rate estimation.
//!
//! The [`Toolflow`] wraps the whole pipeline and reports the paper's metrics
//! (round time, shot time, movement operations, electrodes / DACs / data
//! rate / power, logical error rate).
//!
//! # Example
//!
//! ```
//! use qccd_core::{ArchitectureConfig, Compiler};
//! use qccd_qec::rotated_surface_code;
//!
//! // The paper's recommended design point: capacity-2 traps, grid topology,
//! // standard wiring.
//! let arch = ArchitectureConfig::recommended(5.0);
//! let compiler = Compiler::new(arch);
//!
//! let code = rotated_surface_code(3);
//! let program = compiler.compile_rounds(&code, 1)?;
//! assert!(program.elapsed_time_us() > 0.0);
//! assert!(program.movement_ops() > 0);
//! # Ok::<(), qccd_core::CompileError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arch;
pub mod compile_cache;
mod compiler;
mod error;
mod lower;
mod mapping;
mod metrics;
mod ops;
mod routing;
mod schedule;
pub mod theoretical;
mod toolflow;

pub use arch::ArchitectureConfig;
pub use compile_cache::{ProgramCache, ProgramCacheStats};
pub use compiler::{CompiledProgram, Compiler};
pub use error::CompileError;
pub use lower::lower_to_noisy_circuit;
pub use mapping::{
    cluster_qubits, cluster_qubits_with_strategy, cut_weight, hungarian, map_qubits,
    map_qubits_with_strategy, validate_clustering, ClusteringStrategy, QubitCluster, QubitMapping,
};
pub use metrics::Metrics;
pub use ops::{Resource, RoutedOp, RoutedProgram};
pub use routing::{route, DeviceState};
pub use schedule::{check_resource_exclusivity, schedule, Schedule, ScheduledOp};
pub use toolflow::{Toolflow, ToolflowReport, ToolflowSpec};
