//! Lowering a timed schedule into a noisy stabilizer circuit.
//!
//! This is the bridge between the compiler and the logical-error-rate
//! simulation (the "Logical Error Rate Calculation Using Stim" box of the
//! paper's Figure 2): the execution schedule is replayed in time order and
//! every physical effect of §5.1 is inserted as a Pauli noise channel:
//!
//! * **idling / reconfiguration dephasing (e1)** — whenever a qubit is about
//!   to be gated, the time elapsed since its previous gate is converted into
//!   a Z-error probability `(1 − e^{−t/T₂})/2`; this automatically charges
//!   transport time and serialisation delays to the idling qubits;
//! * **gate depolarising noise (e2, e3)** — after every single- and two-qubit
//!   gate, with a probability that depends on the gate duration, the trap's
//!   chain length and the accumulated motional energy of the ions involved;
//! * **heating** — movement primitives add motional quanta to the moved ion
//!   (Table 1 upper bounds); measurement and reset re-cool the ion;
//! * **imperfect reset (e4) and measurement (e5)** — bit-flip channels.
//!
//! The detector and logical-observable annotations of the original circuit
//! are carried over unchanged (they are expressed in per-qubit measurement
//! order, which the compiler preserves).

use std::collections::HashMap;

use qccd_circuit::{Circuit, Instruction, QubitId};
use qccd_noise::{HeatingLedger, NoiseParams};
use qccd_sim::{NoiseChannel, NoisyCircuit};

use crate::{RoutedOp, Schedule};

/// Lowers a schedule into a noisy stabilizer circuit using the given noise
/// parameters, attaching the detectors and observables of `circuit`.
pub fn lower_to_noisy_circuit(
    schedule: &Schedule,
    circuit: &Circuit,
    params: &NoiseParams,
) -> NoisyCircuit {
    let mut noisy = NoisyCircuit::new();
    noisy.pad_qubits(circuit.num_qubits());
    let mut ledger = HeatingLedger::new(params.base_nbar);
    let mut last_release: HashMap<QubitId, f64> = HashMap::new();

    for scheduled in schedule.ops_in_time_order() {
        match &scheduled.op {
            RoutedOp::Movement { kind, ion, .. } => {
                ledger.record_movement(*ion, *kind);
            }
            RoutedOp::GateSwap {
                ion,
                other,
                chain_len,
                ..
            } => {
                // Three physical MS gates: depolarise both ions accordingly.
                emit_idle_dephasing(
                    &mut noisy,
                    params,
                    &mut last_release,
                    *ion,
                    scheduled.start_us,
                );
                emit_idle_dephasing(
                    &mut noisy,
                    params,
                    &mut last_release,
                    *other,
                    scheduled.start_us,
                );
                let per_gate = params.two_qubit_gate_error(
                    scheduled.duration_us() / 3.0,
                    *chain_len,
                    ledger.pair_nbar(*ion, *other),
                );
                let p = 1.0 - (1.0 - per_gate).powi(3);
                noisy.push_noise(NoiseChannel::Depolarize2 {
                    a: *ion,
                    b: *other,
                    p,
                });
                last_release.insert(*ion, scheduled.end_us);
                last_release.insert(*other, scheduled.end_us);
            }
            RoutedOp::Gate {
                instruction,
                chain_len,
                ..
            } => {
                let qubits = instruction.qubits();
                for &q in &qubits {
                    emit_idle_dephasing(
                        &mut noisy,
                        params,
                        &mut last_release,
                        q,
                        scheduled.start_us,
                    );
                }
                match instruction {
                    Instruction::Measure(q) | Instruction::MeasureX(q) => {
                        noisy.push_noise(NoiseChannel::BitFlip {
                            qubit: *q,
                            p: params.measurement_flip_probability(),
                        });
                        noisy.push_gate(*instruction);
                        ledger.cool(*q);
                    }
                    Instruction::Reset(q) => {
                        noisy.push_gate(*instruction);
                        noisy.push_noise(NoiseChannel::BitFlip {
                            qubit: *q,
                            p: params.reset_flip_probability(),
                        });
                        ledger.cool(*q);
                    }
                    _ if instruction.is_two_qubit() => {
                        noisy.push_gate(*instruction);
                        let p = params.two_qubit_gate_error(
                            scheduled.duration_us(),
                            *chain_len,
                            ledger.pair_nbar(qubits[0], qubits[1]),
                        );
                        noisy.push_noise(NoiseChannel::Depolarize2 {
                            a: qubits[0],
                            b: qubits[1],
                            p,
                        });
                    }
                    _ => {
                        noisy.push_gate(*instruction);
                        let p = params.single_qubit_gate_error(
                            scheduled.duration_us(),
                            *chain_len,
                            ledger.nbar(qubits[0]),
                        );
                        noisy.push_noise(NoiseChannel::Depolarize1 {
                            qubit: qubits[0],
                            p,
                        });
                    }
                }
                for &q in &qubits {
                    last_release.insert(q, scheduled.end_us);
                }
            }
        }
    }

    for detector in circuit.detectors() {
        noisy.add_detector(detector.clone());
    }
    for observable in circuit.observables() {
        noisy.add_observable(observable.clone());
    }
    noisy
}

fn emit_idle_dephasing(
    noisy: &mut NoisyCircuit,
    params: &NoiseParams,
    last_release: &mut HashMap<QubitId, f64>,
    qubit: QubitId,
    now_us: f64,
) {
    let last = last_release.get(&qubit).copied().unwrap_or(0.0);
    let idle = now_us - last;
    if idle > 1e-9 {
        noisy.push_noise(NoiseChannel::PhaseFlip {
            qubit,
            p: params.dephasing_probability(idle),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule, RoutedProgram};
    use qccd_circuit::Detector;
    use qccd_circuit::MeasurementRef;
    use qccd_hardware::{MovementKind, OperationTimes, SegmentId, TrapId, WiringMethod};
    use qccd_sim::NoisyOp;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    fn build(ops: Vec<RoutedOp>) -> Schedule {
        schedule(
            &RoutedProgram { ops },
            &OperationTimes::paper_defaults(),
            WiringMethod::Standard,
        )
    }

    #[test]
    fn gates_pick_up_depolarising_noise() {
        let s = build(vec![
            RoutedOp::Gate {
                instruction: Instruction::Reset(q(0)),
                trap: TrapId(0),
                chain_len: 2,
            },
            RoutedOp::Gate {
                instruction: Instruction::Cnot {
                    control: q(0),
                    target: q(1),
                },
                trap: TrapId(0),
                chain_len: 2,
            },
            RoutedOp::Gate {
                instruction: Instruction::Measure(q(1)),
                trap: TrapId(0),
                chain_len: 2,
            },
        ]);
        let mut circuit = Circuit::new();
        circuit.pad_qubits(2);
        let noisy = lower_to_noisy_circuit(&s, &circuit, &NoiseParams::standard(1.0));
        let channels: Vec<&NoiseChannel> = noisy
            .ops()
            .iter()
            .filter_map(|op| match op {
                NoisyOp::Noise(c) => Some(c),
                NoisyOp::Gate(_) => None,
            })
            .collect();
        assert!(channels
            .iter()
            .any(|c| matches!(c, NoiseChannel::Depolarize2 { .. })));
        assert!(channels
            .iter()
            .any(|c| matches!(c, NoiseChannel::BitFlip { .. })));
        // Three gates appear in the noisy circuit.
        assert_eq!(
            noisy
                .ops()
                .iter()
                .filter(|op| matches!(op, NoisyOp::Gate(_)))
                .count(),
            3
        );
    }

    #[test]
    fn idle_time_becomes_dephasing() {
        // Qubit 1 idles while qubit 0 is measured (400 µs) in the same trap,
        // then gets a gate: it must receive a dephasing channel.
        let s = build(vec![
            RoutedOp::Gate {
                instruction: Instruction::Measure(q(0)),
                trap: TrapId(0),
                chain_len: 2,
            },
            RoutedOp::Gate {
                instruction: Instruction::H(q(1)),
                trap: TrapId(0),
                chain_len: 2,
            },
        ]);
        let mut circuit = Circuit::new();
        circuit.pad_qubits(2);
        let noisy = lower_to_noisy_circuit(&s, &circuit, &NoiseParams::standard(1.0));
        let dephasing: Vec<f64> = noisy
            .ops()
            .iter()
            .filter_map(|op| match op {
                NoisyOp::Noise(NoiseChannel::PhaseFlip { qubit, p }) if *qubit == q(1) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(dephasing.len(), 1);
        let expected = NoiseParams::standard(1.0).dephasing_probability(400.0);
        assert!((dephasing[0] - expected).abs() < 1e-15);
    }

    #[test]
    fn movement_heats_the_ion_and_raises_gate_error() {
        let params = NoiseParams::standard(1.0);
        let cold = build(vec![RoutedOp::Gate {
            instruction: Instruction::Ms(q(0), q(1)),
            trap: TrapId(0),
            chain_len: 2,
        }]);
        let hot = build(vec![
            RoutedOp::Movement {
                kind: MovementKind::Split,
                ion: q(0),
                trap: Some(TrapId(1)),
                junction: None,
                segment: SegmentId(0),
            },
            RoutedOp::Movement {
                kind: MovementKind::Merge,
                ion: q(0),
                trap: Some(TrapId(0)),
                junction: None,
                segment: SegmentId(0),
            },
            RoutedOp::Gate {
                instruction: Instruction::Ms(q(0), q(1)),
                trap: TrapId(0),
                chain_len: 2,
            },
        ]);
        let mut circuit = Circuit::new();
        circuit.pad_qubits(2);
        let p_of = |schedule: &Schedule| {
            let noisy = lower_to_noisy_circuit(schedule, &circuit, &params);
            noisy
                .ops()
                .iter()
                .find_map(|op| match op {
                    NoisyOp::Noise(NoiseChannel::Depolarize2 { p, .. }) => Some(*p),
                    _ => None,
                })
                .unwrap()
        };
        assert!(p_of(&hot) > p_of(&cold));
    }

    #[test]
    fn annotations_are_carried_over() {
        let s = build(vec![RoutedOp::Gate {
            instruction: Instruction::Measure(q(0)),
            trap: TrapId(0),
            chain_len: 1,
        }]);
        let mut circuit = Circuit::new();
        circuit.push(Instruction::Measure(q(0)));
        circuit.add_detector(Detector::new(vec![MeasurementRef::new(q(0), 0)]));
        let noisy = lower_to_noisy_circuit(&s, &circuit, &NoiseParams::standard(1.0));
        assert_eq!(noisy.detectors().len(), 1);
        assert!(noisy.resolve_annotations().is_ok());
    }

    #[test]
    fn gate_swaps_add_three_gate_depolarising() {
        let params = NoiseParams::standard(1.0);
        let s = build(vec![RoutedOp::GateSwap {
            trap: TrapId(0),
            ion: q(0),
            other: q(1),
            chain_len: 3,
        }]);
        let mut circuit = Circuit::new();
        circuit.pad_qubits(2);
        let noisy = lower_to_noisy_circuit(&s, &circuit, &params);
        let p_swap = noisy
            .ops()
            .iter()
            .find_map(|op| match op {
                NoisyOp::Noise(NoiseChannel::Depolarize2 { p, .. }) => Some(*p),
                _ => None,
            })
            .unwrap();
        let single = params.two_qubit_gate_error(40.0, 3, params.base_nbar);
        assert!(p_swap > single, "a swap is three gates worth of noise");
    }
}
