//! Cluster-to-trap assignment.
//!
//! The second half of the qubit-to-ion mapping pass (§4.2): clusters produced
//! by [`cluster_qubits`](super::cluster_qubits) are placed onto traps with a
//! geometry-preserving minimum-cost matching, so that clusters that are
//! adjacent in the code end up in adjacent traps and the parity-check
//! circuits only need short-range ion movement. The matching is solved
//! exactly with the Hungarian algorithm over a cost matrix of normalised
//! squared distances between cluster centroids (in code coordinates) and trap
//! positions (in device coordinates).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use qccd_circuit::QubitId;
use qccd_hardware::{Device, TrapId};
use qccd_qec::CodeLayout;

use crate::mapping::{
    cluster_qubits_with_strategy, hungarian::solve_assignment, ClusteringStrategy, QubitCluster,
};
use crate::CompileError;

/// A complete placement of code qubits onto device traps.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QubitMapping {
    qubit_to_trap: HashMap<QubitId, TrapId>,
    initial_chains: HashMap<TrapId, Vec<QubitId>>,
}

impl QubitMapping {
    /// Builds a mapping directly from per-trap chains. Used by baseline
    /// compilers and tests that want to bypass the geometric mapping pass.
    ///
    /// # Panics
    ///
    /// Panics if a qubit appears in more than one chain.
    pub fn from_chains(chains: HashMap<TrapId, Vec<QubitId>>) -> Self {
        let mut mapping = QubitMapping::default();
        for (trap, chain) in chains {
            for &q in &chain {
                let previous = mapping.qubit_to_trap.insert(q, trap);
                assert!(
                    previous.is_none(),
                    "qubit {q} appears in more than one chain"
                );
            }
            mapping.initial_chains.insert(trap, chain);
        }
        mapping
    }

    /// The trap hosting a qubit.
    pub fn trap_of(&self, qubit: QubitId) -> Option<TrapId> {
        self.qubit_to_trap.get(&qubit).copied()
    }

    /// The initial ion chain (ordered qubit list) of a trap. Traps that host
    /// no qubits return an empty slice.
    pub fn chain_of(&self, trap: TrapId) -> &[QubitId] {
        self.initial_chains
            .get(&trap)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Every trap that hosts at least one qubit, with its chain.
    pub fn chains(&self) -> &HashMap<TrapId, Vec<QubitId>> {
        &self.initial_chains
    }

    /// Number of traps that host at least one qubit.
    pub fn num_used_traps(&self) -> usize {
        self.initial_chains.len()
    }

    /// Number of mapped qubits.
    pub fn num_qubits(&self) -> usize {
        self.qubit_to_trap.len()
    }

    /// Checks internal consistency: every qubit appears in exactly one chain
    /// and the chain agrees with `qubit_to_trap`.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = 0usize;
        for (&trap, chain) in &self.initial_chains {
            for &q in chain {
                if self.qubit_to_trap.get(&q) != Some(&trap) {
                    return Err(format!("qubit {q} chain/trap mismatch"));
                }
                seen += 1;
            }
        }
        if seen != self.qubit_to_trap.len() {
            return Err("chains and qubit_to_trap cover different qubit sets".to_string());
        }
        Ok(())
    }
}

/// Normalises a set of 2-D points to the unit square (min-max scaling per
/// axis). Degenerate axes map to 0.5.
fn normalise(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let (min_x, max_x) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.0), hi.max(p.0))
        });
    let (min_y, max_y) = points
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.1), hi.max(p.1))
        });
    let scale = |v: f64, lo: f64, hi: f64| {
        if (hi - lo).abs() < 1e-12 {
            0.5
        } else {
            (v - lo) / (hi - lo)
        }
    };
    points
        .iter()
        .map(|&(x, y)| (scale(x, min_x, max_x), scale(y, min_y, max_y)))
        .collect()
}

/// Maps the code's qubits onto the device's traps.
///
/// Traps are filled to `capacity − 1` (leaving one slot free for visiting
/// ions), except for single-trap devices which are filled completely.
///
/// # Errors
///
/// Returns [`CompileError::InsufficientCapacity`] if the device cannot host
/// the code.
pub fn map_qubits(layout: &CodeLayout, device: &Device) -> Result<QubitMapping, CompileError> {
    map_qubits_with_strategy(layout, device, ClusteringStrategy::Geometric)
}

/// Maps the code's qubits onto the device's traps using the given clustering
/// strategy (see [`ClusteringStrategy`]); [`map_qubits`] is the
/// geometric-strategy shorthand.
///
/// # Errors
///
/// Returns [`CompileError::InsufficientCapacity`] if the device cannot host
/// the code.
pub fn map_qubits_with_strategy(
    layout: &CodeLayout,
    device: &Device,
    strategy: ClusteringStrategy,
) -> Result<QubitMapping, CompileError> {
    let required = layout.num_qubits();
    let available = device.mappable_qubits();
    if required > available {
        return Err(CompileError::InsufficientCapacity {
            required,
            available,
        });
    }

    let cluster_size = if device.num_traps() == 1 {
        device.capacity()
    } else {
        device.capacity().saturating_sub(1).max(1)
    };
    let clusters = cluster_qubits_with_strategy(layout, cluster_size, strategy);
    if clusters.len() > device.num_traps() {
        return Err(CompileError::InsufficientCapacity {
            required,
            available,
        });
    }

    let assignment = assign_clusters_to_traps(&clusters, device);

    let mut mapping = QubitMapping::default();
    for (cluster, &trap_index) in clusters.iter().zip(assignment.iter()) {
        let trap = device.traps()[trap_index].id;
        let mut chain = cluster.qubits.clone();
        // Order the chain geometrically (row-major in code coordinates) so
        // that neighbouring qubits sit next to each other in the trap.
        chain.sort_by_key(|&q| {
            let c = layout.coord(q);
            (c.row, c.col, q)
        });
        for &q in &chain {
            mapping.qubit_to_trap.insert(q, trap);
        }
        mapping.initial_chains.insert(trap, chain);
    }
    debug_assert_eq!(mapping.validate(), Ok(()));
    Ok(mapping)
}

/// Solves the geometric matching between clusters and traps, returning the
/// trap index chosen for each cluster.
fn assign_clusters_to_traps(clusters: &[QubitCluster], device: &Device) -> Vec<usize> {
    let cluster_points: Vec<(f64, f64)> = clusters.iter().map(|c| c.centroid).collect();
    let trap_points: Vec<(f64, f64)> = device.traps().iter().map(|t| t.position).collect();
    let cluster_norm = normalise(&cluster_points);
    let trap_norm = normalise(&trap_points);

    let cost: Vec<Vec<f64>> = cluster_norm
        .iter()
        .map(|&(cx, cy)| {
            trap_norm
                .iter()
                .map(|&(tx, ty)| {
                    let dx = cx - tx;
                    let dy = cy - ty;
                    dx * dx + dy * dy
                })
                .collect()
        })
        .collect();
    let (_, assignment) = solve_assignment(&cost);
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_hardware::{TopologyKind, TopologySpec};
    use qccd_qec::{repetition_code, rotated_surface_code};

    #[test]
    fn mapping_respects_capacity_minus_one() {
        let layout = rotated_surface_code(3);
        let device = TopologySpec::new(TopologyKind::Grid, 3).build_for_qubits(layout.num_qubits());
        let mapping = map_qubits(&layout, &device).unwrap();
        assert_eq!(mapping.num_qubits(), layout.num_qubits());
        for chain in mapping.chains().values() {
            assert!(chain.len() <= 2, "chains must leave one free slot");
        }
        assert!(mapping.validate().is_ok());
    }

    #[test]
    fn single_trap_device_holds_everything() {
        let layout = rotated_surface_code(3);
        let device = qccd_hardware::Device::single_chain(layout.num_qubits());
        let mapping = map_qubits(&layout, &device).unwrap();
        assert_eq!(mapping.num_used_traps(), 1);
        assert_eq!(
            mapping.chain_of(device.traps()[0].id).len(),
            layout.num_qubits()
        );
    }

    #[test]
    fn too_small_device_is_rejected() {
        let layout = rotated_surface_code(3);
        let device = qccd_hardware::Device::linear(3, 2);
        assert!(matches!(
            map_qubits(&layout, &device),
            Err(CompileError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn every_qubit_is_mapped_exactly_once() {
        let layout = repetition_code(6);
        let device =
            TopologySpec::new(TopologyKind::Linear, 3).build_for_qubits(layout.num_qubits());
        let mapping = map_qubits(&layout, &device).unwrap();
        for q in layout.qubits() {
            assert!(mapping.trap_of(q.id).is_some(), "{} unmapped", q.id);
        }
        let total: usize = mapping.chains().values().map(|c| c.len()).sum();
        assert_eq!(total, layout.num_qubits());
    }

    #[test]
    fn geometry_is_preserved_for_repetition_code_on_linear_device() {
        // The repetition code is a line; mapping it onto a linear device must
        // place consecutive clusters in consecutive traps, i.e. the trap
        // index order should follow the code order.
        let layout = repetition_code(7);
        let device = qccd_hardware::Device::linear(7, 3);
        let mapping = map_qubits(&layout, &device).unwrap();
        // Data qubit 0 and data qubit 6 must be far apart on the device.
        let t_first = mapping.trap_of(QubitId::new(0)).unwrap();
        let t_last = mapping.trap_of(QubitId::new(6)).unwrap();
        let hops = device.hop_distance(t_first.into(), t_last.into()).unwrap();
        assert!(
            hops >= 3,
            "end-to-end qubits should be several traps apart, got {hops}"
        );
    }

    #[test]
    fn adjacent_code_qubits_land_in_nearby_traps_on_grid() {
        let layout = rotated_surface_code(3);
        let device = TopologySpec::new(TopologyKind::Grid, 2).build_for_qubits(layout.num_qubits());
        let mapping = map_qubits(&layout, &device).unwrap();
        // Average device hop distance between interacting (data, ancilla)
        // pairs should be small (nearest or next-nearest traps).
        let mut total_hops = 0usize;
        let mut pairs = 0usize;
        for edge in layout.interaction_edges() {
            let ta = mapping.trap_of(edge.ancilla).unwrap();
            let td = mapping.trap_of(edge.data).unwrap();
            total_hops += device.hop_distance(ta.into(), td.into()).unwrap();
            pairs += 1;
        }
        let mean = total_hops as f64 / pairs as f64;
        assert!(
            mean < 6.0,
            "interacting qubits are too spread out (mean hop distance {mean})"
        );
    }

    #[test]
    fn normalise_handles_degenerate_axes() {
        let points = normalise(&[(1.0, 5.0), (1.0, 7.0)]);
        assert_eq!(points[0].0, 0.5);
        assert_eq!(points[1].0, 0.5);
        assert_eq!(points[0].1, 0.0);
        assert_eq!(points[1].1, 1.0);
    }
}
