//! Qubit clustering: top-down regular partitioning of the code layout.
//!
//! The first half of the qubit-to-ion mapping pass (§4.2 of the paper)
//! groups the code's qubits into balanced clusters of at most
//! `capacity − 1` qubits each. General balanced graph partitioning is
//! NP-complete, but surface-code layouts are regular planar grids, so a
//! recursive geometric bisection of the layout produces near-optimal
//! partitions: qubits that are adjacent in the code (and therefore share
//! parity-check interactions) end up in the same cluster, minimising the
//! weight of cut interaction edges and hence the number of ion movements.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use qccd_circuit::QubitId;
use qccd_qec::CodeLayout;

/// The qubit-clustering strategy used by the mapping pass.
///
/// [`ClusteringStrategy::Geometric`] is the paper's method (§4.2);
/// [`ClusteringStrategy::RoundRobin`] is a structure-blind ablation baseline
/// used to quantify how much of the compiler's advantage comes from
/// exploiting the surface code's geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ClusteringStrategy {
    /// Top-down regular (geometric) partitioning of the code layout — the
    /// paper's method and the default.
    #[default]
    Geometric,
    /// Deal qubits into clusters round-robin in id order, ignoring the code
    /// geometry entirely (the kind of partition a QEC-unaware compiler
    /// produces).
    RoundRobin,
}

/// A cluster of code qubits destined for one trap.
#[derive(Debug, Clone, PartialEq)]
pub struct QubitCluster {
    /// The qubits in this cluster.
    pub qubits: Vec<QubitId>,
    /// The centroid of the cluster in code-layout coordinates.
    pub centroid: (f64, f64),
}

/// Partitions the code's qubits into clusters of at most `cluster_size`
/// qubits by recursive geometric bisection.
///
/// # Panics
///
/// Panics if `cluster_size` is zero.
pub fn cluster_qubits(layout: &CodeLayout, cluster_size: usize) -> Vec<QubitCluster> {
    cluster_qubits_with_strategy(layout, cluster_size, ClusteringStrategy::Geometric)
}

/// Partitions the code's qubits into clusters of at most `cluster_size`
/// qubits using the given strategy.
///
/// # Panics
///
/// Panics if `cluster_size` is zero.
pub fn cluster_qubits_with_strategy(
    layout: &CodeLayout,
    cluster_size: usize,
    strategy: ClusteringStrategy,
) -> Vec<QubitCluster> {
    assert!(cluster_size > 0, "cluster size must be positive");
    let mut qubits: Vec<QubitId> = layout.qubits().iter().map(|q| q.id).collect();
    // Deterministic initial order.
    qubits.sort_unstable();
    let groups = match strategy {
        ClusteringStrategy::Geometric => {
            let mut clusters = Vec::new();
            bisect(layout, &mut qubits, cluster_size, &mut clusters);
            clusters
        }
        ClusteringStrategy::RoundRobin => {
            let num_clusters = qubits.len().div_ceil(cluster_size);
            let mut clusters: Vec<Vec<QubitId>> = vec![Vec::new(); num_clusters];
            for (i, q) in qubits.into_iter().enumerate() {
                clusters[i % num_clusters].push(q);
            }
            clusters
        }
    };
    groups
        .into_iter()
        .map(|qubits| {
            let centroid = centroid_of(layout, &qubits);
            QubitCluster { qubits, centroid }
        })
        .collect()
}

fn centroid_of(layout: &CodeLayout, qubits: &[QubitId]) -> (f64, f64) {
    let mut row = 0.0;
    let mut col = 0.0;
    for &q in qubits {
        let c = layout.coord(q);
        row += c.row as f64;
        col += c.col as f64;
    }
    let n = qubits.len().max(1) as f64;
    (row / n, col / n)
}

/// Recursively bisects `qubits` (sorted along the wider bounding-box axis)
/// until every piece fits in one cluster.
fn bisect(
    layout: &CodeLayout,
    qubits: &mut Vec<QubitId>,
    cluster_size: usize,
    out: &mut Vec<Vec<QubitId>>,
) {
    if qubits.len() <= cluster_size {
        if !qubits.is_empty() {
            out.push(std::mem::take(qubits));
        }
        return;
    }
    // Number of clusters this piece must produce, split as evenly as
    // possible between the two halves so that cluster sizes stay balanced:
    // the left half receives a share of qubits proportional to its share of
    // clusters (clamped so both halves remain feasible).
    let clusters_needed = qubits.len().div_ceil(cluster_size);
    let left_clusters = clusters_needed / 2;
    let right_clusters = clusters_needed - left_clusters;
    let proportional = (qubits.len() * left_clusters + clusters_needed / 2) / clusters_needed;
    let min_left = qubits.len().saturating_sub(right_clusters * cluster_size);
    let max_left = left_clusters * cluster_size;
    let left_size = proportional.clamp(min_left, max_left);

    // Sort along the wider axis of the bounding box so cuts follow the
    // geometry of the code.
    let (min_r, max_r, min_c, max_c) = qubits.iter().fold(
        (i64::MAX, i64::MIN, i64::MAX, i64::MIN),
        |(min_r, max_r, min_c, max_c), &q| {
            let c = layout.coord(q);
            (
                min_r.min(c.row),
                max_r.max(c.row),
                min_c.min(c.col),
                max_c.max(c.col),
            )
        },
    );
    let split_by_row = (max_r - min_r) >= (max_c - min_c);
    qubits.sort_by_key(|&q| {
        let c = layout.coord(q);
        if split_by_row {
            (c.row, c.col, q)
        } else {
            (c.col, c.row, q)
        }
    });

    let mut right = qubits.split_off(left_size);
    bisect(layout, qubits, cluster_size, out);
    bisect(layout, &mut right, cluster_size, out);
}

/// The total weight of interaction edges cut by a clustering (lower is
/// better); used in tests and diagnostics to check partition quality.
pub fn cut_weight(layout: &CodeLayout, clusters: &[QubitCluster]) -> f64 {
    let mut cluster_of: HashMap<QubitId, usize> = HashMap::new();
    for (i, cluster) in clusters.iter().enumerate() {
        for &q in &cluster.qubits {
            cluster_of.insert(q, i);
        }
    }
    layout
        .interaction_edges()
        .iter()
        .filter(|e| cluster_of.get(&e.ancilla) != cluster_of.get(&e.data))
        .map(|e| e.weight)
        .sum()
}

/// Validates that a clustering is a partition of the layout's qubits with
/// every cluster within the size bound. Returns an error message otherwise.
pub fn validate_clustering(
    layout: &CodeLayout,
    clusters: &[QubitCluster],
    cluster_size: usize,
) -> Result<(), String> {
    let mut seen: HashSet<QubitId> = HashSet::new();
    for (i, cluster) in clusters.iter().enumerate() {
        if cluster.qubits.is_empty() {
            return Err(format!("cluster {i} is empty"));
        }
        if cluster.qubits.len() > cluster_size {
            return Err(format!(
                "cluster {i} has {} qubits, exceeding the bound {cluster_size}",
                cluster.qubits.len()
            ));
        }
        for &q in &cluster.qubits {
            if !seen.insert(q) {
                return Err(format!("qubit {q} appears in more than one cluster"));
            }
        }
    }
    if seen.len() != layout.num_qubits() {
        return Err(format!(
            "clusters cover {} qubits but the layout has {}",
            seen.len(),
            layout.num_qubits()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_qec::{repetition_code, rotated_surface_code, unrotated_surface_code};

    #[test]
    fn clusters_partition_all_qubits_within_bound() {
        for layout in [
            repetition_code(5),
            rotated_surface_code(3),
            rotated_surface_code(5),
            unrotated_surface_code(3),
        ] {
            for cluster_size in [1, 2, 4, 8, 30] {
                let clusters = cluster_qubits(&layout, cluster_size);
                validate_clustering(&layout, &clusters, cluster_size).unwrap_or_else(|e| {
                    panic!("{} cluster_size={cluster_size}: {e}", layout.name())
                });
            }
        }
    }

    #[test]
    fn cluster_count_matches_capacity_formula() {
        // ceil(N / (capacity-1)) clusters, as in Figure 6 of the paper:
        // d=4 rotated surface code with capacity 9 ⇒ ceil(31/8) = 4 clusters.
        let layout = rotated_surface_code(4);
        let clusters = cluster_qubits(&layout, 8);
        assert_eq!(clusters.len(), 4);
    }

    #[test]
    fn singleton_clusters_for_capacity_two() {
        let layout = rotated_surface_code(3);
        let clusters = cluster_qubits(&layout, 1);
        assert_eq!(clusters.len(), layout.num_qubits());
        assert!(clusters.iter().all(|c| c.qubits.len() == 1));
    }

    #[test]
    fn clusters_are_balanced() {
        let layout = rotated_surface_code(5);
        let clusters = cluster_qubits(&layout, 8);
        let sizes: Vec<usize> = clusters.iter().map(|c| c.qubits.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        // Minor imbalances (1–2 qubits) can occur due to boundary effects.
        assert!(max - min <= 3, "cluster sizes too unbalanced: {sizes:?}");
    }

    #[test]
    fn geometric_clustering_beats_round_robin_on_cut_weight() {
        let layout = rotated_surface_code(5);
        let cluster_size = 6;
        let geometric = cluster_qubits(&layout, cluster_size);

        // Round-robin strawman clustering.
        let mut round_robin: Vec<QubitCluster> = Vec::new();
        let qubits: Vec<QubitId> = layout.qubits().iter().map(|q| q.id).collect();
        for chunk in qubits.chunks(cluster_size) {
            round_robin.push(QubitCluster {
                qubits: chunk.to_vec(),
                centroid: (0.0, 0.0),
            });
        }
        // Interleave qubits so that the strawman ignores geometry.
        let mut interleaved: Vec<QubitCluster> = (0..round_robin.len())
            .map(|_| QubitCluster {
                qubits: Vec::new(),
                centroid: (0.0, 0.0),
            })
            .collect();
        let num_interleaved = interleaved.len();
        for (i, &q) in qubits.iter().enumerate() {
            interleaved[i % num_interleaved].qubits.push(q);
        }

        assert!(
            cut_weight(&layout, &geometric) < cut_weight(&layout, &interleaved),
            "geometric partition should cut fewer interaction edges"
        );
    }

    #[test]
    fn round_robin_strategy_is_a_valid_but_geometry_blind_partition() {
        let layout = rotated_surface_code(5);
        for cluster_size in [2, 4, 7] {
            let clusters =
                cluster_qubits_with_strategy(&layout, cluster_size, ClusteringStrategy::RoundRobin);
            validate_clustering(&layout, &clusters, cluster_size).unwrap();
            let geometric = cluster_qubits(&layout, cluster_size);
            assert_eq!(clusters.len(), geometric.len());
            if cluster_size > 1 {
                assert!(
                    cut_weight(&layout, &geometric) < cut_weight(&layout, &clusters),
                    "geometric must cut fewer interaction edges (size {cluster_size})"
                );
            }
        }
    }

    #[test]
    fn default_strategy_is_geometric() {
        assert_eq!(ClusteringStrategy::default(), ClusteringStrategy::Geometric);
        let layout = rotated_surface_code(3);
        assert_eq!(
            cluster_qubits(&layout, 4),
            cluster_qubits_with_strategy(&layout, 4, ClusteringStrategy::Geometric)
        );
    }

    #[test]
    fn centroids_lie_inside_the_layout_bounding_box() {
        let layout = rotated_surface_code(4);
        let clusters = cluster_qubits(&layout, 5);
        for cluster in clusters {
            assert!(cluster.centroid.0 >= -1.0 && cluster.centroid.0 <= 2.0 * 4.0);
            assert!(cluster.centroid.1 >= -1.0 && cluster.centroid.1 <= 2.0 * 4.0);
        }
    }

    #[test]
    fn whole_code_in_one_cluster_when_size_is_large() {
        let layout = repetition_code(4);
        let clusters = cluster_qubits(&layout, 100);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].qubits.len(), layout.num_qubits());
    }
}
