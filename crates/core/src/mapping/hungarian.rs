//! The Hungarian algorithm (Kuhn–Munkres) for minimum-cost assignment.
//!
//! The cluster-to-trap mapping pass (§4.2 of the paper) solves a minimum
//! edge-weight maximum-cardinality matching between qubit clusters and traps.
//! This module provides the underlying O(n²·m) assignment solver using the
//! shortest-augmenting-path formulation with potentials, supporting
//! rectangular cost matrices with at most as many rows (clusters) as columns
//! (traps).

/// Solves the minimum-cost assignment problem.
///
/// `cost[i][j]` is the cost of assigning row `i` to column `j`. Every row is
/// assigned to a distinct column. Returns `(total_cost, assignment)` where
/// `assignment[i]` is the column chosen for row `i`.
///
/// # Panics
///
/// Panics if the matrix is empty, ragged, or has more rows than columns.
pub fn solve_assignment(cost: &[Vec<f64>]) -> (f64, Vec<usize>) {
    let rows = cost.len();
    assert!(rows > 0, "cost matrix must have at least one row");
    let cols = cost[0].len();
    assert!(
        cost.iter().all(|r| r.len() == cols),
        "cost matrix must be rectangular"
    );
    assert!(
        rows <= cols,
        "assignment needs at least as many columns ({cols}) as rows ({rows})"
    );

    const INF: f64 = f64::INFINITY;
    // 1-based potentials and matching, following the classic formulation.
    let mut u = vec![0.0; rows + 1];
    let mut v = vec![0.0; cols + 1];
    let mut matched_row_of_col = vec![0usize; cols + 1];
    let mut way = vec![0usize; cols + 1];

    for i in 1..=rows {
        matched_row_of_col[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; cols + 1];
        let mut used = vec![false; cols + 1];
        loop {
            used[j0] = true;
            let i0 = matched_row_of_col[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=cols {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=cols {
                if used[j] {
                    u[matched_row_of_col[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if matched_row_of_col[j0] == 0 {
                break;
            }
        }
        // Augment along the found path.
        loop {
            let j1 = way[j0];
            matched_row_of_col[j0] = matched_row_of_col[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; rows];
    for (j, &i) in matched_row_of_col.iter().enumerate().take(cols + 1).skip(1) {
        if i != 0 {
            assignment[i - 1] = j - 1;
        }
    }
    let total = assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost[i][j])
        .sum();
    (total, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_by_one() {
        let (cost, assignment) = solve_assignment(&[vec![3.5]]);
        assert_eq!(cost, 3.5);
        assert_eq!(assignment, vec![0]);
    }

    #[test]
    fn square_known_optimum() {
        // Classic 3x3 example: optimal assignment cost is 5 (1+3+1).
        let matrix = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![3.0, 6.0, 9.0],
        ];
        let (cost, assignment) = solve_assignment(&matrix);
        assert_eq!(cost, 3.0 + 4.0 + 3.0);
        // Every column used exactly once.
        let mut cols = assignment.clone();
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 1, 2]);
    }

    #[test]
    fn diagonal_preference() {
        let matrix = vec![
            vec![0.0, 10.0, 10.0],
            vec![10.0, 0.0, 10.0],
            vec![10.0, 10.0, 0.0],
        ];
        let (cost, assignment) = solve_assignment(&matrix);
        assert_eq!(cost, 0.0);
        assert_eq!(assignment, vec![0, 1, 2]);
    }

    #[test]
    fn rectangular_picks_cheapest_columns() {
        let matrix = vec![vec![5.0, 1.0, 9.0, 2.0], vec![4.0, 8.0, 0.5, 7.0]];
        let (cost, assignment) = solve_assignment(&matrix);
        assert_eq!(assignment.len(), 2);
        assert_ne!(assignment[0], assignment[1]);
        assert!((cost - 1.5).abs() < 1e-12);
        assert_eq!(assignment, vec![1, 2]);
    }

    #[test]
    fn never_assigns_two_rows_to_one_column() {
        let matrix = vec![
            vec![0.0, 5.0, 5.0],
            vec![0.0, 1.0, 5.0],
            vec![0.0, 5.0, 1.0],
        ];
        let (_, assignment) = solve_assignment(&matrix);
        let mut cols = assignment.clone();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 3);
    }

    #[test]
    fn optimal_beats_every_permutation_on_random_instances() {
        // Brute-force cross-check on small random matrices.
        let mut seed = 0x12345678u64;
        let mut next = || {
            // xorshift64*
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 100.0
        };
        for _ in 0..20 {
            let n = 4;
            let matrix: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
            let (cost, _) = solve_assignment(&matrix);
            let mut best = f64::INFINITY;
            let mut perm: Vec<usize> = (0..n).collect();
            permutohedron_heap(&mut perm, &mut |p: &[usize]| {
                let c: f64 = p.iter().enumerate().map(|(i, &j)| matrix[i][j]).sum();
                if c < best {
                    best = c;
                }
            });
            assert!(
                (cost - best).abs() < 1e-9,
                "hungarian {cost} differs from brute force {best}"
            );
        }
    }

    /// Minimal Heap's-algorithm permutation enumeration for the brute-force
    /// cross-check.
    fn permutohedron_heap(items: &mut Vec<usize>, visit: &mut impl FnMut(&[usize])) {
        fn heap(k: usize, items: &mut Vec<usize>, visit: &mut impl FnMut(&[usize])) {
            if k <= 1 {
                visit(items);
                return;
            }
            for i in 0..k {
                heap(k - 1, items, visit);
                if k.is_multiple_of(2) {
                    items.swap(i, k - 1);
                } else {
                    items.swap(0, k - 1);
                }
            }
        }
        let len = items.len();
        heap(len, items, visit);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn more_rows_than_columns_rejected() {
        solve_assignment(&[vec![1.0], vec![2.0]]);
    }
}
