//! Qubit-to-ion mapping (§4.2 of the paper).
//!
//! The mapping pass has two stages:
//!
//! 1. [`cluster_qubits`] — partition the code's qubits into balanced clusters
//!    of `capacity − 1` qubits by top-down regular (geometric) partitioning
//!    of the code layout;
//! 2. [`map_qubits`] — place the clusters onto traps with a
//!    geometry-preserving minimum-cost matching solved by the
//!    [Hungarian algorithm](hungarian::solve_assignment).

mod assign;
mod cluster;
pub mod hungarian;

pub use assign::{map_qubits, map_qubits_with_strategy, QubitMapping};
pub use cluster::{
    cluster_qubits, cluster_qubits_with_strategy, cut_weight, validate_clustering,
    ClusteringStrategy, QubitCluster,
};
