//! Evaluation metrics (§6.3 of the paper).

use serde::{Deserialize, Serialize};

use qccd_decoder::LogicalErrorEstimate;
use qccd_hardware::ResourceEstimate;

/// Every metric the design-space exploration reports for one
/// (architecture, code distance) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Human-readable architecture label.
    pub architecture: String,
    /// Code distance evaluated.
    pub code_distance: usize,
    /// Physical qubits of the code (2d² − 1 for the rotated surface code).
    pub num_physical_qubits: usize,
    /// Traps in the sized device.
    pub num_traps: usize,
    /// Junctions in the sized device.
    pub num_junctions: usize,
    /// Elapsed time of one round of parity checks, in microseconds.
    pub qec_round_time_us: f64,
    /// Elapsed time of one logical-identity shot (d rounds plus transversal
    /// readout), in microseconds.
    pub shot_time_us: f64,
    /// Ion-reconfiguration operations per round.
    pub movement_ops_per_round: usize,
    /// Total reconfiguration time per round, in microseconds.
    pub movement_time_per_round_us: f64,
    /// Control-electronics estimate (electrodes, DACs, data rate, power).
    pub resources: ResourceEstimate,
    /// Monte-Carlo logical error estimate, when requested.
    pub logical_error: Option<LogicalErrorEstimate>,
}

impl Metrics {
    /// Logical clock speed in logical operations per second: one logical
    /// operation requires `d` rounds of parity checks.
    pub fn logical_clock_hz(&self) -> f64 {
        if self.qec_round_time_us <= 0.0 || self.code_distance == 0 {
            return 0.0;
        }
        1.0e6 / (self.qec_round_time_us * self.code_distance as f64)
    }

    /// The per-shot logical error rate, if it was estimated.
    pub fn logical_error_rate(&self) -> Option<f64> {
        self.logical_error.map(|e| e.logical_error_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_resources() -> ResourceEstimate {
        ResourceEstimate {
            linear_zones: 10,
            junction_zones: 2,
            dynamic_electrodes: 140,
            shim_electrodes: 120,
            total_electrodes: 260,
            dacs: 260,
            data_rate_gbit_s: 13.0,
            power_w: 7.8,
        }
    }

    #[test]
    fn logical_clock_speed() {
        let metrics = Metrics {
            architecture: "grid c2 standard 5x".to_string(),
            code_distance: 5,
            num_physical_qubits: 49,
            num_traps: 49,
            num_junctions: 30,
            qec_round_time_us: 4_000.0,
            shot_time_us: 20_000.0,
            movement_ops_per_round: 288,
            movement_time_per_round_us: 9_000.0,
            resources: dummy_resources(),
            logical_error: None,
        };
        // 1 / (5 · 4 ms) = 50 logical ops per second.
        assert!((metrics.logical_clock_hz() - 50.0).abs() < 1e-9);
        assert_eq!(metrics.logical_error_rate(), None);
    }

    #[test]
    fn degenerate_metrics_do_not_divide_by_zero() {
        let metrics = Metrics {
            architecture: "x".to_string(),
            code_distance: 0,
            num_physical_qubits: 0,
            num_traps: 0,
            num_junctions: 0,
            qec_round_time_us: 0.0,
            shot_time_us: 0.0,
            movement_ops_per_round: 0,
            movement_time_per_round_us: 0.0,
            resources: dummy_resources(),
            logical_error: None,
        };
        assert_eq!(metrics.logical_clock_hz(), 0.0);
    }
}
