//! Routed QCCD operations.
//!
//! The router lowers an abstract Clifford circuit into a stream of
//! [`RoutedOp`]s: quantum gates pinned to specific traps, in-trap gate swaps
//! (ion reordering), and ion-transport primitives referencing the hardware
//! resources they occupy. The scheduler then assigns start times to this
//! stream subject to resource exclusivity.

use serde::{Deserialize, Serialize};

use qccd_circuit::{native, Instruction, QubitId};
use qccd_hardware::{JunctionId, MovementKind, OperationTimes, SegmentId, TrapId, WiringMethod};

/// A hardware resource that serialises the operations using it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Resource {
    /// A trap: gates and reconfiguration steps within one trap execute
    /// serially (§3.1).
    Trap(TrapId),
    /// A junction: holds at most one ion at a time.
    Junction(JunctionId),
    /// A shuttling segment: holds at most one ion at a time.
    Segment(SegmentId),
    /// An ion: its operations respect program order.
    Ion(QubitId),
    /// The shared control system; used by the WISE wiring model to serialise
    /// all ion-transport primitives against each other.
    TransportController,
}

/// One routed operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RoutedOp {
    /// A quantum instruction executed inside a trap.
    Gate {
        /// The Clifford-level instruction (used for simulation semantics).
        instruction: Instruction,
        /// The trap executing it.
        trap: TrapId,
        /// Number of ions in the trap's chain at execution time (noise model
        /// input).
        chain_len: usize,
    },
    /// A swap of two neighbouring ions within a trap, used to bring an ion to
    /// the end of the chain before a split. Costs three MS gates.
    GateSwap {
        /// The trap performing the swap.
        trap: TrapId,
        /// One of the swapped ions (the one being repositioned).
        ion: QubitId,
        /// The neighbouring ion it swaps with.
        other: QubitId,
        /// Chain length at the time of the swap.
        chain_len: usize,
    },
    /// An ion-transport primitive (t7–t11).
    Movement {
        /// Which primitive.
        kind: MovementKind,
        /// The ion being moved.
        ion: QubitId,
        /// The trap involved (for splits and merges).
        trap: Option<TrapId>,
        /// The junction involved (for junction entry/exit).
        junction: Option<JunctionId>,
        /// The segment involved.
        segment: SegmentId,
    },
}

impl RoutedOp {
    /// Returns `true` for ion-reconfiguration operations (movement primitives
    /// and gate swaps), the quantity counted by the paper's
    /// "number of movement / routing operations" metric (§6.3).
    pub fn is_movement(&self) -> bool {
        matches!(self, RoutedOp::Movement { .. } | RoutedOp::GateSwap { .. })
    }

    /// The duration of this operation under a timing model, including the
    /// effect of WISE cooling on two-qubit gates.
    pub fn duration_us(&self, times: &OperationTimes, wiring: WiringMethod) -> f64 {
        match self {
            RoutedOp::Gate { instruction, .. } => native::decompose(instruction)
                .iter()
                .map(|op| {
                    if wiring.requires_cooling() {
                        times.gate_duration_with_cooling_us(op.kind())
                    } else {
                        times.gate_duration_us(op.kind())
                    }
                })
                .sum(),
            RoutedOp::GateSwap { .. } => times.movement_duration_us(MovementKind::GateSwap),
            RoutedOp::Movement { kind, .. } => times.movement_duration_us(*kind),
        }
    }

    /// The resources this operation occupies for its whole duration.
    pub fn resources(&self, wiring: WiringMethod) -> Vec<Resource> {
        match self {
            RoutedOp::Gate {
                instruction, trap, ..
            } => {
                let mut r = vec![Resource::Trap(*trap)];
                r.extend(instruction.qubits().into_iter().map(Resource::Ion));
                r
            }
            RoutedOp::GateSwap {
                trap, ion, other, ..
            } => vec![
                Resource::Trap(*trap),
                Resource::Ion(*ion),
                Resource::Ion(*other),
            ],
            RoutedOp::Movement {
                ion,
                trap,
                junction,
                segment,
                ..
            } => {
                let mut r = vec![Resource::Ion(*ion), Resource::Segment(*segment)];
                if let Some(t) = trap {
                    r.push(Resource::Trap(*t));
                }
                if let Some(j) = junction {
                    r.push(Resource::Junction(*j));
                }
                if wiring.transport_type_exclusive() {
                    r.push(Resource::TransportController);
                }
                r
            }
        }
    }

    /// The qubits (ions) involved in this operation.
    pub fn ions(&self) -> Vec<QubitId> {
        match self {
            RoutedOp::Gate { instruction, .. } => instruction.qubits(),
            RoutedOp::GateSwap { ion, other, .. } => vec![*ion, *other],
            RoutedOp::Movement { ion, .. } => vec![*ion],
        }
    }
}

/// The full routed program produced by the router.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RoutedProgram {
    /// Operations in routed (dependency-respecting) order.
    pub ops: Vec<RoutedOp>,
}

impl RoutedProgram {
    /// Number of ion-reconfiguration operations (movement primitives plus
    /// gate swaps).
    pub fn num_movement_ops(&self) -> usize {
        self.ops.iter().filter(|op| op.is_movement()).count()
    }

    /// Number of quantum gate operations (excluding swaps).
    pub fn num_gate_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, RoutedOp::Gate { .. }))
            .count()
    }

    /// Total time spent in ion reconfiguration, summed over movement
    /// operations (the paper's "movement time" metric in Table 3).
    pub fn movement_time_us(&self, times: &OperationTimes, wiring: WiringMethod) -> f64 {
        self.ops
            .iter()
            .filter(|op| op.is_movement())
            .map(|op| op.duration_us(times, wiring))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn gate_duration_sums_native_ops() {
        let times = OperationTimes::paper_defaults();
        let cnot = RoutedOp::Gate {
            instruction: Instruction::Cnot {
                control: q(0),
                target: q(1),
            },
            trap: TrapId(0),
            chain_len: 2,
        };
        // 1 MS (40) + 4 rotations (20).
        assert_eq!(cnot.duration_us(&times, WiringMethod::Standard), 60.0);
        // WISE cooling adds 850 µs to the MS gate.
        assert_eq!(cnot.duration_us(&times, WiringMethod::Wise), 910.0);
        let meas = RoutedOp::Gate {
            instruction: Instruction::Measure(q(0)),
            trap: TrapId(0),
            chain_len: 1,
        };
        assert_eq!(meas.duration_us(&times, WiringMethod::Standard), 400.0);
    }

    #[test]
    fn movement_durations_and_flags() {
        let times = OperationTimes::paper_defaults();
        let split = RoutedOp::Movement {
            kind: MovementKind::Split,
            ion: q(3),
            trap: Some(TrapId(1)),
            junction: None,
            segment: SegmentId(0),
        };
        assert!(split.is_movement());
        assert_eq!(split.duration_us(&times, WiringMethod::Standard), 80.0);
        let swap = RoutedOp::GateSwap {
            trap: TrapId(0),
            ion: q(0),
            other: q(1),
            chain_len: 3,
        };
        assert!(swap.is_movement());
        assert_eq!(swap.duration_us(&times, WiringMethod::Standard), 120.0);
        let gate = RoutedOp::Gate {
            instruction: Instruction::H(q(0)),
            trap: TrapId(0),
            chain_len: 1,
        };
        assert!(!gate.is_movement());
    }

    #[test]
    fn resources_include_shared_transport_controller_under_wise() {
        let hop = RoutedOp::Movement {
            kind: MovementKind::Shuttle,
            ion: q(2),
            trap: None,
            junction: None,
            segment: SegmentId(5),
        };
        let standard = hop.resources(WiringMethod::Standard);
        let wise = hop.resources(WiringMethod::Wise);
        assert!(!standard.contains(&Resource::TransportController));
        assert!(wise.contains(&Resource::TransportController));
        assert!(standard.contains(&Resource::Segment(SegmentId(5))));
        assert!(standard.contains(&Resource::Ion(q(2))));
    }

    #[test]
    fn gate_resources_serialize_on_trap_and_ions() {
        let gate = RoutedOp::Gate {
            instruction: Instruction::Cnot {
                control: q(0),
                target: q(1),
            },
            trap: TrapId(4),
            chain_len: 2,
        };
        let resources = gate.resources(WiringMethod::Standard);
        assert!(resources.contains(&Resource::Trap(TrapId(4))));
        assert!(resources.contains(&Resource::Ion(q(0))));
        assert!(resources.contains(&Resource::Ion(q(1))));
    }

    #[test]
    fn program_counters() {
        let times = OperationTimes::paper_defaults();
        let program = RoutedProgram {
            ops: vec![
                RoutedOp::Gate {
                    instruction: Instruction::H(q(0)),
                    trap: TrapId(0),
                    chain_len: 1,
                },
                RoutedOp::Movement {
                    kind: MovementKind::Split,
                    ion: q(0),
                    trap: Some(TrapId(0)),
                    junction: None,
                    segment: SegmentId(0),
                },
                RoutedOp::Movement {
                    kind: MovementKind::Merge,
                    ion: q(0),
                    trap: Some(TrapId(1)),
                    junction: None,
                    segment: SegmentId(0),
                },
                RoutedOp::GateSwap {
                    trap: TrapId(1),
                    ion: q(0),
                    other: q(1),
                    chain_len: 2,
                },
            ],
        };
        assert_eq!(program.num_movement_ops(), 3);
        assert_eq!(program.num_gate_ops(), 1);
        assert_eq!(
            program.movement_time_us(&times, WiringMethod::Standard),
            80.0 + 80.0 + 120.0
        );
    }
}
