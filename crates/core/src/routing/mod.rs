//! Ion routing (§4.3 of the paper).
//!
//! * [`DeviceState`] — ion positions and in-trap chain order during routing;
//! * [`route`] — the multi-pass routing algorithm that inserts movement
//!   primitives so every two-qubit gate executes within a single trap while
//!   respecting trap capacity and junction/segment exclusivity.

mod router;
mod state;

pub use router::route;
pub use state::DeviceState;
