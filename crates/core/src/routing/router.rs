//! The multi-pass ion-routing algorithm (§4.3, Figure 7 of the paper).
//!
//! The router consumes the code's Clifford circuit (with a fixed qubit-to-ion
//! mapping) and produces a stream of [`RoutedOp`]s in which every two-qubit
//! gate happens between ions that share a trap, inserting the ion-transport
//! primitives needed to make that true while honouring the QCCD hardware
//! constraints:
//!
//! * **trap capacity** — a trap never holds more than `capacity` ions;
//! * **junction exclusivity** — one ion per junction at a time;
//! * **segment exclusivity** — one ion per shuttling segment at a time.
//!
//! Each *pass* of the algorithm (Figure 7):
//!
//! 1. sequences every ready instruction that needs no movement;
//! 2. computes the destination trap of every ready cross-trap gate
//!    (prioritised in program order), finds a constraint-respecting shortest
//!    path for its mobile ion (the ancilla, for parity-check circuits), and
//!    reserves capacity along the path;
//! 3. emits the movement primitives (gate swaps to reach the chain end,
//!    split, shuttle, junction entry/exit, merge) for every planned route;
//! 4. the next pass then sequences the now-local gates, and visiting ions are
//!    routed onward to their next destination (or evacuated) so that every
//!    trap returns to at least one free slot.

use std::collections::{HashMap, HashSet, VecDeque};

use qccd_circuit::{Circuit, QubitId};
use qccd_hardware::{Device, MovementKind, NodeId, SegmentId, TrapId};
use qccd_qec::{CodeLayout, QubitRole};

use crate::routing::DeviceState;
use crate::{CompileError, QubitMapping, RoutedOp, RoutedProgram};

/// Routes a circuit onto a device given a qubit mapping.
///
/// # Errors
///
/// Returns [`CompileError::RoutingStuck`] if no progress can be made (for
/// example, a disconnected device), or [`CompileError::UnmappedQubit`] if the
/// circuit references a qubit outside the mapping.
pub fn route(
    circuit: &Circuit,
    layout: &CodeLayout,
    device: &Device,
    mapping: &QubitMapping,
) -> Result<RoutedProgram, CompileError> {
    Router::new(circuit, layout, device, mapping)?.run()
}

struct Router<'a> {
    circuit: &'a Circuit,
    layout: &'a CodeLayout,
    device: &'a Device,
    state: DeviceState,
    /// Per-qubit FIFO of pending instruction indices.
    queues: HashMap<QubitId, VecDeque<usize>>,
    emitted: Vec<bool>,
    num_emitted: usize,
    ops: Vec<RoutedOp>,
}

impl<'a> Router<'a> {
    fn new(
        circuit: &'a Circuit,
        layout: &'a CodeLayout,
        device: &'a Device,
        mapping: &'a QubitMapping,
    ) -> Result<Self, CompileError> {
        let mut queues: HashMap<QubitId, VecDeque<usize>> = HashMap::new();
        for (idx, instruction) in circuit.iter().enumerate() {
            for q in instruction.qubits() {
                if mapping.trap_of(q).is_none() {
                    return Err(CompileError::UnmappedQubit(q));
                }
                queues.entry(q).or_default().push_back(idx);
            }
        }
        Ok(Router {
            circuit,
            layout,
            device,
            state: DeviceState::new(device, mapping),
            queues,
            emitted: vec![false; circuit.len()],
            num_emitted: 0,
            ops: Vec::new(),
        })
    }

    fn run(mut self) -> Result<RoutedProgram, CompileError> {
        let total = self.circuit.len();
        // Stalls are passes without any instruction emission; movement alone
        // must eventually enable emissions or routing is declared stuck.
        let stall_limit = 50 * self.device.num_traps() + 500;
        let mut stalls = 0usize;
        while self.num_emitted < total {
            let local_progress = self.emit_ready_local_instructions();
            if self.num_emitted == total {
                break;
            }
            let ready_cross = self.ready_cross_trap_gates();
            let (moved_ions, blocked) = self.plan_and_emit_moves(&ready_cross);
            let moved = !moved_ions.is_empty();
            // Paper's step 9: restore the one-free-slot invariant where it is
            // actually blocking progress, by routing squatting visitors out
            // of the traps that a planned gate could not reach.
            let restored = self.evacuate_blocked(&blocked, &moved_ions);
            if !local_progress && !moved && !restored {
                let evacuated = self.try_evacuation();
                if !evacuated {
                    if std::env::var("QCCD_ROUTER_DEBUG").is_ok() {
                        self.debug_dump("no-evacuation");
                    }
                    return Err(CompileError::RoutingStuck {
                        pending_instructions: total - self.num_emitted,
                    });
                }
            }
            if local_progress {
                stalls = 0;
            } else {
                stalls += 1;
                if stalls > stall_limit {
                    if std::env::var("QCCD_ROUTER_DEBUG").is_ok() {
                        self.debug_dump("stall-limit");
                    }
                    return Err(CompileError::RoutingStuck {
                        pending_instructions: total - self.num_emitted,
                    });
                }
            }
        }
        Ok(RoutedProgram { ops: self.ops })
    }

    fn debug_dump(&self, reason: &str) {
        eprintln!("=== routing stuck ({reason}) ===");
        for trap in self.device.traps() {
            let chain = self.state.chain(trap.id);
            if !chain.is_empty() {
                eprintln!(
                    "  {}: {:?} (free {})",
                    trap.id,
                    chain,
                    self.state.free_slots(trap.id)
                );
            }
        }
        let mut fronts: Vec<usize> = self
            .queues
            .values()
            .filter_map(|q| q.front().copied())
            .collect();
        fronts.sort_unstable();
        fronts.dedup();
        for idx in fronts.iter().take(12) {
            let instr = self.circuit.instructions()[*idx];
            eprintln!(
                "  front #{idx}: {instr} ready={} local={}",
                self.is_ready(*idx),
                self.is_local(*idx)
            );
        }
    }

    // ------------------------------------------------------------------
    // Readiness bookkeeping.
    // ------------------------------------------------------------------

    fn is_ready(&self, idx: usize) -> bool {
        !self.emitted[idx]
            && self.circuit.instructions()[idx]
                .qubits()
                .iter()
                .all(|q| self.queues.get(q).and_then(|f| f.front()) == Some(&idx))
    }

    fn is_local(&self, idx: usize) -> bool {
        let qubits = self.circuit.instructions()[idx].qubits();
        let traps: Vec<Option<TrapId>> = qubits.iter().map(|&q| self.state.trap_of(q)).collect();
        traps.iter().all(|t| t.is_some()) && traps.windows(2).all(|w| w[0] == w[1])
    }

    fn emit_instruction(&mut self, idx: usize) {
        let instruction = self.circuit.instructions()[idx];
        let qubits = instruction.qubits();
        let trap = self
            .state
            .trap_of(qubits[0])
            .expect("operand must be in a trap");
        self.ops.push(RoutedOp::Gate {
            instruction,
            trap,
            chain_len: self.state.occupancy(trap),
        });
        for q in qubits {
            let front = self
                .queues
                .get_mut(&q)
                .and_then(|f| f.pop_front())
                .expect("queue entry exists");
            debug_assert_eq!(front, idx);
        }
        self.emitted[idx] = true;
        self.num_emitted += 1;
    }

    /// Emits every ready instruction whose operands already share a trap,
    /// looping until a fixpoint. Returns whether anything was emitted.
    fn emit_ready_local_instructions(&mut self) -> bool {
        let mut any = false;
        loop {
            let candidates: Vec<usize> = {
                let mut front: Vec<usize> = self
                    .queues
                    .values()
                    .filter_map(|q| q.front().copied())
                    .collect();
                front.sort_unstable();
                front.dedup();
                front
            };
            let mut emitted_this_round = false;
            for idx in candidates {
                if self.is_ready(idx) && self.is_local(idx) {
                    self.emit_instruction(idx);
                    emitted_this_round = true;
                    any = true;
                }
            }
            if !emitted_this_round {
                break;
            }
        }
        any
    }

    /// Ready two-qubit gates whose operands currently sit in different traps,
    /// in program order.
    fn ready_cross_trap_gates(&self) -> Vec<usize> {
        let mut front: Vec<usize> = self
            .queues
            .values()
            .filter_map(|q| q.front().copied())
            .collect();
        front.sort_unstable();
        front.dedup();
        front
            .into_iter()
            .filter(|&idx| self.is_ready(idx) && !self.is_local(idx))
            .collect()
    }

    /// Chooses which operand of a two-qubit gate travels: ancilla qubits move
    /// (data qubits stay put), falling back to the second operand.
    fn pick_mobile(&self, qubits: &[QubitId]) -> QubitId {
        let is_ancilla = |q: QubitId| {
            q.index() < self.layout.num_qubits() && self.layout.role(q) == QubitRole::Ancilla
        };
        match (is_ancilla(qubits[0]), is_ancilla(qubits[1])) {
            (true, false) => qubits[0],
            (false, true) => qubits[1],
            _ => qubits[1],
        }
    }

    // ------------------------------------------------------------------
    // Route planning.
    // ------------------------------------------------------------------

    /// Plans non-conflicting routes for as many ready cross-trap gates as
    /// possible (in priority order) and emits their movement primitives.
    /// Returns the set of ions that were moved and the traps that blocked a
    /// planned gate because they were full.
    fn plan_and_emit_moves(&mut self, ready_cross: &[usize]) -> (HashSet<QubitId>, Vec<TrapId>) {
        let mut avail: HashMap<TrapId, usize> = self
            .device
            .traps()
            .iter()
            .map(|t| (t.id, self.state.free_slots(t.id)))
            .collect();
        // Segments and junctions are only time-multiplexed (the scheduler
        // serialises them); they are not reserved per pass.
        let used_segments: HashSet<SegmentId> = HashSet::new();
        let used_junctions: HashSet<qccd_hardware::JunctionId> = HashSet::new();
        let mut busy_ions: HashSet<QubitId> = HashSet::new();
        type PlannedMove = (QubitId, TrapId, Vec<(SegmentId, NodeId)>);
        let mut planned: Vec<PlannedMove> = Vec::new();
        let mut blocked: Vec<TrapId> = Vec::new();

        for &idx in ready_cross {
            let qubits = self.circuit.instructions()[idx].qubits();
            let mobile = self.pick_mobile(&qubits);
            let stationary = if mobile == qubits[0] {
                qubits[1]
            } else {
                qubits[0]
            };
            if busy_ions.contains(&mobile) || busy_ions.contains(&stationary) {
                continue;
            }
            let (Some(src), Some(dest)) =
                (self.state.trap_of(mobile), self.state.trap_of(stationary))
            else {
                continue;
            };
            if src == dest {
                continue;
            }
            if avail.get(&dest).copied().unwrap_or(0) == 0 {
                if self.state.free_slots(dest) == 0 {
                    blocked.push(dest);
                }
                continue;
            }
            if let Some(path) = self.find_path(src, dest, &avail, &used_segments, &used_junctions) {
                for (_segment, node) in &path {
                    // Trap capacity along the path is reserved for the whole
                    // pass; segments and junctions are only time-multiplexed,
                    // which the scheduler's resource exclusivity enforces, so
                    // they are not reserved here (reserving them per pass
                    // was found to over-serialise large codes).
                    if let NodeId::Trap(t) = node {
                        if let Some(slots) = avail.get_mut(t) {
                            *slots = slots.saturating_sub(1);
                        }
                    }
                }
                busy_ions.insert(mobile);
                busy_ions.insert(stationary);
                planned.push((mobile, src, path));
            } else {
                // The full path is blocked by full traps (this only happens
                // on topologies where routes pass through other traps, such
                // as the linear chain). Make partial progress: move the ion
                // as far along the ideal route as capacity currently allows,
                // and mark the full traps on that route so their squatters
                // get evacuated.
                let unbounded: HashMap<TrapId, usize> =
                    self.device.traps().iter().map(|t| (t.id, 1)).collect();
                let Some(ideal) =
                    self.find_path(src, dest, &unbounded, &used_segments, &used_junctions)
                else {
                    continue;
                };
                let mut partial: Option<Vec<(SegmentId, NodeId)>> = None;
                for &(_, node) in ideal.iter().rev().skip(1) {
                    if let NodeId::Trap(t) = node {
                        if avail.get(&t).copied().unwrap_or(0) >= 1 {
                            if let Some(p) =
                                self.find_path(src, t, &avail, &used_segments, &used_junctions)
                            {
                                partial = Some(p);
                                break;
                            }
                        }
                    }
                }
                if let Some(path) = partial {
                    for (_, node) in &path {
                        if let NodeId::Trap(t) = node {
                            if let Some(slots) = avail.get_mut(t) {
                                *slots = slots.saturating_sub(1);
                            }
                        }
                    }
                    busy_ions.insert(mobile);
                    planned.push((mobile, src, path));
                } else {
                    for &(_, node) in &ideal {
                        if let NodeId::Trap(t) = node {
                            if self.state.free_slots(t) == 0 {
                                blocked.push(t);
                            }
                        }
                    }
                }
            }
        }

        let mut moved_ions = HashSet::new();
        for (ion, src, path) in planned {
            moved_ions.insert(ion);
            self.emit_move(ion, src, &path);
        }
        blocked.sort_unstable();
        blocked.dedup();
        (moved_ions, blocked)
    }

    /// Breadth-first shortest path from `src` to `dest` through nodes and
    /// segments that are still available in this pass. The returned path is a
    /// list of `(segment, next node)` hops; the destination trap is the last
    /// node.
    fn find_path(
        &self,
        src: TrapId,
        dest: TrapId,
        avail: &HashMap<TrapId, usize>,
        used_segments: &HashSet<SegmentId>,
        used_junctions: &HashSet<qccd_hardware::JunctionId>,
    ) -> Option<Vec<(SegmentId, NodeId)>> {
        let start = NodeId::Trap(src);
        let goal = NodeId::Trap(dest);
        let mut parent: HashMap<NodeId, (NodeId, SegmentId)> = HashMap::new();
        let mut visited: HashSet<NodeId> = HashSet::new();
        visited.insert(start);
        let mut queue = VecDeque::new();
        queue.push_back(start);
        while let Some(node) = queue.pop_front() {
            for &(segment, next) in self.device.neighbours(node) {
                if visited.contains(&next) || used_segments.contains(&segment) {
                    continue;
                }
                let allowed = match next {
                    NodeId::Junction(j) => !used_junctions.contains(&j),
                    NodeId::Trap(t) => {
                        // The destination needs one free slot (already
                        // checked by the caller); intermediate traps need a
                        // transient slot for the pass-through.
                        avail.get(&t).copied().unwrap_or(0) >= 1
                    }
                };
                if !allowed {
                    continue;
                }
                visited.insert(next);
                parent.insert(next, (node, segment));
                if next == goal {
                    // Reconstruct.
                    let mut path = Vec::new();
                    let mut cur = next;
                    while cur != start {
                        let (prev, seg) = parent[&cur];
                        path.push((seg, cur));
                        cur = prev;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
        None
    }

    /// Emits the full movement sequence taking `ion` from trap `src` along
    /// `path` (gate swaps, split, shuttles, junction crossings, merges) and
    /// updates the device state.
    fn emit_move(&mut self, ion: QubitId, src: TrapId, path: &[(SegmentId, NodeId)]) {
        // Bring the ion to the nearest end of its chain.
        while self.state.swaps_to_chain_end(ion) > 0 {
            let chain_len = self.state.occupancy(src);
            let other = self
                .state
                .swap_towards_end(ion)
                .expect("swap available while not at chain end");
            self.ops.push(RoutedOp::GateSwap {
                trap: src,
                ion,
                other,
                chain_len,
            });
        }

        let mut current = NodeId::Trap(src);
        for (i, &(segment, node)) in path.iter().enumerate() {
            // Leave the current node onto the segment.
            match current {
                NodeId::Trap(t) => {
                    self.state.remove_ion(ion);
                    self.ops.push(RoutedOp::Movement {
                        kind: MovementKind::Split,
                        ion,
                        trap: Some(t),
                        junction: None,
                        segment,
                    });
                }
                NodeId::Junction(j) => {
                    self.ops.push(RoutedOp::Movement {
                        kind: MovementKind::JunctionExit,
                        ion,
                        trap: None,
                        junction: Some(j),
                        segment,
                    });
                }
            }
            // Traverse the segment.
            self.ops.push(RoutedOp::Movement {
                kind: MovementKind::Shuttle,
                ion,
                trap: None,
                junction: None,
                segment,
            });
            // Arrive at the next node.
            match node {
                NodeId::Trap(t) => {
                    self.ops.push(RoutedOp::Movement {
                        kind: MovementKind::Merge,
                        ion,
                        trap: Some(t),
                        junction: None,
                        segment,
                    });
                    self.state.insert_ion(t, ion);
                    let is_final = i == path.len() - 1;
                    if !is_final {
                        // Passing through a trap: the ion enters at one end
                        // and must reach the other end before splitting out,
                        // swapping past every resident ion.
                        let residents: Vec<QubitId> = self
                            .state
                            .chain(t)
                            .iter()
                            .copied()
                            .filter(|&q| q != ion)
                            .collect();
                        let chain_len = self.state.occupancy(t);
                        for other in residents {
                            self.ops.push(RoutedOp::GateSwap {
                                trap: t,
                                ion,
                                other,
                                chain_len,
                            });
                        }
                    }
                }
                NodeId::Junction(j) => {
                    self.ops.push(RoutedOp::Movement {
                        kind: MovementKind::JunctionEntry,
                        ion,
                        trap: None,
                        junction: Some(j),
                        segment,
                    });
                }
            }
            current = node;
        }
    }

    /// Routes a squatting ion out of `from` towards its home trap. Returns
    /// `true` if a move was emitted.
    ///
    /// The destination preference is: the home trap itself, then the closest
    /// free trap *on the path towards home* (so repeated evacuations make
    /// monotone progress and cannot livelock two ions bouncing between the
    /// same pair of traps), and only as a last resort any nearby free trap.
    fn evacuate_ion(&mut self, ion: QubitId, from: TrapId) -> bool {
        let avail: HashMap<TrapId, usize> = self
            .device
            .traps()
            .iter()
            .map(|t| (t.id, self.state.free_slots(t.id)))
            .collect();
        let empty_segments: HashSet<SegmentId> = HashSet::new();
        let empty_junctions: HashSet<qccd_hardware::JunctionId> = HashSet::new();

        let mut candidates: Vec<TrapId> = Vec::new();
        if let Some(home) = self.state.home_of(ion) {
            if home != from {
                // 1. Home itself.
                candidates.push(home);
                // 2. Free traps along the unconstrained shortest path home,
                //    nearest first (monotone progress towards home).
                let unbounded: HashMap<TrapId, usize> =
                    self.device.traps().iter().map(|t| (t.id, 1)).collect();
                if let Some(ideal) =
                    self.find_path(from, home, &unbounded, &empty_segments, &empty_junctions)
                {
                    for &(_, node) in &ideal {
                        if let NodeId::Trap(t) = node {
                            if t != home {
                                candidates.push(t);
                            }
                        }
                    }
                }
            }
        }
        // 3. Any other trap with a free slot, nearest first.
        let mut others: Vec<(usize, TrapId)> = self
            .device
            .traps()
            .iter()
            .map(|t| t.id)
            .filter(|&t| t != from && self.state.free_slots(t) > 0)
            .filter_map(|t| {
                self.device
                    .hop_distance(NodeId::Trap(from), NodeId::Trap(t))
                    .map(|d| (d, t))
            })
            .collect();
        others.sort_unstable();
        candidates.extend(others.into_iter().map(|(_, t)| t));

        for dest in candidates {
            if dest == from || self.state.free_slots(dest) == 0 {
                continue;
            }
            if let Some(path) =
                self.find_path(from, dest, &avail, &empty_segments, &empty_junctions)
            {
                self.emit_move(ion, from, &path);
                return true;
            }
        }
        false
    }

    /// Paper's step 9: a full trap that a planned gate could not enter gets
    /// one of its squatting visitors routed out (towards its home trap), so
    /// that the blocked gate can route in a later pass. Visitors that the
    /// route planner moved this pass are left alone; visitors the planner
    /// failed to move (for example, two ancillas blocking each other head-on
    /// in a linear chain) are evacuated to break the deadlock.
    fn evacuate_blocked(&mut self, blocked: &[TrapId], moved_ions: &HashSet<QubitId>) -> bool {
        let mut any = false;
        for &trap in blocked {
            if self.state.free_slots(trap) > 0 {
                continue;
            }
            let chain: Vec<QubitId> = self.state.chain(trap).to_vec();
            for &ion in chain.iter().rev() {
                if !self.state.is_visitor(ion) || moved_ions.contains(&ion) {
                    continue;
                }
                if self.evacuate_ion(ion, trap) {
                    any = true;
                    break;
                }
            }
        }
        any
    }

    /// Last-resort progress: move any visiting ion out of a full trap so that
    /// blocked gates can route in a later pass.
    fn try_evacuation(&mut self) -> bool {
        let full_traps: Vec<TrapId> = self
            .device
            .traps()
            .iter()
            .map(|t| t.id)
            .filter(|&t| self.state.free_slots(t) == 0 && self.state.occupancy(t) > 0)
            .collect();
        for trap in full_traps {
            let chain: Vec<QubitId> = self.state.chain(trap).to_vec();
            for &ion in chain.iter().rev() {
                if !self.state.is_visitor(ion) {
                    continue;
                }
                if self.evacuate_ion(ion, trap) {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map_qubits;
    use qccd_circuit::Instruction;
    use qccd_qec::{parity_check_round, repetition_code, rotated_surface_code};

    /// Checks the QCCD hardware invariants over a routed program by replaying
    /// it: trap capacities are never exceeded, segments/junctions hold at
    /// most one ion, and every two-qubit gate happens with both ions in the
    /// named trap.
    fn check_invariants(program: &RoutedProgram, device: &Device, mapping: &QubitMapping) {
        let mut location: HashMap<QubitId, Option<TrapId>> = HashMap::new();
        let mut chains: HashMap<TrapId, usize> = HashMap::new();
        for (&trap, chain) in mapping.chains() {
            chains.insert(trap, chain.len());
            for &q in chain {
                location.insert(q, Some(trap));
            }
        }
        let capacity: HashMap<TrapId, usize> =
            device.traps().iter().map(|t| (t.id, t.capacity)).collect();
        for op in &program.ops {
            match op {
                RoutedOp::Gate {
                    instruction, trap, ..
                } => {
                    for q in instruction.qubits() {
                        assert_eq!(
                            location[&q],
                            Some(*trap),
                            "gate {instruction} executed in {trap} but {q} is elsewhere"
                        );
                    }
                }
                RoutedOp::GateSwap {
                    trap, ion, other, ..
                } => {
                    assert_eq!(location[ion], Some(*trap));
                    assert_eq!(location[other], Some(*trap));
                }
                RoutedOp::Movement {
                    kind, ion, trap, ..
                } => match kind {
                    MovementKind::Split => {
                        let t = trap.expect("split names a trap");
                        assert_eq!(location[ion], Some(t));
                        *chains.get_mut(&t).unwrap() -= 1;
                        location.insert(*ion, None);
                    }
                    MovementKind::Merge => {
                        let t = trap.expect("merge names a trap");
                        assert_eq!(location[ion], None, "ion must be in transit before merge");
                        let count = chains.entry(t).or_insert(0);
                        *count += 1;
                        assert!(
                            *count <= capacity[&t],
                            "trap {t} exceeded capacity {}",
                            capacity[&t]
                        );
                        location.insert(*ion, Some(t));
                    }
                    _ => {
                        assert_eq!(location[ion], None, "ion must be in transit");
                    }
                },
            }
        }
    }

    fn route_code(
        layout: &CodeLayout,
        device: &Device,
        rounds: usize,
    ) -> (RoutedProgram, QubitMapping) {
        let mut circuit = Circuit::new();
        circuit.pad_qubits(layout.num_qubits());
        for _ in 0..rounds {
            let round = parity_check_round(layout);
            circuit.extend(round.iter().copied());
        }
        let mapping = map_qubits(layout, device).unwrap();
        let program = route(&circuit, layout, device, &mapping).unwrap();
        (program, mapping)
    }

    #[test]
    fn single_chain_needs_no_movement() {
        let layout = repetition_code(3);
        let device = Device::single_chain(layout.num_qubits());
        let (program, _) = route_code(&layout, &device, 1);
        assert_eq!(program.num_movement_ops(), 0);
        assert_eq!(program.num_gate_ops(), parity_check_round(&layout).len());
    }

    #[test]
    fn repetition_code_on_linear_capacity_two_routes_and_respects_invariants() {
        let layout = repetition_code(3);
        let device = Device::linear(5, 2);
        let (program, mapping) = route_code(&layout, &device, 1);
        assert!(program.num_movement_ops() > 0);
        check_invariants(&program, &device, &mapping);
        // Every circuit instruction appears exactly once as a gate op.
        assert_eq!(program.num_gate_ops(), parity_check_round(&layout).len());
    }

    #[test]
    fn rotated_surface_code_on_grid_capacity_two() {
        let layout = rotated_surface_code(3);
        let device = qccd_hardware::TopologySpec::new(qccd_hardware::TopologyKind::Grid, 2)
            .build_for_qubits(layout.num_qubits());
        let (program, mapping) = route_code(&layout, &device, 2);
        check_invariants(&program, &device, &mapping);
        assert_eq!(
            program.num_gate_ops(),
            2 * parity_check_round(&layout).len()
        );
        assert!(program.num_movement_ops() > 0);
    }

    #[test]
    fn rotated_surface_code_on_switch_topology() {
        let layout = rotated_surface_code(3);
        let device = qccd_hardware::TopologySpec::new(qccd_hardware::TopologyKind::Switch, 2)
            .build_for_qubits(layout.num_qubits());
        let (program, mapping) = route_code(&layout, &device, 1);
        check_invariants(&program, &device, &mapping);
        assert_eq!(program.num_gate_ops(), parity_check_round(&layout).len());
    }

    #[test]
    fn higher_capacity_needs_fewer_movement_ops() {
        let layout = rotated_surface_code(3);
        let grid = |capacity| {
            qccd_hardware::TopologySpec::new(qccd_hardware::TopologyKind::Grid, capacity)
                .build_for_qubits(layout.num_qubits())
        };
        let (low_cap, _) = route_code(&layout, &grid(2), 1);
        let (high_cap, _) = route_code(&layout, &grid(6), 1);
        assert!(
            high_cap.num_movement_ops() < low_cap.num_movement_ops(),
            "capacity 6 ({} moves) should need fewer moves than capacity 2 ({} moves)",
            high_cap.num_movement_ops(),
            low_cap.num_movement_ops()
        );
    }

    #[test]
    fn per_qubit_program_order_is_preserved() {
        let layout = rotated_surface_code(2);
        let device = qccd_hardware::TopologySpec::new(qccd_hardware::TopologyKind::Grid, 2)
            .build_for_qubits(layout.num_qubits());
        let mut circuit = Circuit::new();
        circuit.pad_qubits(layout.num_qubits());
        circuit.extend(parity_check_round(&layout).iter().copied());
        let mapping = map_qubits(&layout, &device).unwrap();
        let program = route(&circuit, &layout, &device, &mapping).unwrap();

        // Reconstruct, per qubit, the order of emitted instructions and
        // compare with the original program order.
        let mut per_qubit_original: HashMap<QubitId, Vec<Instruction>> = HashMap::new();
        for instruction in circuit.iter() {
            for q in instruction.qubits() {
                per_qubit_original.entry(q).or_default().push(*instruction);
            }
        }
        let mut per_qubit_emitted: HashMap<QubitId, Vec<Instruction>> = HashMap::new();
        for op in &program.ops {
            if let RoutedOp::Gate { instruction, .. } = op {
                for q in instruction.qubits() {
                    per_qubit_emitted.entry(q).or_default().push(*instruction);
                }
            }
        }
        assert_eq!(per_qubit_original, per_qubit_emitted);
    }

    #[test]
    fn unmapped_qubit_is_reported() {
        let layout = repetition_code(3);
        let device = Device::linear(5, 2);
        let mapping = map_qubits(&layout, &device).unwrap();
        let mut circuit = Circuit::new();
        circuit.push(Instruction::H(QubitId::new(40)));
        assert_eq!(
            route(&circuit, &layout, &device, &mapping),
            Err(CompileError::UnmappedQubit(QubitId::new(40)))
        );
    }
}
