//! Mutable device state tracked during ion routing.
//!
//! Between routing passes every ion sits inside some trap (junctions and
//! segments are empty — the router emits complete hop sequences), so the
//! state is simply: which trap holds each ion, and in what order the ions sit
//! within each trap's chain. Chain order matters because an ion must be at a
//! chain end to be split out (§2), which otherwise costs gate swaps.

use std::collections::HashMap;

use qccd_circuit::QubitId;
use qccd_hardware::{Device, TrapId};

use crate::QubitMapping;

/// The positions of all ions during routing.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceState {
    chains: HashMap<TrapId, Vec<QubitId>>,
    location: HashMap<QubitId, TrapId>,
    capacity: HashMap<TrapId, usize>,
    /// The trap each ion was originally mapped to ("home"), used when
    /// evacuating visitors.
    home: HashMap<QubitId, TrapId>,
}

impl DeviceState {
    /// Initialises the state from the qubit-to-trap mapping.
    pub fn new(device: &Device, mapping: &QubitMapping) -> Self {
        let mut chains: HashMap<TrapId, Vec<QubitId>> = HashMap::new();
        let mut location = HashMap::new();
        let mut home = HashMap::new();
        for (&trap, chain) in mapping.chains() {
            chains.insert(trap, chain.clone());
            for &q in chain {
                location.insert(q, trap);
                home.insert(q, trap);
            }
        }
        let capacity = device.traps().iter().map(|t| (t.id, t.capacity)).collect();
        DeviceState {
            chains,
            location,
            capacity,
            home,
        }
    }

    /// The trap currently holding an ion.
    pub fn trap_of(&self, ion: QubitId) -> Option<TrapId> {
        self.location.get(&ion).copied()
    }

    /// The trap an ion was originally mapped to.
    pub fn home_of(&self, ion: QubitId) -> Option<TrapId> {
        self.home.get(&ion).copied()
    }

    /// Returns `true` if the ion is currently outside its home trap.
    pub fn is_visitor(&self, ion: QubitId) -> bool {
        self.trap_of(ion) != self.home_of(ion)
    }

    /// The ordered ion chain of a trap.
    pub fn chain(&self, trap: TrapId) -> &[QubitId] {
        self.chains.get(&trap).map(|c| c.as_slice()).unwrap_or(&[])
    }

    /// Number of ions currently in a trap.
    pub fn occupancy(&self, trap: TrapId) -> usize {
        self.chain(trap).len()
    }

    /// The capacity of a trap.
    pub fn capacity(&self, trap: TrapId) -> usize {
        self.capacity.get(&trap).copied().unwrap_or(0)
    }

    /// Free ion slots in a trap.
    pub fn free_slots(&self, trap: TrapId) -> usize {
        self.capacity(trap).saturating_sub(self.occupancy(trap))
    }

    /// The position of an ion within its trap's chain.
    pub fn chain_position(&self, ion: QubitId) -> Option<usize> {
        let trap = self.trap_of(ion)?;
        self.chain(trap).iter().position(|&q| q == ion)
    }

    /// Number of neighbour swaps needed to bring an ion to the nearest end of
    /// its chain (so it can be split out).
    pub fn swaps_to_chain_end(&self, ion: QubitId) -> usize {
        match (self.trap_of(ion), self.chain_position(ion)) {
            (Some(trap), Some(pos)) => {
                let len = self.occupancy(trap);
                pos.min(len - 1 - pos)
            }
            _ => 0,
        }
    }

    /// Swaps an ion one position towards the nearest end of its chain,
    /// returning the neighbour it swapped with, or `None` if it is already at
    /// an end.
    pub fn swap_towards_end(&mut self, ion: QubitId) -> Option<QubitId> {
        let trap = self.trap_of(ion)?;
        let chain = self.chains.get_mut(&trap)?;
        let pos = chain.iter().position(|&q| q == ion)?;
        let len = chain.len();
        if pos == 0 || pos == len - 1 {
            return None;
        }
        let towards_front = pos < len - 1 - pos;
        let neighbour_pos = if towards_front { pos - 1 } else { pos + 1 };
        let neighbour = chain[neighbour_pos];
        chain.swap(pos, neighbour_pos);
        Some(neighbour)
    }

    /// Removes an ion from its trap (it enters a transport segment).
    ///
    /// # Panics
    ///
    /// Panics if the ion is not currently in a trap.
    pub fn remove_ion(&mut self, ion: QubitId) -> TrapId {
        let trap = self.trap_of(ion).expect("ion must be in a trap");
        let chain = self.chains.get_mut(&trap).expect("trap chain exists");
        chain.retain(|&q| q != ion);
        self.location.remove(&ion);
        trap
    }

    /// Inserts an ion at the end of a trap's chain (after a merge).
    ///
    /// # Panics
    ///
    /// Panics if the trap is already at capacity.
    pub fn insert_ion(&mut self, trap: TrapId, ion: QubitId) {
        assert!(
            self.free_slots(trap) > 0,
            "trap {trap} is full; cannot merge {ion}"
        );
        self.chains.entry(trap).or_default().push(ion);
        self.location.insert(ion, trap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map_qubits;
    use qccd_qec::repetition_code;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    fn setup() -> (Device, DeviceState) {
        let layout = repetition_code(3);
        let device = Device::linear(5, 3);
        let mapping = map_qubits(&layout, &device).unwrap();
        let state = DeviceState::new(&device, &mapping);
        (device, state)
    }

    #[test]
    fn initial_state_matches_mapping() {
        let (_, state) = setup();
        let total: usize = (0..5).map(|i| state.occupancy(TrapId(i))).sum();
        assert_eq!(total, 5);
        for i in 0..5 {
            assert!(state.trap_of(q(i)).is_some());
            assert!(!state.is_visitor(q(i)));
        }
    }

    #[test]
    fn remove_and_insert_round_trip() {
        let (_, mut state) = setup();
        let ion = q(0);
        let from = state.remove_ion(ion);
        assert_eq!(state.trap_of(ion), None);
        assert!(state.free_slots(from) > 0);
        // Move it somewhere with space.
        let dest = (0..5)
            .map(TrapId)
            .find(|&t| t != from && state.free_slots(t) > 0)
            .unwrap();
        state.insert_ion(dest, ion);
        assert_eq!(state.trap_of(ion), Some(dest));
        assert!(state.is_visitor(ion));
        assert_eq!(state.home_of(ion), Some(from));
    }

    #[test]
    fn swaps_to_chain_end_counts_distance_to_nearest_end() {
        let layout = repetition_code(4);
        let device = Device::single_chain(10);
        let mapping = map_qubits(&layout, &device).unwrap();
        let state = DeviceState::new(&device, &mapping);
        let chain = state.chain(TrapId(0)).to_vec();
        assert_eq!(chain.len(), 7);
        assert_eq!(state.swaps_to_chain_end(chain[0]), 0);
        assert_eq!(state.swaps_to_chain_end(chain[6]), 0);
        assert_eq!(state.swaps_to_chain_end(chain[3]), 3);
        assert_eq!(state.swaps_to_chain_end(chain[1]), 1);
    }

    #[test]
    fn swap_towards_end_moves_one_step() {
        let layout = repetition_code(4);
        let device = Device::single_chain(10);
        let mapping = map_qubits(&layout, &device).unwrap();
        let mut state = DeviceState::new(&device, &mapping);
        let chain = state.chain(TrapId(0)).to_vec();
        let middle = chain[3];
        let before = state.swaps_to_chain_end(middle);
        let neighbour = state.swap_towards_end(middle).unwrap();
        assert_ne!(neighbour, middle);
        assert_eq!(state.swaps_to_chain_end(middle), before - 1);
        // An end ion cannot swap further.
        let chain = state.chain(TrapId(0)).to_vec();
        assert_eq!(state.swap_towards_end(chain[0]), None);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn inserting_into_full_trap_panics() {
        let (_, mut state) = setup();
        // Fill one trap to capacity (3), then try to over-fill it.
        let target = TrapId(2);
        let movers: Vec<QubitId> = (0..5)
            .map(q)
            .filter(|&ion| state.trap_of(ion) != Some(target))
            .collect();
        let mut moved = 0;
        for ion in movers {
            if state.free_slots(target) == 0 {
                break;
            }
            state.remove_ion(ion);
            state.insert_ion(target, ion);
            moved += 1;
        }
        assert!(moved >= 1);
        assert_eq!(state.free_slots(target), 0);
        let extra = (0..5)
            .map(q)
            .find(|&ion| state.trap_of(ion).is_some() && state.trap_of(ion) != Some(target))
            .unwrap();
        state.remove_ion(extra);
        state.insert_ion(target, extra);
    }
}
