//! Resource-constrained scheduling (§4.4 of the paper).
//!
//! The scheduler turns the router's operation stream into a timed execution
//! schedule. Every operation occupies a set of exclusive resources (its trap,
//! its ions, the segment or junction it moves through, and — under WISE
//! wiring — the shared transport controller) for its whole duration.
//! Operations are released in routed order per resource, which preserves the
//! happens-before relation constructed during routing, while operations on
//! disjoint resources (different traps, different transport paths) overlap
//! freely. The resulting makespan is the elapsed time metric used throughout
//! the evaluation.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use qccd_circuit::QubitId;
use qccd_hardware::{OperationTimes, WiringMethod};

use crate::{Resource, RoutedOp, RoutedProgram};

/// One operation with its assigned execution window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledOp {
    /// The operation.
    pub op: RoutedOp,
    /// Start time in microseconds.
    pub start_us: f64,
    /// End time in microseconds.
    pub end_us: f64,
}

impl ScheduledOp {
    /// Duration of the operation.
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// A timed execution schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schedule {
    /// Scheduled operations, in routed order.
    pub ops: Vec<ScheduledOp>,
    /// Total elapsed time (the latest end time).
    pub makespan_us: f64,
    /// Number of ion-reconfiguration operations.
    pub movement_ops: usize,
    /// Total time spent in ion reconfiguration (summed over operations).
    pub movement_time_us: f64,
}

impl Schedule {
    /// The schedule's operations sorted by start time (ties broken by routed
    /// order), which is the order in which the noise-annotation pass walks
    /// the execution.
    pub fn ops_in_time_order(&self) -> Vec<&ScheduledOp> {
        let mut indexed: Vec<(usize, &ScheduledOp)> = self.ops.iter().enumerate().collect();
        indexed.sort_by(|(ia, a), (ib, b)| {
            a.start_us
                .partial_cmp(&b.start_us)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ia.cmp(ib))
        });
        indexed.into_iter().map(|(_, op)| op).collect()
    }

    /// Total busy time of one qubit (time covered by gates, swaps and
    /// transport involving it).
    pub fn qubit_busy_us(&self, qubit: QubitId) -> f64 {
        self.ops
            .iter()
            .filter(|s| s.op.ions().contains(&qubit))
            .map(|s| s.duration_us())
            .sum()
    }

    /// Average number of operations executing concurrently (total op time
    /// divided by makespan); a diagnostic for how much parallelism the
    /// architecture exposes.
    pub fn mean_parallelism(&self) -> f64 {
        if self.makespan_us <= 0.0 {
            return 0.0;
        }
        let total: f64 = self.ops.iter().map(|s| s.duration_us()).sum();
        total / self.makespan_us
    }
}

/// Builds the execution schedule for a routed program.
pub fn schedule(program: &RoutedProgram, times: &OperationTimes, wiring: WiringMethod) -> Schedule {
    let mut resource_free: HashMap<Resource, f64> = HashMap::new();
    let mut ops = Vec::with_capacity(program.ops.len());
    let mut makespan: f64 = 0.0;
    let mut movement_ops = 0usize;
    let mut movement_time = 0.0;

    for op in &program.ops {
        let duration = op.duration_us(times, wiring);
        let resources = op.resources(wiring);
        let start = resources
            .iter()
            .map(|r| resource_free.get(r).copied().unwrap_or(0.0))
            .fold(0.0, f64::max);
        let end = start + duration;
        for r in resources {
            resource_free.insert(r, end);
        }
        if op.is_movement() {
            movement_ops += 1;
            movement_time += duration;
        }
        makespan = makespan.max(end);
        ops.push(ScheduledOp {
            op: op.clone(),
            start_us: start,
            end_us: end,
        });
    }

    Schedule {
        ops,
        makespan_us: makespan,
        movement_ops,
        movement_time_us: movement_time,
    }
}

/// Verifies that no two operations sharing a resource overlap in time;
/// returns a description of the first violation. Exposed for tests and
/// debugging.
pub fn check_resource_exclusivity(schedule: &Schedule, wiring: WiringMethod) -> Result<(), String> {
    let mut per_resource: HashMap<Resource, Vec<(f64, f64)>> = HashMap::new();
    for s in &schedule.ops {
        for r in s.op.resources(wiring) {
            per_resource
                .entry(r)
                .or_default()
                .push((s.start_us, s.end_us));
        }
    }
    for (resource, mut intervals) in per_resource {
        intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for pair in intervals.windows(2) {
            if pair[1].0 < pair[0].1 - 1e-9 {
                return Err(format!(
                    "resource {resource:?} has overlapping operations: {:?} and {:?}",
                    pair[0], pair[1]
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::Instruction;
    use qccd_hardware::{MovementKind, SegmentId, TrapId};

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    fn gate(i: u32, trap: u32) -> RoutedOp {
        RoutedOp::Gate {
            instruction: Instruction::H(q(i)),
            trap: TrapId(trap),
            chain_len: 1,
        }
    }

    #[test]
    fn independent_ops_run_in_parallel() {
        let program = RoutedProgram {
            ops: vec![gate(0, 0), gate(1, 1), gate(2, 2)],
        };
        let times = OperationTimes::paper_defaults();
        let s = schedule(&program, &times, WiringMethod::Standard);
        assert_eq!(
            s.makespan_us, 10.0,
            "three parallel Hadamards take one H time"
        );
        assert!(s.ops.iter().all(|o| o.start_us == 0.0));
        assert!(check_resource_exclusivity(&s, WiringMethod::Standard).is_ok());
    }

    #[test]
    fn same_trap_ops_serialize() {
        let program = RoutedProgram {
            ops: vec![gate(0, 0), gate(1, 0), gate(2, 0)],
        };
        let times = OperationTimes::paper_defaults();
        let s = schedule(&program, &times, WiringMethod::Standard);
        assert_eq!(s.makespan_us, 30.0);
        assert_eq!(s.ops[2].start_us, 20.0);
    }

    #[test]
    fn same_ion_ops_serialize_across_traps() {
        // The same ion cannot be gated in two traps at once (and in practice
        // never is — this guards the dependency semantics).
        let program = RoutedProgram {
            ops: vec![gate(0, 0), gate(0, 1)],
        };
        let times = OperationTimes::paper_defaults();
        let s = schedule(&program, &times, WiringMethod::Standard);
        assert_eq!(s.ops[1].start_us, 10.0);
    }

    #[test]
    fn wise_serialises_transport_globally() {
        let hop = |seg: u32, ion: u32| RoutedOp::Movement {
            kind: MovementKind::Shuttle,
            ion: q(ion),
            trap: None,
            junction: None,
            segment: SegmentId(seg),
        };
        let program = RoutedProgram {
            ops: vec![hop(0, 0), hop(1, 1)],
        };
        let times = OperationTimes::paper_defaults();
        let standard = schedule(&program, &times, WiringMethod::Standard);
        let wise = schedule(&program, &times, WiringMethod::Wise);
        assert_eq!(standard.makespan_us, 5.0, "different segments overlap");
        assert_eq!(wise.makespan_us, 10.0, "WISE serialises transport");
    }

    #[test]
    fn movement_statistics() {
        let program = RoutedProgram {
            ops: vec![
                gate(0, 0),
                RoutedOp::Movement {
                    kind: MovementKind::Split,
                    ion: q(0),
                    trap: Some(TrapId(0)),
                    junction: None,
                    segment: SegmentId(0),
                },
                RoutedOp::Movement {
                    kind: MovementKind::Merge,
                    ion: q(0),
                    trap: Some(TrapId(1)),
                    junction: None,
                    segment: SegmentId(0),
                },
            ],
        };
        let times = OperationTimes::paper_defaults();
        let s = schedule(&program, &times, WiringMethod::Standard);
        assert_eq!(s.movement_ops, 2);
        assert_eq!(s.movement_time_us, 160.0);
        assert!(s.qubit_busy_us(q(0)) > 0.0);
        assert!(s.mean_parallelism() > 0.0);
    }

    #[test]
    fn time_order_breaks_ties_by_routed_order() {
        let program = RoutedProgram {
            ops: vec![gate(0, 0), gate(1, 1)],
        };
        let times = OperationTimes::paper_defaults();
        let s = schedule(&program, &times, WiringMethod::Standard);
        let ordered = s.ops_in_time_order();
        assert_eq!(ordered.len(), 2);
        assert_eq!(ordered[0].op, s.ops[0].op);
    }
}
