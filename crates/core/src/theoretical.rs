//! Theoretical bounds on elapsed time and routing effort.
//!
//! The paper validates its compiler against hand-optimised mappings
//! (Table 2) and frames its elapsed-time results between two bounds
//! (Figure 9): a *lower bound* corresponding to complete parallelism with no
//! ion reconfiguration, and an *upper bound* corresponding to complete
//! serialisation of every operation in a single trap. This module computes
//! those bounds analytically from the code structure and the timing model,
//! plus a simple lower bound on the number of routing operations implied by a
//! mapping.

use std::collections::HashMap;

use qccd_circuit::{native, QubitId};
use qccd_hardware::{OperationTimes, TopologyKind};
use qccd_qec::{parity_check_round, CodeLayout};

use crate::QubitMapping;

/// Lower bound on the time of one parity-check round: every trap works in
/// parallel and no ion ever moves, so the round cannot be faster than the
/// busiest single qubit (its gates are serialised by data dependence).
pub fn parallel_round_lower_bound_us(layout: &CodeLayout, times: &OperationTimes) -> f64 {
    let round = parity_check_round(layout);
    let mut per_qubit: HashMap<QubitId, f64> = HashMap::new();
    for instruction in round.iter() {
        let duration: f64 = native::decompose(instruction)
            .iter()
            .map(|op| times.gate_duration_us(op.kind()))
            .sum();
        for q in instruction.qubits() {
            *per_qubit.entry(q).or_insert(0.0) += duration;
        }
    }
    per_qubit.values().copied().fold(0.0, f64::max)
}

/// Upper bound on the time of one parity-check round: every operation of the
/// round executes serially (the single-ion-chain / monolithic configuration).
pub fn serial_round_upper_bound_us(layout: &CodeLayout, times: &OperationTimes) -> f64 {
    let round = parity_check_round(layout);
    round
        .iter()
        .flat_map(native::decompose)
        .map(|op| times.gate_duration_us(op.kind()))
        .sum()
}

/// Lower bound on the number of routing operations per parity-check round
/// implied by a mapping: every (ancilla, data) interaction whose endpoints
/// live in different traps requires the ancilla to leave one trap and enter
/// another — at least a split, a shuttle and a merge (3 primitives) — and
/// consecutive interactions in the same destination trap cannot share the
/// visit because the parity-check schedule interleaves them.
pub fn min_routing_ops_per_round(layout: &CodeLayout, mapping: &QubitMapping) -> usize {
    let mut cross_pairs = 0usize;
    for stab in layout.stabilizers() {
        let ancilla_trap = mapping.trap_of(stab.ancilla);
        let mut visited_traps = Vec::new();
        for data in stab.data_support() {
            let data_trap = mapping.trap_of(data);
            if data_trap != ancilla_trap {
                // Distinct destination traps each need their own visit.
                if !visited_traps.contains(&data_trap) {
                    visited_traps.push(data_trap);
                    cross_pairs += 1;
                }
            }
        }
    }
    3 * cross_pairs
}

/// Minimum time for one trap-to-adjacent-trap hop under the given topology
/// (used to sanity-check compiled schedules in tests and reports).
pub fn min_hop_time_us(kind: TopologyKind, times: &OperationTimes) -> f64 {
    match kind {
        // Linear devices connect traps directly: split + shuttle + merge.
        TopologyKind::Linear => times.direct_hop_us(),
        // Grid and switch devices route through a junction.
        TopologyKind::Grid | TopologyKind::Switch => times.junction_hop_us(),
    }
}

/// Movement-time lower bound for one round: the minimum number of visits
/// (see [`min_routing_ops_per_round`]) each paying at least one hop.
pub fn min_movement_time_per_round_us(
    layout: &CodeLayout,
    mapping: &QubitMapping,
    kind: TopologyKind,
    times: &OperationTimes,
) -> f64 {
    let visits = min_routing_ops_per_round(layout, mapping) / 3;
    visits as f64 * min_hop_time_us(kind, times)
}

/// Summary of all bounds for one configuration; convenient for the Table-2
/// style validation report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoreticalBounds {
    /// Fully-parallel, no-movement round-time lower bound.
    pub parallel_lower_bound_us: f64,
    /// Fully-serial round-time upper bound.
    pub serial_upper_bound_us: f64,
    /// Minimum routing operations per round for the given mapping.
    pub min_routing_ops: usize,
    /// Minimum movement time per round for the given mapping.
    pub min_movement_time_us: f64,
}

/// Computes every bound for a code on a mapped device.
pub fn bounds(
    layout: &CodeLayout,
    mapping: &QubitMapping,
    kind: TopologyKind,
    times: &OperationTimes,
) -> TheoreticalBounds {
    TheoreticalBounds {
        parallel_lower_bound_us: parallel_round_lower_bound_us(layout, times),
        serial_upper_bound_us: serial_round_upper_bound_us(layout, times),
        min_routing_ops: min_routing_ops_per_round(layout, mapping),
        min_movement_time_us: min_movement_time_per_round_us(layout, mapping, kind, times),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map_qubits;
    use qccd_hardware::{Device, TopologySpec};
    use qccd_qec::{repetition_code, rotated_surface_code};

    #[test]
    fn parallel_bound_is_below_serial_bound() {
        let times = OperationTimes::paper_defaults();
        for layout in [
            repetition_code(5),
            rotated_surface_code(3),
            rotated_surface_code(5),
        ] {
            let lower = parallel_round_lower_bound_us(&layout, &times);
            let upper = serial_round_upper_bound_us(&layout, &times);
            assert!(lower > 0.0);
            assert!(
                upper > lower,
                "{}: {upper} must exceed {lower}",
                layout.name()
            );
        }
    }

    #[test]
    fn parallel_bound_is_constant_in_distance() {
        // The per-ancilla work of the rotated surface code does not depend on
        // the distance, so the lower bound must be distance-independent.
        let times = OperationTimes::paper_defaults();
        let b3 = parallel_round_lower_bound_us(&rotated_surface_code(3), &times);
        let b7 = parallel_round_lower_bound_us(&rotated_surface_code(7), &times);
        assert_eq!(b3, b7);
    }

    #[test]
    fn serial_bound_grows_quadratically_with_distance() {
        let times = OperationTimes::paper_defaults();
        let b3 = serial_round_upper_bound_us(&rotated_surface_code(3), &times);
        let b6 = serial_round_upper_bound_us(&rotated_surface_code(6), &times);
        assert!(b6 > 3.0 * b3);
    }

    #[test]
    fn single_trap_mapping_needs_no_routing() {
        let layout = repetition_code(4);
        let device = Device::single_chain(layout.num_qubits());
        let mapping = map_qubits(&layout, &device).unwrap();
        assert_eq!(min_routing_ops_per_round(&layout, &mapping), 0);
        assert_eq!(
            min_movement_time_per_round_us(
                &layout,
                &mapping,
                TopologyKind::Linear,
                &OperationTimes::paper_defaults()
            ),
            0.0
        );
    }

    #[test]
    fn capacity_two_mapping_requires_many_visits() {
        let layout = rotated_surface_code(3);
        let device = TopologySpec::new(TopologyKind::Grid, 2).build_for_qubits(layout.num_qubits());
        let mapping = map_qubits(&layout, &device).unwrap();
        let min_ops = min_routing_ops_per_round(&layout, &mapping);
        // With one qubit per trap, almost every one of the 4·(d²−1)/2-ish
        // interactions is cross-trap.
        assert!(min_ops >= 3 * 20, "expected many visits, got {min_ops}");
    }

    #[test]
    fn hop_times_reflect_topology() {
        let times = OperationTimes::paper_defaults();
        assert!(
            min_hop_time_us(TopologyKind::Grid, &times)
                > min_hop_time_us(TopologyKind::Linear, &times)
        );
    }

    #[test]
    fn bounds_struct_is_consistent() {
        let times = OperationTimes::paper_defaults();
        let layout = rotated_surface_code(3);
        let device = TopologySpec::new(TopologyKind::Grid, 2).build_for_qubits(layout.num_qubits());
        let mapping = map_qubits(&layout, &device).unwrap();
        let b = bounds(&layout, &mapping, TopologyKind::Grid, &times);
        assert!(b.parallel_lower_bound_us < b.serial_upper_bound_us);
        assert_eq!(b.min_routing_ops % 3, 0);
        assert!(b.min_movement_time_us > 0.0);
    }
}
