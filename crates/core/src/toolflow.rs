//! The design-space exploration toolflow (Figure 2 of the paper).
//!
//! Given a candidate architecture and a candidate QEC code, the toolflow
//! compiles the workload with the topology-aware compiler, applies the
//! performance / noise / resource models, and reports the evaluation metrics:
//! QEC round time, shot time, movement operations, electrode / DAC / data
//! rate / power requirements and (optionally) the Monte-Carlo logical error
//! rate with below-threshold extrapolation.

use serde::{Deserialize, Serialize};

use qccd_decoder::{
    estimate_logical_error_rate_report, fit_lambda_weighted, CacheStats, DecoderKind,
    EstimatorConfig, LambdaFit, LogicalErrorEstimate, SweepEngine,
};
use qccd_hardware::estimate_resources;
use qccd_qec::{rotated_surface_code, CodeLayout, MemoryBasis};

use crate::{ArchitectureConfig, CompileError, CompiledProgram, Compiler, Metrics};

/// One declarative evaluation point: everything [`Toolflow::run_spec`] needs
/// to produce a [`Metrics`] — the architecture under test, the workload
/// distance, and the full sampling/decoding configuration. This is the thin
/// execution contract the `qccd-bench` experiment registry (and its
/// `artifacts` CLI) lowers each spec point onto.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToolflowSpec {
    /// The candidate architecture.
    pub arch: ArchitectureConfig,
    /// Rotated-surface-code distance of the memory workload.
    pub distance: usize,
    /// Monte-Carlo shots (ignored when `estimate_ler` is `false`).
    pub shots: usize,
    /// Sampling seed.
    pub seed: u64,
    /// Decoder for logical error rate estimation.
    pub decoder: DecoderKind,
    /// Monte-Carlo pipeline configuration.
    pub estimator: EstimatorConfig,
    /// Whether to run the Monte-Carlo logical error rate estimate.
    pub estimate_ler: bool,
}

impl ToolflowSpec {
    /// A spec with the default sampling settings of [`Toolflow::new`],
    /// estimating the LER.
    pub fn new(arch: ArchitectureConfig, distance: usize) -> Self {
        let defaults = Toolflow::new(arch);
        ToolflowSpec {
            arch: defaults.arch,
            distance,
            shots: defaults.shots,
            seed: defaults.seed,
            decoder: defaults.decoder,
            estimator: defaults.estimator,
            estimate_ler: true,
        }
    }
}

/// A [`Toolflow`] evaluation result: the paper's metrics plus the decoder
/// cache statistics of the Monte-Carlo run (when one ran).
///
/// The cache statistics are diagnostics, kept out of [`Metrics`] on
/// purpose: the word-triage counters are scheduling-invariant but the
/// hit/miss split can shift with worker scheduling, so they must not
/// participate in `Metrics` equality (see
/// [`EstimateReport`](qccd_decoder::EstimateReport)).
#[derive(Debug, Clone, PartialEq)]
pub struct ToolflowReport {
    /// The evaluation metrics ([`Toolflow::evaluate`]'s return value).
    pub metrics: Metrics,
    /// Aggregate decoder cache statistics of the logical-error estimate
    /// (`None` when no estimate ran).
    pub decode_cache: Option<CacheStats>,
}

/// The end-to-end evaluation toolflow for one candidate architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Toolflow {
    /// The candidate architecture under evaluation.
    pub arch: ArchitectureConfig,
    /// Monte-Carlo shots per logical-error-rate estimate.
    pub shots: usize,
    /// Random seed for sampling.
    pub seed: u64,
    /// Decoder used for logical error rate estimation.
    pub decoder: DecoderKind,
    /// Monte-Carlo pipeline configuration (chunking, parallelism, early
    /// stopping) forwarded to the decoder crate's batch estimator.
    pub estimator: EstimatorConfig,
}

impl Toolflow {
    /// Creates a toolflow with default sampling settings (4,096 shots,
    /// union-find decoding, parallel batch estimation).
    pub fn new(arch: ArchitectureConfig) -> Self {
        Toolflow {
            arch,
            shots: 4_096,
            seed: 2026,
            decoder: DecoderKind::UnionFind,
            estimator: EstimatorConfig::default(),
        }
    }

    /// Overrides the number of Monte-Carlo shots.
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// Overrides the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the Monte-Carlo pipeline configuration.
    pub fn with_estimator_config(mut self, estimator: EstimatorConfig) -> Self {
        self.estimator = estimator;
        self
    }

    /// Builds the toolflow a [`ToolflowSpec`] describes.
    pub fn from_spec(spec: &ToolflowSpec) -> Self {
        Toolflow {
            arch: spec.arch.clone(),
            shots: spec.shots,
            seed: spec.seed,
            decoder: spec.decoder,
            estimator: spec.estimator,
        }
    }

    /// Evaluates one declarative spec point end to end (compile → model →
    /// optionally sample/decode). This is the entry point the experiment
    /// registry and the `artifacts` CLI lower every sweep point onto; it is
    /// exactly equivalent to building the toolflow by hand and calling
    /// [`Toolflow::evaluate`], so results are bit-identical to the
    /// imperative path.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`]s from the compiler.
    pub fn run_spec(spec: &ToolflowSpec) -> Result<Metrics, CompileError> {
        Toolflow::from_spec(spec).evaluate(spec.distance, spec.estimate_ler)
    }

    /// [`Toolflow::run_spec`] returning the full [`ToolflowReport`]
    /// (metrics plus the decoder cache statistics of the Monte-Carlo run).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`]s from the compiler.
    pub fn run_spec_report(spec: &ToolflowSpec) -> Result<ToolflowReport, CompileError> {
        Toolflow::from_spec(spec).evaluate_report(spec.distance, spec.estimate_ler)
    }

    /// Evaluates the architecture on the rotated surface code of the given
    /// distance (the paper's primary workload: a logical identity of `d`
    /// rounds).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`]s from the compiler.
    pub fn evaluate(&self, distance: usize, estimate_ler: bool) -> Result<Metrics, CompileError> {
        self.evaluate_report(distance, estimate_ler)
            .map(|report| report.metrics)
    }

    /// [`Toolflow::evaluate`] returning the metrics together with the
    /// decoder cache statistics of the Monte-Carlo run.
    ///
    /// Rotated-surface-code compiles are memoized in the process-wide
    /// [`compile_cache`](crate::compile_cache): every sweep point, spec and
    /// decode-service stream sharing this `(architecture, distance)` pair
    /// reuses the same compiled programs. Compilation is pure, so caching
    /// never changes the metrics.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`]s from the compiler.
    pub fn evaluate_report(
        &self,
        distance: usize,
        estimate_ler: bool,
    ) -> Result<ToolflowReport, CompileError> {
        let layout = rotated_surface_code(distance);
        let rounds = distance.max(1);
        let cache = crate::compile_cache::shared();
        let compiler = Compiler::new(self.arch.clone());
        // One round for the cycle-time and movement metrics.
        let round_program = cache.get_or_compile(
            &crate::compile_cache::rounds_key(&self.arch, distance, 1),
            || compiler.compile_rounds(&layout, 1),
        )?;
        // The full experiment for shot time and (optionally) the LER.
        let shot_program = cache.get_or_compile(
            &crate::compile_cache::memory_key(&self.arch, distance, rounds, MemoryBasis::Z),
            || compiler.compile_memory_experiment(&layout, rounds, MemoryBasis::Z),
        )?;
        Ok(self.report_from_programs(&layout, &round_program, &shot_program, estimate_ler))
    }

    /// Evaluates the architecture on an arbitrary code layout, running
    /// `rounds` rounds of parity checks for the logical-identity workload.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`]s from the compiler.
    pub fn evaluate_layout(
        &self,
        layout: &CodeLayout,
        rounds: usize,
        estimate_ler: bool,
    ) -> Result<Metrics, CompileError> {
        self.evaluate_layout_report(layout, rounds, estimate_ler)
            .map(|report| report.metrics)
    }

    /// [`Toolflow::evaluate_layout`] returning the full report.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`]s from the compiler.
    pub fn evaluate_layout_report(
        &self,
        layout: &CodeLayout,
        rounds: usize,
        estimate_ler: bool,
    ) -> Result<ToolflowReport, CompileError> {
        let compiler = Compiler::new(self.arch.clone());

        // One round for the cycle-time and movement metrics.
        let round_program = compiler.compile_rounds(layout, 1)?;
        // The full experiment for shot time and (optionally) the LER.
        let shot_program =
            compiler.compile_memory_experiment(layout, rounds.max(1), MemoryBasis::Z)?;
        Ok(self.report_from_programs(layout, &round_program, &shot_program, estimate_ler))
    }

    /// The model/estimate stage shared by the cached rotated-surface path
    /// ([`Toolflow::evaluate_report`]) and the arbitrary-layout path
    /// ([`Toolflow::evaluate_layout_report`]).
    fn report_from_programs(
        &self,
        layout: &CodeLayout,
        round_program: &CompiledProgram,
        shot_program: &CompiledProgram,
        estimate_ler: bool,
    ) -> ToolflowReport {
        let (logical_error, decode_cache) = if estimate_ler {
            let noisy = shot_program.to_noisy_circuit();
            let report = estimate_logical_error_rate_report(
                &noisy,
                self.shots,
                self.seed,
                self.decoder,
                &self.estimator,
            )
            .expect("compiled circuits carry consistent annotations");
            (Some(report.estimate), Some(report.cache))
        } else {
            (None, None)
        };

        let resources = estimate_resources(&round_program.device, self.arch.wiring);
        ToolflowReport {
            metrics: Metrics {
                architecture: self.arch.label(),
                code_distance: layout.distance(),
                num_physical_qubits: layout.num_qubits(),
                num_traps: round_program.device.num_traps(),
                num_junctions: round_program.device.num_junctions(),
                qec_round_time_us: round_program.elapsed_time_us(),
                shot_time_us: shot_program.elapsed_time_us(),
                movement_ops_per_round: round_program.movement_ops(),
                movement_time_per_round_us: round_program.movement_time_us(),
                resources,
                logical_error,
            },
            decode_cache,
        }
    }

    /// Estimates the logical error rate at each of the given distances,
    /// returning the full Monte-Carlo estimates (rate, standard error,
    /// shot/failure counts).
    ///
    /// Distances are sharded across an outer
    /// [`SweepEngine`](qccd_decoder::SweepEngine) worker pool composing with
    /// the estimator's inner chunk parallelism; each distance samples with
    /// the deterministic seed `sweep_seed(self.seed, index)`, so the result
    /// is a pure function of `(seed, distances)` regardless of thread
    /// counts.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CompileError`] (in distance order) from the
    /// compiler.
    pub fn logical_error_estimates(
        &self,
        distances: &[usize],
    ) -> Result<Vec<(usize, LogicalErrorEstimate)>, CompileError> {
        let engine = SweepEngine::new(self.seed);
        let outcomes = engine.run(distances, |task| {
            let toolflow = self.clone().with_seed(task.seed);
            toolflow
                .evaluate(*task.point, true)
                .map(|metrics| (*task.point, metrics.logical_error))
        });
        let mut points = Vec::with_capacity(distances.len());
        for outcome in outcomes {
            let (d, estimate) = outcome?;
            points.push((
                d,
                estimate.expect("evaluate(_, true) always estimates the LER"),
            ));
        }
        Ok(points)
    }

    /// Estimates the logical error rate at each of the given distances and
    /// returns the `(distance, per-shot LER)` points.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`]s from the compiler.
    pub fn logical_error_vs_distance(
        &self,
        distances: &[usize],
    ) -> Result<Vec<(usize, f64)>, CompileError> {
        Ok(self
            .logical_error_estimates(distances)?
            .into_iter()
            .map(|(d, estimate)| (d, estimate.logical_error_rate))
            .collect())
    }

    /// Fits the exponential suppression law to sampled logical error rates so
    /// that larger distances / lower targets can be projected, exactly as the
    /// paper does for its 10⁻⁹ feasibility analysis (Figure 10).
    ///
    /// The fit is weighted by each point's Monte-Carlo standard error (see
    /// [`fit_lambda_weighted`]), so early-stopped estimates of differing
    /// precision are combined correctly and the returned [`LambdaFit`]
    /// carries a confidence interval for Λ.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`]s from the compiler.
    pub fn projection(&self, distances: &[usize]) -> Result<Option<LambdaFit>, CompileError> {
        let points: Vec<(usize, f64, f64)> = self
            .logical_error_estimates(distances)?
            .into_iter()
            .map(|(d, estimate)| (d, estimate.logical_error_rate, estimate.std_error))
            .collect();
        Ok(fit_lambda_weighted(&points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_hardware::{TopologyKind, WiringMethod};

    #[test]
    fn evaluate_produces_consistent_metrics() {
        let toolflow = Toolflow::new(ArchitectureConfig::recommended(5.0)).with_shots(256);
        let metrics = toolflow.evaluate(3, false).unwrap();
        assert_eq!(metrics.code_distance, 3);
        assert_eq!(metrics.num_physical_qubits, 17);
        assert!(metrics.qec_round_time_us > 0.0);
        assert!(metrics.shot_time_us >= metrics.qec_round_time_us);
        assert!(metrics.movement_ops_per_round > 0);
        assert!(metrics.resources.total_electrodes > 0);
        assert!(metrics.logical_error.is_none());
        assert!(metrics.logical_clock_hz() > 0.0);
    }

    #[test]
    fn logical_error_estimation_runs_end_to_end() {
        let toolflow = Toolflow::new(ArchitectureConfig::recommended(10.0)).with_shots(512);
        let metrics = toolflow.evaluate(3, true).unwrap();
        let ler = metrics.logical_error_rate().unwrap();
        assert!((0.0..=1.0).contains(&ler));
    }

    #[test]
    fn grid_beats_linear_on_round_time() {
        // Linear devices with capacity 2 can exceed the router's congestion
        // handling for 2-D codes (see DESIGN.md limitations), so the
        // pessimistic linear case is evaluated at capacity 3.
        let grid = Toolflow::new(ArchitectureConfig::new(
            TopologyKind::Grid,
            2,
            WiringMethod::Standard,
            1.0,
        ));
        let linear = Toolflow::new(ArchitectureConfig::new(
            TopologyKind::Linear,
            3,
            WiringMethod::Standard,
            1.0,
        ));
        let g = grid.evaluate(3, false).unwrap();
        let l = linear.evaluate(3, false).unwrap();
        assert!(
            l.qec_round_time_us > 1.5 * g.qec_round_time_us,
            "linear ({}) should be much slower than grid ({})",
            l.qec_round_time_us,
            g.qec_round_time_us
        );
    }

    #[test]
    fn logical_error_estimates_are_deterministic_and_weighted_fit_runs() {
        let toolflow = Toolflow::new(ArchitectureConfig::recommended(5.0)).with_shots(256);
        let distances = [3usize, 5];
        let a = toolflow.logical_error_estimates(&distances).unwrap();
        let b = toolflow.logical_error_estimates(&distances).unwrap();
        assert_eq!(a.len(), 2);
        for ((da, ea), (db, eb)) in a.iter().zip(&b) {
            assert_eq!(da, db);
            assert_eq!((ea.shots, ea.failures), (eb.shots, eb.failures));
        }
        // Per-distance seeds differ from each other (sweep-derived).
        // The projection consumes the standard errors without panicking.
        let fit = toolflow.projection(&distances).unwrap();
        if let Some(fit) = fit {
            assert!(fit.log_slope_std_error.is_finite());
            let (lo, hi) = fit.lambda_confidence_interval(1.96);
            assert!(lo <= hi);
        }
    }

    #[test]
    fn run_spec_matches_imperative_toolflow() {
        let arch = ArchitectureConfig::recommended(5.0);
        let spec = ToolflowSpec {
            shots: 256,
            seed: 7,
            ..ToolflowSpec::new(arch.clone(), 3)
        };
        let from_spec = Toolflow::run_spec(&spec).unwrap();
        let imperative = Toolflow::new(arch)
            .with_shots(256)
            .with_seed(7)
            .evaluate(3, true)
            .unwrap();
        assert_eq!(from_spec, imperative);
        let ler = from_spec.logical_error.unwrap();
        assert_eq!(ler.shots, imperative.logical_error.unwrap().shots);
    }

    #[test]
    fn run_spec_report_carries_cache_statistics() {
        let arch = ArchitectureConfig::recommended(5.0);
        let spec = ToolflowSpec {
            shots: 256,
            seed: 7,
            ..ToolflowSpec::new(arch, 3)
        };
        let report = Toolflow::run_spec_report(&spec).unwrap();
        assert_eq!(report.metrics, Toolflow::run_spec(&spec).unwrap());
        let cache = report.decode_cache.expect("estimate ran");
        // 256 shots = 4 words, all triaged exactly once.
        assert_eq!(cache.words(), 4);
        assert_eq!(
            cache.quiet_words + cache.sparse_words + cache.dense_words,
            cache.words()
        );
        // Without an estimate there are no cache statistics.
        let compile_only = ToolflowSpec {
            estimate_ler: false,
            ..spec
        };
        let report = Toolflow::run_spec_report(&compile_only).unwrap();
        assert!(report.decode_cache.is_none());
        assert!(report.metrics.logical_error.is_none());
    }

    #[test]
    fn spec_defaults_mirror_toolflow_defaults() {
        let arch = ArchitectureConfig::recommended(1.0);
        let spec = ToolflowSpec::new(arch.clone(), 5);
        let toolflow = Toolflow::new(arch);
        assert_eq!(spec.shots, toolflow.shots);
        assert_eq!(spec.seed, toolflow.seed);
        assert_eq!(spec.decoder, toolflow.decoder);
        assert_eq!(spec.estimator, toolflow.estimator);
        assert_eq!(spec.distance, 5);
        assert!(spec.estimate_ler);
    }

    #[test]
    fn cached_and_uncached_compiles_produce_identical_metrics() {
        // evaluate_report routes through the shared program cache; the
        // uncached arbitrary-layout path must produce the same metrics.
        let toolflow = Toolflow::new(ArchitectureConfig::recommended(5.0)).with_shots(256);
        let cached = toolflow.evaluate(3, true).unwrap();
        let uncached = toolflow
            .evaluate_layout(&rotated_surface_code(3), 3, true)
            .unwrap();
        assert_eq!(cached, uncached);
        // A second cached evaluation is a pure replay.
        let again = toolflow.evaluate(3, true).unwrap();
        assert_eq!(cached, again);
        let stats = crate::compile_cache::shared().stats();
        assert!(
            stats.hits >= 2,
            "repeat evaluation hits the cache: {stats:?}"
        );
    }

    #[test]
    fn evaluate_layout_accepts_other_codes() {
        let toolflow = Toolflow::new(ArchitectureConfig::new(
            TopologyKind::Linear,
            3,
            WiringMethod::Standard,
            1.0,
        ))
        .with_shots(128);
        let layout = qccd_qec::repetition_code(5);
        let metrics = toolflow.evaluate_layout(&layout, 3, true).unwrap();
        assert_eq!(metrics.num_physical_qubits, 9);
        assert!(metrics.logical_error.is_some());
    }
}
