//! Property-based tests for the compilation pipeline.
//!
//! Random architecture points (topology, capacity, wiring, gate improvement)
//! and workloads are pushed through the full mapping → routing → scheduling
//! pipeline, and the hardware-level invariants the paper's §4.3 constraints
//! demand are checked on the result: capacity and exclusivity are never
//! violated, every gate of the input circuit is executed, and the schedule
//! is causally consistent.

use proptest::prelude::*;

use qccd_core::{
    check_resource_exclusivity, cluster_qubits_with_strategy, validate_clustering,
    ArchitectureConfig, ClusteringStrategy, Compiler,
};
use qccd_hardware::{TopologyKind, WiringMethod};
use qccd_qec::{parity_check_round, repetition_code, rotated_surface_code, CodeLayout};

fn topology() -> impl Strategy<Value = TopologyKind> {
    prop_oneof![
        Just(TopologyKind::Grid),
        Just(TopologyKind::Switch),
        Just(TopologyKind::Linear),
    ]
}

fn wiring() -> impl Strategy<Value = WiringMethod> {
    prop_oneof![Just(WiringMethod::Standard), Just(WiringMethod::Wise)]
}

/// A workload small enough to compile quickly but large enough to force ion
/// movement: a repetition code on linear devices, the rotated surface code
/// otherwise.
fn workload_for(topology: TopologyKind) -> CodeLayout {
    match topology {
        TopologyKind::Linear => repetition_code(4),
        _ => rotated_surface_code(3),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn compiled_schedules_respect_the_hardware_constraints(
        topology in topology(),
        capacity in 2usize..7,
        wiring in wiring(),
        improvement in prop_oneof![Just(1.0f64), Just(5.0), Just(10.0)],
    ) {
        let layout = workload_for(topology);
        let arch = ArchitectureConfig::new(topology, capacity, wiring, improvement);
        let compiler = Compiler::new(arch);
        let program = match compiler.compile_rounds(&layout, 1) {
            Ok(program) => program,
            // Some extreme corners (e.g. capacity-2 linear devices hosting a
            // 2-D code) are legitimately unroutable; that is a documented
            // limitation, not an invariant violation.
            Err(_) => return Ok(()),
        };

        // Every gate of the input circuit is executed exactly once.
        prop_assert_eq!(
            program.routed.num_gate_ops(),
            parity_check_round(&layout).len()
        );

        // The mapping is a partition of the code's qubits within capacity.
        prop_assert_eq!(program.mapping.validate(), Ok(()));

        // No two operations overlap on the same trap, segment, junction or
        // ion, and WISE's global transport serialisation is honoured.
        prop_assert_eq!(check_resource_exclusivity(&program.schedule, wiring), Ok(()));

        // The makespan bounds every per-qubit busy time and is positive.
        prop_assert!(program.elapsed_time_us() > 0.0);
        let stream = program.schedule.ops_in_time_order();
        for op in stream {
            prop_assert!(op.start_us >= 0.0);
            prop_assert!(op.start_us + op.duration_us() <= program.elapsed_time_us() + 1e-6);
        }

        // Movement accounting is consistent: no movement operations means no
        // movement time, and movement time never exceeds the serial sum of
        // all operation durations.
        prop_assert!(program.movement_time_us() <= program.elapsed_time_us() * stream_len(&program) as f64);
        if program.movement_ops() == 0 {
            prop_assert_eq!(program.movement_time_us(), 0.0);
        }
    }

    #[test]
    fn clustering_strategies_always_produce_valid_partitions(
        distance in 2usize..5,
        cluster_size in 1usize..9,
        round_robin in any::<bool>(),
    ) {
        let layout = rotated_surface_code(distance);
        let strategy = if round_robin {
            ClusteringStrategy::RoundRobin
        } else {
            ClusteringStrategy::Geometric
        };
        let clusters = cluster_qubits_with_strategy(&layout, cluster_size, strategy);
        prop_assert_eq!(validate_clustering(&layout, &clusters, cluster_size), Ok(()));
        prop_assert_eq!(clusters.len(), layout.num_qubits().div_ceil(cluster_size));
    }

    #[test]
    fn higher_gate_improvement_never_changes_the_schedule(
        capacity in 2usize..5,
    ) {
        // Gate improvement scales error rates, not gate times: the compiled
        // schedule (makespan, movement ops) must be identical across
        // improvement factors for the same architecture.
        let layout = rotated_surface_code(3);
        let base = Compiler::new(ArchitectureConfig::new(
            TopologyKind::Grid,
            capacity,
            WiringMethod::Standard,
            1.0,
        ))
        .compile_rounds(&layout, 1)
        .unwrap();
        let improved = Compiler::new(ArchitectureConfig::new(
            TopologyKind::Grid,
            capacity,
            WiringMethod::Standard,
            10.0,
        ))
        .compile_rounds(&layout, 1)
        .unwrap();
        prop_assert_eq!(base.elapsed_time_us(), improved.elapsed_time_us());
        prop_assert_eq!(base.movement_ops(), improved.movement_ops());
    }
}

/// Helper: number of scheduled operations (used only to form a loose bound).
fn stream_len(program: &qccd_core::CompiledProgram) -> usize {
    program.schedule.ops_in_time_order().len().max(1)
}
