//! Batch decoding types: bit-packed predictions and reusable scratch.
//!
//! The batch decode path works on whole [`SyndromeChunk`]s (bit-packed
//! detector planes produced by `qccd_sim`'s chunked sampler) and returns a
//! bit-packed [`PredictionChunk`]. All per-shot working state lives in a
//! [`DecodeScratch`] that is reused from shot to shot and chunk to chunk, so
//! the hot loop performs no allocations.

use std::cmp::Ordering;

pub use qccd_sim::SyndromeChunk;

use qccd_sim::BitPlanes;

use crate::memo::SyndromeMemo;
use crate::scratch::{EpochVec, VecPool};
use crate::{CacheStats, MemoConfig};

/// Bit-packed observable-flip predictions for one chunk of shots.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionChunk {
    num_shots: usize,
    num_observables: usize,
    words: usize,
    planes: BitPlanes,
}

impl PredictionChunk {
    /// An all-`false` prediction for `num_shots` shots.
    pub fn zeroed(num_observables: usize, num_shots: usize) -> Self {
        assert!(num_shots > 0, "need at least one shot");
        let words = num_shots.div_ceil(64);
        PredictionChunk {
            num_shots,
            num_observables,
            words,
            planes: BitPlanes::zeroed(num_observables, words),
        }
    }

    /// Number of shots covered.
    pub fn num_shots(&self) -> usize {
        self.num_shots
    }

    /// Number of observables predicted per shot.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Words per bit-plane.
    pub fn words(&self) -> usize {
        self.words
    }

    /// The packed prediction plane of one observable.
    pub fn plane(&self, observable: usize) -> &[u64] {
        self.planes.plane(observable)
    }

    /// Whether the decoder predicted a flip of `observable` in `shot`.
    pub fn predicted(&self, shot: usize, observable: usize) -> bool {
        self.planes.bit(observable, shot)
    }

    /// Marks `observable` as flipped in `shot`.
    pub fn set(&mut self, observable: usize, shot: usize) {
        self.planes.plane_mut(observable)[shot / 64] |= 1u64 << (shot % 64);
    }

    /// Unpacks one shot's prediction (convenience for tests and the
    /// per-shot adapter).
    pub fn shot_prediction(&self, shot: usize) -> Vec<bool> {
        (0..self.num_observables)
            .map(|o| self.predicted(shot, o))
            .collect()
    }
}

/// Min-heap entry for the Dijkstra searches of the matching decoders.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct HeapEntry {
    pub(crate) distance: f64,
    pub(crate) node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; distances are finite by construction.
        other
            .distance
            .partial_cmp(&self.distance)
            .unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Union-find cluster state of one node, packed so `find` / `union` touch a
/// single epoch-stamped slot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeState {
    /// Union-find parent (sentinel `u32::MAX` = self).
    pub(crate) parent: u32,
    pub(crate) rank: u8,
    /// Defect parity of the cluster rooted at this node.
    pub(crate) parity: bool,
    /// Whether the cluster rooted here touches the virtual boundary.
    pub(crate) boundary: bool,
}

const FRESH_NODE: NodeState = NodeState {
    parent: u32::MAX,
    rank: 0,
    parity: false,
    boundary: false,
};

/// Growth state of one edge, packed into a single slot. `multiplicity` is
/// per-round (validated against `round`), `support` / `grown` persist for
/// the whole shot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EdgeState {
    /// Growth units applied so far this shot.
    pub(crate) support: u32,
    /// Number of active clusters growing this edge in round `round`.
    pub(crate) multiplicity: u16,
    /// Round stamp validating `multiplicity` and `last_root`.
    pub(crate) round: u32,
    /// Root of the last cluster that counted this edge in round `round`
    /// (deduplicates repeated frontier entries without sorting).
    pub(crate) last_root: u32,
    pub(crate) grown: bool,
}

const FRESH_EDGE: EdgeState = EdgeState {
    support: 0,
    multiplicity: 0,
    round: 0,
    last_root: u32::MAX,
    grown: false,
};

/// Peeling-forest state of one node; a stale slot means "not visited".
#[derive(Debug, Clone, Copy)]
pub(crate) struct PeelState {
    /// Incoming tree edge (sentinel `u32::MAX` = none / forest root).
    pub(crate) parent_edge: u32,
    /// Incoming tree parent (sentinel `u32::MAX` = self).
    pub(crate) parent_node: u32,
}

const FRESH_PEEL: PeelState = PeelState {
    parent_edge: u32::MAX,
    parent_node: u32::MAX,
};

/// Per-shot working state of the union-find decoder.
#[derive(Debug, Clone)]
pub(crate) struct UnionFindScratch {
    pub(crate) nodes: EpochVec<NodeState>,
    /// Frontier edge lists per cluster root.
    pub(crate) frontier: VecPool,
    pub(crate) defect: EpochVec<bool>,
    pub(crate) edges: EpochVec<EdgeState>,
    /// Growth round counter within the current shot (validates
    /// [`EdgeState::multiplicity`]).
    pub(crate) round: u32,
    /// Frontier edges eligible to grow this round.
    pub(crate) growth_candidates: Vec<usize>,
    /// Edges fully grown this shot.
    pub(crate) grown_edges: Vec<usize>,
    /// Per-node adjacency of the grown subgraph (built as edges complete),
    /// so peeling never scans the full decoding graph.
    pub(crate) peel_adjacency: VecPool,
    pub(crate) active: Vec<usize>,
    /// Edges completed this round, sorted before merging so the merge order
    /// is canonical (frontiers themselves are kept unsorted).
    pub(crate) merges: Vec<usize>,
    // Peeling state: a fresh `peel` slot doubles as the visited flag.
    pub(crate) peel: EpochVec<PeelState>,
    pub(crate) order: Vec<usize>,
    pub(crate) queue: std::collections::VecDeque<usize>,
    pub(crate) peel_roots: Vec<usize>,
}

impl Default for UnionFindScratch {
    fn default() -> Self {
        UnionFindScratch {
            nodes: EpochVec::new(FRESH_NODE),
            frontier: VecPool::default(),
            defect: EpochVec::new(false),
            edges: EpochVec::new(FRESH_EDGE),
            round: 0,
            growth_candidates: Vec::new(),
            grown_edges: Vec::new(),
            peel_adjacency: VecPool::default(),
            active: Vec::new(),
            merges: Vec::new(),
            peel: EpochVec::new(FRESH_PEEL),
            order: Vec::new(),
            queue: std::collections::VecDeque::new(),
            peel_roots: Vec::new(),
        }
    }
}

impl UnionFindScratch {
    /// Prepares for one shot over `nodes` vertices and `edges` edges.
    pub(crate) fn begin(&mut self, nodes: usize, edges: usize) {
        self.nodes.begin(nodes);
        self.frontier.begin(nodes);
        self.defect.begin(nodes);
        self.edges.begin(edges);
        self.round = 0;
        self.growth_candidates.clear();
        self.grown_edges.clear();
        self.peel_adjacency.begin(nodes);
        self.active.clear();
        self.merges.clear();
        self.peel.begin(nodes);
        self.order.clear();
        self.queue.clear();
        self.peel_roots.clear();
    }

    /// The growth multiplicity of an edge in the current round.
    pub(crate) fn edge_multiplicity(&self, state: EdgeState) -> u16 {
        if state.round == self.round {
            state.multiplicity
        } else {
            0
        }
    }

    /// Union-find `find` with path compression over the epoch array.
    pub(crate) fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        loop {
            let parent = self.nodes.get(root).parent;
            if parent == u32::MAX || parent as usize == root {
                break;
            }
            root = parent as usize;
        }
        let mut cur = x;
        while cur != root {
            let mut state = self.nodes.get(cur);
            let next = state.parent as usize;
            state.parent = root as u32;
            self.nodes.set(cur, state);
            cur = next;
        }
        root
    }

    /// Unions the clusters containing `a` and `b`; returns the new root.
    pub(crate) fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let sa = self.nodes.get(ra);
        let sb = self.nodes.get(rb);
        let (big, small, mut sbig, ssmall) = if sa.rank >= sb.rank {
            (ra, rb, sa, sb)
        } else {
            (rb, ra, sb, sa)
        };
        self.nodes.set(
            small,
            NodeState {
                parent: big as u32,
                ..ssmall
            },
        );
        if sbig.rank == ssmall.rank {
            sbig.rank += 1;
        }
        sbig.parity ^= ssmall.parity;
        sbig.boundary |= ssmall.boundary;
        sbig.parent = u32::MAX;
        self.nodes.set(big, sbig);
        let moved = self.frontier.take(small);
        self.frontier.get_mut(big).extend_from_slice(&moved);
        self.frontier.put_back(small, moved);
        big
    }

    /// Whether the cluster containing `node` still needs to grow.
    pub(crate) fn is_active(&mut self, node: usize) -> bool {
        let root = self.find(node);
        let state = self.nodes.get(root);
        state.parity && !state.boundary
    }
}

/// Per-shot working state of the matching decoders (greedy and exact).
#[derive(Debug, Clone, Default)]
pub(crate) struct MatchingScratch {
    /// One Dijkstra state (distance, incoming edge) per defect slot.
    pub(crate) dijkstras: Vec<DijkstraState>,
    pub(crate) heap: std::collections::BinaryHeap<HeapEntry>,
    /// Candidate matchings: `(cost, i, j)` with `j == u32::MAX` = boundary.
    pub(crate) candidates: Vec<(f64, u32, u32)>,
    pub(crate) matched: Vec<bool>,
    // Exact-matching DP state.
    pub(crate) boundary_cost: Vec<f64>,
    /// Row-major `n × n` pairwise costs.
    pub(crate) pair_cost: Vec<f64>,
    pub(crate) dp: Vec<f64>,
    /// DP back-pointers: `(i, partner)` with `u32::MAX` = boundary.
    pub(crate) choice: Vec<(u32, u32)>,
    pub(crate) pairs: Vec<(u32, u32)>,
}

/// Reusable Dijkstra arrays (distances default to `+inf` between epochs).
#[derive(Debug, Clone)]
pub(crate) struct DijkstraState {
    pub(crate) dist: EpochVec<f64>,
    /// Incoming edge per node (sentinel `u32::MAX` = none).
    pub(crate) via: EpochVec<u32>,
}

impl Default for DijkstraState {
    fn default() -> Self {
        DijkstraState {
            dist: EpochVec::new(f64::INFINITY),
            via: EpochVec::new(u32::MAX),
        }
    }
}

impl MatchingScratch {
    /// Ensures at least `defects` Dijkstra slots exist.
    pub(crate) fn ensure_defect_slots(&mut self, defects: usize) {
        if self.dijkstras.len() < defects {
            self.dijkstras.resize_with(defects, DijkstraState::default);
        }
    }
}

/// Reusable decoding state shared by every decoder implementation.
///
/// Create one per worker thread, pass it to
/// [`Decoder::decode_batch`](crate::Decoder::decode_batch) (or
/// [`Decoder::decode_shot`](crate::Decoder::decode_shot)) and reuse it for
/// as many chunks as you like; buffers grow to the high-water mark of the
/// decoding problem and are invalidated in O(1) between shots.
///
/// The scratch also hosts the per-decoder [syndrome memo](crate::memo):
/// cached predictions survive across chunks (they are keyed by defect set,
/// not by shot), are cleared automatically when the scratch is used with a
/// different decoder, and never change decoded bits — see the memo module
/// docs for the bit-identity contract. Memoization is on by default;
/// configure or disable it with [`DecodeScratch::set_memo_config`].
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    pub(crate) shot_prediction: Vec<bool>,
    /// Per-shot defect lists for one 64-shot word, gathered with one pass
    /// over the detector planes instead of one pass per shot.
    pub(crate) word_fired: Vec<Vec<usize>>,
    pub(crate) union_find: UnionFindScratch,
    pub(crate) matching: MatchingScratch,
    /// Per-decoder prediction cache consulted by the batch decode loop.
    pub(crate) memo: SyndromeMemo,
}

impl DecodeScratch {
    /// A fresh scratch with empty buffers and default memoization.
    pub fn new() -> Self {
        DecodeScratch::default()
    }

    /// A fresh scratch with the given memo configuration.
    pub fn with_memo_config(config: MemoConfig) -> Self {
        let mut scratch = DecodeScratch::default();
        scratch.memo.set_config(config);
        scratch
    }

    /// The active memo configuration.
    pub fn memo_config(&self) -> MemoConfig {
        self.memo.config()
    }

    /// Reconfigures the memo (cached entries are kept — they remain valid
    /// under any cap; pass [`MemoConfig::disabled`] to stop consulting them).
    pub fn set_memo_config(&mut self, config: MemoConfig) {
        self.memo.set_config(config);
    }

    /// Accumulated memo hit/miss counters (across every chunk decoded with
    /// this scratch since the last reset or change of decoder).
    pub fn cache_stats(&self) -> CacheStats {
        self.memo.stats()
    }

    /// Resets the memo hit/miss counters (cached entries are kept).
    pub fn reset_cache_stats(&mut self) {
        self.memo.reset_stats();
    }

    /// Number of defect sets currently cached.
    pub fn memo_entries(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_chunk_set_and_read() {
        let mut chunk = PredictionChunk::zeroed(2, 130);
        chunk.set(1, 129);
        chunk.set(0, 0);
        assert!(chunk.predicted(129, 1));
        assert!(chunk.predicted(0, 0));
        assert!(!chunk.predicted(129, 0));
        assert_eq!(chunk.shot_prediction(129), vec![false, true]);
        assert_eq!(chunk.words(), 3);
    }

    #[test]
    fn union_find_scratch_basic_ops() {
        let mut s = UnionFindScratch::default();
        s.begin(5, 3);
        for node in [0usize, 1] {
            let mut state = s.nodes.get(node);
            state.parity = true;
            s.nodes.set(node, state);
        }
        assert!(s.is_active(0));
        let root = s.union(0, 1);
        assert_eq!(s.find(0), root);
        assert_eq!(s.find(1), root);
        assert!(!s.nodes.get(root).parity, "parities cancel");
        // New shot forgets everything.
        s.begin(5, 3);
        assert_ne!(s.find(0), s.find(1));
    }
}
