//! Batch decoding engine: bit-packed predictions, reusable scratch, and the
//! word-parallel / per-shot decode loops behind
//! [`Decoder::decode_batch`](crate::Decoder::decode_batch).
//!
//! The batch decode path works on whole [`SyndromeChunk`]s (bit-packed
//! detector planes produced by `qccd_sim`'s chunked sampler) and returns a
//! bit-packed [`PredictionChunk`]. All per-shot working state lives in a
//! [`DecodeScratch`] that is reused from shot to shot and chunk to chunk, so
//! the hot loop performs no allocations.
//!
//! Two interchangeable loops drive the decode (see the crate docs for the
//! bit-identity contract between them):
//!
//! * [`decode_batch_words`] — the word-parallel default: 64-word tiles are
//!   scanned with one sequential carry-save pass over the detector planes
//!   ([`csa_accumulate`], classified per word by
//!   [`WordTriage::from_counters`]) into quiet / sparse / dense, and
//!   single-/two-defect lanes are answered with word-level merges from the
//!   memo's flat mirrors instead of per-shot hashing.
//! * [`decode_batch_per_shot`] — the per-shot reference loop every decoded
//!   bit is defined against.
//!
//! # The triage ladder
//!
//! Every shot of a chunk descends the same ladder of progressively more
//! expensive tiers, stopping at the first one that answers it:
//!
//! 1. **Quiet word** — no detector fired anywhere in the 64-shot word: the
//!    whole word is skipped by the tile scan (no gather, no decode).
//! 2. **Single / pair mirror** — one- and two-defect lanes are answered
//!    with word-wide OR merges from the memo's flat single- and pair-flip
//!    mirrors: one array load per lane class, no hashing, no decoder.
//! 3. **Sparse memo** — lanes at or below [`MemoConfig::max_defects`]
//!    probe the hash table ([`decode_lanes`]); misses decode once and
//!    insert.
//! 4. **Dense LRU** — lanes *above* the cap probe the bounded
//!    least-recently-used dense tier keyed by the canonical defect list
//!    ([`MemoConfig::dense_max_entries`]); recurring dense syndromes
//!    amortize exactly like sparse ones.
//! 5. **Cluster matcher** — a dense miss decomposes the lane's defects
//!    into connected clusters on the decoding graph and decodes each
//!    cluster independently in one shared scratch epoch (memo-answerable
//!    clusters short-circuit); cluster results are themselves cached.
//! 6. **Incremental union-find** — only when clusters merge during growth
//!    does the lane fall back to a whole-lane union-find decode, after an
//!    O(touched) undo-log rollback of the scratch (no full reset between
//!    lanes).
//!
//! **Invariant:** every tier is bit-identical to the per-shot reference
//! loop — [`decode_batch_per_shot`] with the memo disabled. Tiers only
//! change *where* a prediction comes from, never what it is; the identity
//! test battery (`tests/prop_word_parallel_identity.rs`,
//! `tests/prop_dense_tail_identity.rs`) pins this contract across decoders,
//! configurations and noise levels.

use std::cmp::Ordering;

pub use qccd_sim::SyndromeChunk;

use qccd_sim::{csa_accumulate, BitPlanes, WordTriage, MAX_TRIAGE_CAP};

use crate::memo::{MemoSnapshot, SyndromeMemo};
use crate::scratch::{EpochVec, VecPool};
use crate::{CacheStats, Decoder, MemoConfig};

/// Bit-packed observable-flip predictions for one chunk of shots.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionChunk {
    num_shots: usize,
    num_observables: usize,
    words: usize,
    planes: BitPlanes,
}

impl PredictionChunk {
    /// An all-`false` prediction for `num_shots` shots (zero shots yield an
    /// empty, zero-word chunk).
    pub fn zeroed(num_observables: usize, num_shots: usize) -> Self {
        let words = num_shots.div_ceil(64);
        PredictionChunk {
            num_shots,
            num_observables,
            words,
            planes: BitPlanes::zeroed(num_observables, words),
        }
    }

    /// Number of shots covered.
    pub fn num_shots(&self) -> usize {
        self.num_shots
    }

    /// Number of observables predicted per shot.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Words per bit-plane.
    pub fn words(&self) -> usize {
        self.words
    }

    /// The packed prediction plane of one observable.
    pub fn plane(&self, observable: usize) -> &[u64] {
        self.planes.plane(observable)
    }

    /// Whether the decoder predicted a flip of `observable` in `shot`.
    pub fn predicted(&self, shot: usize, observable: usize) -> bool {
        self.planes.bit(observable, shot)
    }

    /// Marks `observable` as flipped in `shot`.
    pub fn set(&mut self, observable: usize, shot: usize) {
        self.planes.plane_mut(observable)[shot / 64] |= 1u64 << (shot % 64);
    }

    /// ORs a whole word of lanes into one observable's plane — the
    /// word-parallel merge primitive of the sparse decode path.
    pub fn or_word(&mut self, observable: usize, word_index: usize, lanes: u64) {
        self.planes.plane_mut(observable)[word_index] |= lanes;
    }

    /// Unpacks one shot's prediction (convenience for tests and the
    /// per-shot adapter).
    pub fn shot_prediction(&self, shot: usize) -> Vec<bool> {
        (0..self.num_observables)
            .map(|o| self.predicted(shot, o))
            .collect()
    }
}

/// Min-heap entry for the Dijkstra searches of the matching decoders.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct HeapEntry {
    pub(crate) distance: f64,
    pub(crate) node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; distances are finite by construction.
        other
            .distance
            .partial_cmp(&self.distance)
            .unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Union-find cluster state of one node, packed so `find` / `union` touch a
/// single epoch-stamped slot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeState {
    /// Union-find parent (sentinel `u32::MAX` = self).
    pub(crate) parent: u32,
    pub(crate) rank: u8,
    /// Defect parity of the cluster rooted at this node.
    pub(crate) parity: bool,
    /// Whether the cluster rooted here touches the virtual boundary.
    pub(crate) boundary: bool,
}

const FRESH_NODE: NodeState = NodeState {
    parent: u32::MAX,
    rank: 0,
    parity: false,
    boundary: false,
};

/// Growth state of one edge, packed into a single slot. `multiplicity` is
/// per-round (validated against `round`), `support` / `grown` persist for
/// the whole shot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EdgeState {
    /// Growth units applied so far this shot.
    pub(crate) support: u32,
    /// Number of active clusters growing this edge in round `round`.
    pub(crate) multiplicity: u16,
    /// Round stamp validating `multiplicity` and `last_root`.
    pub(crate) round: u32,
    /// Root of the last cluster that counted this edge in round `round`
    /// (deduplicates repeated frontier entries without sorting).
    pub(crate) last_root: u32,
    pub(crate) grown: bool,
}

const FRESH_EDGE: EdgeState = EdgeState {
    support: 0,
    multiplicity: 0,
    round: 0,
    last_root: u32::MAX,
    grown: false,
};

/// Peeling-forest state of one node; a stale slot means "not visited".
#[derive(Debug, Clone, Copy)]
pub(crate) struct PeelState {
    /// Incoming tree edge (sentinel `u32::MAX` = none / forest root).
    pub(crate) parent_edge: u32,
    /// Incoming tree parent (sentinel `u32::MAX` = self).
    pub(crate) parent_node: u32,
}

const FRESH_PEEL: PeelState = PeelState {
    parent_edge: u32::MAX,
    parent_node: u32::MAX,
};

/// Per-shot working state of the union-find decoder.
#[derive(Debug, Clone)]
pub(crate) struct UnionFindScratch {
    pub(crate) nodes: EpochVec<NodeState>,
    /// Frontier edge lists per cluster root.
    pub(crate) frontier: VecPool,
    pub(crate) defect: EpochVec<bool>,
    pub(crate) edges: EpochVec<EdgeState>,
    /// Growth round counter within the current shot (validates
    /// [`EdgeState::multiplicity`]).
    pub(crate) round: u32,
    /// Frontier edges eligible to grow this round.
    pub(crate) growth_candidates: Vec<usize>,
    /// Edges fully grown this shot.
    pub(crate) grown_edges: Vec<usize>,
    /// Per-node adjacency of the grown subgraph (built as edges complete),
    /// so peeling never scans the full decoding graph.
    pub(crate) peel_adjacency: VecPool,
    pub(crate) active: Vec<usize>,
    /// Edges completed this round, sorted before merging so the merge order
    /// is canonical (frontiers themselves are kept unsorted).
    pub(crate) merges: Vec<usize>,
    // Peeling state: a fresh `peel` slot doubles as the visited flag.
    pub(crate) peel: EpochVec<PeelState>,
    pub(crate) order: Vec<usize>,
    pub(crate) queue: std::collections::VecDeque<usize>,
    pub(crate) peel_roots: Vec<usize>,
    // Dense-tier cluster state (see `union_find::decode_dense_shot`): one
    // claim flag per node (`id < num_nodes`) and per edge
    // (`id = num_nodes + edge`), plus the undo log of claimed ids that
    // makes rollback O(touched) instead of a full `begin`.
    pub(crate) claims: EpochVec<bool>,
    pub(crate) claim_log: Vec<u32>,
    /// Tiny DSU over the fired-defect indices used by the cluster
    /// decomposition (not epoch-stamped; re-initialised per lane).
    pub(crate) comp_dsu: Vec<u32>,
    /// First fired defect (by index) seen adjacent to a quiet detector —
    /// merges components that share an unfired neighbor before growth.
    pub(crate) comp_neighbor: EpochVec<u32>,
    pub(crate) comp_fired: Vec<usize>,
    pub(crate) comp_key: Vec<u32>,
    pub(crate) comp_touched: Vec<u32>,
    pub(crate) lane_touched: Vec<u32>,
}

impl Default for UnionFindScratch {
    fn default() -> Self {
        UnionFindScratch {
            nodes: EpochVec::new(FRESH_NODE),
            frontier: VecPool::default(),
            defect: EpochVec::new(false),
            edges: EpochVec::new(FRESH_EDGE),
            round: 0,
            growth_candidates: Vec::new(),
            grown_edges: Vec::new(),
            peel_adjacency: VecPool::default(),
            active: Vec::new(),
            merges: Vec::new(),
            peel: EpochVec::new(FRESH_PEEL),
            order: Vec::new(),
            queue: std::collections::VecDeque::new(),
            peel_roots: Vec::new(),
            claims: EpochVec::new(false),
            claim_log: Vec::new(),
            comp_dsu: Vec::new(),
            comp_neighbor: EpochVec::new(u32::MAX),
            comp_fired: Vec::new(),
            comp_key: Vec::new(),
            comp_touched: Vec::new(),
            lane_touched: Vec::new(),
        }
    }
}

impl UnionFindScratch {
    /// Prepares for one shot over `nodes` vertices and `edges` edges.
    pub(crate) fn begin(&mut self, nodes: usize, edges: usize) {
        self.nodes.begin(nodes);
        self.frontier.begin(nodes);
        self.defect.begin(nodes);
        self.edges.begin(edges);
        self.round = 0;
        self.growth_candidates.clear();
        self.grown_edges.clear();
        self.peel_adjacency.begin(nodes);
        self.active.clear();
        self.merges.clear();
        self.peel.begin(nodes);
        self.order.clear();
        self.queue.clear();
        self.peel_roots.clear();
    }

    /// The growth multiplicity of an edge in the current round.
    pub(crate) fn edge_multiplicity(&self, state: EdgeState) -> u16 {
        if state.round == self.round {
            state.multiplicity
        } else {
            0
        }
    }

    /// Union-find `find` with path compression over the epoch array.
    pub(crate) fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        loop {
            let parent = self.nodes.get(root).parent;
            if parent == u32::MAX || parent as usize == root {
                break;
            }
            root = parent as usize;
        }
        let mut cur = x;
        while cur != root {
            let mut state = self.nodes.get(cur);
            let next = state.parent as usize;
            state.parent = root as u32;
            self.nodes.set(cur, state);
            cur = next;
        }
        root
    }

    /// Unions the clusters containing `a` and `b`; returns the new root.
    pub(crate) fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let sa = self.nodes.get(ra);
        let sb = self.nodes.get(rb);
        let (big, small, mut sbig, ssmall) = if sa.rank >= sb.rank {
            (ra, rb, sa, sb)
        } else {
            (rb, ra, sb, sa)
        };
        self.nodes.set(
            small,
            NodeState {
                parent: big as u32,
                ..ssmall
            },
        );
        if sbig.rank == ssmall.rank {
            sbig.rank += 1;
        }
        sbig.parity ^= ssmall.parity;
        sbig.boundary |= ssmall.boundary;
        sbig.parent = u32::MAX;
        self.nodes.set(big, sbig);
        let moved = self.frontier.take(small);
        self.frontier.get_mut(big).extend_from_slice(&moved);
        self.frontier.put_back(small, moved);
        big
    }

    /// Whether the cluster containing `node` still needs to grow.
    pub(crate) fn is_active(&mut self, node: usize) -> bool {
        let root = self.find(node);
        let state = self.nodes.get(root);
        state.parity && !state.boundary
    }

    /// Claims one id (a node for `id < num_nodes`, otherwise
    /// `num_nodes + edge`), logging first-time claims so rollback can undo
    /// them. Returns whether the id was already claimed this lane.
    pub(crate) fn claim_id(&mut self, id: usize) -> bool {
        if self.claims.get(id) {
            true
        } else {
            self.claims.set(id, true);
            self.claim_log.push(id as u32);
            false
        }
    }

    /// Reverts every slot touched since the lane's `begin` by walking the
    /// claim log — O(touched), not O(graph). The epoch (and `round`) keep
    /// advancing: an unset slot simply reads as its fresh default again, so
    /// a whole-lane decode can rerun in the same epoch. The caller
    /// re-marks the boundary node afterwards.
    pub(crate) fn rollback(&mut self, num_nodes: usize) {
        let log = std::mem::take(&mut self.claim_log);
        for &id in &log {
            let id = id as usize;
            self.claims.unset(id);
            if id < num_nodes {
                self.nodes.unset(id);
                self.defect.unset(id);
                self.peel.unset(id);
                self.frontier.unset(id);
                self.peel_adjacency.unset(id);
            } else {
                self.edges.unset(id - num_nodes);
            }
        }
        self.claim_log = log;
        self.claim_log.clear();
        self.growth_candidates.clear();
        self.grown_edges.clear();
        self.active.clear();
        self.merges.clear();
        self.order.clear();
        self.queue.clear();
        self.peel_roots.clear();
    }
}

/// Per-shot working state of the matching decoders (greedy and exact).
#[derive(Debug, Clone, Default)]
pub(crate) struct MatchingScratch {
    /// One Dijkstra state (distance, incoming edge) per defect slot.
    pub(crate) dijkstras: Vec<DijkstraState>,
    pub(crate) heap: std::collections::BinaryHeap<HeapEntry>,
    /// Candidate matchings: `(cost, i, j)` with `j == u32::MAX` = boundary.
    pub(crate) candidates: Vec<(f64, u32, u32)>,
    pub(crate) matched: Vec<bool>,
    // Exact-matching DP state.
    pub(crate) boundary_cost: Vec<f64>,
    /// Row-major `n × n` pairwise costs.
    pub(crate) pair_cost: Vec<f64>,
    pub(crate) dp: Vec<f64>,
    /// DP back-pointers: `(i, partner)` with `u32::MAX` = boundary.
    pub(crate) choice: Vec<(u32, u32)>,
    pub(crate) pairs: Vec<(u32, u32)>,
}

/// Reusable Dijkstra arrays (distances default to `+inf` between epochs).
#[derive(Debug, Clone)]
pub(crate) struct DijkstraState {
    pub(crate) dist: EpochVec<f64>,
    /// Incoming edge per node (sentinel `u32::MAX` = none).
    pub(crate) via: EpochVec<u32>,
}

impl Default for DijkstraState {
    fn default() -> Self {
        DijkstraState {
            dist: EpochVec::new(f64::INFINITY),
            via: EpochVec::new(u32::MAX),
        }
    }
}

impl MatchingScratch {
    /// Ensures at least `defects` Dijkstra slots exist.
    pub(crate) fn ensure_defect_slots(&mut self, defects: usize) {
        if self.dijkstras.len() < defects {
            self.dijkstras.resize_with(defects, DijkstraState::default);
        }
    }
}

/// Reusable decoding state shared by every decoder implementation.
///
/// Create one per worker thread, pass it to
/// [`Decoder::decode_batch`](crate::Decoder::decode_batch) (or
/// [`Decoder::decode_shot`](crate::Decoder::decode_shot)) and reuse it for
/// as many chunks as you like; buffers grow to the high-water mark of the
/// decoding problem and are invalidated in O(1) between shots.
///
/// The scratch also hosts the per-decoder [syndrome memo](crate::memo):
/// cached predictions survive across chunks (they are keyed by defect set,
/// not by shot), are cleared automatically when the scratch is used with a
/// different decoder, and never change decoded bits — see the memo module
/// docs for the bit-identity contract. Memoization is on by default;
/// configure or disable it with [`DecodeScratch::set_memo_config`].
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    pub(crate) shot_prediction: Vec<bool>,
    /// Per-shot defect lists for one 64-shot word, gathered with one pass
    /// over the detector planes instead of one pass per shot.
    pub(crate) word_fired: Vec<Vec<usize>>,
    /// Per-word hot-plane buckets of the tile under triage: bucket `w`
    /// lists every `(detector, plane word)` with a fired lane in tile word
    /// `w`, in ascending detector order. Reused across tiles.
    pub(crate) tile_hot: Vec<Vec<(u32, u64)>>,
    pub(crate) union_find: UnionFindScratch,
    pub(crate) matching: MatchingScratch,
    /// Per-decoder prediction cache consulted by the batch decode loop.
    pub(crate) memo: SyndromeMemo,
    /// Reusable canonical-key buffer of the dense LRU tier (defect lists
    /// widened to `u32` for probing without per-lane allocation).
    pub(crate) dense_key: Vec<u32>,
}

impl DecodeScratch {
    /// A fresh scratch with empty buffers and default memoization.
    pub fn new() -> Self {
        DecodeScratch::default()
    }

    /// A fresh scratch with the given memo configuration.
    pub fn with_memo_config(config: MemoConfig) -> Self {
        let mut scratch = DecodeScratch::default();
        scratch.memo.set_config(config);
        scratch
    }

    /// The active memo configuration.
    pub fn memo_config(&self) -> MemoConfig {
        self.memo.config()
    }

    /// Reconfigures the memo (cached entries are kept — they remain valid
    /// under any cap; pass [`MemoConfig::disabled`] to stop consulting them).
    pub fn set_memo_config(&mut self, config: MemoConfig) {
        self.memo.set_config(config);
    }

    /// Accumulated memo hit/miss counters (across every chunk decoded with
    /// this scratch since the last reset or change of decoder).
    pub fn cache_stats(&self) -> CacheStats {
        self.memo.stats()
    }

    /// Resets the memo hit/miss counters (cached entries are kept).
    pub fn reset_cache_stats(&mut self) {
        self.memo.reset_stats();
    }

    /// Number of defect sets currently cached.
    pub fn memo_entries(&self) -> usize {
        self.memo.len()
    }

    /// Number of entries currently held by the dense LRU tier (bounded by
    /// [`MemoConfig::dense_max_entries`]).
    pub fn dense_memo_entries(&self) -> usize {
        self.memo.dense_len()
    }

    /// Freezes the scratch's warmed memo into a read-mostly
    /// [`MemoSnapshot`] for other workers to adopt. `None` while no decoder
    /// has claimed the memo yet (prefer
    /// [`Decoder::warm_memo_snapshot`](crate::Decoder::warm_memo_snapshot),
    /// which warms first).
    pub fn memo_snapshot(&self) -> Option<MemoSnapshot> {
        self.memo.snapshot()
    }

    /// Adopts a shared memo snapshot: the scratch's memo becomes a clone of
    /// the snapshot (owner, entries, prefill state), exactly as if this
    /// scratch had been warmed by the snapshot's decoder itself. A no-op
    /// when the memo already belongs to that decoder, so repeated adoption
    /// per chunk is free and locally learned entries survive.
    pub fn adopt_memo_snapshot(&mut self, snapshot: &MemoSnapshot) {
        self.memo.adopt(snapshot);
    }
}

/// Reusable buffers moved out of the scratch for the duration of one batch
/// decode, so the scratch itself can be lent to `decode_shot` without
/// aliasing. Construction claims (and, when needed, prefills) the memo.
struct BatchBuffers {
    word_fired: Vec<Vec<usize>>,
    prediction: Vec<bool>,
    memo: SyndromeMemo,
    memo_active: bool,
    dense_key: Vec<u32>,
}

impl BatchBuffers {
    fn begin<D: Decoder + ?Sized>(
        decoder: &D,
        num_detectors: usize,
        scratch: &mut DecodeScratch,
    ) -> Self {
        let mut word_fired = std::mem::take(&mut scratch.word_fired);
        word_fired.resize_with(64, Vec::new);
        let mut prediction = std::mem::take(&mut scratch.shot_prediction);
        prediction.clear();
        prediction.resize(decoder.num_observables(), false);
        // The memo moves out of the scratch for the same aliasing reason.
        // Predictions are stored as u64 bitmasks, so the memo only engages
        // for ≤64 observables (always true for the paper's workloads).
        let mut memo = std::mem::take(&mut scratch.memo);
        let memo_active = match decoder.memo_token() {
            Some(token) if memo.config().enabled() && decoder.num_observables() <= 64 => {
                memo.claim(token, decoder.num_observables());
                true
            }
            _ => false,
        };
        if memo_active && memo.needs_prefill() {
            // Seed every single-defect prediction up front (one decode per
            // detector, i.e. one shortest path for the matching decoders).
            // This removes the cold-start miss per worker and makes hit
            // rates independent of the chunk order in which defects first
            // appear. Predictions come from `decode_shot` itself, so the
            // bit-identity contract is untouched.
            for detector in 0..num_detectors {
                if !memo.can_insert() {
                    break;
                }
                prediction.fill(false);
                decoder.decode_shot(&[detector], scratch, &mut prediction);
                let mut flips = 0u64;
                for (observable, &flipped) in prediction.iter().enumerate() {
                    if flipped {
                        flips |= 1u64 << observable;
                    }
                }
                memo.prefill(&[detector], flips);
            }
            memo.mark_prefilled();
        }
        BatchBuffers {
            word_fired,
            prediction,
            memo,
            memo_active,
            dense_key: std::mem::take(&mut scratch.dense_key),
        }
    }

    fn finish(self, scratch: &mut DecodeScratch) {
        scratch.word_fired = self.word_fired;
        scratch.shot_prediction = self.prediction;
        scratch.memo = self.memo;
        scratch.dense_key = self.dense_key;
    }
}

/// Packs a per-observable prediction into the memo's `u64` flip bitmask
/// (callers guarantee ≤64 observables before engaging any memo tier).
pub(crate) fn pack_prediction(prediction: &[bool]) -> u64 {
    let mut flips = 0u64;
    for (observable, &flipped) in prediction.iter().enumerate() {
        if flipped {
            flips |= 1u64 << observable;
        }
    }
    flips
}

/// A borrowed handle onto the scratch's dense LRU tier, handed to
/// [`Decoder::decode_dense_shot`](crate::Decoder::decode_dense_shot) for
/// the lanes whose defect count exceeds the sparse memo cap. The handle is
/// deliberately opaque: decoders probe and fill the tier through it (the
/// union-find decoder also records cluster-decomposition stats), but the
/// tier's layout stays private to the crate.
#[derive(Debug)]
pub struct DenseTier<'a> {
    pub(crate) memo: &'a mut SyndromeMemo,
    pub(crate) key: &'a mut Vec<u32>,
}

impl DenseTier<'_> {
    /// Fills the reusable key buffer with the lane's canonical
    /// (sorted-ascending) defect list.
    pub(crate) fn fill_key(&mut self, fired_detectors: &[usize]) {
        self.key.clear();
        self.key
            .extend(fired_detectors.iter().map(|&detector| detector as u32));
    }

    /// Probes the tier for a whole lane's defect list, counting a dense hit
    /// or miss.
    pub(crate) fn lookup_lane(&mut self, fired_detectors: &[usize]) -> Option<u64> {
        self.fill_key(fired_detectors);
        self.memo.dense_lookup(self.key).map(|(flips, _)| flips)
    }

    /// Records a decoded lane (`touched` may be empty when the decoder
    /// tracks no claim information — such entries still answer whole-lane
    /// probes, just not cluster probes).
    pub(crate) fn insert_lane(&mut self, fired_detectors: &[usize], flips: u64, touched: &[u32]) {
        self.fill_key(fired_detectors);
        self.memo.dense_insert(self.key, flips, touched);
    }
}

/// Decodes the `lanes` of one word whose defect lists are already gathered
/// in `buffers.word_fired`, answering recurring small defect sets from the
/// memo. This is the shared per-shot tail of both batch loops.
fn decode_lanes<D: Decoder + ?Sized>(
    decoder: &D,
    word_index: usize,
    lanes: u64,
    buffers: &mut BatchBuffers,
    scratch: &mut DecodeScratch,
    out: &mut PredictionChunk,
) {
    let mut bits = lanes;
    while bits != 0 {
        let lane = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let shot = word_index * 64 + lane;
        let fired = std::mem::take(&mut buffers.word_fired[lane]);
        if buffers.memo_active
            && buffers
                .memo
                .cacheable(fired.len(), decoder.num_observables())
        {
            match buffers.memo.lookup(&fired) {
                Some(mut flips) => {
                    while flips != 0 {
                        out.set(flips.trailing_zeros() as usize, shot);
                        flips &= flips - 1;
                    }
                }
                None => {
                    buffers.prediction.fill(false);
                    decoder.decode_shot(&fired, scratch, &mut buffers.prediction);
                    let mut flips = 0u64;
                    for (observable, &flipped) in buffers.prediction.iter().enumerate() {
                        if flipped {
                            flips |= 1u64 << observable;
                            out.set(observable, shot);
                        }
                    }
                    buffers.memo.insert(&fired, flips);
                }
            }
        } else {
            if buffers.memo_active {
                buffers.memo.note_uncacheable();
            }
            buffers.prediction.fill(false);
            if buffers.memo_active && buffers.memo.dense_enabled() {
                // Dense tier: above-cap lanes probe the bounded LRU before
                // (and fill it after) the expensive decode. Both batch
                // loops route dense lanes through this same call in the
                // same order, so tier state and counters stay identical
                // between the word-parallel and per-shot paths.
                let mut dense = DenseTier {
                    memo: &mut buffers.memo,
                    key: &mut buffers.dense_key,
                };
                decoder.decode_dense_shot(&fired, scratch, &mut dense, &mut buffers.prediction);
            } else {
                decoder.decode_shot(&fired, scratch, &mut buffers.prediction);
            }
            for (observable, &flipped) in buffers.prediction.iter().enumerate() {
                if flipped {
                    out.set(observable, shot);
                }
            }
        }
        buffers.word_fired[lane] = fired;
    }
}

/// Words per triage tile: the tile scan walks every detector plane
/// *sequentially* over a 64-word window (cache- and prefetcher-friendly,
/// unlike a strided per-word column walk) while accumulating per-word
/// carry-save counters and hot-plane buckets; the per-word decode then runs
/// against L1/L2-resident buckets.
const TILE_WORDS: usize = 64;

/// The word-parallel batch decode loop (the
/// [`Decoder::decode_batch`](crate::Decoder::decode_batch) default).
///
/// Words are processed in [`TILE_WORDS`]-word tiles. One sequential pass
/// over the detector planes per tile accumulates, for every word at once,
/// the carry-save defect counters and the hot-plane buckets — so triage,
/// quiet-word detection and gathering share a single streaming walk. Each
/// noisy word then classifies via [`WordTriage::from_counters`]: its
/// single-defect lanes whose detector is in the memo's singles table are
/// answered with word-wide OR merges (no per-shot hashing, no union-find),
/// and only the leftover lanes reach [`decode_lanes`], which is
/// bit-identical (predictions *and* hit/miss/uncacheable counters) to the
/// per-shot reference loop.
pub(crate) fn decode_batch_words<D: Decoder + ?Sized>(
    decoder: &D,
    chunk: &SyndromeChunk,
    scratch: &mut DecodeScratch,
) -> PredictionChunk {
    let mut out = PredictionChunk::zeroed(decoder.num_observables(), chunk.num_shots());
    let mut buffers = BatchBuffers::begin(decoder, chunk.num_detectors(), scratch);
    let mut tile_hot = std::mem::take(&mut scratch.tile_hot);
    tile_hot.resize_with(TILE_WORDS, Vec::new);
    let sparse_cap = if buffers.memo_active {
        buffers
            .memo
            .config()
            .effective_max_defects()
            .min(MAX_TRIAGE_CAP)
    } else {
        0
    };
    let words = chunk.words();
    let mut tile_start = 0usize;
    while tile_start < words {
        let tile_len = TILE_WORDS.min(words - tile_start);
        // Phase A — streaming tile scan: sequential over each plane's
        // window, scattered only into the L1-resident counter arrays and
        // buckets. Ascending detector order keeps every bucket sorted,
        // i.e. canonical for the memo key.
        let mut c1 = [0u64; TILE_WORDS];
        let mut c2 = [0u64; TILE_WORDS];
        let mut c4 = [0u64; TILE_WORDS];
        let mut over = [0u64; TILE_WORDS];
        for bucket in tile_hot.iter_mut().take(tile_len) {
            bucket.clear();
        }
        for detector in 0..chunk.num_detectors() {
            let window = &chunk.detector_plane(detector)[tile_start..tile_start + tile_len];
            for (w, &bits) in window.iter().enumerate() {
                if bits == 0 {
                    continue;
                }
                tile_hot[w].push((detector as u32, bits));
                csa_accumulate(&mut c1[w], &mut c2[w], &mut c4[w], &mut over[w], bits);
            }
        }
        // Phase B — per-word triage and decode against the hot buckets.
        for w in 0..tile_len {
            let word_index = tile_start + w;
            let triage = WordTriage::from_counters(
                c1[w],
                c2[w],
                c4[w],
                over[w],
                sparse_cap,
                chunk.lane_mask(word_index),
            );
            if triage.fired == 0 {
                if buffers.memo_active {
                    buffers.memo.note_quiet_word();
                }
                continue;
            }
            let hot = &tile_hot[w];
            let mut per_shot = triage.fired;
            if buffers.memo_active {
                if triage.dense == 0 {
                    buffers.memo.note_sparse_word();
                } else {
                    buffers.memo.note_dense_word();
                }
                // Word-level merge, one fused bucket walk:
                //
                // * single-defect lanes are fully described by their
                //   (unique) hot plane, so the cached prediction of that
                //   detector is ORed into the output planes for all such
                //   lanes at once;
                // * two-defect lanes — the dominant noisy class under
                //   circuit-level noise — resolve straight from the flat
                //   pair mirror: the walk recovers both detectors per lane
                //   (ascending order gives the canonical d1 < d2), no
                //   defect-list gather, no hash probe.
                let mut answered = 0u64;
                let singles = triage.single;
                let pairs = if sparse_cap >= 2 { triage.pair } else { 0 };
                if singles | pairs != 0 {
                    let mut first_seen = 0u64;
                    let mut first = [0u32; 64];
                    for &(detector, plane_bits) in hot {
                        let merge_lanes = plane_bits & singles;
                        if merge_lanes != 0 {
                            if let Some(mut flips) = buffers.memo.single_flip(detector as usize) {
                                answered |= merge_lanes;
                                while flips != 0 {
                                    out.or_word(
                                        flips.trailing_zeros() as usize,
                                        word_index,
                                        merge_lanes,
                                    );
                                    flips &= flips - 1;
                                }
                            }
                        }
                        let mut lanes = plane_bits & pairs;
                        while lanes != 0 {
                            let lane = lanes.trailing_zeros() as usize;
                            lanes &= lanes - 1;
                            let bit = 1u64 << lane;
                            if first_seen & bit == 0 {
                                first_seen |= bit;
                                first[lane] = detector;
                            } else if let Some(mut flips) = buffers
                                .memo
                                .pair_flip(first[lane] as usize, detector as usize)
                            {
                                answered |= bit;
                                let shot = word_index * 64 + lane;
                                while flips != 0 {
                                    out.set(flips.trailing_zeros() as usize, shot);
                                    flips &= flips - 1;
                                }
                            }
                        }
                    }
                }
                // Lanes above the cap (dense words), multi-defect lanes
                // and fast-lane misses take the per-shot fallback below,
                // exactly like the reference loop.
                if answered != 0 {
                    buffers
                        .memo
                        .count_word_merged(u64::from(answered.count_ones()));
                    per_shot &= !answered;
                }
            }
            if per_shot == 0 {
                continue;
            }
            // Gather the leftover lanes' defect lists from the bucket.
            let mut bits = per_shot;
            while bits != 0 {
                buffers.word_fired[bits.trailing_zeros() as usize].clear();
                bits &= bits - 1;
            }
            for &(detector, plane_bits) in hot {
                let mut hits = plane_bits & per_shot;
                while hits != 0 {
                    buffers.word_fired[hits.trailing_zeros() as usize].push(detector as usize);
                    hits &= hits - 1;
                }
            }
            decode_lanes(
                decoder,
                word_index,
                per_shot,
                &mut buffers,
                scratch,
                &mut out,
            );
        }
        tile_start += tile_len;
    }
    scratch.tile_hot = tile_hot;
    buffers.finish(scratch);
    out
}

/// The per-shot reference loop: scan the fired-shot mask, gather every
/// noisy lane's defect list, decode lane by lane. Every decoded bit of the
/// word-parallel path is defined against this implementation.
pub(crate) fn decode_batch_per_shot<D: Decoder + ?Sized>(
    decoder: &D,
    chunk: &SyndromeChunk,
    scratch: &mut DecodeScratch,
) -> PredictionChunk {
    let mut out = PredictionChunk::zeroed(decoder.num_observables(), chunk.num_shots());
    let mask = chunk.fired_shot_mask();
    let mut buffers = BatchBuffers::begin(decoder, chunk.num_detectors(), scratch);
    // Resolve the plane slices once; the gather loop below touches every
    // plane per word and must not re-derive the slice each time.
    let planes: Vec<&[u64]> = (0..chunk.num_detectors())
        .map(|detector| chunk.detector_plane(detector))
        .collect();
    for (word_index, &word) in mask.iter().enumerate() {
        if word == 0 {
            continue;
        }
        // Gather: one pass over the detector planes fills the defect
        // lists of all (up to 64) noisy shots of this word. Detectors
        // are visited in ascending order, so each list ends up sorted.
        let mut bits = word;
        while bits != 0 {
            buffers.word_fired[bits.trailing_zeros() as usize].clear();
            bits &= bits - 1;
        }
        for (detector, plane) in planes.iter().enumerate() {
            let mut hits = plane[word_index] & word;
            while hits != 0 {
                buffers.word_fired[hits.trailing_zeros() as usize].push(detector);
                hits &= hits - 1;
            }
        }
        decode_lanes(decoder, word_index, word, &mut buffers, scratch, &mut out);
    }
    buffers.finish(scratch);
    out
}

/// Claims and prefills `decoder`'s memo inside `scratch` without decoding
/// any shots, then freezes it into a shareable snapshot (the
/// [`Decoder::warm_memo_snapshot`](crate::Decoder::warm_memo_snapshot)
/// default).
pub(crate) fn warm_memo_snapshot<D: Decoder + ?Sized>(
    decoder: &D,
    num_detectors: usize,
    scratch: &mut DecodeScratch,
) -> Option<MemoSnapshot> {
    decoder.memo_token()?;
    if !scratch.memo.config().enabled() || decoder.num_observables() > 64 {
        return None;
    }
    let buffers = BatchBuffers::begin(decoder, num_detectors, scratch);
    let snapshot = buffers.memo.snapshot();
    buffers.finish(scratch);
    snapshot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_chunk_set_and_read() {
        let mut chunk = PredictionChunk::zeroed(2, 130);
        chunk.set(1, 129);
        chunk.set(0, 0);
        assert!(chunk.predicted(129, 1));
        assert!(chunk.predicted(0, 0));
        assert!(!chunk.predicted(129, 0));
        assert_eq!(chunk.shot_prediction(129), vec![false, true]);
        assert_eq!(chunk.words(), 3);
    }

    #[test]
    fn union_find_scratch_basic_ops() {
        let mut s = UnionFindScratch::default();
        s.begin(5, 3);
        for node in [0usize, 1] {
            let mut state = s.nodes.get(node);
            state.parity = true;
            s.nodes.set(node, state);
        }
        assert!(s.is_active(0));
        let root = s.union(0, 1);
        assert_eq!(s.find(0), root);
        assert_eq!(s.find(1), root);
        assert!(!s.nodes.get(root).parity, "parities cancel");
        // New shot forgets everything.
        s.begin(5, 3);
        assert_ne!(s.find(0), s.find(1));
    }
}
