//! Decoding graph construction.
//!
//! Matching-based decoders (union-find, MWPM and friends) operate on a
//! *decoding graph*: detectors are vertices, every elementary error mechanism
//! that flips one or two detectors is an edge (single-detector mechanisms
//! connect to a virtual boundary vertex), and edge weights are the
//! log-likelihood ratios `ln((1−p)/p)`.
//!
//! Circuit-level noise also produces *hyperedges* — mechanisms flipping more
//! than two detectors (for example a Y error on a data qubit flips two X-type
//! and two Z-type checks). These are decomposed into graph-like edges:
//! the detectors of a hyperedge are grouped by the connected component they
//! belong to in the graph formed by the ordinary two-detector edges (in a
//! surface code these components are exactly the X-check and Z-check
//! subgraphs), and each group becomes one edge. Observable flips are
//! assigned to the decomposed parts by looking up matching graph-like
//! mechanisms, with any residual assigned to the last part so that the total
//! symptom is preserved.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use qccd_sim::{DemError, DetectorErrorModel};

/// Index of a detector vertex in the decoding graph.
pub type DetectorIndex = usize;

/// One edge of the decoding graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodingEdge {
    /// First endpoint (a detector).
    pub a: DetectorIndex,
    /// Second endpoint, or `None` for the virtual boundary.
    pub b: Option<DetectorIndex>,
    /// Probability that this edge's mechanism fires.
    pub probability: f64,
    /// Log-likelihood weight `ln((1−p)/p)`, clamped to be non-negative.
    pub weight: f64,
    /// Logical observables flipped when this edge's mechanism fires.
    pub observables: Vec<u32>,
}

impl DecodingEdge {
    /// Returns the endpoint opposite to `v`, or `None` if that endpoint is
    /// the boundary.
    pub fn other(&self, v: DetectorIndex) -> Option<DetectorIndex> {
        if self.a == v {
            self.b
        } else {
            Some(self.a)
        }
    }
}

/// A decoding graph derived from a detector error model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodingGraph {
    num_detectors: usize,
    num_observables: usize,
    edges: Vec<DecodingEdge>,
    /// For each detector, the indices of its incident edges.
    adjacency: Vec<Vec<usize>>,
    /// Number of hyperedges that had to be decomposed.
    decomposed_hyperedges: usize,
}

impl DecodingGraph {
    /// Builds the decoding graph of a detector error model.
    pub fn from_dem(dem: &DetectorErrorModel) -> Self {
        let num_detectors = dem.num_detectors;

        // Union-find over detectors using the ordinary two-detector edges to
        // identify the graph-like components (X-type vs Z-type subgraphs in
        // a surface code).
        let mut component: Vec<usize> = (0..num_detectors).collect();
        fn find(component: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while component[root] != root {
                root = component[root];
            }
            let mut cur = x;
            while component[cur] != root {
                let next = component[cur];
                component[cur] = root;
                cur = next;
            }
            root
        }
        for error in &dem.errors {
            if error.detectors.len() == 2 {
                let a = find(&mut component, error.detectors[0] as usize);
                let b = find(&mut component, error.detectors[1] as usize);
                if a != b {
                    component[a] = b;
                }
            }
        }

        // Graph-like mechanisms become edges directly; remember their
        // symptom → observables mapping for hyperedge decomposition.
        let mut edges: Vec<DecodingEdge> = Vec::new();
        let mut graphlike_observables: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
        let mut hyperedges: Vec<&DemError> = Vec::new();
        for error in &dem.errors {
            match error.detectors.len() {
                0 => {
                    // A mechanism with no detector symptom cannot be decoded;
                    // it contributes directly to the logical error floor and
                    // is ignored by matching decoders.
                }
                1 => {
                    edges.push(Self::make_edge(
                        error.detectors[0] as usize,
                        None,
                        error.probability,
                        error.observables.clone(),
                    ));
                    graphlike_observables
                        .entry(error.detectors.clone())
                        .or_insert_with(|| error.observables.clone());
                }
                2 => {
                    edges.push(Self::make_edge(
                        error.detectors[0] as usize,
                        Some(error.detectors[1] as usize),
                        error.probability,
                        error.observables.clone(),
                    ));
                    graphlike_observables
                        .entry(error.detectors.clone())
                        .or_insert_with(|| error.observables.clone());
                }
                _ => hyperedges.push(error),
            }
        }

        // Decompose hyperedges.
        let decomposed_hyperedges = hyperedges.len();
        for error in hyperedges {
            // Group the detectors by component.
            let mut groups: HashMap<usize, Vec<u32>> = HashMap::new();
            for &d in &error.detectors {
                let root = find(&mut component, d as usize);
                groups.entry(root).or_default().push(d);
            }
            let mut parts: Vec<Vec<u32>> = Vec::new();
            for (_, mut group) in groups {
                group.sort_unstable();
                // Split oversized groups into pairs (plus a possible single).
                while group.len() > 2 {
                    let pair = vec![group[0], group[1]];
                    group.drain(0..2);
                    parts.push(pair);
                }
                parts.push(group);
            }
            // Assign observables: use the observables of a matching
            // graph-like mechanism when one exists; put any residual on the
            // last part so the total symptom is preserved.
            let mut assigned: Vec<Vec<u32>> = Vec::with_capacity(parts.len());
            let mut residual: Vec<u32> = error.observables.clone();
            for part in &parts {
                let obs = graphlike_observables.get(part).cloned().unwrap_or_default();
                residual = xor_sets(&residual, &obs);
                assigned.push(obs);
            }
            if let Some(last) = assigned.last_mut() {
                *last = xor_sets(last, &residual);
            }
            for (part, observables) in parts.into_iter().zip(assigned) {
                match part.len() {
                    1 => edges.push(Self::make_edge(
                        part[0] as usize,
                        None,
                        error.probability,
                        observables,
                    )),
                    2 => edges.push(Self::make_edge(
                        part[0] as usize,
                        Some(part[1] as usize),
                        error.probability,
                        observables,
                    )),
                    _ => unreachable!("parts are singles or pairs"),
                }
            }
        }

        // Merge parallel edges (same endpoints and observables) by combining
        // probabilities; this keeps the graph small.
        let mut merged: HashMap<(usize, Option<usize>, Vec<u32>), f64> = HashMap::new();
        for edge in edges {
            let key = (edge.a, edge.b, edge.observables.clone());
            let p = merged.entry(key).or_insert(0.0);
            *p = *p * (1.0 - edge.probability) + edge.probability * (1.0 - *p);
        }
        let mut edges: Vec<DecodingEdge> = merged
            .into_iter()
            .map(|((a, b, observables), probability)| {
                Self::make_edge(a, b, probability, observables)
            })
            .collect();
        edges.sort_by(|x, y| (x.a, x.b, &x.observables).cmp(&(y.a, y.b, &y.observables)));

        let mut adjacency = vec![Vec::new(); num_detectors];
        for (i, edge) in edges.iter().enumerate() {
            adjacency[edge.a].push(i);
            if let Some(b) = edge.b {
                if b != edge.a {
                    adjacency[b].push(i);
                }
            }
        }

        DecodingGraph {
            num_detectors,
            num_observables: dem.num_observables,
            edges,
            adjacency,
            decomposed_hyperedges,
        }
    }

    fn make_edge(
        a: usize,
        b: Option<usize>,
        probability: f64,
        observables: Vec<u32>,
    ) -> DecodingEdge {
        let p = probability.clamp(1e-12, 0.5);
        let weight = ((1.0 - p) / p).ln().max(0.0);
        DecodingEdge {
            a,
            b,
            probability,
            weight,
            observables,
        }
    }

    /// Number of detector vertices.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of union-find nodes: every detector plus the virtual boundary
    /// (which is indexed `num_detectors()` by convention throughout the
    /// crate).
    pub fn num_nodes(&self) -> usize {
        self.num_detectors + 1
    }

    /// Number of logical observables tracked on edges.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// All edges.
    pub fn edges(&self) -> &[DecodingEdge] {
        &self.edges
    }

    /// Indices of the edges incident to a detector.
    pub fn incident_edges(&self, detector: DetectorIndex) -> &[usize] {
        &self.adjacency[detector]
    }

    /// Number of hyperedges that were decomposed during construction.
    pub fn decomposed_hyperedges(&self) -> usize {
        self.decomposed_hyperedges
    }

    /// Returns `true` if the graph has no edges (e.g. a noiseless circuit).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Symmetric difference of two sorted observable-index sets.
fn xor_sets(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &x in a.iter().chain(b.iter()) {
        *counts.entry(x).or_insert(0) += 1;
    }
    let mut out: Vec<u32> = counts
        .into_iter()
        .filter(|(_, c)| c % 2 == 1)
        .map(|(x, _)| x)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dem(
        errors: Vec<DemError>,
        num_detectors: usize,
        num_observables: usize,
    ) -> DetectorErrorModel {
        DetectorErrorModel {
            num_detectors,
            num_observables,
            errors,
        }
    }

    fn err(p: f64, detectors: Vec<u32>, observables: Vec<u32>) -> DemError {
        DemError {
            probability: p,
            detectors,
            observables,
        }
    }

    #[test]
    fn graphlike_mechanisms_become_edges() {
        let model = dem(
            vec![err(0.1, vec![0], vec![0]), err(0.2, vec![0, 1], vec![])],
            2,
            1,
        );
        let graph = DecodingGraph::from_dem(&model);
        assert_eq!(graph.edges().len(), 2);
        assert_eq!(graph.num_detectors(), 2);
        assert_eq!(graph.decomposed_hyperedges(), 0);
        let boundary_edge = graph.edges().iter().find(|e| e.b.is_none()).unwrap();
        assert_eq!(boundary_edge.a, 0);
        assert_eq!(boundary_edge.observables, vec![0]);
        assert!(boundary_edge.weight > 0.0);
    }

    #[test]
    fn hyperedge_is_decomposed_along_components() {
        // Detectors 0-1 are connected by a 2-detector mechanism, and 2-3 by
        // another; a 4-detector hyperedge across both components must split
        // into the pairs {0,1} and {2,3}.
        let model = dem(
            vec![
                err(0.01, vec![0, 1], vec![]),
                err(0.01, vec![2, 3], vec![0]),
                err(0.05, vec![0, 1, 2, 3], vec![0]),
            ],
            4,
            1,
        );
        let graph = DecodingGraph::from_dem(&model);
        assert_eq!(graph.decomposed_hyperedges(), 1);
        // The hyperedge parts merge into the existing parallel edges.
        assert_eq!(graph.edges().len(), 2);
        let e01 = graph
            .edges()
            .iter()
            .find(|e| e.a == 0 && e.b == Some(1))
            .unwrap();
        let e23 = graph
            .edges()
            .iter()
            .find(|e| e.a == 2 && e.b == Some(3))
            .unwrap();
        // Probabilities were combined.
        assert!(e01.probability > 0.05 && e01.probability < 0.07);
        // Observable assignment follows the matching graph-like mechanism.
        assert!(e01.observables.is_empty());
        assert_eq!(e23.observables, vec![0]);
    }

    #[test]
    fn parallel_edges_merge() {
        let model = dem(
            vec![err(0.1, vec![0, 1], vec![]), err(0.1, vec![0, 1], vec![])],
            2,
            0,
        );
        let graph = DecodingGraph::from_dem(&model);
        assert_eq!(graph.edges().len(), 1);
        assert!((graph.edges()[0].probability - 0.18).abs() < 1e-12);
    }

    #[test]
    fn adjacency_lists_are_consistent() {
        let model = dem(
            vec![
                err(0.1, vec![0], vec![]),
                err(0.1, vec![0, 1], vec![]),
                err(0.1, vec![1, 2], vec![]),
            ],
            3,
            0,
        );
        let graph = DecodingGraph::from_dem(&model);
        assert_eq!(graph.incident_edges(0).len(), 2);
        assert_eq!(graph.incident_edges(1).len(), 2);
        assert_eq!(graph.incident_edges(2).len(), 1);
        for (i, edge) in graph.edges().iter().enumerate() {
            assert!(graph.incident_edges(edge.a).contains(&i));
            if let Some(b) = edge.b {
                assert!(graph.incident_edges(b).contains(&i));
            }
        }
    }

    #[test]
    fn zero_detector_mechanisms_are_ignored() {
        let model = dem(vec![err(0.3, vec![], vec![0])], 1, 1);
        let graph = DecodingGraph::from_dem(&model);
        assert!(graph.is_empty());
    }

    #[test]
    fn weights_decrease_with_probability() {
        let model = dem(
            vec![err(0.001, vec![0, 1], vec![]), err(0.1, vec![1, 2], vec![])],
            3,
            0,
        );
        let graph = DecodingGraph::from_dem(&model);
        let rare = graph.edges().iter().find(|e| e.a == 0).unwrap();
        let common = graph.edges().iter().find(|e| e.a == 1).unwrap();
        assert!(rare.weight > common.weight);
    }

    #[test]
    fn xor_sets_behaviour() {
        assert_eq!(xor_sets(&[0, 1], &[1, 2]), vec![0, 2]);
        assert_eq!(xor_sets(&[], &[3]), vec![3]);
        assert!(xor_sets(&[4], &[4]).is_empty());
    }
}
