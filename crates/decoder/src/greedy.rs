//! Greedy matching decoder.
//!
//! A simple baseline decoder used for cross-validation of the union-find
//! decoder and for quick sanity checks: detection events are matched
//! greedily, always pairing the two closest unmatched defects (or a defect
//! and the boundary) under shortest-path distance in the weighted decoding
//! graph. The correction applied is the shortest path itself, so the
//! observable-flip prediction is the XOR of the observables along the path.
//!
//! Greedy matching is less accurate than minimum-weight perfect matching or
//! union-find but shares the same qualitative behaviour; agreement between
//! the two decoders on the vast majority of shots is one of the test-suite
//! invariants.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{Decoder, DecodingGraph};

/// Greedy shortest-path matching decoder.
#[derive(Debug, Clone)]
pub struct GreedyMatchingDecoder {
    graph: DecodingGraph,
    boundary: usize,
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    distance: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; distances are finite by construction.
        other
            .distance
            .partial_cmp(&self.distance)
            .unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl GreedyMatchingDecoder {
    /// Creates a decoder for the given decoding graph.
    pub fn new(graph: DecodingGraph) -> Self {
        let boundary = graph.num_detectors();
        GreedyMatchingDecoder { graph, boundary }
    }

    /// Dijkstra from `source`, returning per-node `(distance, incoming edge)`.
    fn shortest_paths(&self, source: usize) -> (Vec<f64>, Vec<Option<usize>>) {
        let n = self.graph.num_detectors() + 1;
        let mut dist = vec![f64::INFINITY; n];
        let mut via = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[source] = 0.0;
        heap.push(HeapEntry {
            distance: 0.0,
            node: source,
        });
        while let Some(HeapEntry { distance, node }) = heap.pop() {
            if distance > dist[node] {
                continue;
            }
            let incident: Vec<usize> = if node == self.boundary {
                self.graph
                    .edges()
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.b.is_none())
                    .map(|(i, _)| i)
                    .collect()
            } else {
                self.graph.incident_edges(node).to_vec()
            };
            for edge_index in incident {
                let edge = &self.graph.edges()[edge_index];
                let next = if edge.a == node {
                    edge.b.unwrap_or(self.boundary)
                } else {
                    edge.a
                };
                let candidate = distance + edge.weight.max(1e-9);
                if candidate < dist[next] {
                    dist[next] = candidate;
                    via[next] = Some(edge_index);
                    heap.push(HeapEntry {
                        distance: candidate,
                        node: next,
                    });
                }
            }
        }
        (dist, via)
    }

    /// XOR of observables along the shortest path from `source` (whose
    /// Dijkstra state is given) back to `target`.
    fn path_observables(
        &self,
        via: &[Option<usize>],
        source: usize,
        mut target: usize,
        flips: &mut [bool],
    ) {
        while target != source {
            let edge_index = via[target].expect("path must exist");
            let edge = &self.graph.edges()[edge_index];
            for &obs in &edge.observables {
                flips[obs as usize] ^= true;
            }
            let prev = if edge.a == target {
                edge.b.unwrap_or(self.boundary)
            } else {
                edge.a
            };
            target = prev;
        }
    }
}

impl Decoder for GreedyMatchingDecoder {
    fn decode(&self, fired_detectors: &[usize]) -> Vec<bool> {
        let mut prediction = vec![false; self.graph.num_observables()];
        if fired_detectors.is_empty() || self.graph.is_empty() {
            return prediction;
        }

        // Dijkstra from every defect.
        let defects: Vec<usize> = fired_detectors.to_vec();
        let searches: Vec<(Vec<f64>, Vec<Option<usize>>)> = defects
            .iter()
            .map(|&d| self.shortest_paths(d))
            .collect();

        // Candidate matchings: defect–defect and defect–boundary.
        #[derive(Debug)]
        struct Candidate {
            cost: f64,
            i: usize,
            j: Option<usize>,
        }
        let mut candidates = Vec::new();
        for i in 0..defects.len() {
            let (dist, _) = &searches[i];
            if dist[self.boundary].is_finite() {
                candidates.push(Candidate {
                    cost: dist[self.boundary],
                    i,
                    j: None,
                });
            }
            for j in (i + 1)..defects.len() {
                if dist[defects[j]].is_finite() {
                    candidates.push(Candidate {
                        cost: dist[defects[j]],
                        i,
                        j: Some(j),
                    });
                }
            }
        }
        candidates.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap_or(Ordering::Equal));

        let mut matched = vec![false; defects.len()];
        for candidate in candidates {
            match candidate.j {
                Some(j) => {
                    if matched[candidate.i] || matched[j] {
                        continue;
                    }
                    matched[candidate.i] = true;
                    matched[j] = true;
                    let (_, via) = &searches[candidate.i];
                    self.path_observables(via, defects[candidate.i], defects[j], &mut prediction);
                }
                None => {
                    if matched[candidate.i] {
                        continue;
                    }
                    matched[candidate.i] = true;
                    let (_, via) = &searches[candidate.i];
                    self.path_observables(
                        via,
                        defects[candidate.i],
                        self.boundary,
                        &mut prediction,
                    );
                }
            }
        }

        prediction
    }

    fn num_observables(&self) -> usize {
        self.graph.num_observables()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_sim::{DemError, DetectorErrorModel};

    fn err(p: f64, detectors: Vec<u32>, observables: Vec<u32>) -> DemError {
        DemError {
            probability: p,
            detectors,
            observables,
        }
    }

    fn chain_graph(n: usize) -> DecodingGraph {
        let mut errors = vec![err(0.01, vec![0], vec![])];
        for i in 0..n - 1 {
            errors.push(err(0.01, vec![i as u32, i as u32 + 1], vec![]));
        }
        errors.push(err(0.01, vec![n as u32 - 1], vec![0]));
        DecodingGraph::from_dem(&DetectorErrorModel {
            num_detectors: n,
            num_observables: 1,
            errors,
        })
    }

    #[test]
    fn empty_syndrome() {
        let decoder = GreedyMatchingDecoder::new(chain_graph(5));
        assert_eq!(decoder.decode(&[]), vec![false]);
    }

    #[test]
    fn boundary_matching_prefers_near_side() {
        let decoder = GreedyMatchingDecoder::new(chain_graph(7));
        assert_eq!(decoder.decode(&[0]), vec![false]);
        assert_eq!(decoder.decode(&[6]), vec![true]);
    }

    #[test]
    fn internal_pair_is_matched_without_flip() {
        let decoder = GreedyMatchingDecoder::new(chain_graph(7));
        assert_eq!(decoder.decode(&[2, 3]), vec![false]);
    }

    #[test]
    fn pair_at_opposite_ends_flips_once() {
        let decoder = GreedyMatchingDecoder::new(chain_graph(4));
        assert_eq!(decoder.decode(&[0, 3]), vec![true]);
    }

    #[test]
    fn three_defects_one_uses_boundary() {
        let decoder = GreedyMatchingDecoder::new(chain_graph(9));
        // Defects at 0,1 pair up; defect at 8 exits via the right boundary.
        assert_eq!(decoder.decode(&[0, 1, 8]), vec![true]);
    }

    #[test]
    fn agrees_with_union_find_on_simple_chains() {
        use crate::UnionFindDecoder;
        let graph = chain_graph(10);
        let greedy = GreedyMatchingDecoder::new(graph.clone());
        let uf = UnionFindDecoder::new(graph);
        for syndrome in [
            vec![],
            vec![0],
            vec![9],
            vec![4, 5],
            vec![0, 9],
            vec![1, 2, 8],
            vec![0, 1, 2, 3],
        ] {
            assert_eq!(
                greedy.decode(&syndrome),
                uf.decode(&syndrome),
                "decoders disagree on {syndrome:?}"
            );
        }
    }
}
