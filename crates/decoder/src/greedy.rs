//! Greedy matching decoder.
//!
//! A simple baseline decoder used for cross-validation of the union-find
//! decoder and for quick sanity checks: detection events are matched
//! greedily, always pairing the two closest unmatched defects (or a defect
//! and the boundary) under shortest-path distance in the weighted decoding
//! graph. The correction applied is the shortest path itself, so the
//! observable-flip prediction is the XOR of the observables along the path.
//!
//! Greedy matching is less accurate than minimum-weight perfect matching or
//! union-find but shares the same qualitative behaviour; agreement between
//! the two decoders on the vast majority of shots is one of the test-suite
//! invariants.
//!
//! The Dijkstra searches run over epoch-stamped distance arrays from the
//! shared [`DecodeScratch`], so repeated decoding allocates nothing and
//! never pays an O(nodes) reset.

use std::num::NonZeroU64;

use crate::batch::{DijkstraState, HeapEntry, MatchingScratch};
use crate::memo::next_memo_token;
use crate::{DecodeScratch, Decoder, DecodingGraph};

/// Greedy shortest-path matching decoder.
#[derive(Debug, Clone)]
pub struct GreedyMatchingDecoder {
    graph: DecodingGraph,
    boundary: usize,
    /// Indices of the boundary edges, precomputed so Dijkstra's boundary
    /// relaxation does not rescan the whole edge list.
    boundary_edges: Vec<usize>,
    /// Syndrome-memo ownership token (see [`crate::memo`]).
    memo_token: NonZeroU64,
}

/// Dijkstra from `source`, writing per-node distances and incoming edges
/// into `state`. Node index `graph.num_detectors()` is the virtual boundary.
pub(crate) fn shortest_paths(
    graph: &DecodingGraph,
    boundary: usize,
    boundary_edges: &[usize],
    source: usize,
    state: &mut DijkstraState,
    heap: &mut std::collections::BinaryHeap<HeapEntry>,
) {
    let n = graph.num_detectors() + 1;
    state.dist.begin(n);
    state.via.begin(n);
    heap.clear();
    state.dist.set(source, 0.0);
    heap.push(HeapEntry {
        distance: 0.0,
        node: source,
    });
    while let Some(HeapEntry { distance, node }) = heap.pop() {
        if distance > state.dist.get(node) {
            continue;
        }
        let incident: &[usize] = if node == boundary {
            boundary_edges
        } else {
            graph.incident_edges(node)
        };
        for &edge_index in incident {
            let edge = &graph.edges()[edge_index];
            let next = if edge.a == node {
                edge.b.unwrap_or(boundary)
            } else {
                edge.a
            };
            let candidate = distance + edge.weight.max(1e-9);
            if candidate < state.dist.get(next) {
                state.dist.set(next, candidate);
                state.via.set(next, edge_index as u32);
                heap.push(HeapEntry {
                    distance: candidate,
                    node: next,
                });
            }
        }
    }
}

/// XOR of the observables along the shortest path (described by `via`,
/// rooted at `source`) from `target` back to `source` into `flips`.
pub(crate) fn apply_path_observables(
    graph: &DecodingGraph,
    boundary: usize,
    state: &DijkstraState,
    source: usize,
    mut target: usize,
    flips: &mut [bool],
) {
    while target != source {
        let edge_index = state.via.get(target);
        assert_ne!(edge_index, u32::MAX, "path must exist");
        let edge = &graph.edges()[edge_index as usize];
        for &obs in &edge.observables {
            flips[obs as usize] ^= true;
        }
        target = if edge.a == target {
            edge.b.unwrap_or(boundary)
        } else {
            edge.a
        };
    }
}

/// The indices of a graph's boundary edges.
pub(crate) fn collect_boundary_edges(graph: &DecodingGraph) -> Vec<usize> {
    graph
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.b.is_none())
        .map(|(i, _)| i)
        .collect()
}

impl GreedyMatchingDecoder {
    /// Creates a decoder for the given decoding graph.
    pub fn new(graph: DecodingGraph) -> Self {
        let boundary = graph.num_detectors();
        let boundary_edges = collect_boundary_edges(&graph);
        GreedyMatchingDecoder {
            graph,
            boundary,
            boundary_edges,
            memo_token: next_memo_token(),
        }
    }

    /// Runs one Dijkstra per defect into the scratch slots
    /// (`s.dijkstras[i]` rooted at `defects[i]`). Shared with the exact
    /// decoder so both use the same search driver.
    pub(crate) fn run_searches(&self, defects: &[usize], s: &mut MatchingScratch) {
        s.ensure_defect_slots(defects.len());
        let mut heap = std::mem::take(&mut s.heap);
        for (i, &d) in defects.iter().enumerate() {
            shortest_paths(
                &self.graph,
                self.boundary,
                &self.boundary_edges,
                d,
                &mut s.dijkstras[i],
                &mut heap,
            );
        }
        s.heap = heap;
    }

    /// Greedy matching over precomputed Dijkstra states (`s.dijkstras[i]`
    /// rooted at `defects[i]`), shared with the exact decoder's fallback.
    #[allow(clippy::needless_range_loop)]
    pub(crate) fn match_greedily(
        &self,
        defects: &[usize],
        s: &mut MatchingScratch,
        prediction: &mut [bool],
    ) {
        // Candidate matchings: defect–defect and defect–boundary.
        s.candidates.clear();
        for i in 0..defects.len() {
            let dist = &s.dijkstras[i].dist;
            let to_boundary = dist.get(self.boundary);
            if to_boundary.is_finite() {
                s.candidates.push((to_boundary, i as u32, u32::MAX));
            }
            for j in (i + 1)..defects.len() {
                let to_j = dist.get(defects[j]);
                if to_j.is_finite() {
                    s.candidates.push((to_j, i as u32, j as u32));
                }
            }
        }
        // Stable sort keeps the original generation order among ties, which
        // keeps predictions identical to the pre-batch implementation.
        let mut candidates = std::mem::take(&mut s.candidates);
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        s.matched.clear();
        s.matched.resize(defects.len(), false);
        for &(_, i, j) in &candidates {
            let i = i as usize;
            if j == u32::MAX {
                if s.matched[i] {
                    continue;
                }
                s.matched[i] = true;
                apply_path_observables(
                    &self.graph,
                    self.boundary,
                    &s.dijkstras[i],
                    defects[i],
                    self.boundary,
                    prediction,
                );
            } else {
                let j = j as usize;
                if s.matched[i] || s.matched[j] {
                    continue;
                }
                s.matched[i] = true;
                s.matched[j] = true;
                apply_path_observables(
                    &self.graph,
                    self.boundary,
                    &s.dijkstras[i],
                    defects[i],
                    defects[j],
                    prediction,
                );
            }
        }
        s.candidates = candidates;
    }
}

impl Decoder for GreedyMatchingDecoder {
    fn decode_shot(
        &self,
        fired_detectors: &[usize],
        scratch: &mut DecodeScratch,
        prediction: &mut [bool],
    ) {
        if fired_detectors.is_empty() || self.graph.is_empty() {
            return;
        }
        let s = &mut scratch.matching;
        self.run_searches(fired_detectors, s);
        self.match_greedily(fired_detectors, s, prediction);
    }

    fn num_observables(&self) -> usize {
        self.graph.num_observables()
    }

    fn memo_token(&self) -> Option<NonZeroU64> {
        Some(self.memo_token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_sim::{DemError, DetectorErrorModel};

    fn err(p: f64, detectors: Vec<u32>, observables: Vec<u32>) -> DemError {
        DemError {
            probability: p,
            detectors,
            observables,
        }
    }

    fn chain_graph(n: usize) -> DecodingGraph {
        let mut errors = vec![err(0.01, vec![0], vec![])];
        for i in 0..n - 1 {
            errors.push(err(0.01, vec![i as u32, i as u32 + 1], vec![]));
        }
        errors.push(err(0.01, vec![n as u32 - 1], vec![0]));
        DecodingGraph::from_dem(&DetectorErrorModel {
            num_detectors: n,
            num_observables: 1,
            errors,
        })
    }

    #[test]
    fn empty_syndrome() {
        let decoder = GreedyMatchingDecoder::new(chain_graph(5));
        assert_eq!(decoder.decode(&[]), vec![false]);
    }

    #[test]
    fn boundary_matching_prefers_near_side() {
        let decoder = GreedyMatchingDecoder::new(chain_graph(7));
        assert_eq!(decoder.decode(&[0]), vec![false]);
        assert_eq!(decoder.decode(&[6]), vec![true]);
    }

    #[test]
    fn internal_pair_is_matched_without_flip() {
        let decoder = GreedyMatchingDecoder::new(chain_graph(7));
        assert_eq!(decoder.decode(&[2, 3]), vec![false]);
    }

    #[test]
    fn pair_at_opposite_ends_flips_once() {
        let decoder = GreedyMatchingDecoder::new(chain_graph(4));
        assert_eq!(decoder.decode(&[0, 3]), vec![true]);
    }

    #[test]
    fn three_defects_one_uses_boundary() {
        let decoder = GreedyMatchingDecoder::new(chain_graph(9));
        // Defects at 0,1 pair up; defect at 8 exits via the right boundary.
        assert_eq!(decoder.decode(&[0, 1, 8]), vec![true]);
    }

    #[test]
    fn agrees_with_union_find_on_simple_chains() {
        use crate::UnionFindDecoder;
        let graph = chain_graph(10);
        let greedy = GreedyMatchingDecoder::new(graph.clone());
        let uf = UnionFindDecoder::new(graph);
        for syndrome in [
            vec![],
            vec![0],
            vec![9],
            vec![4, 5],
            vec![0, 9],
            vec![1, 2, 8],
            vec![0, 1, 2, 3],
        ] {
            assert_eq!(
                greedy.decode(&syndrome),
                uf.decode(&syndrome),
                "decoders disagree on {syndrome:?}"
            );
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_decoding() {
        let decoder = GreedyMatchingDecoder::new(chain_graph(9));
        let mut scratch = DecodeScratch::new();
        for syndrome in [
            vec![0usize],
            vec![8],
            vec![3, 4],
            vec![0, 1, 8],
            vec![2, 5, 6, 7],
        ] {
            let mut reused = vec![false; 1];
            decoder.decode_shot(&syndrome, &mut scratch, &mut reused);
            assert_eq!(reused, decoder.decode(&syndrome), "syndrome {syndrome:?}");
        }
    }
}
