//! Optional, process-global telemetry hook for the batch decode paths.
//!
//! The decoder crate has no service or CLI of its own, so its
//! instrumentation is a **hook**: hosts (the streaming service, the sweep
//! tier, the bench harness, tests) install a [`qccd_telemetry::Registry`]
//! with [`install_telemetry`], and from then on every
//! [`Decoder::decode_batch`](crate::Decoder::decode_batch) /
//! [`Decoder::decode_batch_per_shot`](crate::Decoder::decode_batch_per_shot)
//! call is wrapped in a sampled stage span (`decoder.stage.word_decode` /
//! `decoder.stage.per_shot_decode`, with shots as the item count) and each
//! batch's [`CacheStats`] delta is folded into shared `decoder.*` counters
//! — the same aggregation the service's dense-tier metrics are a view of.
//!
//! # Cost contract
//!
//! With no hook installed (the default), a batch decode pays exactly one
//! relaxed `AtomicBool` load — the disabled path the criterion gate in
//! `qccd-bench/benches/decoder.rs` pins at <2% overhead on
//! `word_decode_100000_shots_d5`. With a hook installed, per *batch* (not
//! per shot) the wrapper takes one mutex on a rarely-written lock and two
//! sampled `Instant` reads; the decode inner loops are untouched.
//!
//! # Bit-identity
//!
//! The hook times around the batch call and reads counters the decode
//! already maintains; it never touches syndromes, predictions or the memo,
//! so instrumented and uninstrumented decodes are bit-identical by
//! construction (pinned in `tests/prop_word_parallel_identity.rs` with a
//! full-sampling registry installed).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use qccd_telemetry::{Registry, Stage};

use crate::memo::CacheStats;

/// Fast-path switch: true iff a hook is installed (even a disabled-registry
/// hook, so "installed but off" is measurable as its own mode).
static HOOK_INSTALLED: AtomicBool = AtomicBool::new(false);

/// The installed stage handles (cold lock: taken once per *batch*, only
/// while a hook is installed).
static HOOK: Mutex<Option<DecoderStages>> = Mutex::new(None);

/// Pre-registered handles for the decoder's pipeline stages.
#[derive(Debug, Clone)]
struct DecoderStages {
    word_decode: Stage,
    per_shot_decode: Stage,
    memo_hits: qccd_telemetry::Counter,
    memo_misses: qccd_telemetry::Counter,
    uncacheable: qccd_telemetry::Counter,
    dense_hits: qccd_telemetry::Counter,
    dense_misses: qccd_telemetry::Counter,
    cluster_lanes: qccd_telemetry::Counter,
}

impl DecoderStages {
    fn new(registry: &Registry) -> Self {
        DecoderStages {
            word_decode: registry.stage("decoder.stage.word_decode"),
            per_shot_decode: registry.stage("decoder.stage.per_shot_decode"),
            memo_hits: registry.counter("decoder.memo_hits"),
            memo_misses: registry.counter("decoder.memo_misses"),
            uncacheable: registry.counter("decoder.uncacheable"),
            dense_hits: registry.counter("decoder.dense_hits"),
            dense_misses: registry.counter("decoder.dense_misses"),
            cluster_lanes: registry.counter("decoder.cluster_lanes"),
        }
    }

    fn fold_cache_delta(&self, delta: &CacheStats) {
        self.memo_hits.add(delta.hits);
        self.memo_misses.add(delta.misses);
        self.uncacheable.add(delta.uncacheable);
        self.dense_hits.add(delta.dense_hits);
        self.dense_misses.add(delta.dense_misses);
        self.cluster_lanes.add(delta.cluster_lanes);
    }
}

/// Installs `registry` as the process-global decoder telemetry hook,
/// replacing any previous one. Installing a *disabled* registry still
/// routes batches through the (no-op) hook — that is the "disabled mode"
/// whose overhead the criterion gate measures.
pub fn install_telemetry(registry: &Registry) {
    let stages = DecoderStages::new(registry);
    *HOOK.lock().expect("decoder telemetry hook lock") = Some(stages);
    HOOK_INSTALLED.store(true, Ordering::Release);
}

/// Removes the hook, restoring the single-atomic-load fast path.
pub fn uninstall_telemetry() {
    HOOK_INSTALLED.store(false, Ordering::Release);
    *HOOK.lock().expect("decoder telemetry hook lock") = None;
}

/// Whether a hook is installed (one relaxed load — the batch fast path).
#[inline]
pub(crate) fn hook_installed() -> bool {
    HOOK_INSTALLED.load(Ordering::Relaxed)
}

/// Which batch path a [`timed_batch`] call is reporting for.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BatchPath {
    /// The word-parallel triage path.
    Word,
    /// The per-shot reference loop.
    PerShot,
}

/// Runs `decode` under the installed hook's stage span. The closure returns
/// the batch result together with the scratch's `CacheStats` **delta** for
/// the batch, which is folded into the shared counters. Caller must have
/// checked [`hook_installed`]; if the hook raced away, the batch simply
/// runs untimed.
pub(crate) fn timed_batch<R>(
    path: BatchPath,
    shots: u64,
    decode: impl FnOnce() -> (R, CacheStats),
) -> R {
    let stages = HOOK
        .lock()
        .expect("decoder telemetry hook lock")
        .as_ref()
        .cloned();
    let Some(stages) = stages else {
        return decode().0;
    };
    let stage = match path {
        BatchPath::Word => &stages.word_decode,
        BatchPath::PerShot => &stages.per_shot_decode,
    };
    let span = stage.start();
    let (result, delta) = decode();
    span.finish(shots);
    stages.fold_cache_delta(&delta);
    result
}
