//! Logical error rate estimation and below-threshold extrapolation.
//!
//! The paper's evaluation reports logical error rates down to 10⁻⁹ (§6.3),
//! far below what direct Monte-Carlo sampling can reach. Like the paper, we
//! sample the code distances that are reachable, fit the exponential
//! suppression law
//!
//! ```text
//! LER(d) ≈ A · exp(β·d)        (β < 0 below threshold)
//! ```
//!
//! and project to larger distances / lower target error rates. The fit also
//! yields the error-suppression factor Λ = LER(d) / LER(d+2) = exp(−2β).

use serde::{Deserialize, Serialize};

use qccd_circuit::MeasurementRef;
use qccd_sim::{sample_detectors, DetectorErrorModel, NoisyCircuit};

use crate::{Decoder, DecodingGraph, ExactMatchingDecoder, GreedyMatchingDecoder, UnionFindDecoder};

/// Which decoder to use for logical error rate estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecoderKind {
    /// Weighted union-find (the default).
    UnionFind,
    /// Greedy shortest-path matching (baseline / cross-check).
    GreedyMatching,
    /// Exact minimum-weight matching per shot (accuracy reference; falls
    /// back to greedy matching on shots with many defects).
    ExactMatching,
}

impl Default for DecoderKind {
    fn default() -> Self {
        DecoderKind::UnionFind
    }
}

/// The result of a Monte-Carlo logical error rate estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogicalErrorEstimate {
    /// Number of shots sampled.
    pub shots: usize,
    /// Number of shots in which the decoder's prediction disagreed with the
    /// actual logical observable flip.
    pub failures: usize,
    /// Per-shot logical error probability.
    pub logical_error_rate: f64,
    /// Binomial standard error of the estimate.
    pub std_error: f64,
}

impl LogicalErrorEstimate {
    /// Converts a per-shot error probability into a per-round probability,
    /// assuming independent rounds: `p_round = 1 − (1 − p_shot)^(1/rounds)`.
    pub fn per_round(&self, rounds: usize) -> f64 {
        if rounds == 0 {
            return self.logical_error_rate;
        }
        1.0 - (1.0 - self.logical_error_rate).powf(1.0 / rounds as f64)
    }
}

/// Estimates the logical error rate of a noisy circuit by sampling
/// `shots` executions and decoding each one.
///
/// A shot counts as a failure if the decoder's predicted flip of *any*
/// logical observable disagrees with the actual flip.
///
/// # Errors
///
/// Returns the first dangling [`MeasurementRef`] if the circuit's
/// annotations are inconsistent.
pub fn estimate_logical_error_rate(
    circuit: &NoisyCircuit,
    shots: usize,
    seed: u64,
    decoder_kind: DecoderKind,
) -> Result<LogicalErrorEstimate, MeasurementRef> {
    let dem = DetectorErrorModel::from_circuit(circuit)?;
    let graph = DecodingGraph::from_dem(&dem);
    let decoder: Box<dyn Decoder> = match decoder_kind {
        DecoderKind::UnionFind => Box::new(UnionFindDecoder::new(graph)),
        DecoderKind::GreedyMatching => Box::new(GreedyMatchingDecoder::new(graph)),
        DecoderKind::ExactMatching => Box::new(ExactMatchingDecoder::new(graph)),
    };
    let samples = sample_detectors(circuit, shots, seed)?;

    let num_observables = samples.num_observables();
    let mut failures = 0usize;
    for shot in 0..shots {
        let fired = samples.fired_detectors(shot);
        let prediction = decoder.decode(&fired);
        let mut failed = false;
        for obs in 0..num_observables {
            let actual = samples.observable_flipped(shot, obs);
            let predicted = prediction.get(obs).copied().unwrap_or(false);
            if actual != predicted {
                failed = true;
                break;
            }
        }
        if failed {
            failures += 1;
        }
    }

    let p = failures as f64 / shots as f64;
    Ok(LogicalErrorEstimate {
        shots,
        failures,
        logical_error_rate: p,
        std_error: (p * (1.0 - p) / shots as f64).sqrt(),
    })
}

/// An exponential fit `ln LER(d) = intercept + slope · d` across code
/// distances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LambdaFit {
    /// Intercept of the log-linear fit.
    pub log_intercept: f64,
    /// Slope of the log-linear fit per unit of code distance (negative below
    /// threshold).
    pub log_slope: f64,
}

impl LambdaFit {
    /// The error-suppression factor Λ = LER(d) / LER(d+2).
    pub fn lambda(&self) -> f64 {
        (-2.0 * self.log_slope).exp()
    }

    /// Returns `true` if the fit indicates operation below threshold (the
    /// logical error rate shrinks with distance).
    pub fn below_threshold(&self) -> bool {
        self.log_slope < 0.0
    }

    /// Projected logical error rate at code distance `d`.
    pub fn project(&self, distance: usize) -> f64 {
        (self.log_intercept + self.log_slope * distance as f64)
            .exp()
            .min(1.0)
    }

    /// The smallest code distance whose projected logical error rate is at or
    /// below `target`, or `None` if the fit is not below threshold.
    pub fn distance_for_target(&self, target: f64) -> Option<usize> {
        if !self.below_threshold() || target <= 0.0 {
            return None;
        }
        let d = (target.ln() - self.log_intercept) / self.log_slope;
        Some(d.ceil().max(1.0) as usize)
    }
}

/// Fits the exponential suppression law to `(distance, logical error rate)`
/// points using least squares in log space.
///
/// Points with a zero error rate are skipped (they carry no information for
/// the fit). Returns `None` if fewer than two usable points remain.
pub fn fit_lambda(points: &[(usize, f64)]) -> Option<LambdaFit> {
    let usable: Vec<(f64, f64)> = points
        .iter()
        .filter(|(_, p)| *p > 0.0)
        .map(|(d, p)| (*d as f64, p.ln()))
        .collect();
    if usable.len() < 2 {
        return None;
    }
    let n = usable.len() as f64;
    let sum_x: f64 = usable.iter().map(|(x, _)| x).sum();
    let sum_y: f64 = usable.iter().map(|(_, y)| y).sum();
    let sum_xx: f64 = usable.iter().map(|(x, _)| x * x).sum();
    let sum_xy: f64 = usable.iter().map(|(x, y)| x * y).sum();
    let denom = n * sum_xx - sum_x * sum_x;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sum_xy - sum_x * sum_y) / denom;
    let intercept = (sum_y - slope * sum_x) / n;
    Some(LambdaFit {
        log_intercept: intercept,
        log_slope: slope,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::{Instruction, QubitId};
    use qccd_qec::{memory_experiment, repetition_code, rotated_surface_code, MemoryBasis};
    use qccd_sim::NoiseChannel;

    /// Builds a memory experiment with simple code-capacity-style noise: a
    /// depolarising channel on every data qubit at the start of each round.
    fn noisy_memory(code: &qccd_qec::CodeLayout, rounds: usize, p: f64) -> NoisyCircuit {
        let exp = memory_experiment(code, rounds, MemoryBasis::Z);
        let data: Vec<QubitId> = code.data_qubits();
        let mut noisy = NoisyCircuit::new();
        noisy.pad_qubits(exp.circuit.num_qubits());
        // Track round boundaries: a round starts at each block of ancilla
        // resets. For simplicity, inject noise right before each ancilla
        // reset block by counting resets of the first ancilla.
        let first_ancilla = code.ancilla_qubits()[0];
        for instruction in exp.circuit.iter() {
            if let Instruction::Reset(q) = instruction {
                if *q == first_ancilla {
                    for &d in &data {
                        noisy.push_noise(NoiseChannel::Depolarize1 { qubit: d, p });
                    }
                }
            }
            noisy.push_gate(*instruction);
        }
        for detector in exp.circuit.detectors() {
            noisy.add_detector(detector.clone());
        }
        for observable in exp.circuit.observables() {
            noisy.add_observable(observable.clone());
        }
        noisy
    }

    #[test]
    fn noiseless_circuit_has_zero_logical_error_rate() {
        let code = repetition_code(3);
        let circuit = noisy_memory(&code, 2, 0.0);
        let est =
            estimate_logical_error_rate(&circuit, 2000, 3, DecoderKind::UnionFind).unwrap();
        assert_eq!(est.failures, 0);
        assert_eq!(est.logical_error_rate, 0.0);
    }

    #[test]
    fn repetition_code_suppresses_errors_below_physical_rate() {
        let p = 0.02;
        let code = repetition_code(5);
        let circuit = noisy_memory(&code, 3, p);
        let est =
            estimate_logical_error_rate(&circuit, 20_000, 5, DecoderKind::UnionFind).unwrap();
        // The decoder must beat the unprotected physical error rate by a
        // comfortable margin.
        assert!(
            est.logical_error_rate < p / 2.0,
            "logical error rate {} not suppressed below physical rate {p}",
            est.logical_error_rate
        );
    }

    #[test]
    fn larger_distance_gives_lower_logical_error_rate() {
        let p = 0.04;
        let mut rates = Vec::new();
        for d in [3usize, 7] {
            let code = repetition_code(d);
            let circuit = noisy_memory(&code, 2, p);
            let est =
                estimate_logical_error_rate(&circuit, 30_000, 11, DecoderKind::UnionFind).unwrap();
            rates.push(est.logical_error_rate);
        }
        assert!(
            rates[1] < rates[0],
            "distance 7 ({}) should beat distance 3 ({})",
            rates[1],
            rates[0]
        );
    }

    #[test]
    fn surface_code_decoding_runs_and_suppresses() {
        let p = 0.01;
        let code = rotated_surface_code(3);
        let circuit = noisy_memory(&code, 3, p);
        let est =
            estimate_logical_error_rate(&circuit, 10_000, 5, DecoderKind::UnionFind).unwrap();
        assert!(
            est.logical_error_rate < 3.0 * p,
            "surface code LER {} unexpectedly high",
            est.logical_error_rate
        );
    }

    #[test]
    fn decoders_agree_on_aggregate_behaviour() {
        let p = 0.03;
        let code = repetition_code(5);
        let circuit = noisy_memory(&code, 2, p);
        let uf =
            estimate_logical_error_rate(&circuit, 20_000, 9, DecoderKind::UnionFind).unwrap();
        let greedy =
            estimate_logical_error_rate(&circuit, 20_000, 9, DecoderKind::GreedyMatching).unwrap();
        // Same order of magnitude; greedy may be somewhat worse.
        assert!(greedy.logical_error_rate <= uf.logical_error_rate * 4.0 + 0.01);
        assert!(uf.logical_error_rate <= greedy.logical_error_rate * 4.0 + 0.01);
    }

    #[test]
    fn per_round_conversion() {
        let est = LogicalErrorEstimate {
            shots: 1000,
            failures: 100,
            logical_error_rate: 0.1,
            std_error: 0.0095,
        };
        let per_round = est.per_round(10);
        assert!(per_round < 0.011 && per_round > 0.0104);
        assert_eq!(est.per_round(0), 0.1);
    }

    #[test]
    fn lambda_fit_recovers_synthetic_slope() {
        // LER(d) = 0.3 · exp(−0.8 d).
        let points: Vec<(usize, f64)> = (3..=11)
            .step_by(2)
            .map(|d| (d, 0.3 * (-0.8 * d as f64).exp()))
            .collect();
        let fit = fit_lambda(&points).unwrap();
        assert!((fit.log_slope - (-0.8)).abs() < 1e-9);
        assert!(fit.below_threshold());
        assert!((fit.lambda() - (1.6f64).exp()).abs() < 1e-9);
        // Projection reproduces the inputs.
        assert!((fit.project(7) - 0.3 * (-5.6f64).exp()).abs() < 1e-12);
        // Distance needed for a 1e-9 target.
        let d = fit.distance_for_target(1e-9).unwrap();
        assert!(fit.project(d) <= 1e-9);
        assert!(fit.project(d.saturating_sub(1)) > 1e-9);
    }

    #[test]
    fn lambda_fit_requires_two_points() {
        assert!(fit_lambda(&[(3, 0.1)]).is_none());
        assert!(fit_lambda(&[(3, 0.0), (5, 0.0)]).is_none());
        assert!(fit_lambda(&[(3, 0.1), (5, 0.05)]).is_some());
    }

    #[test]
    fn above_threshold_fit_has_no_target_distance() {
        let fit = fit_lambda(&[(3, 0.01), (5, 0.02), (7, 0.04)]).unwrap();
        assert!(!fit.below_threshold());
        assert_eq!(fit.distance_for_target(1e-9), None);
    }
}
