//! Logical error rate estimation and below-threshold extrapolation.
//!
//! The paper's evaluation reports logical error rates down to 10⁻⁹ (§6.3),
//! far below what direct Monte-Carlo sampling can reach. Like the paper, we
//! sample the code distances that are reachable, fit the exponential
//! suppression law
//!
//! ```text
//! LER(d) ≈ A · exp(β·d)        (β < 0 below threshold)
//! ```
//!
//! and project to larger distances / lower target error rates. The fit also
//! yields the error-suppression factor Λ = LER(d) / LER(d+2) = exp(−2β).
//!
//! # The estimation pipeline
//!
//! [`estimate_logical_error_rate_with`] is a chunked, parallel Monte-Carlo
//! pipeline: shots are cut into bit-packed [`SyndromeChunk`]s by
//! `qccd_sim`'s chunked sampler (peak memory `O(chunk × detectors)`), each
//! chunk is decoded with [`Decoder::decode_batch`] against a per-worker
//! [`DecodeScratch`](crate::DecodeScratch), and failures are counted with
//! word-parallel XOR + popcount. Because every canonical sampling block has
//! a seed derived only from `(seed, block index)` and results are folded in
//! block order, a fixed `(shots, seed)` produces a **bit-identical**
//! estimate regardless of the configured chunk size or the number of rayon
//! threads.
//!
//! With [`EstimatorConfig::target_std_error`] or
//! [`EstimatorConfig::max_failures`] set, the pipeline stops early once the
//! criterion is met on a *canonical prefix* of sampling **blocks** (chunks
//! are merely groups of consecutive blocks, so the stopping decision never
//! sees chunk boundaries): workers may race ahead, but any block beyond the
//! deterministic stopping point is discarded, so early-stopped estimates are
//! bit-identical regardless of the configured chunk size *and* the thread
//! count — the same invariance the un-stopped estimate enjoys.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use qccd_circuit::MeasurementRef;
use qccd_sim::{
    bias_circuit, sample_detector_chunks, DetectorChunkSampler, DetectorErrorModel, NoisyCircuit,
    SyndromeChunk, CANONICAL_BLOCK_SHOTS,
};

use crate::{
    CacheStats, DecodeScratch, Decoder, DecodingGraph, ExactMatchingDecoder, GreedyMatchingDecoder,
    MemoConfig, MemoSnapshot, UnionFindDecoder,
};

/// Which decoder to use for logical error rate estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DecoderKind {
    /// Weighted union-find (the default).
    #[default]
    UnionFind,
    /// Greedy shortest-path matching (baseline / cross-check).
    GreedyMatching,
    /// Exact minimum-weight matching per shot (accuracy reference; falls
    /// back to greedy matching on shots with many defects).
    ExactMatching,
}

impl DecoderKind {
    /// Builds the corresponding decoder over a decoding graph.
    pub fn build(self, graph: DecodingGraph) -> Box<dyn Decoder + Send + Sync> {
        match self {
            DecoderKind::UnionFind => Box::new(UnionFindDecoder::new(graph)),
            DecoderKind::GreedyMatching => Box::new(GreedyMatchingDecoder::new(graph)),
            DecoderKind::ExactMatching => Box::new(ExactMatchingDecoder::new(graph)),
        }
    }
}

/// Tuning knobs of the Monte-Carlo pipeline. The defaults match
/// [`estimate_logical_error_rate`]: all shots, chunked for parallel
/// throughput, no early stopping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// Shots per work chunk (rounded up to whole canonical sampling blocks
    /// of [`CANONICAL_BLOCK_SHOTS`] shots). Bounds peak memory and sets the
    /// scheduling granularity; it never changes the sampled bits.
    pub chunk_shots: usize,
    /// Worker threads (`None` = rayon's default for this context).
    pub num_threads: Option<usize>,
    /// Stop once the binomial standard error of the estimate drops to this
    /// value (checked only after at least one failure has been seen).
    pub target_std_error: Option<f64>,
    /// Stop once this many failures have been observed.
    pub max_failures: Option<usize>,
    /// Syndrome-memo configuration installed in every worker's
    /// [`DecodeScratch`](crate::DecodeScratch) (memoization is on by
    /// default; it never changes decoded bits).
    pub memo: MemoConfig,
    /// Decode chunks on the word-parallel [`Decoder::decode_batch`] path
    /// (the default) or, when `false`, on the per-shot reference loop
    /// [`Decoder::decode_batch_per_shot`]. Bit-identical either way — the
    /// switch exists for the identity property tests and the
    /// word-vs-per-shot benchmarks.
    pub word_decode: bool,
    /// Warm the memo once per estimate and share the snapshot with every
    /// worker thread (see [`Decoder::warm_memo_snapshot`]); on by default.
    /// Sharing never changes decoded bits.
    pub shared_memo: bool,
    /// Importance-sampling bias factor. When set, shots are sampled from a
    /// biased copy of the circuit with every noise probability scaled by
    /// this factor (clamped at 0.5), decoded against the *original*
    /// circuit's decoding graph, and each failing shot is reweighted by its
    /// likelihood ratio — an unbiased rare-event estimator with delta-method
    /// error bars (see [`qccd_sim::bias_circuit`]). Still deterministic per
    /// `(shots, seed)`: weights are folded in canonical block order, so the
    /// estimate is bit-identical across chunk sizes and thread counts. Must
    /// be a finite factor ≥ 1; `None` (the default) is plain Monte Carlo.
    pub importance_bias: Option<f64>,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            chunk_shots: 4 * CANONICAL_BLOCK_SHOTS,
            num_threads: None,
            target_std_error: None,
            max_failures: None,
            memo: MemoConfig::default(),
            word_decode: true,
            shared_memo: true,
            importance_bias: None,
        }
    }
}

impl EstimatorConfig {
    /// Overrides the chunk size.
    pub fn with_chunk_shots(mut self, chunk_shots: usize) -> Self {
        self.chunk_shots = chunk_shots;
        self
    }

    /// Pins the worker thread count.
    pub fn with_num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    /// Enables early stopping at a target standard error.
    pub fn with_target_std_error(mut self, target: f64) -> Self {
        self.target_std_error = Some(target);
        self
    }

    /// Enables early stopping after a failure count.
    pub fn with_max_failures(mut self, failures: usize) -> Self {
        self.max_failures = Some(failures);
        self
    }

    /// Overrides the syndrome-memo configuration (pass
    /// [`MemoConfig::disabled`] to decode every shot from scratch).
    pub fn with_memo(mut self, memo: MemoConfig) -> Self {
        self.memo = memo;
        self
    }

    /// Selects the word-parallel (default) or per-shot reference decode
    /// loop.
    pub fn with_word_decode(mut self, word_decode: bool) -> Self {
        self.word_decode = word_decode;
        self
    }

    /// Enables or disables the shared warm memo snapshot.
    pub fn with_shared_memo(mut self, shared_memo: bool) -> Self {
        self.shared_memo = shared_memo;
        self
    }

    /// Enables importance sampling with the given bias factor (a finite
    /// factor ≥ 1 by which every noise probability is scaled, clamped at
    /// 0.5). See [`EstimatorConfig::importance_bias`].
    pub fn with_importance_bias(mut self, bias: f64) -> Self {
        self.importance_bias = Some(bias);
        self
    }

    fn early_stopping(&self) -> bool {
        self.target_std_error.is_some() || self.max_failures.is_some()
    }
}

/// The result of a Monte-Carlo logical error rate estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogicalErrorEstimate {
    /// Number of shots actually decoded (less than requested when early
    /// stopping triggered).
    pub shots: usize,
    /// Number of shots in which the decoder's prediction disagreed with the
    /// actual logical observable flip.
    pub failures: usize,
    /// Per-shot logical error probability.
    pub logical_error_rate: f64,
    /// Binomial standard error of the estimate (delta-method standard error
    /// for importance-sampled estimates). When **zero** failures were
    /// observed this instead carries the one-sided 95% Clopper–Pearson upper
    /// bound `1 − 0.05^(1/shots)` (≈ 3/shots, the rule of three): reporting
    /// σ = 0 there would claim an exactly-known rate of 0 from finite data
    /// and silently bias every downstream fit. Use
    /// [`LogicalErrorEstimate::is_upper_bound`] to tell the two apart.
    pub std_error: f64,
}

impl LogicalErrorEstimate {
    /// Converts a per-shot error probability into a per-round probability,
    /// assuming independent rounds: `p_round = 1 − (1 − p_shot)^(1/rounds)`.
    pub fn per_round(&self, rounds: usize) -> f64 {
        if rounds == 0 {
            return self.logical_error_rate;
        }
        // Guard the saturated case: `powf` on a zero base is well defined
        // but the clamp also shields callers from rates slightly above 1
        // (e.g. after aggregation arithmetic).
        if self.logical_error_rate >= 1.0 {
            return 1.0;
        }
        1.0 - (1.0 - self.logical_error_rate).powf(1.0 / rounds as f64)
    }

    /// Returns `true` when the estimate observed zero failures, in which
    /// case [`LogicalErrorEstimate::std_error`] is a 95% upper bound on the
    /// rate rather than a standard error, and tables should render the point
    /// as `< bound`, not `0`.
    pub fn is_upper_bound(&self) -> bool {
        self.failures == 0 && self.shots > 0
    }

    /// The one-sided 95% Clopper–Pearson upper bound on the rate when zero
    /// failures were observed, `None` otherwise.
    pub fn upper_bound_95(&self) -> Option<f64> {
        if self.is_upper_bound() {
            Some(zero_failure_upper_bound(self.shots))
        } else {
            None
        }
    }

    fn from_counts(shots: usize, failures: usize) -> Self {
        let p = failures as f64 / shots as f64;
        let std_error = if failures == 0 && shots > 0 {
            zero_failure_upper_bound(shots)
        } else {
            (p * (1.0 - p) / shots as f64).sqrt()
        };
        LogicalErrorEstimate {
            shots,
            failures,
            logical_error_rate: p,
            std_error,
        }
    }

    /// Builds an importance-sampled estimate from per-failing-shot weight
    /// sums: `p̂ = Σwf / N` with the delta-method variance
    /// `Var(p̂) = (Σ(wf)² / N − p̂²) / N`. A weighted estimate with zero
    /// failures falls back to the plain-MC Clopper–Pearson bound, which is
    /// conservative (the biased channel makes failures strictly *more*
    /// likely, so observing none is stronger evidence than under plain MC).
    fn from_weighted(shots: usize, failures: usize, weight_sum: f64, weight_sq_sum: f64) -> Self {
        let n = shots as f64;
        let p = weight_sum / n;
        let std_error = if failures == 0 && shots > 0 {
            zero_failure_upper_bound(shots)
        } else {
            ((weight_sq_sum / n - p * p).max(0.0) / n).sqrt()
        };
        LogicalErrorEstimate {
            shots,
            failures,
            logical_error_rate: p,
            std_error,
        }
    }
}

/// The one-sided 95% Clopper–Pearson upper bound on a rate after observing
/// zero failures in `shots` trials: `1 − 0.05^(1/shots)` (≈ 3/shots for
/// large `shots` — the "rule of three").
pub fn zero_failure_upper_bound(shots: usize) -> f64 {
    debug_assert!(shots > 0);
    1.0 - 0.05f64.powf(1.0 / shots as f64)
}

/// A logical-error estimate together with the decoders' aggregate cache
/// statistics, as returned by [`estimate_logical_error_rate_report`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateReport {
    /// The Monte-Carlo estimate (identical to what
    /// [`estimate_logical_error_rate_with`] returns).
    pub estimate: LogicalErrorEstimate,
    /// Cache statistics summed over every chunk that contributed to the
    /// estimate. Under early stopping the estimate cuts at a canonical
    /// *block*, but the chunk containing the stopping block was decoded in
    /// one piece, so its cache delta is included whole — counters therefore
    /// cover every decoded chunk of the canonical prefix. The word-path
    /// counters (`quiet_words` / `sparse_words` / `dense_words`) and
    /// `uncacheable` depend only on the sampled syndromes and the memo cap,
    /// so they are invariant across thread counts; the hit/miss *split*
    /// (and `prefilled`/`word_merged`) can shift with worker scheduling
    /// because each worker warms its own memo copy. Pin
    /// [`EstimatorConfig::num_threads`] to 1 for fully deterministic
    /// counters.
    pub cache: CacheStats,
}

/// Per-chunk tally, folded in canonical chunk order.
#[derive(Debug, Clone)]
struct ChunkOutcome {
    shots: usize,
    cache: CacheStats,
    /// Failures per canonical sampling block of this chunk, in block order.
    /// Blocks — not chunks — are the units of the early-stop decision, so
    /// the stopping point is invariant under the chunk size.
    block_failures: Vec<u32>,
    /// Importance-sampling `(Σw, Σw²)` over the *failing* shots of each
    /// block, in block order and summed in ascending shot order within each
    /// block (empty for plain Monte Carlo). Folding these per block in
    /// canonical order keeps the weighted estimate bit-identical across
    /// chunk sizes and thread counts despite f64 non-associativity.
    block_weights: Vec<(f64, f64)>,
}

/// Counts the shots of a decoded chunk whose predicted observable flips
/// disagree with the actual flips, word-parallel. Returns the per-block
/// failure counts (in canonical block order), the per-block failing-shot
/// weight sums (empty when `weights` is `None`), and the cache-counter
/// delta this chunk contributed. `weights` carries the per-shot fire
/// log-ratio sums (local shot order) and the shot-independent base term.
fn count_failures(
    chunk: &SyndromeChunk,
    decoder: &dyn Decoder,
    scratch: &mut DecodeScratch,
    config: &EstimatorConfig,
    snapshot: Option<&MemoSnapshot>,
    weights: Option<(&[f64], f64)>,
) -> (Vec<u32>, Vec<(f64, f64)>, CacheStats) {
    scratch.set_memo_config(config.memo);
    // Baseline for this chunk's counter delta. When the memo will engage
    // for a decoder the scratch does not belong to yet, the claim (or
    // snapshot adoption) below zeroes the counters before any counting, so
    // the baseline is zero; capturing it this way keeps the delta exact —
    // including the prefill the (re-)warming contributes to the worker's
    // first chunk. When the memo stays inert (disabled, no token, >64
    // observables) the counters cannot move, so the delta is zero either
    // way.
    let engages =
        config.memo.enabled() && decoder.memo_token().is_some() && decoder.num_observables() <= 64;
    let before = if engages && scratch.memo.owner() != decoder.memo_token() {
        CacheStats::default()
    } else {
        scratch.cache_stats()
    };
    if let Some(snapshot) = snapshot {
        scratch.adopt_memo_snapshot(snapshot);
    }
    let prediction = if config.word_decode {
        decoder.decode_batch(chunk, scratch)
    } else {
        decoder.decode_batch_per_shot(chunk, scratch)
    };
    let cache = scratch.cache_stats().since(&before);
    let words = chunk.words();
    let mut mismatch = vec![0u64; words];
    for observable in 0..chunk.num_observables() {
        let actual = chunk.observable_plane(observable);
        let predicted = prediction.plane(observable);
        for (m, (&a, &p)) in mismatch.iter_mut().zip(actual.iter().zip(predicted)) {
            *m |= a ^ p;
        }
    }
    if let Some(last) = mismatch.last_mut() {
        *last &= chunk.tail_mask();
    }
    // Chunks are whole canonical blocks (the last block of the last chunk
    // may be ragged), so every block occupies a fixed window of plane words
    // and the per-block failure split falls out of one popcount pass.
    const BLOCK_WORDS: usize = CANONICAL_BLOCK_SHOTS / 64;
    let block_failures: Vec<u32> = mismatch
        .chunks(BLOCK_WORDS)
        .map(|words| words.iter().map(|w| w.count_ones()).sum())
        .collect();
    let block_weights: Vec<(f64, f64)> = match weights {
        Some((log_weights, base)) => mismatch
            .chunks(BLOCK_WORDS)
            .enumerate()
            .map(|(block, words)| {
                // Walk failing shots in ascending shot order (words ascend,
                // trailing_zeros scans bits low to high) so the per-block
                // sums are a pure function of the sampled bits.
                let mut weight_sum = 0.0;
                let mut weight_sq_sum = 0.0;
                for (w, &bits) in words.iter().enumerate() {
                    let mut rest = bits;
                    while rest != 0 {
                        let shot = (block * BLOCK_WORDS + w) * 64 + rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        let weight = (base + log_weights[shot]).exp();
                        weight_sum += weight;
                        weight_sq_sum += weight * weight;
                    }
                }
                (weight_sum, weight_sq_sum)
            })
            .collect(),
        None => Vec::new(),
    };
    (block_failures, block_weights, cache)
}

/// Running totals of the canonical block fold: shot/failure counts plus the
/// importance-sampling weight sums over failing shots (zero for plain Monte
/// Carlo). Weight sums are only ever advanced block by block in canonical
/// order, so the resulting f64s are bit-identical across chunk sizes and
/// thread counts.
#[derive(Debug, Default, Clone, Copy)]
struct RunningTotals {
    shots: usize,
    failures: usize,
    weight_sum: f64,
    weight_sq_sum: f64,
}

impl RunningTotals {
    /// Folds in one canonical block of a chunk outcome.
    fn add_block(&mut self, outcome: &ChunkOutcome, block: usize) {
        self.shots += shots_in_block(outcome.shots, block);
        self.failures += outcome.block_failures[block] as usize;
        if let Some(&(weight_sum, weight_sq_sum)) = outcome.block_weights.get(block) {
            self.weight_sum += weight_sum;
            self.weight_sq_sum += weight_sq_sum;
        }
    }

    /// The estimate at the current totals.
    fn estimate(&self, weighted: bool) -> LogicalErrorEstimate {
        if weighted {
            LogicalErrorEstimate::from_weighted(
                self.shots,
                self.failures,
                self.weight_sum,
                self.weight_sq_sum,
            )
        } else {
            LogicalErrorEstimate::from_counts(self.shots, self.failures)
        }
    }
}

/// Whether the early-stop criterion is met at the given running totals.
fn stop_criterion_met(totals: &RunningTotals, config: &EstimatorConfig) -> bool {
    if let Some(max_failures) = config.max_failures {
        if totals.failures >= max_failures {
            return true;
        }
    }
    if let Some(target) = config.target_std_error {
        if totals.failures > 0 {
            let estimate = totals.estimate(config.importance_bias.is_some());
            if estimate.std_error <= target {
                return true;
            }
        }
    }
    false
}

/// Number of shots in block `block` of a chunk holding `chunk_shots` shots.
fn shots_in_block(chunk_shots: usize, block: usize) -> usize {
    (chunk_shots - block * CANONICAL_BLOCK_SHOTS).min(CANONICAL_BLOCK_SHOTS)
}

/// Scans the canonical **blocks** of `outcomes[from..]`, advancing the
/// running `(shots, failures)` totals block by block, and returns the first
/// `(chunk index, block index within chunk)` at which the early-stop
/// criterion is met, if any. Blocks are chunk-size-invariant, so the
/// stopping point (and therefore the estimate) is a pure function of the
/// sampled bits. Resumable so the wave loop never rescans already-counted
/// chunks.
fn prefix_stop_block_from(
    outcomes: &[ChunkOutcome],
    from: usize,
    totals: &mut RunningTotals,
    config: &EstimatorConfig,
) -> Option<(usize, usize)> {
    for (index, outcome) in outcomes.iter().enumerate().skip(from) {
        for block in 0..outcome.block_failures.len() {
            totals.add_block(outcome, block);
            if stop_criterion_met(totals, config) {
                return Some((index, block));
            }
        }
    }
    None
}

fn run_pipeline(
    sampler: &DetectorChunkSampler<'_>,
    decoder: &(dyn Decoder + Send + Sync),
    config: &EstimatorConfig,
    weights: Option<(&[f64], f64)>,
) -> EstimateReport {
    let num_chunks = sampler.num_chunks();
    // Warm the memo once and share the read-mostly snapshot with every
    // worker: adoption clones the prefilled table instead of re-deriving it
    // per worker (and per sweep point). Purely a scheduling optimisation —
    // the snapshot holds only predictions this decoder produced.
    let snapshot = if config.shared_memo {
        let mut warm = DecodeScratch::with_memo_config(config.memo);
        decoder.warm_memo_snapshot(sampler.num_detectors(), &mut warm)
    } else {
        None
    };
    let decode_chunk = |index: usize| {
        // One scratch per worker thread, reused across every chunk that
        // worker decodes.
        thread_local! {
            static SCRATCH: std::cell::RefCell<DecodeScratch> =
                std::cell::RefCell::new(DecodeScratch::new());
        }
        let (chunk, log_weights) = match weights {
            Some((ratios, _)) => {
                let mut log_weights = Vec::new();
                let chunk = sampler.sample_chunk_weighted(index, ratios, &mut log_weights);
                (chunk, Some(log_weights))
            }
            None => (sampler.sample_chunk(index), None),
        };
        let shot_weights = match (&log_weights, weights) {
            (Some(log_weights), Some((_, base))) => Some((log_weights.as_slice(), base)),
            _ => None,
        };
        let (block_failures, block_weights, cache) = SCRATCH.with(|scratch| {
            count_failures(
                &chunk,
                decoder,
                &mut scratch.borrow_mut(),
                config,
                snapshot.as_ref(),
                shot_weights,
            )
        });
        ChunkOutcome {
            shots: chunk.num_shots(),
            cache,
            block_failures,
            block_weights,
        }
    };

    let outcomes = if config.early_stopping() {
        // Process chunks in contiguous waves so the stopping decision is a
        // pure function of the canonical block order: workers may decode a
        // few chunks past the stopping point, but blocks beyond it are
        // discarded below, so the estimate depends on neither the thread
        // count nor the chunk size.
        let wave = 2 * rayon::current_num_threads().max(1);
        let mut collected = Vec::with_capacity(num_chunks.min(4 * wave));
        let mut running = RunningTotals::default();
        let mut next = 0;
        let mut stop = None;
        while next < num_chunks {
            let end = (next + wave).min(num_chunks);
            collected.extend(
                (next..end)
                    .into_par_iter()
                    .map(decode_chunk)
                    .collect::<Vec<_>>(),
            );
            stop = prefix_stop_block_from(&collected, next, &mut running, config);
            next = end;
            if stop.is_some() {
                break;
            }
        }
        (collected, stop)
    } else {
        let outcomes: Vec<ChunkOutcome> =
            (0..num_chunks).into_par_iter().map(decode_chunk).collect();
        (outcomes, None)
    };
    let (outcomes, stop) = outcomes;

    let mut totals = RunningTotals::default();
    let mut cache = CacheStats::default();
    let (full_chunks, partial) = match stop {
        // The stopping chunk contributes only its blocks up to (and
        // including) the stopping block; its cache delta still covers the
        // whole chunk (the chunk was decoded in one piece — see
        // `EstimateReport::cache`).
        Some((chunk, block)) => (chunk, Some(block)),
        None => (outcomes.len(), None),
    };
    // Fold block by block in canonical order — never per-chunk subtotals —
    // so the weighted f64 sums are chunk-size-invariant.
    for outcome in &outcomes[..full_chunks] {
        for block in 0..outcome.block_failures.len() {
            totals.add_block(outcome, block);
        }
        cache.merge(&outcome.cache);
    }
    if let Some(block) = partial {
        let outcome = &outcomes[full_chunks];
        for b in 0..=block {
            totals.add_block(outcome, b);
        }
        cache.merge(&outcome.cache);
    }
    EstimateReport {
        estimate: totals.estimate(weights.is_some()),
        cache,
    }
}

/// Estimates the logical error rate of a noisy circuit by sampling and
/// batch-decoding `shots` executions with the given pipeline configuration.
///
/// A shot counts as a failure if the decoder's predicted flip of *any*
/// logical observable disagrees with the actual flip. See the
/// [module docs](self) for the determinism contract.
///
/// # Errors
///
/// Returns the first dangling [`MeasurementRef`] if the circuit's
/// annotations are inconsistent.
pub fn estimate_logical_error_rate_with(
    circuit: &NoisyCircuit,
    shots: usize,
    seed: u64,
    decoder_kind: DecoderKind,
    config: &EstimatorConfig,
) -> Result<LogicalErrorEstimate, MeasurementRef> {
    estimate_logical_error_rate_report(circuit, shots, seed, decoder_kind, config)
        .map(|report| report.estimate)
}

/// [`estimate_logical_error_rate_with`] returning the full
/// [`EstimateReport`]: the estimate plus the aggregate decoder cache
/// statistics (word-triage verdicts, hit/miss counters) summed over the
/// chunks that contributed to it. The estimate itself is identical; see
/// [`EstimateReport::cache`] for which counters are scheduling-invariant.
///
/// # Errors
///
/// Returns the first dangling [`MeasurementRef`] if the circuit's
/// annotations are inconsistent.
pub fn estimate_logical_error_rate_report(
    circuit: &NoisyCircuit,
    shots: usize,
    seed: u64,
    decoder_kind: DecoderKind,
    config: &EstimatorConfig,
) -> Result<EstimateReport, MeasurementRef> {
    // The decoder (and its decoding graph / fault priors) always comes from
    // the *original* circuit: importance sampling biases only what is
    // sampled, never how syndromes are decoded, so biased and plain runs
    // estimate the same quantity.
    let dem = DetectorErrorModel::from_circuit(circuit)?;
    let graph = DecodingGraph::from_dem(&dem);
    let decoder = decoder_kind.build(graph);
    let biased = config
        .importance_bias
        .map(|bias| bias_circuit(circuit, bias));
    let (sampled_circuit, weights) = match &biased {
        Some(biased) => (
            &biased.circuit,
            Some((biased.fire_log_ratios.as_slice(), biased.base_log_weight)),
        ),
        None => (circuit, None),
    };
    let sampler = sample_detector_chunks(sampled_circuit, shots, seed, config.chunk_shots)?;
    let report = match config.num_threads {
        Some(threads) => rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool construction cannot fail")
            .install(|| run_pipeline(&sampler, decoder.as_ref(), config, weights)),
        None => run_pipeline(&sampler, decoder.as_ref(), config, weights),
    };
    Ok(report)
}

/// Estimates the logical error rate with the default pipeline configuration
/// (all `shots` decoded, parallel across the machine).
///
/// # Errors
///
/// Returns the first dangling [`MeasurementRef`] if the circuit's
/// annotations are inconsistent.
pub fn estimate_logical_error_rate(
    circuit: &NoisyCircuit,
    shots: usize,
    seed: u64,
    decoder_kind: DecoderKind,
) -> Result<LogicalErrorEstimate, MeasurementRef> {
    estimate_logical_error_rate_with(
        circuit,
        shots,
        seed,
        decoder_kind,
        &EstimatorConfig::default(),
    )
}

/// An exponential fit `ln LER(d) = intercept + slope · d` across code
/// distances, with the parameter standard errors of the (weighted) least
/// squares solution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LambdaFit {
    /// Intercept of the log-linear fit.
    pub log_intercept: f64,
    /// Slope of the log-linear fit per unit of code distance (negative below
    /// threshold).
    pub log_slope: f64,
    /// Standard error of [`LambdaFit::log_intercept`] under the per-point
    /// measurement variances handed to [`fit_lambda_weighted`] (reported in
    /// units of the assumed unit variance for the unweighted [`fit_lambda`]).
    pub log_intercept_std_error: f64,
    /// Standard error of [`LambdaFit::log_slope`] (same convention).
    pub log_slope_std_error: f64,
    /// Number of input points excluded from the fit because their error
    /// rate was non-positive (typically zero-failure points). A non-zero
    /// count means the fit rests on fewer points than were measured —
    /// report it alongside Λ so sparse fits are visibly degraded rather
    /// than quietly narrower.
    pub dropped_points: usize,
}

impl LambdaFit {
    /// The error-suppression factor Λ = LER(d) / LER(d+2).
    pub fn lambda(&self) -> f64 {
        (-2.0 * self.log_slope).exp()
    }

    /// Standard error of Λ by the delta method: `σ_Λ ≈ 2 Λ σ_slope`.
    pub fn lambda_std_error(&self) -> f64 {
        2.0 * self.lambda() * self.log_slope_std_error
    }

    /// Confidence interval `(low, high)` for Λ at `z` standard errors of the
    /// slope (e.g. `z = 1.96` for 95%), computed on the log scale so the
    /// interval is always positive: `Λ_{lo,hi} = exp(−2(slope ± z·σ_slope))`.
    pub fn lambda_confidence_interval(&self, z: f64) -> (f64, f64) {
        let lo = (-2.0 * (self.log_slope + z * self.log_slope_std_error)).exp();
        let hi = (-2.0 * (self.log_slope - z * self.log_slope_std_error)).exp();
        (lo, hi)
    }

    /// Returns `true` if the fit indicates operation below threshold (the
    /// logical error rate shrinks with distance).
    pub fn below_threshold(&self) -> bool {
        self.log_slope < 0.0
    }

    /// Projected logical error rate at code distance `d`.
    pub fn project(&self, distance: usize) -> f64 {
        (self.log_intercept + self.log_slope * distance as f64)
            .exp()
            .min(1.0)
    }

    /// The smallest code distance whose projected logical error rate is at or
    /// below `target`, or `None` if the fit is not below threshold.
    pub fn distance_for_target(&self, target: f64) -> Option<usize> {
        if !self.below_threshold() || target <= 0.0 {
            return None;
        }
        let d = (target.ln() - self.log_intercept) / self.log_slope;
        Some(d.ceil().max(1.0) as usize)
    }

    /// The required-distance range at the slope confidence edges: evaluates
    /// [`LambdaFit::distance_for_target`] with the slope shifted by
    /// `∓ z·σ_slope` (the same slope-only convention as
    /// [`LambdaFit::lambda_confidence_interval`], e.g. `z = 1.96` for 95%).
    ///
    /// Returns `(optimistic, pessimistic)`: the steeper-suppression edge
    /// needs the *smaller* distance, the shallower edge the larger one. The
    /// pessimistic edge is `None` when the shallow slope is not below
    /// threshold — at that confidence edge no finite distance reaches the
    /// target. Returns `None` overall exactly when
    /// [`LambdaFit::distance_for_target`] does.
    pub fn distance_range_for_target(&self, target: f64, z: f64) -> Option<(usize, Option<usize>)> {
        self.distance_for_target(target)?;
        let at_slope = |slope: f64| {
            LambdaFit {
                log_slope: slope,
                ..*self
            }
            .distance_for_target(target)
        };
        let steep = at_slope(self.log_slope - z.abs() * self.log_slope_std_error);
        let shallow = at_slope(self.log_slope + z.abs() * self.log_slope_std_error);
        Some((
            steep.expect("steeper-than-point slope stays below threshold"),
            shallow,
        ))
    }
}

/// Fits the exponential suppression law to `(distance, logical error rate)`
/// points using least squares in log space.
///
/// Points with a zero error rate are skipped (they carry no information for
/// the fit). Returns `None` if fewer than two usable points remain. All
/// usable points are weighted equally; the reported parameter standard
/// errors assume unit variance on each `ln LER` value — prefer
/// [`fit_lambda_weighted`] when per-point Monte-Carlo standard errors are
/// available.
pub fn fit_lambda(points: &[(usize, f64)]) -> Option<LambdaFit> {
    let weighted: Vec<(usize, f64, f64)> = points.iter().map(|&(d, p)| (d, p, p)).collect();
    fit_lambda_weighted(&weighted)
}

/// Fits the exponential suppression law to `(distance, logical error rate,
/// standard error)` points using **weighted** least squares in log space.
///
/// Each point is weighted by the inverse variance of its `ln LER` value,
/// `w = (p / σ_p)²` (delta method: `σ_{ln p} = σ_p / p`), so tight
/// early-stopped estimates pull the fit harder than noisy ones. The
/// parameter standard errors follow the standard known-variance formulas
/// (`Var(slope) = Σw / Δ`, `Var(intercept) = Σwx² / Δ`) and feed the
/// [`LambdaFit::lambda_confidence_interval`].
///
/// Points with a non-positive error rate are skipped and counted in
/// [`LambdaFit::dropped_points`]; a point with a non-finite or non-positive
/// standard error gets `σ_{ln p} = 1` (unit variance) so it still
/// participates without dominating. Returns `None` if fewer than two usable
/// points remain or all usable points share one distance.
pub fn fit_lambda_weighted(points: &[(usize, f64, f64)]) -> Option<LambdaFit> {
    // (x, y, w) with x = distance, y = ln p, w = 1/σ_y² (σ_y floored to keep
    // weights finite for saturated estimates like p = 1, σ = 0).
    let usable: Vec<(f64, f64, f64)> = points
        .iter()
        .filter(|(_, p, _)| *p > 0.0)
        .map(|&(d, p, sigma)| {
            let sigma_y = if sigma.is_finite() && sigma > 0.0 {
                (sigma / p).max(1e-9)
            } else {
                1.0
            };
            (d as f64, p.ln(), 1.0 / (sigma_y * sigma_y))
        })
        .collect();
    if usable.len() < 2 {
        return None;
    }
    let sum_w: f64 = usable.iter().map(|(_, _, w)| w).sum();
    let sum_x: f64 = usable.iter().map(|(x, _, w)| w * x).sum();
    let sum_y: f64 = usable.iter().map(|(_, y, w)| w * y).sum();
    let sum_xx: f64 = usable.iter().map(|(x, _, w)| w * x * x).sum();
    let sum_xy: f64 = usable.iter().map(|(x, y, w)| w * x * y).sum();
    let denom = sum_w * sum_xx - sum_x * sum_x;
    // Relative degeneracy test: with large weights the determinant of a
    // single-distance system is a rounding residue of `Σw·Σwx²`, not an
    // absolute epsilon. `<=` so an exactly-zero determinant (e.g. every
    // point at distance 0, where the scale itself is 0) is also rejected.
    if !denom.is_finite() || denom.abs() <= 1e-9 * sum_w.abs() * sum_xx.abs() {
        return None;
    }
    let slope = (sum_w * sum_xy - sum_x * sum_y) / denom;
    let intercept = (sum_y - slope * sum_x) / sum_w;
    Some(LambdaFit {
        log_intercept: intercept,
        log_slope: slope,
        log_intercept_std_error: (sum_xx / denom).sqrt(),
        log_slope_std_error: (sum_w / denom).sqrt(),
        dropped_points: points.len() - usable.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::{Instruction, QubitId};
    use qccd_qec::{memory_experiment, repetition_code, rotated_surface_code, MemoryBasis};
    use qccd_sim::NoiseChannel;

    /// Builds a memory experiment with simple code-capacity-style noise: a
    /// depolarising channel on every data qubit at the start of each round.
    fn noisy_memory(code: &qccd_qec::CodeLayout, rounds: usize, p: f64) -> NoisyCircuit {
        let exp = memory_experiment(code, rounds, MemoryBasis::Z);
        let data: Vec<QubitId> = code.data_qubits();
        let mut noisy = NoisyCircuit::new();
        noisy.pad_qubits(exp.circuit.num_qubits());
        // Track round boundaries: a round starts at each block of ancilla
        // resets. For simplicity, inject noise right before each ancilla
        // reset block by counting resets of the first ancilla.
        let first_ancilla = code.ancilla_qubits()[0];
        for instruction in exp.circuit.iter() {
            if let Instruction::Reset(q) = instruction {
                if *q == first_ancilla {
                    for &d in &data {
                        noisy.push_noise(NoiseChannel::Depolarize1 { qubit: d, p });
                    }
                }
            }
            noisy.push_gate(*instruction);
        }
        for detector in exp.circuit.detectors() {
            noisy.add_detector(detector.clone());
        }
        for observable in exp.circuit.observables() {
            noisy.add_observable(observable.clone());
        }
        noisy
    }

    #[test]
    fn noiseless_circuit_has_zero_logical_error_rate() {
        let code = repetition_code(3);
        let circuit = noisy_memory(&code, 2, 0.0);
        let est = estimate_logical_error_rate(&circuit, 2000, 3, DecoderKind::UnionFind).unwrap();
        assert_eq!(est.failures, 0);
        assert_eq!(est.logical_error_rate, 0.0);
        // Zero observed failures must not be reported as an exactly-known
        // zero: std_error carries the 95% Clopper–Pearson upper bound.
        assert!(est.is_upper_bound());
        assert_eq!(est.std_error, zero_failure_upper_bound(2000));
        assert_eq!(est.upper_bound_95(), Some(est.std_error));
    }

    #[test]
    fn zero_failure_upper_bound_follows_rule_of_three() {
        // Exact: 1 − 0.05^(1/n); for large n this approaches 3/n.
        let bound = zero_failure_upper_bound(10_000);
        assert!((bound - 3.0 / 10_000.0).abs() < 2e-6, "bound {bound}");
        // A point estimate with failures does NOT report a bound.
        let est = LogicalErrorEstimate::from_counts(1000, 10);
        assert!(!est.is_upper_bound());
        assert_eq!(est.upper_bound_95(), None);
        assert!((est.std_error - (0.01f64 * 0.99 / 1000.0).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn repetition_code_suppresses_errors_below_physical_rate() {
        let p = 0.02;
        let code = repetition_code(5);
        let circuit = noisy_memory(&code, 3, p);
        let est = estimate_logical_error_rate(&circuit, 20_000, 5, DecoderKind::UnionFind).unwrap();
        // The decoder must beat the unprotected physical error rate by a
        // comfortable margin.
        assert!(
            est.logical_error_rate < p / 2.0,
            "logical error rate {} not suppressed below physical rate {p}",
            est.logical_error_rate
        );
    }

    #[test]
    fn larger_distance_gives_lower_logical_error_rate() {
        let p = 0.04;
        let mut rates = Vec::new();
        for d in [3usize, 7] {
            let code = repetition_code(d);
            let circuit = noisy_memory(&code, 2, p);
            let est =
                estimate_logical_error_rate(&circuit, 30_000, 11, DecoderKind::UnionFind).unwrap();
            rates.push(est.logical_error_rate);
        }
        assert!(
            rates[1] < rates[0],
            "distance 7 ({}) should beat distance 3 ({})",
            rates[1],
            rates[0]
        );
    }

    #[test]
    fn surface_code_decoding_runs_and_suppresses() {
        let p = 0.01;
        let code = rotated_surface_code(3);
        let circuit = noisy_memory(&code, 3, p);
        let est = estimate_logical_error_rate(&circuit, 10_000, 5, DecoderKind::UnionFind).unwrap();
        assert!(
            est.logical_error_rate < 3.0 * p,
            "surface code LER {} unexpectedly high",
            est.logical_error_rate
        );
    }

    #[test]
    fn decoders_agree_on_aggregate_behaviour() {
        let p = 0.03;
        let code = repetition_code(5);
        let circuit = noisy_memory(&code, 2, p);
        let uf = estimate_logical_error_rate(&circuit, 20_000, 9, DecoderKind::UnionFind).unwrap();
        let greedy =
            estimate_logical_error_rate(&circuit, 20_000, 9, DecoderKind::GreedyMatching).unwrap();
        // Same order of magnitude; greedy may be somewhat worse.
        assert!(greedy.logical_error_rate <= uf.logical_error_rate * 4.0 + 0.01);
        assert!(uf.logical_error_rate <= greedy.logical_error_rate * 4.0 + 0.01);
    }

    #[test]
    fn estimate_is_invariant_under_chunk_size_and_threads() {
        let p = 0.03;
        let code = repetition_code(5);
        let circuit = noisy_memory(&code, 2, p);
        let shots = 3 * CANONICAL_BLOCK_SHOTS + 500;
        let reference = estimate_logical_error_rate_with(
            &circuit,
            shots,
            42,
            DecoderKind::UnionFind,
            &EstimatorConfig::default()
                .with_chunk_shots(1)
                .with_num_threads(1),
        )
        .unwrap();
        for (chunk_shots, threads) in [
            (CANONICAL_BLOCK_SHOTS, 2),
            (2 * CANONICAL_BLOCK_SHOTS, 3),
            (usize::MAX, 4),
        ] {
            let config = EstimatorConfig::default()
                .with_chunk_shots(chunk_shots)
                .with_num_threads(threads);
            let estimate = estimate_logical_error_rate_with(
                &circuit,
                shots,
                42,
                DecoderKind::UnionFind,
                &config,
            )
            .unwrap();
            assert_eq!(
                (estimate.shots, estimate.failures),
                (reference.shots, reference.failures),
                "chunk_shots={chunk_shots} threads={threads}"
            );
            assert_eq!(estimate.logical_error_rate, reference.logical_error_rate);
        }
    }

    #[test]
    fn early_stop_on_failure_count_decodes_fewer_shots() {
        let p = 0.05;
        let code = repetition_code(3);
        let circuit = noisy_memory(&code, 2, p);
        let shots = 16 * CANONICAL_BLOCK_SHOTS;
        let config = EstimatorConfig::default()
            .with_chunk_shots(CANONICAL_BLOCK_SHOTS)
            .with_max_failures(10);
        let est =
            estimate_logical_error_rate_with(&circuit, shots, 7, DecoderKind::UnionFind, &config)
                .unwrap();
        assert!(est.failures >= 10, "stop criterion reached");
        assert!(
            est.shots < shots,
            "early stop should decode fewer than {shots} shots, got {}",
            est.shots
        );
        // Deterministic across thread counts.
        for threads in [1, 3] {
            let again = estimate_logical_error_rate_with(
                &circuit,
                shots,
                7,
                DecoderKind::UnionFind,
                &config.with_num_threads(threads),
            )
            .unwrap();
            assert_eq!((again.shots, again.failures), (est.shots, est.failures));
        }
    }

    #[test]
    fn early_stop_is_invariant_under_chunk_size() {
        // The stop decision is canonical in block units, so the early-stopped
        // estimate must be bit-identical whatever the chunk size (and thread
        // count) — not just deterministic per chunk size.
        let p = 0.05;
        let code = repetition_code(3);
        let circuit = noisy_memory(&code, 2, p);
        let shots = 16 * CANONICAL_BLOCK_SHOTS;
        let reference = estimate_logical_error_rate_with(
            &circuit,
            shots,
            7,
            DecoderKind::UnionFind,
            &EstimatorConfig::default()
                .with_chunk_shots(CANONICAL_BLOCK_SHOTS)
                .with_num_threads(1)
                .with_max_failures(10),
        )
        .unwrap();
        for (chunk_shots, threads) in [
            (CANONICAL_BLOCK_SHOTS, 3),
            (3 * CANONICAL_BLOCK_SHOTS, 2),
            (5 * CANONICAL_BLOCK_SHOTS, 1),
            (usize::MAX, 4),
        ] {
            let est = estimate_logical_error_rate_with(
                &circuit,
                shots,
                7,
                DecoderKind::UnionFind,
                &EstimatorConfig::default()
                    .with_chunk_shots(chunk_shots)
                    .with_num_threads(threads)
                    .with_max_failures(10),
            )
            .unwrap();
            assert_eq!(
                (est.shots, est.failures),
                (reference.shots, reference.failures),
                "chunk_shots={chunk_shots} threads={threads}"
            );
        }
        // Same invariance for the std-error criterion.
        let by_std = |chunk_shots: usize| {
            estimate_logical_error_rate_with(
                &circuit,
                shots,
                7,
                DecoderKind::UnionFind,
                &EstimatorConfig::default()
                    .with_chunk_shots(chunk_shots)
                    .with_target_std_error(5e-3),
            )
            .unwrap()
        };
        let a = by_std(CANONICAL_BLOCK_SHOTS);
        let b = by_std(4 * CANONICAL_BLOCK_SHOTS);
        assert_eq!((a.shots, a.failures), (b.shots, b.failures));
    }

    #[test]
    fn early_stop_cuts_mid_chunk_at_the_stopping_block() {
        // With one huge chunk, the block-canonical stop must cut inside it:
        // the decoded-shot count matches the fine-chunked run, not the whole
        // chunk.
        let p = 0.05;
        let code = repetition_code(3);
        let circuit = noisy_memory(&code, 2, p);
        let shots = 16 * CANONICAL_BLOCK_SHOTS;
        let config = EstimatorConfig::default()
            .with_chunk_shots(usize::MAX)
            .with_max_failures(10);
        let est =
            estimate_logical_error_rate_with(&circuit, shots, 7, DecoderKind::UnionFind, &config)
                .unwrap();
        assert!(est.failures >= 10);
        assert!(
            est.shots < shots,
            "the single-chunk run must still stop early ({} shots)",
            est.shots
        );
        assert_eq!(est.shots % CANONICAL_BLOCK_SHOTS, 0, "cuts at a block");
    }

    #[test]
    fn early_stop_on_std_error_reaches_target() {
        let p = 0.08;
        let code = repetition_code(3);
        let circuit = noisy_memory(&code, 2, p);
        let config = EstimatorConfig::default()
            .with_chunk_shots(CANONICAL_BLOCK_SHOTS)
            .with_target_std_error(5e-3);
        let est = estimate_logical_error_rate_with(
            &circuit,
            32 * CANONICAL_BLOCK_SHOTS,
            13,
            DecoderKind::UnionFind,
            &config,
        )
        .unwrap();
        assert!(
            est.std_error <= 5e-3,
            "std error {} above target",
            est.std_error
        );
        assert!(est.shots < 32 * CANONICAL_BLOCK_SHOTS);
    }

    #[test]
    fn per_round_conversion() {
        let est = LogicalErrorEstimate {
            shots: 1000,
            failures: 100,
            logical_error_rate: 0.1,
            std_error: 0.0095,
        };
        let per_round = est.per_round(10);
        assert!(per_round < 0.011 && per_round > 0.0104);
        assert_eq!(est.per_round(0), 0.1);
    }

    #[test]
    fn per_round_saturates_at_one() {
        let est = LogicalErrorEstimate {
            shots: 10,
            failures: 10,
            logical_error_rate: 1.0,
            std_error: 0.0,
        };
        assert_eq!(est.per_round(5), 1.0);
        assert_eq!(est.per_round(0), 1.0);
    }

    #[test]
    fn decoder_kind_defaults_to_union_find() {
        assert_eq!(DecoderKind::default(), DecoderKind::UnionFind);
    }

    #[test]
    fn lambda_fit_recovers_synthetic_slope() {
        // LER(d) = 0.3 · exp(−0.8 d).
        let points: Vec<(usize, f64)> = (3..=11)
            .step_by(2)
            .map(|d| (d, 0.3 * (-0.8 * d as f64).exp()))
            .collect();
        let fit = fit_lambda(&points).unwrap();
        assert!((fit.log_slope - (-0.8)).abs() < 1e-9);
        assert!(fit.below_threshold());
        assert!((fit.lambda() - (1.6f64).exp()).abs() < 1e-9);
        // Projection reproduces the inputs.
        assert!((fit.project(7) - 0.3 * (-5.6f64).exp()).abs() < 1e-12);
        // Distance needed for a 1e-9 target.
        let d = fit.distance_for_target(1e-9).unwrap();
        assert!(fit.project(d) <= 1e-9);
        assert!(fit.project(d.saturating_sub(1)) > 1e-9);
    }

    #[test]
    fn lambda_fit_requires_two_points() {
        assert!(fit_lambda(&[(3, 0.1)]).is_none());
        assert!(fit_lambda(&[(3, 0.0), (5, 0.0)]).is_none());
        assert!(fit_lambda(&[(3, 0.1), (5, 0.05)]).is_some());
    }

    #[test]
    fn weighted_fit_matches_hand_computed_collinear_case() {
        // x = [3, 5, 7], y = ln p = [−1, −2, −3] (exactly collinear), with
        // σ_p/p = [0.5, 1.0, 0.5] so the weights are w = 1/σ_y² = [4, 1, 4].
        // Hand-computed weighted sums: Σw = 9, Σwx = 45, Σwy = −18,
        // Σwx² = 257, Σwxy = −106, Δ = 9·257 − 45² = 288, so
        // slope = (9·(−106) − 45·(−18))/288 = −144/288 = −1/2,
        // intercept = (−18 + 45/2)/9 = 1/2,
        // Var(slope) = Σw/Δ = 9/288 = 1/32, Var(intercept) = Σwx²/Δ = 257/288.
        let p = |y: f64| y.exp();
        let points = [
            (3, p(-1.0), 0.5 * p(-1.0)),
            (5, p(-2.0), 1.0 * p(-2.0)),
            (7, p(-3.0), 0.5 * p(-3.0)),
        ];
        let fit = fit_lambda_weighted(&points).unwrap();
        assert!((fit.log_slope - (-0.5)).abs() < 1e-12);
        assert!((fit.log_intercept - 0.5).abs() < 1e-12);
        assert!((fit.log_slope_std_error - (1.0f64 / 32.0).sqrt()).abs() < 1e-12);
        assert!((fit.log_intercept_std_error - (257.0f64 / 288.0).sqrt()).abs() < 1e-12);
        assert!((fit.lambda() - 1.0f64.exp()).abs() < 1e-12);
        assert!(
            (fit.lambda_std_error() - 2.0 * 1.0f64.exp() * (1.0f64 / 32.0).sqrt()).abs() < 1e-12
        );
    }

    #[test]
    fn weighted_fit_matches_hand_computed_non_collinear_case() {
        // x = [3, 5, 7], y = [0, −1, −3], w = [4, 1, 1]: Σw = 6, Σwx = 24,
        // Σwy = −4, Σwx² = 110, Σwxy = −26, Δ = 660 − 576 = 84, so
        // slope = (−156 + 96)/84 = −5/7 and intercept = (−4 + 120/7)/6 =
        // 46/21 — distinct from the unweighted slope of −3/4, which is the
        // point of the weighting.
        let p = |y: f64| y.exp();
        let points = [
            (3, p(0.0), 0.5 * p(0.0)),
            (5, p(-1.0), 1.0 * p(-1.0)),
            (7, p(-3.0), 1.0 * p(-3.0)),
        ];
        let fit = fit_lambda_weighted(&points).unwrap();
        assert!((fit.log_slope - (-5.0 / 7.0)).abs() < 1e-12);
        assert!((fit.log_intercept - 46.0 / 21.0).abs() < 1e-12);
        assert!((fit.log_slope_std_error - (6.0f64 / 84.0).sqrt()).abs() < 1e-12);
        let unweighted = fit_lambda(&[(3, p(0.0)), (5, p(-1.0)), (7, p(-3.0))]).unwrap();
        assert!((unweighted.log_slope - (-0.75)).abs() < 1e-12);
    }

    #[test]
    fn lambda_confidence_interval_brackets_lambda() {
        let fit =
            fit_lambda_weighted(&[(3, 0.1, 0.01), (5, 0.02, 0.004), (7, 0.004, 0.001)]).unwrap();
        let (lo, hi) = fit.lambda_confidence_interval(1.96);
        assert!(lo > 0.0);
        assert!(lo < fit.lambda() && fit.lambda() < hi);
        // The z = 0 interval collapses onto the point estimate.
        let (l0, h0) = fit.lambda_confidence_interval(0.0);
        assert!((l0 - fit.lambda()).abs() < 1e-12 && (h0 - fit.lambda()).abs() < 1e-12);
    }

    #[test]
    fn weighted_fit_tolerates_degenerate_sigmas() {
        // σ = 0 and non-finite σ fall back to unit log-variance instead of
        // producing infinite weights; the fit stays finite and usable.
        let fit =
            fit_lambda_weighted(&[(3, 1.0, 0.0), (5, 0.1, f64::NAN), (7, 0.01, 0.002)]).unwrap();
        assert!(fit.log_slope.is_finite());
        assert!(fit.log_slope_std_error.is_finite());
        // Identical distances cannot determine a slope — including distance
        // 0, where the determinant and its scale are both exactly zero.
        assert!(fit_lambda_weighted(&[(3, 0.1, 0.01), (3, 0.2, 0.01)]).is_none());
        assert!(fit_lambda_weighted(&[(0, 0.1, 0.01), (0, 0.2, 0.01)]).is_none());
        assert!(fit_lambda(&[(0, 0.1), (0, 0.2)]).is_none());
    }

    #[test]
    fn weighted_fit_surfaces_dropped_points() {
        let fit = fit_lambda_weighted(&[
            (3, 0.1, 0.01),
            (5, 0.02, 0.004),
            (7, 0.0, 0.0),
            (9, -1.0, 0.0),
        ])
        .unwrap();
        assert_eq!(fit.dropped_points, 2);
        let clean =
            fit_lambda_weighted(&[(3, 0.1, 0.01), (5, 0.02, 0.004), (7, 0.004, 0.001)]).unwrap();
        assert_eq!(clean.dropped_points, 0);
    }

    #[test]
    fn importance_sampling_agrees_with_plain_mc() {
        let p = 0.02;
        let code = repetition_code(5);
        let circuit = noisy_memory(&code, 2, p);
        let shots = 16 * CANONICAL_BLOCK_SHOTS;
        let plain = estimate_logical_error_rate_with(
            &circuit,
            shots,
            21,
            DecoderKind::UnionFind,
            &EstimatorConfig::default(),
        )
        .unwrap();
        let biased = estimate_logical_error_rate_with(
            &circuit,
            shots,
            21,
            DecoderKind::UnionFind,
            &EstimatorConfig::default().with_importance_bias(5.0),
        )
        .unwrap();
        assert!(plain.failures > 0, "plain MC must converge at this point");
        assert!(
            biased.failures > plain.failures,
            "the biased channel must make failures more common ({} vs {})",
            biased.failures,
            plain.failures
        );
        let sigma = (plain.std_error.powi(2) + biased.std_error.powi(2)).sqrt();
        let gap = (plain.logical_error_rate - biased.logical_error_rate).abs();
        assert!(
            gap <= 3.0 * sigma,
            "importance-sampled {} vs plain {} differ by {gap} > 3σ = {}",
            biased.logical_error_rate,
            plain.logical_error_rate,
            3.0 * sigma
        );
    }

    #[test]
    fn importance_sampled_estimate_is_invariant_under_chunk_size_and_threads() {
        let p = 0.02;
        let code = repetition_code(5);
        let circuit = noisy_memory(&code, 2, p);
        let shots = 3 * CANONICAL_BLOCK_SHOTS + 500;
        let config = EstimatorConfig::default().with_importance_bias(6.0);
        let reference = estimate_logical_error_rate_with(
            &circuit,
            shots,
            42,
            DecoderKind::UnionFind,
            &config.with_chunk_shots(1).with_num_threads(1),
        )
        .unwrap();
        assert!(reference.failures > 0);
        for (chunk_shots, threads) in [
            (CANONICAL_BLOCK_SHOTS, 2),
            (2 * CANONICAL_BLOCK_SHOTS, 3),
            (usize::MAX, 4),
        ] {
            let estimate = estimate_logical_error_rate_with(
                &circuit,
                shots,
                42,
                DecoderKind::UnionFind,
                &config
                    .with_chunk_shots(chunk_shots)
                    .with_num_threads(threads),
            )
            .unwrap();
            assert_eq!(
                (estimate.shots, estimate.failures),
                (reference.shots, reference.failures),
                "chunk_shots={chunk_shots} threads={threads}"
            );
            // The weighted f64 sums must be bit-identical, not just close.
            assert_eq!(
                estimate.logical_error_rate.to_bits(),
                reference.logical_error_rate.to_bits(),
                "chunk_shots={chunk_shots} threads={threads}"
            );
            assert_eq!(estimate.std_error.to_bits(), reference.std_error.to_bits());
        }
    }

    #[test]
    fn bias_one_reduces_to_plain_monte_carlo() {
        // With bias = 1 every weight is exactly 1, so the weighted estimate
        // must reproduce the plain counts and (up to expression rounding)
        // the binomial standard error.
        let p = 0.03;
        let code = repetition_code(3);
        let circuit = noisy_memory(&code, 2, p);
        let shots = 2 * CANONICAL_BLOCK_SHOTS;
        let plain = estimate_logical_error_rate_with(
            &circuit,
            shots,
            9,
            DecoderKind::UnionFind,
            &EstimatorConfig::default(),
        )
        .unwrap();
        let weighted = estimate_logical_error_rate_with(
            &circuit,
            shots,
            9,
            DecoderKind::UnionFind,
            &EstimatorConfig::default().with_importance_bias(1.0),
        )
        .unwrap();
        assert_eq!(weighted.shots, plain.shots);
        assert_eq!(weighted.failures, plain.failures);
        assert!((weighted.logical_error_rate - plain.logical_error_rate).abs() < 1e-12);
        assert!((weighted.std_error - plain.std_error).abs() < 1e-12);
    }

    #[test]
    fn above_threshold_fit_has_no_target_distance() {
        let fit = fit_lambda(&[(3, 0.01), (5, 0.02), (7, 0.04)]).unwrap();
        assert!(!fit.below_threshold());
        assert_eq!(fit.distance_for_target(1e-9), None);
        assert_eq!(fit.distance_range_for_target(1e-9, 1.96), None);
    }

    #[test]
    fn distance_range_brackets_the_point_distance() {
        let fit =
            fit_lambda_weighted(&[(3, 0.1, 0.01), (5, 0.02, 0.004), (7, 0.004, 0.001)]).unwrap();
        let d = fit.distance_for_target(1e-9).unwrap();
        let (lo, hi) = fit.distance_range_for_target(1e-9, 1.96).unwrap();
        let hi = hi.expect("shallow edge still below threshold here");
        assert!(lo <= d && d <= hi, "{lo} <= {d} <= {hi}");
        // z = 0 collapses onto the point estimate.
        assert_eq!(fit.distance_range_for_target(1e-9, 0.0), Some((d, Some(d))));
        // A fit whose slope uncertainty spans zero has an unbounded
        // pessimistic edge.
        let wobbly = LambdaFit {
            log_intercept: -1.0,
            log_slope: -0.1,
            log_intercept_std_error: 0.1,
            log_slope_std_error: 0.2,
            dropped_points: 0,
        };
        let (lo, hi) = wobbly.distance_range_for_target(1e-9, 1.96).unwrap();
        assert!(lo >= 1);
        assert_eq!(hi, None);
    }
}
