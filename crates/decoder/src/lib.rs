//! # qccd-decoder
//!
//! Surface-code decoders and logical-error-rate estimation for the QCCD
//! architecture study:
//!
//! * [`DecodingGraph`] — matching graph construction from a detector error
//!   model (with hyperedge decomposition);
//! * [`UnionFindDecoder`] — weighted union-find decoder (the default);
//! * [`GreedyMatchingDecoder`] — greedy shortest-path matching baseline;
//! * [`estimate_logical_error_rate`] — Monte-Carlo logical error rate
//!   estimation;
//! * [`fit_lambda`] / [`LambdaFit`] — below-threshold extrapolation used to
//!   project error rates to the 10⁻⁹ regime, exactly as the paper does for
//!   its feasibility targets.
//!
//! # Batch decoding
//!
//! The paper's sweeps decode millions of shots per configuration, so the
//! [`Decoder`] trait is built around a batched hot path:
//!
//! * [`Decoder::decode_batch`] consumes a bit-packed [`SyndromeChunk`]
//!   (produced by `qccd_sim`'s chunked sampler) and returns a bit-packed
//!   [`PredictionChunk`]. Quiet shots — no detector fired — are skipped with
//!   a single word-level scan, and all per-shot working state lives in a
//!   reusable [`DecodeScratch`], so the loop performs no allocations.
//! * [`Decoder::decode_shot`] is the per-shot primitive each decoder
//!   implements against the scratch buffers.
//! * [`Decoder::decode`] is the convenient per-shot adapter (it builds a
//!   fresh scratch per call, so prefer `decode_batch` anywhere throughput
//!   matters).
//!
//! [`estimate_logical_error_rate_with`] drives `decode_batch` over sampled
//! chunks in parallel with deterministic per-block seeds: for a fixed
//! `(shots, seed)` the estimate is bit-identical regardless of chunk size or
//! thread count.
//!
//! # Syndrome memoization
//!
//! Below threshold the same small defect sets (single defects, adjacent
//! pairs) recur across millions of shots, so [`Decoder::decode_batch`]
//! consults a per-decoder [memo table](memo) before running
//! union-find/matching: predictions of defect sets with at most
//! [`MemoConfig::max_defects`] defects (default 4) are cached inside the
//! worker's [`DecodeScratch`] and replayed on recurrence. When a decoder
//! first claims a memo, every *single-defect* prediction is prefilled from
//! one `decode_shot` per detector (one shortest path each for the matching
//! decoders), so workers never pay a cold-start miss on the most common
//! defect sets and hit rates are independent of chunk order; prefilled
//! entries are counted by [`CacheStats::prefilled`]. The memo is a
//! **pure cache** — memoized decoding is bit-identical to the uncached path
//! (property-tested in `tests/prop_memo_decode.rs` for all three
//! [`DecoderKind`]s), hit rates are observable via [`CacheStats`], and
//! [`MemoConfig::disabled`] restores the raw path. On the paper's deep
//! below-threshold workloads the memo answers ~90% of noisy shots and more
//! than doubles batch decode throughput (see the `decoder` criterion bench).
//!
//! # Sharded sweeps
//!
//! [`SweepEngine`] shards whole `(architecture, distance, decoder, noise)`
//! evaluation points across an outer worker pool that composes with the
//! inner chunk parallelism above. Every point gets the deterministic seed
//! [`sweep_seed`]`(engine seed, point index)` and results return in input
//! order, so sweeps are bit-reproducible for any thread count — the golden
//! regression tests in `qccd-bench` pin the whole pipeline end to end.
//!
//! # Example
//!
//! ```
//! use qccd_decoder::{Decoder, DecodingGraph, UnionFindDecoder};
//! use qccd_sim::{DemError, DetectorErrorModel};
//!
//! // A two-detector toy model: one shared error and two boundary errors.
//! let dem = DetectorErrorModel {
//!     num_detectors: 2,
//!     num_observables: 1,
//!     errors: vec![
//!         DemError { probability: 0.01, detectors: vec![0], observables: vec![] },
//!         DemError { probability: 0.01, detectors: vec![0, 1], observables: vec![] },
//!         DemError { probability: 0.01, detectors: vec![1], observables: vec![0] },
//!     ],
//! };
//! let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
//! assert_eq!(decoder.decode(&[0, 1]), vec![false]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod dem_graph;
mod greedy;
mod ler;
pub mod memo;
mod mwpm;
mod scratch;
mod sweep;
mod union_find;

pub use batch::{DecodeScratch, PredictionChunk, SyndromeChunk};
pub use dem_graph::{DecodingEdge, DecodingGraph, DetectorIndex};
pub use greedy::GreedyMatchingDecoder;
pub use ler::{
    estimate_logical_error_rate, estimate_logical_error_rate_with, fit_lambda, fit_lambda_weighted,
    DecoderKind, EstimatorConfig, LambdaFit, LogicalErrorEstimate,
};
pub use memo::{CacheStats, MemoConfig, DEFAULT_MEMO_MAX_DEFECTS, MEMO_KEY_CAPACITY};
pub use mwpm::{ExactMatchingDecoder, DEFAULT_MAX_EXACT_DEFECTS};
pub use sweep::{sweep_seed, SweepEngine, SweepTask};
pub use union_find::UnionFindDecoder;

/// A syndrome decoder: given the fired detectors of each shot, predict which
/// logical observables were flipped.
///
/// Implementors provide [`Decoder::decode_shot`] against reusable
/// [`DecodeScratch`] buffers; the batched and per-shot entry points are
/// provided adapters.
pub trait Decoder {
    /// Number of logical observables this decoder predicts.
    fn num_observables(&self) -> usize;

    /// Decodes one shot into `prediction` (one slot per observable, pre-set
    /// to `false` by the caller), using `scratch` for all working state.
    fn decode_shot(
        &self,
        fired_detectors: &[usize],
        scratch: &mut DecodeScratch,
        prediction: &mut [bool],
    );

    /// Decodes one shot, allocating the result. `fired_detectors` lists the
    /// indices of the detectors that fired; the return value has one entry
    /// per logical observable, `true` meaning "the decoder believes this
    /// observable was flipped".
    ///
    /// This adapter builds a fresh [`DecodeScratch`] per call; use
    /// [`Decoder::decode_batch`] on the hot path.
    fn decode(&self, fired_detectors: &[usize]) -> Vec<bool> {
        let mut scratch = DecodeScratch::new();
        let mut prediction = vec![false; self.num_observables()];
        self.decode_shot(fired_detectors, &mut scratch, &mut prediction);
        prediction
    }

    /// Memo-ownership token of this decoder instance, if its predictions may
    /// be cached (see the [`memo`] module). Implementations that return
    /// `Some` promise that [`Decoder::decode_shot`] is a deterministic pure
    /// function of the fired-detector list for the lifetime of the token.
    /// The default (`None`) opts out of memoization entirely.
    fn memo_token(&self) -> Option<std::num::NonZeroU64> {
        None
    }

    /// Decodes every shot of a bit-packed syndrome chunk.
    ///
    /// The default implementation scans the chunk's fired-shot mask so quiet
    /// shots cost one bit test, gathers the noisy shots' defect lists 64
    /// shots at a time with a single pass over the detector planes, and
    /// calls [`Decoder::decode_shot`] per noisy shot — consulting the
    /// scratch's [syndrome memo](memo) first for small defect sets when the
    /// decoder exposes a [`Decoder::memo_token`]. Predictions are
    /// bit-identical to calling [`Decoder::decode`] shot by shot, memoized
    /// or not.
    fn decode_batch(&self, chunk: &SyndromeChunk, scratch: &mut DecodeScratch) -> PredictionChunk {
        let mut out = PredictionChunk::zeroed(self.num_observables(), chunk.num_shots());
        let mask = chunk.fired_shot_mask();
        // Temporarily move the shot buffers out of the scratch so it can be
        // lent to `decode_shot` without aliasing.
        let mut word_fired = std::mem::take(&mut scratch.word_fired);
        word_fired.resize_with(64, Vec::new);
        let mut prediction = std::mem::take(&mut scratch.shot_prediction);
        prediction.clear();
        prediction.resize(self.num_observables(), false);
        // The memo moves out of the scratch for the same aliasing reason.
        // Predictions are stored as u64 bitmasks, so the memo only engages
        // for ≤64 observables (always true for the paper's workloads).
        let mut memo = std::mem::take(&mut scratch.memo);
        let memo_active = match self.memo_token() {
            Some(token) if memo.config().enabled() && self.num_observables() <= 64 => {
                memo.claim(token, self.num_observables());
                true
            }
            _ => false,
        };
        if memo_active && memo.needs_prefill() {
            // Seed every single-defect prediction up front (one decode per
            // detector, i.e. one shortest path for the matching decoders).
            // This removes the cold-start miss per worker and makes hit
            // rates independent of the chunk order in which defects first
            // appear. Predictions come from `decode_shot` itself, so the
            // bit-identity contract is untouched.
            for detector in 0..chunk.num_detectors() {
                if !memo.can_insert() {
                    break;
                }
                prediction.fill(false);
                self.decode_shot(&[detector], scratch, &mut prediction);
                let mut flips = 0u64;
                for (observable, &flipped) in prediction.iter().enumerate() {
                    if flipped {
                        flips |= 1u64 << observable;
                    }
                }
                memo.prefill(&[detector], flips);
            }
            memo.mark_prefilled();
        }
        // Resolve the plane slices once; the gather loop below touches every
        // plane per word and must not re-derive the slice each time.
        let planes: Vec<&[u64]> = (0..chunk.num_detectors())
            .map(|detector| chunk.detector_plane(detector))
            .collect();
        for (word_index, &word) in mask.iter().enumerate() {
            if word == 0 {
                continue;
            }
            // Gather: one pass over the detector planes fills the defect
            // lists of all (up to 64) noisy shots of this word. Detectors
            // are visited in ascending order, so each list ends up sorted.
            let mut bits = word;
            while bits != 0 {
                word_fired[bits.trailing_zeros() as usize].clear();
                bits &= bits - 1;
            }
            for (detector, plane) in planes.iter().enumerate() {
                let mut hits = plane[word_index] & word;
                while hits != 0 {
                    word_fired[hits.trailing_zeros() as usize].push(detector);
                    hits &= hits - 1;
                }
            }
            // Decode each noisy shot of the word, answering recurring small
            // defect sets from the memo.
            let mut bits = word;
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let shot = word_index * 64 + lane;
                let fired = std::mem::take(&mut word_fired[lane]);
                if memo_active && memo.cacheable(fired.len(), self.num_observables()) {
                    match memo.lookup(&fired) {
                        Some(mut flips) => {
                            while flips != 0 {
                                out.set(flips.trailing_zeros() as usize, shot);
                                flips &= flips - 1;
                            }
                        }
                        None => {
                            prediction.fill(false);
                            self.decode_shot(&fired, scratch, &mut prediction);
                            let mut flips = 0u64;
                            for (observable, &flipped) in prediction.iter().enumerate() {
                                if flipped {
                                    flips |= 1u64 << observable;
                                    out.set(observable, shot);
                                }
                            }
                            memo.insert(&fired, flips);
                        }
                    }
                } else {
                    if memo_active {
                        memo.note_uncacheable();
                    }
                    prediction.fill(false);
                    self.decode_shot(&fired, scratch, &mut prediction);
                    for (observable, &flipped) in prediction.iter().enumerate() {
                        if flipped {
                            out.set(observable, shot);
                        }
                    }
                }
                word_fired[lane] = fired;
            }
        }
        scratch.word_fired = word_fired;
        scratch.shot_prediction = prediction;
        scratch.memo = memo;
        out
    }
}
