//! # qccd-decoder
//!
//! Surface-code decoders and logical-error-rate estimation for the QCCD
//! architecture study:
//!
//! * [`DecodingGraph`] — matching graph construction from a detector error
//!   model (with hyperedge decomposition);
//! * [`UnionFindDecoder`] — weighted union-find decoder (the default);
//! * [`GreedyMatchingDecoder`] — greedy shortest-path matching baseline;
//! * [`estimate_logical_error_rate`] — Monte-Carlo logical error rate
//!   estimation;
//! * [`fit_lambda`] / [`LambdaFit`] — below-threshold extrapolation used to
//!   project error rates to the 10⁻⁹ regime, exactly as the paper does for
//!   its feasibility targets.
//!
//! # Example
//!
//! ```
//! use qccd_decoder::{Decoder, DecodingGraph, UnionFindDecoder};
//! use qccd_sim::{DemError, DetectorErrorModel};
//!
//! // A two-detector toy model: one shared error and two boundary errors.
//! let dem = DetectorErrorModel {
//!     num_detectors: 2,
//!     num_observables: 1,
//!     errors: vec![
//!         DemError { probability: 0.01, detectors: vec![0], observables: vec![] },
//!         DemError { probability: 0.01, detectors: vec![0, 1], observables: vec![] },
//!         DemError { probability: 0.01, detectors: vec![1], observables: vec![0] },
//!     ],
//! };
//! let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
//! assert_eq!(decoder.decode(&[0, 1]), vec![false]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dem_graph;
mod greedy;
mod ler;
mod mwpm;
mod union_find;

pub use dem_graph::{DecodingEdge, DecodingGraph, DetectorIndex};
pub use greedy::GreedyMatchingDecoder;
pub use ler::{
    estimate_logical_error_rate, fit_lambda, DecoderKind, LambdaFit, LogicalErrorEstimate,
};
pub use mwpm::{ExactMatchingDecoder, DEFAULT_MAX_EXACT_DEFECTS};
pub use union_find::UnionFindDecoder;

/// A syndrome decoder: given the set of fired detectors of one shot, predict
/// which logical observables were flipped.
pub trait Decoder {
    /// Decodes one shot. `fired_detectors` lists the indices of the
    /// detectors that fired; the return value has one entry per logical
    /// observable, `true` meaning "the decoder believes this observable was
    /// flipped".
    fn decode(&self, fired_detectors: &[usize]) -> Vec<bool>;

    /// Number of logical observables this decoder predicts.
    fn num_observables(&self) -> usize;
}
