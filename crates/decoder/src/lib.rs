//! # qccd-decoder
//!
//! Surface-code decoders and logical-error-rate estimation for the QCCD
//! architecture study:
//!
//! * [`DecodingGraph`] — matching graph construction from a detector error
//!   model (with hyperedge decomposition);
//! * [`UnionFindDecoder`] — weighted union-find decoder (the default);
//! * [`GreedyMatchingDecoder`] — greedy shortest-path matching baseline;
//! * [`estimate_logical_error_rate`] — Monte-Carlo logical error rate
//!   estimation;
//! * [`fit_lambda`] / [`LambdaFit`] — below-threshold extrapolation used to
//!   project error rates to the 10⁻⁹ regime, exactly as the paper does for
//!   its feasibility targets.
//!
//! # Batch decoding
//!
//! The paper's sweeps decode millions of shots per configuration, so the
//! [`Decoder`] trait is built around a batched hot path:
//!
//! * [`Decoder::decode_batch`] consumes a bit-packed [`SyndromeChunk`]
//!   (produced by `qccd_sim`'s chunked sampler) and returns a bit-packed
//!   [`PredictionChunk`]. Quiet shots — no detector fired — are skipped with
//!   a single word-level scan, and all per-shot working state lives in a
//!   reusable [`DecodeScratch`], so the loop performs no allocations.
//! * [`Decoder::decode_shot`] is the per-shot primitive each decoder
//!   implements against the scratch buffers.
//! * [`Decoder::decode`] is the convenient per-shot adapter (it builds a
//!   fresh scratch per call, so prefer `decode_batch` anywhere throughput
//!   matters).
//!
//! [`estimate_logical_error_rate_with`] drives `decode_batch` over sampled
//! chunks in parallel with deterministic per-block seeds: for a fixed
//! `(shots, seed)` the estimate is bit-identical regardless of chunk size or
//! thread count.
//!
//! # Example
//!
//! ```
//! use qccd_decoder::{Decoder, DecodingGraph, UnionFindDecoder};
//! use qccd_sim::{DemError, DetectorErrorModel};
//!
//! // A two-detector toy model: one shared error and two boundary errors.
//! let dem = DetectorErrorModel {
//!     num_detectors: 2,
//!     num_observables: 1,
//!     errors: vec![
//!         DemError { probability: 0.01, detectors: vec![0], observables: vec![] },
//!         DemError { probability: 0.01, detectors: vec![0, 1], observables: vec![] },
//!         DemError { probability: 0.01, detectors: vec![1], observables: vec![0] },
//!     ],
//! };
//! let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
//! assert_eq!(decoder.decode(&[0, 1]), vec![false]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod dem_graph;
mod greedy;
mod ler;
mod mwpm;
mod scratch;
mod union_find;

pub use batch::{DecodeScratch, PredictionChunk, SyndromeChunk};
pub use dem_graph::{DecodingEdge, DecodingGraph, DetectorIndex};
pub use greedy::GreedyMatchingDecoder;
pub use ler::{
    estimate_logical_error_rate, estimate_logical_error_rate_with, fit_lambda, DecoderKind,
    EstimatorConfig, LambdaFit, LogicalErrorEstimate,
};
pub use mwpm::{ExactMatchingDecoder, DEFAULT_MAX_EXACT_DEFECTS};
pub use union_find::UnionFindDecoder;

/// A syndrome decoder: given the fired detectors of each shot, predict which
/// logical observables were flipped.
///
/// Implementors provide [`Decoder::decode_shot`] against reusable
/// [`DecodeScratch`] buffers; the batched and per-shot entry points are
/// provided adapters.
pub trait Decoder {
    /// Number of logical observables this decoder predicts.
    fn num_observables(&self) -> usize;

    /// Decodes one shot into `prediction` (one slot per observable, pre-set
    /// to `false` by the caller), using `scratch` for all working state.
    fn decode_shot(
        &self,
        fired_detectors: &[usize],
        scratch: &mut DecodeScratch,
        prediction: &mut [bool],
    );

    /// Decodes one shot, allocating the result. `fired_detectors` lists the
    /// indices of the detectors that fired; the return value has one entry
    /// per logical observable, `true` meaning "the decoder believes this
    /// observable was flipped".
    ///
    /// This adapter builds a fresh [`DecodeScratch`] per call; use
    /// [`Decoder::decode_batch`] on the hot path.
    fn decode(&self, fired_detectors: &[usize]) -> Vec<bool> {
        let mut scratch = DecodeScratch::new();
        let mut prediction = vec![false; self.num_observables()];
        self.decode_shot(fired_detectors, &mut scratch, &mut prediction);
        prediction
    }

    /// Decodes every shot of a bit-packed syndrome chunk.
    ///
    /// The default implementation scans the chunk's fired-shot mask so quiet
    /// shots cost one bit test, gathers the noisy shots' defect lists 64
    /// shots at a time with a single pass over the detector planes, and
    /// calls [`Decoder::decode_shot`] per noisy shot. Predictions are
    /// bit-identical to calling [`Decoder::decode`] shot by shot.
    fn decode_batch(&self, chunk: &SyndromeChunk, scratch: &mut DecodeScratch) -> PredictionChunk {
        let mut out = PredictionChunk::zeroed(self.num_observables(), chunk.num_shots());
        let mask = chunk.fired_shot_mask();
        // Temporarily move the shot buffers out of the scratch so it can be
        // lent to `decode_shot` without aliasing.
        let mut word_fired = std::mem::take(&mut scratch.word_fired);
        word_fired.resize_with(64, Vec::new);
        let mut prediction = std::mem::take(&mut scratch.shot_prediction);
        prediction.clear();
        prediction.resize(self.num_observables(), false);
        // Resolve the plane slices once; the gather loop below touches every
        // plane per word and must not re-derive the slice each time.
        let planes: Vec<&[u64]> = (0..chunk.num_detectors())
            .map(|detector| chunk.detector_plane(detector))
            .collect();
        for (word_index, &word) in mask.iter().enumerate() {
            if word == 0 {
                continue;
            }
            // Gather: one pass over the detector planes fills the defect
            // lists of all (up to 64) noisy shots of this word. Detectors
            // are visited in ascending order, so each list ends up sorted.
            let mut bits = word;
            while bits != 0 {
                word_fired[bits.trailing_zeros() as usize].clear();
                bits &= bits - 1;
            }
            for (detector, plane) in planes.iter().enumerate() {
                let mut hits = plane[word_index] & word;
                while hits != 0 {
                    word_fired[hits.trailing_zeros() as usize].push(detector);
                    hits &= hits - 1;
                }
            }
            // Decode each noisy shot of the word.
            let mut bits = word;
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let shot = word_index * 64 + lane;
                let fired = std::mem::take(&mut word_fired[lane]);
                prediction.fill(false);
                self.decode_shot(&fired, scratch, &mut prediction);
                word_fired[lane] = fired;
                for (observable, &flipped) in prediction.iter().enumerate() {
                    if flipped {
                        out.set(observable, shot);
                    }
                }
            }
        }
        scratch.word_fired = word_fired;
        scratch.shot_prediction = prediction;
        out
    }
}
