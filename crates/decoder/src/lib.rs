//! # qccd-decoder
//!
//! Surface-code decoders and logical-error-rate estimation for the QCCD
//! architecture study:
//!
//! * [`DecodingGraph`] — matching graph construction from a detector error
//!   model (with hyperedge decomposition);
//! * [`UnionFindDecoder`] — weighted union-find decoder (the default);
//! * [`GreedyMatchingDecoder`] — greedy shortest-path matching baseline;
//! * [`estimate_logical_error_rate`] — Monte-Carlo logical error rate
//!   estimation;
//! * [`fit_lambda`] / [`LambdaFit`] — below-threshold extrapolation used to
//!   project error rates to the 10⁻⁹ regime, exactly as the paper does for
//!   its feasibility targets.
//!
//! # Batch decoding
//!
//! The paper's sweeps decode millions of shots per configuration, so the
//! [`Decoder`] trait is built around a batched hot path:
//!
//! * [`Decoder::decode_batch`] consumes a bit-packed [`SyndromeChunk`]
//!   (produced by `qccd_sim`'s chunked sampler) and returns a bit-packed
//!   [`PredictionChunk`]. All per-shot working state lives in a reusable
//!   [`DecodeScratch`], so the loop performs no allocations.
//! * [`Decoder::decode_shot`] is the per-shot primitive each decoder
//!   implements against the scratch buffers.
//! * [`Decoder::decode`] is the convenient per-shot adapter (it builds a
//!   fresh scratch per call, so prefer `decode_batch` anywhere throughput
//!   matters).
//!
//! [`estimate_logical_error_rate_with`] drives `decode_batch` over sampled
//! chunks in parallel with deterministic per-block seeds: for a fixed
//! `(shots, seed)` the estimate is bit-identical regardless of chunk size or
//! thread count.
//!
//! # Word-parallel decoding
//!
//! Below threshold almost every shot carries zero or one defect, so
//! decoding shot by shot wastes the sampler's 64-wide bit-packing.
//! [`Decoder::decode_batch`] therefore decodes at **word granularity**:
//! each 64-shot word is triaged with one carry-save pass over the detector
//! planes ([`qccd_sim::csa_accumulate`] streamed tile-wise, classified per
//! word by [`qccd_sim::WordTriage::from_counters`];
//! [`qccd_sim::SyndromeChunk::word_triage`] is the same kernel as a
//! word-at-a-time view) into
//!
//! * **all-quiet** — no defect in any lane; the word is done after the one
//!   scan (the logical frame is decided directly against the observable
//!   planes by the estimator's XOR+popcount),
//! * **sparse** — every noisy lane has at most [`MemoConfig::max_defects`]
//!   defects,
//! * **dense** — some lane exceeds the cap.
//!
//! In every noisy word, single-defect lanes are answered *word-parallel*
//! by ORing the memo's cached per-detector prediction masks into the
//! output planes, and two-defect lanes resolve from a flat `d1 × d2` pair
//! mirror of the memo (no per-shot hashing, no union-find, for either);
//! all remaining lanes — three-or-more-defect lanes, above-cap lanes of
//! dense words, and singles/pairs the entry cap or mirror range kept out
//! of the fast lanes — fall back to the per-shot [`DecodeScratch`] memo
//! loop (above-cap lanes descending further into the dense tier below).
//! Tiles of 64 words are scanned with
//! *sequential* plane-major walks (carry-save counters per word), so the
//! triage touches each detector plane word exactly once per chunk, where
//! the per-shot loop's mask scan + per-word gather touches it twice.
//!
//! **Bit-identity contract.** The word path produces exactly the same
//! [`PredictionChunk`] — and the same hit/miss/uncacheable counters — as
//! the per-shot reference loop, which remains callable as
//! [`Decoder::decode_batch_per_shot`]; consequently estimates, early-stop
//! points and golden artifacts are unchanged for every chunk size and
//! thread count. This is property-tested in
//! `tests/prop_word_parallel_identity.rs` for all three [`DecoderKind`]s
//! and pinned by adversarial edge cases (all-dense words, word-boundary
//! straddling, ragged final words, zero-shot chunks) in
//! `tests/word_edge_cases.rs`. The triage verdicts are observable through
//! the `*_words` counters of [`CacheStats`]; they depend only on the
//! syndrome content and the memo cap, never on scheduling.
//!
//! # Shared memo snapshots
//!
//! Every worker thread owns its scratch (and memo), so without sharing,
//! each worker re-prefills the singles table per decoder and re-learns
//! recurring pairs from scratch. [`Decoder::warm_memo_snapshot`] claims and
//! prefills the memo once — without decoding any shots — and freezes it
//! into an `Arc`-shared [`MemoSnapshot`]; workers adopt it with
//! [`DecodeScratch::adopt_memo_snapshot`] (a table clone on first contact,
//! a no-op afterwards) and keep learning private entries on top. The
//! estimator does this by default ([`EstimatorConfig::shared_memo`]), so
//! the word path's hit rate survives sharding across workers and sweep
//! points. Snapshots only ever contain predictions the owning decoder
//! itself produced, so adoption cannot change decoded bits.
//!
//! # Syndrome memoization
//!
//! Below threshold the same small defect sets (single defects, adjacent
//! pairs) recur across millions of shots, so [`Decoder::decode_batch`]
//! consults a per-decoder [memo table](memo) before running
//! union-find/matching: predictions of defect sets with at most
//! [`MemoConfig::max_defects`] defects (default 4) are cached inside the
//! worker's [`DecodeScratch`] and replayed on recurrence. When a decoder
//! first claims a memo, every *single-defect* prediction is prefilled from
//! one `decode_shot` per detector (one shortest path each for the matching
//! decoders), so workers never pay a cold-start miss on the most common
//! defect sets and hit rates are independent of chunk order; prefilled
//! entries are counted by [`CacheStats::prefilled`]. The memo is a
//! **pure cache** — memoized decoding is bit-identical to the uncached path
//! (property-tested in `tests/prop_memo_decode.rs` for all three
//! [`DecoderKind`]s), hit rates are observable via [`CacheStats`], and
//! [`MemoConfig::disabled`] restores the raw path. On the paper's deep
//! below-threshold workloads the memo answers ~90% of noisy shots and more
//! than doubles batch decode throughput (see the `decoder` criterion bench).
//!
//! # The dense tail
//!
//! Lanes whose defect count exceeds [`MemoConfig::max_defects`] used to pay
//! a full per-shot decode every time. They now descend a ladder of their
//! own (see the [`batch`] module docs for the complete triage ladder):
//! first a **bounded dense LRU tier** ([`MemoConfig::dense_max_entries`],
//! default 2¹⁶ entries with least-recently-used eviction) keyed by the
//! canonical defect list, so recurring dense syndromes amortize like sparse
//! ones; on a miss the union-find decoder runs its **cluster matcher** —
//! the lane's defects are decomposed into connected clusters on the
//! decoding graph and each cluster is decoded (or answered from the tier)
//! independently within one shared scratch epoch; only when clusters merge
//! during growth does the lane roll back via an O(touched) undo log and
//! decode whole, **incrementally** in the same epoch rather than after a
//! full scratch reset. Every rung is bit-identical to a plain
//! [`Decoder::decode_shot`] of the lane (property-tested at biased-high
//! physical error rates in `tests/prop_dense_tail_identity.rs`), and the
//! tier's traffic is observable through the `dense_*` / `cluster_*`
//! counters of [`CacheStats`].
//!
//! # Sharded sweeps
//!
//! [`SweepEngine`] shards whole `(architecture, distance, decoder, noise)`
//! evaluation points across an outer worker pool that composes with the
//! inner chunk parallelism above. Every point gets the deterministic seed
//! [`sweep_seed`]`(engine seed, point index)` and results return in input
//! order, so sweeps are bit-reproducible for any thread count — the golden
//! regression tests in `qccd-bench` pin the whole pipeline end to end.
//!
//! # Example
//!
//! ```
//! use qccd_decoder::{Decoder, DecodingGraph, UnionFindDecoder};
//! use qccd_sim::{DemError, DetectorErrorModel};
//!
//! // A two-detector toy model: one shared error and two boundary errors.
//! let dem = DetectorErrorModel {
//!     num_detectors: 2,
//!     num_observables: 1,
//!     errors: vec![
//!         DemError { probability: 0.01, detectors: vec![0], observables: vec![] },
//!         DemError { probability: 0.01, detectors: vec![0, 1], observables: vec![] },
//!         DemError { probability: 0.01, detectors: vec![1], observables: vec![0] },
//!     ],
//! };
//! let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
//! assert_eq!(decoder.decode(&[0, 1]), vec![false]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod dem_graph;
mod greedy;
pub mod instrument;
mod ler;
pub mod memo;
mod mwpm;
mod scratch;
mod sweep;
mod union_find;

pub use batch::{DecodeScratch, DenseTier, PredictionChunk, SyndromeChunk};
pub use dem_graph::{DecodingEdge, DecodingGraph, DetectorIndex};
pub use greedy::GreedyMatchingDecoder;
pub use instrument::{install_telemetry, uninstall_telemetry};
pub use ler::{
    estimate_logical_error_rate, estimate_logical_error_rate_report,
    estimate_logical_error_rate_with, fit_lambda, fit_lambda_weighted, zero_failure_upper_bound,
    DecoderKind, EstimateReport, EstimatorConfig, LambdaFit, LogicalErrorEstimate,
};
pub use memo::{
    CacheStats, MemoConfig, MemoSnapshot, DEFAULT_DENSE_MAX_ENTRIES, DEFAULT_MEMO_MAX_DEFECTS,
    MEMO_KEY_CAPACITY,
};
pub use mwpm::{ExactMatchingDecoder, DEFAULT_MAX_EXACT_DEFECTS};
pub use sweep::{sweep_seed, SweepEngine, SweepTask};
pub use union_find::UnionFindDecoder;

/// A syndrome decoder: given the fired detectors of each shot, predict which
/// logical observables were flipped.
///
/// Implementors provide [`Decoder::decode_shot`] against reusable
/// [`DecodeScratch`] buffers; the batched and per-shot entry points are
/// provided adapters.
pub trait Decoder {
    /// Number of logical observables this decoder predicts.
    fn num_observables(&self) -> usize;

    /// Decodes one shot into `prediction` (one slot per observable, pre-set
    /// to `false` by the caller), using `scratch` for all working state.
    fn decode_shot(
        &self,
        fired_detectors: &[usize],
        scratch: &mut DecodeScratch,
        prediction: &mut [bool],
    );

    /// Decodes one shot, allocating the result. `fired_detectors` lists the
    /// indices of the detectors that fired; the return value has one entry
    /// per logical observable, `true` meaning "the decoder believes this
    /// observable was flipped".
    ///
    /// This adapter builds a fresh [`DecodeScratch`] per call; use
    /// [`Decoder::decode_batch`] on the hot path.
    fn decode(&self, fired_detectors: &[usize]) -> Vec<bool> {
        let mut scratch = DecodeScratch::new();
        let mut prediction = vec![false; self.num_observables()];
        self.decode_shot(fired_detectors, &mut scratch, &mut prediction);
        prediction
    }

    /// Memo-ownership token of this decoder instance, if its predictions may
    /// be cached (see the [`memo`] module). Implementations that return
    /// `Some` promise that [`Decoder::decode_shot`] is a deterministic pure
    /// function of the fired-detector list for the lifetime of the token.
    /// The default (`None`) opts out of memoization entirely.
    fn memo_token(&self) -> Option<std::num::NonZeroU64> {
        None
    }

    /// Decodes one *dense* lane — a shot whose defect count exceeds the
    /// sparse memo cap — with access to the bounded dense LRU tier. Called
    /// by the batch loops only while the tier is enabled and this decoder
    /// owns the memo; `prediction` arrives pre-cleared.
    ///
    /// The implementation owns the tier protocol end to end: it probes the
    /// whole-lane entry, decodes on a miss, and inserts the result (the
    /// batch loop does neither). The default implementation does exactly
    /// that around [`Decoder::decode_shot`]; the union-find decoder
    /// overrides it with the cluster matcher + incremental-reuse path. Like
    /// every other tier, the result must be bit-identical to a plain
    /// `decode_shot` of the same lane.
    fn decode_dense_shot(
        &self,
        fired_detectors: &[usize],
        scratch: &mut DecodeScratch,
        dense: &mut DenseTier<'_>,
        prediction: &mut [bool],
    ) {
        if let Some(mut flips) = dense.lookup_lane(fired_detectors) {
            while flips != 0 {
                prediction[flips.trailing_zeros() as usize] = true;
                flips &= flips - 1;
            }
            return;
        }
        self.decode_shot(fired_detectors, scratch, prediction);
        dense.insert_lane(fired_detectors, batch::pack_prediction(prediction), &[]);
    }

    /// Decodes every shot of a bit-packed syndrome chunk on the
    /// **word-parallel** path.
    ///
    /// The default implementation triages every 64-shot word with one
    /// carry-save pass over the detector planes
    /// ([`qccd_sim::csa_accumulate`] + [`qccd_sim::WordTriage`], streamed
    /// over 64-word tiles — the same pass gathers the words' hot planes):
    ///
    /// * **quiet** words (no defect anywhere) are done after the scan;
    /// * **sparse** words (every lane at or below the memo's defect cap)
    ///   and **dense** words (some lane above it) both answer their
    ///   single-defect lanes with word-wide OR merges from the memo's
    ///   singles table and their two-defect lanes from its flat pair
    ///   mirror — no per-shot hashing, no union-find — and route every
    ///   remaining lane through the per-shot [`DecodeScratch`] memo loop
    ///   (where above-cap lanes count as uncacheable).
    ///
    /// Predictions — and the memo's hit/miss/uncacheable counters — are
    /// **bit-identical** to [`Decoder::decode_batch_per_shot`] and to
    /// calling [`Decoder::decode`] shot by shot, memoized or not; the word
    /// triage additionally fills the `*_words` counters of
    /// [`CacheStats`]. Without an active memo the word path degenerates to
    /// the per-shot loop (minus one redundant plane scan).
    fn decode_batch(&self, chunk: &SyndromeChunk, scratch: &mut DecodeScratch) -> PredictionChunk {
        // One relaxed load when no telemetry hook is installed — the
        // disabled path the criterion overhead gate pins at <2%.
        if !instrument::hook_installed() {
            return batch::decode_batch_words(self, chunk, scratch);
        }
        instrument::timed_batch(
            instrument::BatchPath::Word,
            chunk.num_shots() as u64,
            || {
                let before = scratch.cache_stats();
                let result = batch::decode_batch_words(self, chunk, scratch);
                let delta = scratch.cache_stats().since(&before);
                (result, delta)
            },
        )
    }

    /// [`Decoder::decode_batch`] after adopting a shared warm
    /// [`MemoSnapshot`] into `scratch` (a no-op when the scratch already
    /// belongs to the snapshot's decoder, so calling this per batch is
    /// free). This is the entry point online services use: every batch — a
    /// full 64-shot word, several words, or a deadline-flushed *partial*
    /// word — decodes against the same warm table regardless of which
    /// worker picks it up, and adoption never changes decoded bits.
    fn decode_batch_with_snapshot(
        &self,
        chunk: &SyndromeChunk,
        scratch: &mut DecodeScratch,
        snapshot: Option<&MemoSnapshot>,
    ) -> PredictionChunk {
        if let Some(snapshot) = snapshot {
            scratch.adopt_memo_snapshot(snapshot);
        }
        self.decode_batch(chunk, scratch)
    }

    /// Decodes every shot of a chunk on the **per-shot reference** path:
    /// scan the fired-shot mask, gather every noisy lane's defect list,
    /// decode lane by lane (consulting the memo exactly like the word
    /// path). This is the loop the word-parallel default is property-tested
    /// against; prefer [`Decoder::decode_batch`] everywhere else.
    fn decode_batch_per_shot(
        &self,
        chunk: &SyndromeChunk,
        scratch: &mut DecodeScratch,
    ) -> PredictionChunk {
        if !instrument::hook_installed() {
            return batch::decode_batch_per_shot(self, chunk, scratch);
        }
        instrument::timed_batch(
            instrument::BatchPath::PerShot,
            chunk.num_shots() as u64,
            || {
                let before = scratch.cache_stats();
                let result = batch::decode_batch_per_shot(self, chunk, scratch);
                let delta = scratch.cache_stats().since(&before);
                (result, delta)
            },
        )
    }

    /// Claims and prefills this decoder's [syndrome memo](memo) inside
    /// `scratch` — without decoding any shots — and freezes it into a
    /// read-mostly [`MemoSnapshot`] that worker threads can adopt via
    /// [`DecodeScratch::adopt_memo_snapshot`]. Returns `None` when the
    /// decoder opts out of memoization, the scratch's memo is disabled, or
    /// more than 64 observables are predicted. Warming is deterministic
    /// (the prefill is a pure function of the decoding graph), so sharing
    /// the snapshot never changes decoded bits.
    fn warm_memo_snapshot(
        &self,
        num_detectors: usize,
        scratch: &mut DecodeScratch,
    ) -> Option<MemoSnapshot> {
        batch::warm_memo_snapshot(self, num_detectors, scratch)
    }
}
