//! Per-decoder syndrome memoization.
//!
//! Below threshold, the overwhelming majority of noisy shots carry a handful
//! of recurring small defect sets — single defects and adjacent pairs — so
//! decoding the same canonical defect set over and over dominates the batch
//! decode cost. The [`SyndromeMemo`] caches the decoder's prediction per
//! defect set, keyed by the (already sorted) fired-detector list, for shots
//! with at most [`MemoConfig::max_defects`] defects.
//!
//! # Bit-identity contract
//!
//! Memoization is a pure cache: every entry stores exactly the bit-packed
//! prediction [`Decoder::decode_shot`](crate::Decoder::decode_shot) produced
//! for that defect set, and decoders are deterministic functions of the
//! defect set, so a memoized batch decode is **bit-identical** to a
//! cache-disabled one. The property tests in `tests/prop_memo_decode.rs` pin
//! this for all three decoder kinds across chunk sizes and thread counts.
//!
//! # Ownership
//!
//! The memo lives inside [`DecodeScratch`](crate::DecodeScratch) (one per
//! worker thread, reused across chunks) but is *owned* by a decoder
//! instance: each decoder carries a unique memo token, and the memo clears
//! itself whenever it is handed to a decoder with a different token, so a
//! scratch can be shared across decoders without serving stale predictions.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::num::NonZeroU64;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Default cap on the defect-set cardinality that is memoized.
pub const DEFAULT_MEMO_MAX_DEFECTS: usize = 4;

/// Hard upper bound on [`MemoConfig::max_defects`] (the memo key is a fixed
/// array of this many detector indices).
pub const MEMO_KEY_CAPACITY: usize = 6;

/// Default cap on the number of cached defect sets per memo.
pub const DEFAULT_MEMO_MAX_ENTRIES: usize = 1 << 20;

/// Allocates a process-unique memo-ownership token for one decoder instance.
pub(crate) fn next_memo_token() -> NonZeroU64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NonZeroU64::new(NEXT.fetch_add(1, Ordering::Relaxed)).expect("token counter starts at 1")
}

/// Tuning knobs of the syndrome memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoConfig {
    /// Largest defect-set cardinality that is memoized (clamped to
    /// [`MEMO_KEY_CAPACITY`]; `0` disables memoization entirely).
    pub max_defects: usize,
    /// Maximum number of cached defect sets; once full, lookups continue but
    /// new entries are not inserted (keeps memory bounded and behaviour
    /// deterministic).
    pub max_entries: usize,
}

impl Default for MemoConfig {
    fn default() -> Self {
        MemoConfig {
            max_defects: DEFAULT_MEMO_MAX_DEFECTS,
            max_entries: DEFAULT_MEMO_MAX_ENTRIES,
        }
    }
}

impl MemoConfig {
    /// A configuration with memoization switched off.
    pub fn disabled() -> Self {
        MemoConfig {
            max_defects: 0,
            max_entries: 0,
        }
    }

    /// Overrides the defect-set cardinality cap.
    pub fn with_max_defects(mut self, max_defects: usize) -> Self {
        self.max_defects = max_defects;
        self
    }

    /// Overrides the entry cap.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries;
        self
    }

    /// Whether memoization is enabled at all.
    pub fn enabled(&self) -> bool {
        self.max_defects > 0
    }

    /// The effective defect cap (clamped to the key capacity).
    pub fn effective_max_defects(&self) -> usize {
        self.max_defects.min(MEMO_KEY_CAPACITY)
    }
}

/// Hit/miss counters of one memo (accumulated across chunks until
/// [`DecodeScratch::reset_cache_stats`](crate::DecodeScratch::reset_cache_stats)
/// or a change of owning decoder).
///
/// Only *noisy* shots are counted — quiet shots are skipped by the batch
/// engine's word-level scan before the memo is ever consulted. `prefilled`
/// counts cache *entries* seeded from the decoding graph rather than shots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Noisy shots answered from the memo.
    pub hits: u64,
    /// Noisy shots decoded and inserted (or droppable at the entry cap).
    pub misses: u64,
    /// Noisy shots with more defects than the memo cap (decoded directly).
    pub uncacheable: u64,
    /// Single-defect entries precomputed into the memo when the owning
    /// decoder first claimed it (see the prefill pass of
    /// [`Decoder::decode_batch`](crate::Decoder::decode_batch)).
    pub prefilled: u64,
}

impl CacheStats {
    /// Noisy shots that consulted the memo (hits + misses).
    pub fn attempts(&self) -> u64 {
        self.hits + self.misses
    }

    /// All noisy shots decoded while the memo was active.
    pub fn decoded(&self) -> u64 {
        self.hits + self.misses + self.uncacheable
    }

    /// Fraction of noisy shots answered from the memo (0 when nothing was
    /// decoded).
    pub fn hit_rate(&self) -> f64 {
        let decoded = self.decoded();
        if decoded == 0 {
            0.0
        } else {
            self.hits as f64 / decoded as f64
        }
    }
}

/// Memo key: the defect set padded with `u32::MAX` sentinels. Defect lists
/// arriving from the batch gather loop are already sorted ascending, so the
/// padded array is a canonical encoding of the set.
type MemoKey = [u32; MEMO_KEY_CAPACITY];

/// A fast non-cryptographic hasher for [`MemoKey`]s (SplitMix64 folding; the
/// std SipHash default costs more than a small decode on the hit path).
///
/// `Hash` for integer arrays reaches the hasher through one bulk
/// [`Hasher::write`] of the element bytes (plus a length prefix), so `write`
/// folds whole 8-byte words — a [`MemoKey`] costs ~4 mixing rounds, not one
/// per byte.
#[derive(Debug, Default, Clone)]
pub(crate) struct MemoKeyHasher {
    state: u64,
}

impl Hasher for MemoKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("exact 8-byte chunk"));
            self.write_u64(word);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.write_u64(u64::from_le_bytes(word) ^ ((tail.len() as u64) << 56));
        }
    }

    fn write_u32(&mut self, value: u32) {
        self.write_u64(u64::from(value));
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    fn write_u64(&mut self, value: u64) {
        let mut z = self.state ^ value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.state = z ^ (z >> 31);
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

type MemoTable = HashMap<MemoKey, u64, BuildHasherDefault<MemoKeyHasher>>;

/// The per-decoder prediction cache (see the [module docs](self)).
///
/// Predictions are stored as a `u64` observable-flip bitmask, so memoization
/// only applies to decoding problems with at most 64 logical observables —
/// plenty for the paper's workloads (single-patch memory experiments track
/// one observable).
#[derive(Debug, Clone, Default)]
pub(crate) struct SyndromeMemo {
    /// Memo token of the owning decoder (`None` = unowned / empty).
    owner: Option<NonZeroU64>,
    num_observables: usize,
    config: MemoConfig,
    table: MemoTable,
    stats: CacheStats,
    /// Whether the single-defect prefill pass ran for the current owner.
    prefilled: bool,
}

impl SyndromeMemo {
    /// The active configuration.
    pub(crate) fn config(&self) -> MemoConfig {
        self.config
    }

    /// Installs a new configuration (entries survive — they are keyed by
    /// defect set and stay valid under any cap).
    pub(crate) fn set_config(&mut self, config: MemoConfig) {
        self.config = config;
    }

    /// Accumulated hit/miss counters.
    pub(crate) fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the hit/miss counters (entries are kept).
    pub(crate) fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of cached defect sets.
    pub(crate) fn len(&self) -> usize {
        self.table.len()
    }

    /// Claims the memo for the decoder with the given token, clearing any
    /// entries (and stats) cached for a different decoder.
    pub(crate) fn claim(&mut self, token: NonZeroU64, num_observables: usize) {
        if self.owner != Some(token) || self.num_observables != num_observables {
            self.table.clear();
            self.stats = CacheStats::default();
            self.owner = Some(token);
            self.num_observables = num_observables;
            self.prefilled = false;
        }
    }

    /// Whether the single-defect prefill pass still has to run for the
    /// current owner.
    pub(crate) fn needs_prefill(&self) -> bool {
        !self.prefilled
    }

    /// Marks the prefill pass as done for the current owner (kept across
    /// chunks; reset only when another decoder claims the memo).
    pub(crate) fn mark_prefilled(&mut self) {
        self.prefilled = true;
    }

    /// Whether the entry cap still admits insertions.
    pub(crate) fn can_insert(&self) -> bool {
        self.table.len() < self.config.max_entries
    }

    /// Seeds one precomputed single-defect prediction, counting it in
    /// [`CacheStats::prefilled`] (dropped silently at the entry cap).
    pub(crate) fn prefill(&mut self, fired_detectors: &[usize], mask: u64) {
        if self.can_insert() {
            self.table.insert(Self::key(fired_detectors), mask);
            self.stats.prefilled += 1;
        }
    }

    /// Whether a defect set of the given cardinality can be memoized under
    /// the current configuration.
    pub(crate) fn cacheable(&self, defects: usize, num_observables: usize) -> bool {
        defects <= self.config.effective_max_defects() && num_observables <= 64
    }

    fn key(fired_detectors: &[usize]) -> MemoKey {
        let mut key = [u32::MAX; MEMO_KEY_CAPACITY];
        for (slot, &d) in key.iter_mut().zip(fired_detectors) {
            *slot = d as u32;
        }
        key
    }

    /// Looks up the prediction bitmask of a cacheable defect set, counting a
    /// hit or a miss.
    pub(crate) fn lookup(&mut self, fired_detectors: &[usize]) -> Option<u64> {
        match self.table.get(&Self::key(fired_detectors)) {
            Some(&mask) => {
                self.stats.hits += 1;
                Some(mask)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records the decoded prediction of a missed defect set (dropped when
    /// the entry cap is reached).
    pub(crate) fn insert(&mut self, fired_detectors: &[usize], mask: u64) {
        if self.table.len() < self.config.max_entries {
            self.table.insert(Self::key(fired_detectors), mask);
        }
    }

    /// Counts a shot that bypassed the memo (defect count above the cap).
    pub(crate) fn note_uncacheable(&mut self) {
        self.stats.uncacheable += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_disable() {
        let config = MemoConfig::default();
        assert!(config.enabled());
        assert_eq!(config.max_defects, DEFAULT_MEMO_MAX_DEFECTS);
        assert!(!MemoConfig::disabled().enabled());
        assert_eq!(
            MemoConfig::default()
                .with_max_defects(100)
                .effective_max_defects(),
            MEMO_KEY_CAPACITY
        );
    }

    #[test]
    fn stats_hit_rate() {
        let stats = CacheStats {
            hits: 6,
            misses: 2,
            uncacheable: 2,
            prefilled: 5,
        };
        assert_eq!(stats.attempts(), 8);
        assert_eq!(stats.decoded(), 10, "prefilled entries are not shots");
        assert!((stats.hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn lookup_insert_roundtrip_and_counters() {
        let mut memo = SyndromeMemo::default();
        let token = next_memo_token();
        memo.claim(token, 1);
        assert_eq!(memo.lookup(&[1, 4]), None);
        memo.insert(&[1, 4], 0b1);
        assert_eq!(memo.lookup(&[1, 4]), Some(0b1));
        assert_eq!(memo.lookup(&[4]), None);
        memo.note_uncacheable();
        assert_eq!(
            memo.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                uncacheable: 1,
                prefilled: 0
            }
        );
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn prefill_counts_entries_and_respects_the_cap() {
        let mut memo = SyndromeMemo::default();
        memo.set_config(MemoConfig::default().with_max_entries(2));
        let token = next_memo_token();
        memo.claim(token, 1);
        assert!(memo.needs_prefill());
        memo.prefill(&[0], 0b1);
        memo.prefill(&[1], 0);
        memo.prefill(&[2], 0b1);
        memo.mark_prefilled();
        assert!(!memo.needs_prefill());
        assert_eq!(memo.len(), 2, "cap bounds prefill too");
        assert_eq!(memo.stats().prefilled, 2);
        // Prefilled entries answer lookups as ordinary hits.
        assert_eq!(memo.lookup(&[0]), Some(0b1));
        assert_eq!(memo.lookup(&[2]), None);
        assert_eq!(memo.stats().hits, 1);
        assert_eq!(memo.stats().misses, 1);
        // Re-claim by the same owner keeps the prefill; a new owner resets.
        memo.claim(token, 1);
        assert!(!memo.needs_prefill());
        memo.claim(next_memo_token(), 1);
        assert!(memo.needs_prefill());
        assert_eq!(memo.stats().prefilled, 0);
    }

    #[test]
    fn claim_by_other_decoder_clears_entries_and_stats() {
        let mut memo = SyndromeMemo::default();
        let a = next_memo_token();
        let b = next_memo_token();
        memo.claim(a, 1);
        memo.insert(&[0], 1);
        assert_eq!(memo.lookup(&[0]), Some(1));
        // Re-claim by the same owner keeps everything.
        memo.claim(a, 1);
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.stats().hits, 1);
        // A different owner starts from scratch.
        memo.claim(b, 1);
        assert_eq!(memo.len(), 0);
        assert_eq!(memo.stats(), CacheStats::default());
        assert_eq!(memo.lookup(&[0]), None);
    }

    #[test]
    fn observable_count_change_also_clears() {
        let mut memo = SyndromeMemo::default();
        let token = next_memo_token();
        memo.claim(token, 1);
        memo.insert(&[2], 1);
        memo.claim(token, 2);
        assert_eq!(memo.len(), 0);
    }

    #[test]
    fn entry_cap_stops_insertions_but_not_lookups() {
        let mut memo = SyndromeMemo::default();
        memo.set_config(MemoConfig::default().with_max_entries(1));
        let token = next_memo_token();
        memo.claim(token, 1);
        memo.insert(&[0], 1);
        memo.insert(&[1], 0);
        assert_eq!(memo.len(), 1, "cap must stop the second insert");
        assert_eq!(memo.lookup(&[0]), Some(1));
        assert_eq!(memo.lookup(&[1]), None);
    }

    #[test]
    fn cacheable_respects_cap_and_observables() {
        let mut memo = SyndromeMemo::default();
        memo.set_config(MemoConfig::default().with_max_defects(2));
        assert!(memo.cacheable(0, 1));
        assert!(memo.cacheable(2, 64));
        assert!(!memo.cacheable(3, 1));
        assert!(!memo.cacheable(1, 65));
    }

    #[test]
    fn tokens_are_unique() {
        assert_ne!(next_memo_token(), next_memo_token());
    }
}
