//! Per-decoder syndrome memoization.
//!
//! Below threshold, the overwhelming majority of noisy shots carry a handful
//! of recurring small defect sets — single defects and adjacent pairs — so
//! decoding the same canonical defect set over and over dominates the batch
//! decode cost. The [`SyndromeMemo`] caches the decoder's prediction per
//! defect set, keyed by the (already sorted) fired-detector list, for shots
//! with at most [`MemoConfig::max_defects`] defects.
//!
//! # Bit-identity contract
//!
//! Memoization is a pure cache: every entry stores exactly the bit-packed
//! prediction [`Decoder::decode_shot`](crate::Decoder::decode_shot) produced
//! for that defect set, and decoders are deterministic functions of the
//! defect set, so a memoized batch decode is **bit-identical** to a
//! cache-disabled one. The property tests in `tests/prop_memo_decode.rs` pin
//! this for all three decoder kinds across chunk sizes and thread counts.
//!
//! # Ownership
//!
//! The memo lives inside [`DecodeScratch`](crate::DecodeScratch) (one per
//! worker thread, reused across chunks) but is *owned* by a decoder
//! instance: each decoder carries a unique memo token, and the memo clears
//! itself whenever it is handed to a decoder with a different token, so a
//! scratch can be shared across decoders without serving stale predictions.
//!
//! # Sharing across workers
//!
//! A warmed memo can be frozen into a [`MemoSnapshot`] — an immutable,
//! `Arc`-shared copy of the table — and adopted into other scratches with
//! [`DecodeScratch::adopt_memo_snapshot`](crate::DecodeScratch::adopt_memo_snapshot).
//! Adoption replaces a differently-owned memo with a clone of the snapshot
//! (exactly what that worker's own claim-plus-prefill would have produced,
//! plus whatever the snapshot had already learned) and is a no-op when the
//! scratch already belongs to the snapshot's decoder. The estimator uses
//! this to warm the memo once per evaluation point and hand the same
//! read-mostly base table to every worker thread; because the snapshot
//! only ever contains predictions the owning decoder itself produced, the
//! bit-identity contract is unaffected.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::num::NonZeroU64;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Default cap on the defect-set cardinality that is memoized.
pub const DEFAULT_MEMO_MAX_DEFECTS: usize = 4;

/// Hard upper bound on [`MemoConfig::max_defects`] (the memo key is a fixed
/// array of this many detector indices).
pub const MEMO_KEY_CAPACITY: usize = 6;

/// Default cap on the number of cached defect sets per memo.
pub const DEFAULT_MEMO_MAX_ENTRIES: usize = 1 << 20;

/// Default cap on the number of entries in the dense LRU tier (the
/// above-cap syndrome→flip cache behind the word path's dense fallback).
pub const DEFAULT_DENSE_MAX_ENTRIES: usize = 1 << 16;

/// Detector-index range covered by the flat pair-prediction mirror (the
/// word path's two-defect fast lane): pairs with both detectors below this
/// bound are answered with one array load instead of a hash probe. Sized so
/// the flat table stays L2-friendly (`256² × 8 B = 512 KiB` per scratch);
/// larger graphs simply fall back to the hash table for pairs.
pub const PAIR_TABLE_DETECTORS: usize = 256;

/// Allocates a process-unique memo-ownership token for one decoder instance.
pub(crate) fn next_memo_token() -> NonZeroU64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NonZeroU64::new(NEXT.fetch_add(1, Ordering::Relaxed)).expect("token counter starts at 1")
}

/// Tuning knobs of the syndrome memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoConfig {
    /// Largest defect-set cardinality that is memoized (clamped to
    /// [`MEMO_KEY_CAPACITY`]; `0` disables memoization entirely).
    pub max_defects: usize,
    /// Maximum number of cached defect sets; once full, lookups continue but
    /// new entries are not inserted (keeps memory bounded and behaviour
    /// deterministic).
    pub max_entries: usize,
    /// Maximum number of entries in the dense LRU tier — the bounded cache
    /// of *above-cap* defect sets consulted by the dense fallback of the
    /// batch decode path. Unlike the sparse table, the dense tier evicts
    /// least-recently-used entries instead of refusing inserts. `0`
    /// disables the tier (dense lanes always decode from scratch).
    pub dense_max_entries: usize,
}

impl Default for MemoConfig {
    fn default() -> Self {
        MemoConfig {
            max_defects: DEFAULT_MEMO_MAX_DEFECTS,
            max_entries: DEFAULT_MEMO_MAX_ENTRIES,
            dense_max_entries: DEFAULT_DENSE_MAX_ENTRIES,
        }
    }
}

impl MemoConfig {
    /// A configuration with memoization switched off.
    pub fn disabled() -> Self {
        MemoConfig {
            max_defects: 0,
            max_entries: 0,
            dense_max_entries: 0,
        }
    }

    /// Overrides the defect-set cardinality cap.
    pub fn with_max_defects(mut self, max_defects: usize) -> Self {
        self.max_defects = max_defects;
        self
    }

    /// Overrides the entry cap.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries;
        self
    }

    /// Overrides the dense-tier entry cap (`0` switches the dense LRU tier
    /// off while leaving the sparse memo untouched).
    pub fn with_dense_max_entries(mut self, dense_max_entries: usize) -> Self {
        self.dense_max_entries = dense_max_entries;
        self
    }

    /// Whether the dense LRU tier is enabled (requires the memo itself to
    /// be enabled: the tier is keyed and owned exactly like the sparse
    /// table).
    pub fn dense_enabled(&self) -> bool {
        self.enabled() && self.dense_max_entries > 0
    }

    /// Whether memoization is enabled at all.
    pub fn enabled(&self) -> bool {
        self.max_defects > 0
    }

    /// The effective defect cap (clamped to the key capacity).
    pub fn effective_max_defects(&self) -> usize {
        self.max_defects.min(MEMO_KEY_CAPACITY)
    }
}

/// Hit/miss counters of one memo (accumulated across chunks until
/// [`DecodeScratch::reset_cache_stats`](crate::DecodeScratch::reset_cache_stats)
/// or a change of owning decoder).
///
/// Only *noisy* shots are counted — quiet shots are skipped by the batch
/// engine's word-level scan before the memo is ever consulted. `prefilled`
/// counts cache *entries* seeded from the decoding graph rather than shots.
///
/// The `*_words` counters describe the word-parallel triage of
/// [`Decoder::decode_batch`](crate::Decoder::decode_batch): every 64-shot
/// word is classified as quiet (no defect anywhere), sparse (every noisy
/// lane at or below the memo's defect cap) or dense (at least one lane
/// above the cap, routed through the per-shot fallback). `word_merged`
/// counts the noisy shots answered by the word-level single-defect merge —
/// they are also counted in `hits`, so the hit/miss totals stay comparable
/// with the per-shot reference path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Noisy shots answered from the memo.
    pub hits: u64,
    /// Noisy shots decoded and inserted (or droppable at the entry cap).
    pub misses: u64,
    /// Noisy shots with more defects than the memo cap (decoded directly).
    pub uncacheable: u64,
    /// Single-defect entries precomputed into the memo when the owning
    /// decoder first claimed it (see the prefill pass of
    /// [`Decoder::decode_batch`](crate::Decoder::decode_batch)).
    pub prefilled: u64,
    /// Words of the word-parallel triage with no fired detector.
    pub quiet_words: u64,
    /// Noisy words in which every lane was at or below the memo's defect
    /// cap.
    pub sparse_words: u64,
    /// Words with at least one lane above the cap, decoded on the per-shot
    /// fallback path.
    pub dense_words: u64,
    /// Noisy shots answered by the word-parallel fast lanes — the
    /// single-defect merge and the flat pair mirror — without touching the
    /// hash table or a decoder (a subset of `hits`).
    pub word_merged: u64,
    /// Dense-tier LRU probes answered from the cache (whole-lane or
    /// per-cluster entries). Dense lanes are also counted in `uncacheable`,
    /// so the sparse hit/miss totals stay comparable across versions.
    pub dense_hits: u64,
    /// Dense-tier LRU probes that missed (the lane or cluster was decoded
    /// and inserted, evicting the least-recently-used entry at the cap).
    pub dense_misses: u64,
    /// Entries evicted from the dense LRU tier to stay under
    /// [`MemoConfig::dense_max_entries`].
    pub dense_evictions: u64,
    /// Dense lanes whose defects split into ≥2 connected clusters on the
    /// decoding graph (decoded cluster-by-cluster instead of whole-lane).
    pub cluster_lanes: u64,
    /// Total clusters across all `cluster_lanes` decompositions.
    pub cluster_components: u64,
    /// Cluster decompositions abandoned because two clusters merged during
    /// growth (rolled back and re-decoded whole-lane).
    pub cluster_conflicts: u64,
}

impl CacheStats {
    /// Noisy shots that consulted the memo (hits + misses).
    pub fn attempts(&self) -> u64 {
        self.hits + self.misses
    }

    /// All noisy shots decoded while the memo was active.
    pub fn decoded(&self) -> u64 {
        self.hits + self.misses + self.uncacheable
    }

    /// All words the word-parallel path triaged.
    pub fn words(&self) -> u64 {
        self.quiet_words + self.sparse_words + self.dense_words
    }

    /// Fraction of noisy shots answered from the memo (0 when nothing was
    /// decoded).
    pub fn hit_rate(&self) -> f64 {
        let decoded = self.decoded();
        if decoded == 0 {
            0.0
        } else {
            self.hits as f64 / decoded as f64
        }
    }

    /// Adds another set of counters field-wise (used by the estimator to
    /// aggregate per-chunk deltas).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.uncacheable += other.uncacheable;
        self.prefilled += other.prefilled;
        self.quiet_words += other.quiet_words;
        self.sparse_words += other.sparse_words;
        self.dense_words += other.dense_words;
        self.word_merged += other.word_merged;
        self.dense_hits += other.dense_hits;
        self.dense_misses += other.dense_misses;
        self.dense_evictions += other.dense_evictions;
        self.cluster_lanes += other.cluster_lanes;
        self.cluster_components += other.cluster_components;
        self.cluster_conflicts += other.cluster_conflicts;
    }

    /// The counters accumulated since `earlier` was captured from the same
    /// memo. Counters only grow between captures except when another
    /// decoder claims the memo (which zeroes them *before* any counting);
    /// a field that shrank is therefore reported as its post-reset value.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        let delta = |now: u64, then: u64| if now >= then { now - then } else { now };
        CacheStats {
            hits: delta(self.hits, earlier.hits),
            misses: delta(self.misses, earlier.misses),
            uncacheable: delta(self.uncacheable, earlier.uncacheable),
            prefilled: delta(self.prefilled, earlier.prefilled),
            quiet_words: delta(self.quiet_words, earlier.quiet_words),
            sparse_words: delta(self.sparse_words, earlier.sparse_words),
            dense_words: delta(self.dense_words, earlier.dense_words),
            word_merged: delta(self.word_merged, earlier.word_merged),
            dense_hits: delta(self.dense_hits, earlier.dense_hits),
            dense_misses: delta(self.dense_misses, earlier.dense_misses),
            dense_evictions: delta(self.dense_evictions, earlier.dense_evictions),
            cluster_lanes: delta(self.cluster_lanes, earlier.cluster_lanes),
            cluster_components: delta(self.cluster_components, earlier.cluster_components),
            cluster_conflicts: delta(self.cluster_conflicts, earlier.cluster_conflicts),
        }
    }
}

/// Memo key: the defect set padded with `u32::MAX` sentinels. Defect lists
/// arriving from the batch gather loop are already sorted ascending, so the
/// padded array is a canonical encoding of the set.
type MemoKey = [u32; MEMO_KEY_CAPACITY];

/// A fast non-cryptographic hasher for [`MemoKey`]s (SplitMix64 folding; the
/// std SipHash default costs more than a small decode on the hit path).
///
/// `Hash` for integer arrays reaches the hasher through one bulk
/// [`Hasher::write`] of the element bytes (plus a length prefix), so `write`
/// folds whole 8-byte words — a [`MemoKey`] costs ~4 mixing rounds, not one
/// per byte.
#[derive(Debug, Default, Clone)]
pub(crate) struct MemoKeyHasher {
    state: u64,
}

impl Hasher for MemoKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("exact 8-byte chunk"));
            self.write_u64(word);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.write_u64(u64::from_le_bytes(word) ^ ((tail.len() as u64) << 56));
        }
    }

    fn write_u32(&mut self, value: u32) {
        self.write_u64(u64::from(value));
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    fn write_u64(&mut self, value: u64) {
        let mut z = self.state ^ value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.state = z ^ (z >> 31);
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

type MemoTable = HashMap<MemoKey, u64, BuildHasherDefault<MemoKeyHasher>>;

/// Slab-list sentinel for [`DenseLru`] links.
const DENSE_NIL: u32 = u32::MAX;

/// One cached dense decode: canonical (sorted-ascending) defect list, the
/// observable-flip mask it decodes to, and the non-boundary detectors the
/// decode touched (needed to claim scratch regions when the entry answers a
/// *cluster* probe inside a larger lane; empty = unknown, usable only for
/// whole-lane answers).
#[derive(Debug, Clone)]
struct DenseEntry {
    key: Box<[u32]>,
    flips: u64,
    touched: Box<[u32]>,
    prev: u32,
    next: u32,
}

/// A bounded least-recently-used cache of above-cap defect sets: a hash map
/// from canonical defect list to a slab slot, with slots threaded on an
/// intrusive doubly-linked recency list (head = most recent). Lookups touch;
/// inserts evict from the tail once the cap is reached.
#[derive(Debug, Clone)]
struct DenseLru {
    map: HashMap<Box<[u32]>, u32, BuildHasherDefault<MemoKeyHasher>>,
    slab: Vec<DenseEntry>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
}

impl Default for DenseLru {
    fn default() -> Self {
        DenseLru {
            map: HashMap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            head: DENSE_NIL,
            tail: DENSE_NIL,
        }
    }
}

impl DenseLru {
    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = DENSE_NIL;
        self.tail = DENSE_NIL;
    }

    fn detach(&mut self, index: u32) {
        let (prev, next) = {
            let entry = &self.slab[index as usize];
            (entry.prev, entry.next)
        };
        if prev != DENSE_NIL {
            self.slab[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != DENSE_NIL {
            self.slab[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, index: u32) {
        let old_head = self.head;
        {
            let entry = &mut self.slab[index as usize];
            entry.prev = DENSE_NIL;
            entry.next = old_head;
        }
        if old_head != DENSE_NIL {
            self.slab[old_head as usize].prev = index;
        } else {
            self.tail = index;
        }
        self.head = index;
    }

    /// Looks up a defect set and marks it most-recently used. `Box<[u32]>`
    /// borrows as `[u32]`, so probes allocate nothing.
    fn get(&mut self, key: &[u32]) -> Option<(u64, &[u32])> {
        let index = *self.map.get(key)?;
        if self.head != index {
            self.detach(index);
            self.push_front(index);
        }
        let entry = &self.slab[index as usize];
        Some((entry.flips, &entry.touched))
    }

    /// Inserts (or updates) an entry, evicting least-recently-used entries
    /// to stay under `cap`; returns the number of evictions.
    fn insert(&mut self, key: &[u32], flips: u64, touched: &[u32], cap: usize) -> u64 {
        if cap == 0 {
            return 0;
        }
        if let Some(&index) = self.map.get(key) {
            let entry = &mut self.slab[index as usize];
            entry.flips = flips;
            entry.touched = touched.into();
            if self.head != index {
                self.detach(index);
                self.push_front(index);
            }
            return 0;
        }
        let mut evicted = 0;
        while self.map.len() >= cap {
            let victim = self.tail;
            debug_assert_ne!(victim, DENSE_NIL, "non-empty map implies a tail");
            self.detach(victim);
            let old_key = std::mem::take(&mut self.slab[victim as usize].key);
            self.map.remove(&old_key);
            self.free.push(victim);
            evicted += 1;
        }
        let fresh = DenseEntry {
            key: key.into(),
            flips,
            touched: touched.into(),
            prev: DENSE_NIL,
            next: DENSE_NIL,
        };
        let index = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = fresh;
                slot
            }
            None => {
                self.slab.push(fresh);
                (self.slab.len() - 1) as u32
            }
        };
        self.map.insert(key.into(), index);
        self.push_front(index);
        evicted
    }
}

/// An immutable, cheaply cloneable snapshot of a warmed [`SyndromeMemo`],
/// shared behind an [`Arc`](std::sync::Arc).
///
/// Snapshots are the cross-worker memo-sharing primitive: one scratch is
/// warmed (claim + single-defect prefill via
/// [`Decoder::warm_memo_snapshot`](crate::Decoder::warm_memo_snapshot)),
/// its memo is frozen into a snapshot, and every worker thread adopts the
/// snapshot into its own [`DecodeScratch`](crate::DecodeScratch) — a clone
/// of the table instead of a re-prefill per worker, so the word path's hit
/// rate (and the prefill cost) survives sharding across workers and sweep
/// points. Adoption is a no-op when the scratch's memo already belongs to
/// the snapshot's decoder, so workers keep the extra entries they learn on
/// top of the shared base.
#[derive(Debug, Clone)]
pub struct MemoSnapshot {
    inner: std::sync::Arc<SnapshotInner>,
}

#[derive(Debug)]
struct SnapshotInner {
    owner: NonZeroU64,
    num_observables: usize,
    config: MemoConfig,
    table: MemoTable,
    single_flips: Vec<u64>,
    single_known: Vec<bool>,
    pair_flips: Vec<u64>,
    pair_known: Vec<u64>,
    dense: DenseLru,
    prefilled: bool,
    prefilled_count: u64,
}

impl MemoSnapshot {
    /// Number of defect sets frozen in the snapshot.
    pub fn len(&self) -> usize {
        self.inner.table.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.table.is_empty()
    }

    /// Number of observables the frozen predictions cover.
    pub fn num_observables(&self) -> usize {
        self.inner.num_observables
    }
}

/// The per-decoder prediction cache (see the [module docs](self)).
///
/// Predictions are stored as a `u64` observable-flip bitmask, so memoization
/// only applies to decoding problems with at most 64 logical observables —
/// plenty for the paper's workloads (single-patch memory experiments track
/// one observable).
#[derive(Debug, Clone, Default)]
pub(crate) struct SyndromeMemo {
    /// Memo token of the owning decoder (`None` = unowned / empty).
    owner: Option<NonZeroU64>,
    num_observables: usize,
    config: MemoConfig,
    table: MemoTable,
    stats: CacheStats,
    /// Whether the single-defect prefill pass ran for the current owner.
    prefilled: bool,
    /// Dense mirror of the table's single-defect entries, indexed by
    /// detector: the word-parallel sparse path reads predictions from here
    /// with one array load instead of a hash probe per shot. Maintained
    /// incrementally on insert/prefill so it always equals "what a memo
    /// lookup of `[detector]` would return".
    single_flips: Vec<u64>,
    single_known: Vec<bool>,
    /// Flat mirror of the table's two-defect entries, indexed by
    /// `d1 · PAIR_TABLE_DETECTORS + d2` (with `d1 < d2 <`
    /// [`PAIR_TABLE_DETECTORS`]); allocated lazily on the first mirrored
    /// pair. `pair_known` is the matching presence bitset.
    pair_flips: Vec<u64>,
    pair_known: Vec<u64>,
    /// The bounded LRU tier for above-cap defect sets (whole dense lanes
    /// and their connected clusters), keyed like the sparse table but with
    /// unbounded-cardinality keys and tail eviction instead of insert
    /// refusal.
    dense: DenseLru,
}

/// Flat index of an in-range pair, `None` outside the table's range.
fn pair_index(d1: usize, d2: usize) -> Option<usize> {
    (d1 < PAIR_TABLE_DETECTORS && d2 < PAIR_TABLE_DETECTORS).then(|| d1 * PAIR_TABLE_DETECTORS + d2)
}

impl SyndromeMemo {
    /// The active configuration.
    pub(crate) fn config(&self) -> MemoConfig {
        self.config
    }

    /// Installs a new configuration (entries survive — they are keyed by
    /// defect set and stay valid under any cap).
    pub(crate) fn set_config(&mut self, config: MemoConfig) {
        self.config = config;
    }

    /// Accumulated hit/miss counters.
    pub(crate) fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Memo token of the current owner (`None` while unowned).
    pub(crate) fn owner(&self) -> Option<NonZeroU64> {
        self.owner
    }

    /// Resets the hit/miss counters (entries are kept).
    pub(crate) fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of cached defect sets.
    pub(crate) fn len(&self) -> usize {
        self.table.len()
    }

    /// Claims the memo for the decoder with the given token, clearing any
    /// entries (and stats) cached for a different decoder.
    pub(crate) fn claim(&mut self, token: NonZeroU64, num_observables: usize) {
        if self.owner != Some(token) || self.num_observables != num_observables {
            self.table.clear();
            self.stats = CacheStats::default();
            self.owner = Some(token);
            self.num_observables = num_observables;
            self.prefilled = false;
            self.single_flips.clear();
            self.single_known.clear();
            self.pair_flips.clear();
            self.pair_known.clear();
            self.dense.clear();
        }
    }

    /// Freezes the current entries (and singles mirror) into a shareable
    /// snapshot. `None` while the memo is unowned.
    pub(crate) fn snapshot(&self) -> Option<MemoSnapshot> {
        let owner = self.owner?;
        Some(MemoSnapshot {
            inner: std::sync::Arc::new(SnapshotInner {
                owner,
                num_observables: self.num_observables,
                config: self.config,
                table: self.table.clone(),
                single_flips: self.single_flips.clone(),
                single_known: self.single_known.clone(),
                pair_flips: self.pair_flips.clone(),
                pair_known: self.pair_known.clone(),
                dense: self.dense.clone(),
                prefilled: self.prefilled,
                prefilled_count: self.stats.prefilled,
            }),
        })
    }

    /// Installs a snapshot's entries, adopting its owner. A no-op when the
    /// memo already belongs to the snapshot's decoder (the worker keeps any
    /// extra entries it has learned on top of the shared base); otherwise
    /// the memo is re-keyed exactly as a fresh claim-plus-prefill would
    /// leave it, with `prefilled` carried over so stats stay comparable
    /// with per-worker warming.
    pub(crate) fn adopt(&mut self, snapshot: &MemoSnapshot) {
        let inner = &*snapshot.inner;
        if self.owner == Some(inner.owner) && self.num_observables == inner.num_observables {
            return;
        }
        self.owner = Some(inner.owner);
        self.num_observables = inner.num_observables;
        self.config = inner.config;
        self.table = inner.table.clone();
        self.single_flips = inner.single_flips.clone();
        self.single_known = inner.single_known.clone();
        self.pair_flips = inner.pair_flips.clone();
        self.pair_known = inner.pair_known.clone();
        self.dense = inner.dense.clone();
        self.prefilled = inner.prefilled;
        self.stats = CacheStats {
            prefilled: inner.prefilled_count,
            ..CacheStats::default()
        };
    }

    /// Whether the single-defect prefill pass still has to run for the
    /// current owner.
    pub(crate) fn needs_prefill(&self) -> bool {
        !self.prefilled
    }

    /// Marks the prefill pass as done for the current owner (kept across
    /// chunks; reset only when another decoder claims the memo).
    pub(crate) fn mark_prefilled(&mut self) {
        self.prefilled = true;
    }

    /// Whether the entry cap still admits insertions.
    pub(crate) fn can_insert(&self) -> bool {
        self.table.len() < self.config.max_entries
    }

    /// Seeds one precomputed single-defect prediction, counting it in
    /// [`CacheStats::prefilled`] (dropped silently at the entry cap).
    pub(crate) fn prefill(&mut self, fired_detectors: &[usize], mask: u64) {
        if self.can_insert() {
            self.table.insert(Self::key(fired_detectors), mask);
            self.stats.prefilled += 1;
            self.note_single(fired_detectors, mask);
        }
    }

    /// Mirrors a stored single- or two-defect entry into the flat fast-lane
    /// tables.
    fn note_single(&mut self, fired_detectors: &[usize], mask: u64) {
        match fired_detectors {
            [detector] => {
                if *detector >= self.single_known.len() {
                    self.single_known.resize(detector + 1, false);
                    self.single_flips.resize(detector + 1, 0);
                }
                self.single_known[*detector] = true;
                self.single_flips[*detector] = mask;
            }
            [d1, d2] => {
                if let Some(index) = pair_index(*d1, *d2) {
                    if self.pair_flips.is_empty() {
                        self.pair_flips
                            .resize(PAIR_TABLE_DETECTORS * PAIR_TABLE_DETECTORS, 0);
                        self.pair_known
                            .resize(PAIR_TABLE_DETECTORS * PAIR_TABLE_DETECTORS / 64, 0);
                    }
                    self.pair_flips[index] = mask;
                    self.pair_known[index / 64] |= 1u64 << (index % 64);
                }
            }
            _ => {}
        }
    }

    /// The stored prediction of the single-defect set `[detector]`, if the
    /// table holds one — an array load, no hash probe, no stat counting
    /// (the word path counts answered lanes in bulk via
    /// [`SyndromeMemo::count_word_merged`]).
    pub(crate) fn single_flip(&self, detector: usize) -> Option<u64> {
        if *self.single_known.get(detector)? {
            Some(self.single_flips[detector])
        } else {
            None
        }
    }

    /// The stored prediction of the two-defect set `[d1, d2]` (callers pass
    /// `d1 < d2`, the canonical key order), if the flat pair mirror holds
    /// one — an array load, no hash probe, no stat counting.
    pub(crate) fn pair_flip(&self, d1: usize, d2: usize) -> Option<u64> {
        let index = pair_index(d1, d2)?;
        let known = self.pair_known.get(index / 64)?;
        if known >> (index % 64) & 1 == 1 {
            Some(self.pair_flips[index])
        } else {
            None
        }
    }

    /// Counts `count` single- or two-defect shots answered by the
    /// word-parallel merge: they are hits (the data came from the memo) and
    /// are also tallied in [`CacheStats::word_merged`].
    pub(crate) fn count_word_merged(&mut self, count: u64) {
        self.stats.hits += count;
        self.stats.word_merged += count;
    }

    /// Counts one quiet word of the word-parallel triage.
    pub(crate) fn note_quiet_word(&mut self) {
        self.stats.quiet_words += 1;
    }

    /// Counts one sparse word of the word-parallel triage.
    pub(crate) fn note_sparse_word(&mut self) {
        self.stats.sparse_words += 1;
    }

    /// Counts one dense word of the word-parallel triage.
    pub(crate) fn note_dense_word(&mut self) {
        self.stats.dense_words += 1;
    }

    /// Whether a defect set of the given cardinality can be memoized under
    /// the current configuration.
    pub(crate) fn cacheable(&self, defects: usize, num_observables: usize) -> bool {
        defects <= self.config.effective_max_defects() && num_observables <= 64
    }

    fn key(fired_detectors: &[usize]) -> MemoKey {
        let mut key = [u32::MAX; MEMO_KEY_CAPACITY];
        for (slot, &d) in key.iter_mut().zip(fired_detectors) {
            *slot = d as u32;
        }
        key
    }

    /// Looks up the prediction bitmask of a cacheable defect set, counting a
    /// hit or a miss.
    pub(crate) fn lookup(&mut self, fired_detectors: &[usize]) -> Option<u64> {
        match self.table.get(&Self::key(fired_detectors)) {
            Some(&mask) => {
                self.stats.hits += 1;
                Some(mask)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records the decoded prediction of a missed defect set (dropped when
    /// the entry cap is reached).
    pub(crate) fn insert(&mut self, fired_detectors: &[usize], mask: u64) {
        if self.table.len() < self.config.max_entries {
            self.table.insert(Self::key(fired_detectors), mask);
            self.note_single(fired_detectors, mask);
        }
    }

    /// Counts a shot that bypassed the memo (defect count above the cap).
    pub(crate) fn note_uncacheable(&mut self) {
        self.stats.uncacheable += 1;
    }

    /// Whether the dense LRU tier is enabled under the active configuration.
    pub(crate) fn dense_enabled(&self) -> bool {
        self.config.dense_enabled()
    }

    /// Number of entries currently held by the dense LRU tier.
    pub(crate) fn dense_len(&self) -> usize {
        self.dense.len()
    }

    /// Probes the dense tier for a canonical (sorted-ascending) defect
    /// list, counting a dense hit or miss and marking the entry
    /// most-recently used. Returns the flip mask and the stored touched-set
    /// (empty when the entry carries no claim information).
    pub(crate) fn dense_lookup(&mut self, key: &[u32]) -> Option<(u64, &[u32])> {
        match self.dense.get(key) {
            Some(found) => {
                self.stats.dense_hits += 1;
                Some(found)
            }
            None => {
                self.stats.dense_misses += 1;
                None
            }
        }
    }

    /// Records a decoded dense defect set, evicting least-recently-used
    /// entries at the cap (a no-op while the tier is disabled).
    pub(crate) fn dense_insert(&mut self, key: &[u32], flips: u64, touched: &[u32]) {
        if !self.dense_enabled() {
            return;
        }
        self.stats.dense_evictions +=
            self.dense
                .insert(key, flips, touched, self.config.dense_max_entries);
    }

    /// Counts one dense lane that decomposed into `components` (≥2)
    /// connected clusters.
    pub(crate) fn note_cluster_lane(&mut self, components: u64) {
        self.stats.cluster_lanes += 1;
        self.stats.cluster_components += components;
    }

    /// Counts one abandoned cluster decomposition (clusters merged during
    /// growth; the lane was rolled back and re-decoded whole).
    pub(crate) fn note_cluster_conflict(&mut self) {
        self.stats.cluster_conflicts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_disable() {
        let config = MemoConfig::default();
        assert!(config.enabled());
        assert_eq!(config.max_defects, DEFAULT_MEMO_MAX_DEFECTS);
        assert!(!MemoConfig::disabled().enabled());
        assert_eq!(
            MemoConfig::default()
                .with_max_defects(100)
                .effective_max_defects(),
            MEMO_KEY_CAPACITY
        );
    }

    #[test]
    fn stats_hit_rate() {
        let stats = CacheStats {
            hits: 6,
            misses: 2,
            uncacheable: 2,
            prefilled: 5,
            ..CacheStats::default()
        };
        assert_eq!(stats.attempts(), 8);
        assert_eq!(stats.decoded(), 10, "prefilled entries are not shots");
        assert!((stats.hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn lookup_insert_roundtrip_and_counters() {
        let mut memo = SyndromeMemo::default();
        let token = next_memo_token();
        memo.claim(token, 1);
        assert_eq!(memo.lookup(&[1, 4]), None);
        memo.insert(&[1, 4], 0b1);
        assert_eq!(memo.lookup(&[1, 4]), Some(0b1));
        assert_eq!(memo.lookup(&[4]), None);
        memo.note_uncacheable();
        assert_eq!(
            memo.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                uncacheable: 1,
                ..CacheStats::default()
            }
        );
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn prefill_counts_entries_and_respects_the_cap() {
        let mut memo = SyndromeMemo::default();
        memo.set_config(MemoConfig::default().with_max_entries(2));
        let token = next_memo_token();
        memo.claim(token, 1);
        assert!(memo.needs_prefill());
        memo.prefill(&[0], 0b1);
        memo.prefill(&[1], 0);
        memo.prefill(&[2], 0b1);
        memo.mark_prefilled();
        assert!(!memo.needs_prefill());
        assert_eq!(memo.len(), 2, "cap bounds prefill too");
        assert_eq!(memo.stats().prefilled, 2);
        // Prefilled entries answer lookups as ordinary hits.
        assert_eq!(memo.lookup(&[0]), Some(0b1));
        assert_eq!(memo.lookup(&[2]), None);
        assert_eq!(memo.stats().hits, 1);
        assert_eq!(memo.stats().misses, 1);
        // Re-claim by the same owner keeps the prefill; a new owner resets.
        memo.claim(token, 1);
        assert!(!memo.needs_prefill());
        memo.claim(next_memo_token(), 1);
        assert!(memo.needs_prefill());
        assert_eq!(memo.stats().prefilled, 0);
    }

    #[test]
    fn claim_by_other_decoder_clears_entries_and_stats() {
        let mut memo = SyndromeMemo::default();
        let a = next_memo_token();
        let b = next_memo_token();
        memo.claim(a, 1);
        memo.insert(&[0], 1);
        assert_eq!(memo.lookup(&[0]), Some(1));
        // Re-claim by the same owner keeps everything.
        memo.claim(a, 1);
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.stats().hits, 1);
        // A different owner starts from scratch.
        memo.claim(b, 1);
        assert_eq!(memo.len(), 0);
        assert_eq!(memo.stats(), CacheStats::default());
        assert_eq!(memo.lookup(&[0]), None);
    }

    #[test]
    fn observable_count_change_also_clears() {
        let mut memo = SyndromeMemo::default();
        let token = next_memo_token();
        memo.claim(token, 1);
        memo.insert(&[2], 1);
        memo.claim(token, 2);
        assert_eq!(memo.len(), 0);
    }

    #[test]
    fn entry_cap_stops_insertions_but_not_lookups() {
        let mut memo = SyndromeMemo::default();
        memo.set_config(MemoConfig::default().with_max_entries(1));
        let token = next_memo_token();
        memo.claim(token, 1);
        memo.insert(&[0], 1);
        memo.insert(&[1], 0);
        assert_eq!(memo.len(), 1, "cap must stop the second insert");
        assert_eq!(memo.lookup(&[0]), Some(1));
        assert_eq!(memo.lookup(&[1]), None);
    }

    #[test]
    fn cacheable_respects_cap_and_observables() {
        let mut memo = SyndromeMemo::default();
        memo.set_config(MemoConfig::default().with_max_defects(2));
        assert!(memo.cacheable(0, 1));
        assert!(memo.cacheable(2, 64));
        assert!(!memo.cacheable(3, 1));
        assert!(!memo.cacheable(1, 65));
    }

    #[test]
    fn tokens_are_unique() {
        assert_ne!(next_memo_token(), next_memo_token());
    }

    #[test]
    fn stats_merge_and_since() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            uncacheable: 3,
            prefilled: 4,
            quiet_words: 5,
            sparse_words: 6,
            dense_words: 7,
            word_merged: 1,
            dense_hits: 2,
            dense_misses: 3,
            dense_evictions: 1,
            cluster_lanes: 2,
            cluster_components: 5,
            cluster_conflicts: 1,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.hits, 2);
        assert_eq!(a.dense_words, 14);
        assert_eq!(a.dense_misses, 6);
        assert_eq!(a.cluster_components, 10);
        assert_eq!(a.words(), 10 + 12 + 14);
        assert_eq!(a.since(&b), b, "doubling then removing one copy");
        // A reset between captures (counter now *below* the baseline)
        // reports the post-reset value.
        let earlier = CacheStats {
            hits: 5,
            ..CacheStats::default()
        };
        let fresh = CacheStats {
            hits: 1,
            ..CacheStats::default()
        };
        assert_eq!(fresh.since(&earlier).hits, 1);
        assert_eq!(fresh.since(&b).hits, 0, "no growth, no delta");
        assert_eq!(fresh.since(&b).misses, 0);
    }

    #[test]
    fn singles_table_mirrors_stored_entries_only() {
        let mut memo = SyndromeMemo::default();
        memo.set_config(MemoConfig::default().with_max_entries(2));
        memo.claim(next_memo_token(), 1);
        memo.prefill(&[3], 0b1);
        memo.insert(&[1, 2], 0b1); // pair: not mirrored
        memo.insert(&[5], 0b0); // dropped at the cap: not mirrored
        assert_eq!(memo.single_flip(3), Some(0b1));
        assert_eq!(memo.single_flip(5), None, "capped insert leaves no single");
        assert_eq!(memo.single_flip(1), None);
        assert_eq!(memo.single_flip(99), None, "out of range is absent");
    }

    #[test]
    fn snapshot_round_trips_through_adoption() {
        let token = next_memo_token();
        let mut warm = SyndromeMemo::default();
        assert!(warm.snapshot().is_none(), "unowned memos cannot freeze");
        warm.claim(token, 1);
        warm.prefill(&[0], 0b1);
        warm.prefill(&[4], 0);
        warm.mark_prefilled();
        warm.insert(&[1, 2], 0b1);
        let snapshot = warm.snapshot().expect("owned memo freezes");
        assert_eq!(snapshot.len(), 3);
        assert!(!snapshot.is_empty());
        assert_eq!(snapshot.num_observables(), 1);

        // A differently-owned memo adopts the full state.
        let mut worker = SyndromeMemo::default();
        worker.claim(next_memo_token(), 1);
        worker.insert(&[9], 0b1);
        worker.adopt(&snapshot);
        assert_eq!(worker.len(), 3);
        assert!(!worker.needs_prefill());
        assert_eq!(worker.single_flip(0), Some(0b1));
        assert_eq!(worker.single_flip(9), None, "stale entries are dropped");
        assert_eq!(worker.lookup(&[1, 2]), Some(0b1));
        assert_eq!(
            worker.stats().prefilled,
            2,
            "adoption reports the shared prefill"
        );

        // Re-adoption by the same owner keeps locally learned entries.
        worker.insert(&[2, 3], 0);
        worker.adopt(&snapshot);
        assert_eq!(worker.len(), 4);
        assert_eq!(worker.stats().hits, 1, "stats survive a no-op adoption");
    }

    #[test]
    fn claim_clears_the_singles_mirror() {
        let mut memo = SyndromeMemo::default();
        memo.claim(next_memo_token(), 1);
        memo.prefill(&[2], 0b1);
        assert_eq!(memo.single_flip(2), Some(0b1));
        memo.claim(next_memo_token(), 1);
        assert_eq!(memo.single_flip(2), None);
    }

    #[test]
    fn dense_lru_evicts_least_recently_used() {
        let mut lru = DenseLru::default();
        assert_eq!(lru.insert(&[0, 1, 2, 3, 4], 0b1, &[0, 1, 2, 3, 4], 2), 0);
        assert_eq!(lru.insert(&[5, 6, 7, 8, 9], 0b0, &[5, 6, 7, 8, 9], 2), 0);
        assert_eq!(lru.len(), 2);
        // Touch the older entry so the newer one becomes the LRU victim.
        assert!(lru.get(&[0, 1, 2, 3, 4]).is_some());
        assert_eq!(lru.insert(&[1, 2, 3, 4, 5], 0b1, &[], 2), 1);
        assert_eq!(lru.len(), 2);
        assert!(lru.get(&[5, 6, 7, 8, 9]).is_none(), "LRU entry was evicted");
        let (flips, touched) = lru.get(&[0, 1, 2, 3, 4]).expect("touched entry survives");
        assert_eq!(flips, 0b1);
        assert_eq!(touched, &[0, 1, 2, 3, 4]);
        // Updating an existing key evicts nothing and refreshes the value.
        assert_eq!(lru.insert(&[0, 1, 2, 3, 4], 0b0, &[7], 2), 0);
        assert_eq!(lru.get(&[0, 1, 2, 3, 4]), Some((0b0, &[7][..])));
        // Shrinking the cap evicts as many entries as needed in one insert.
        assert_eq!(lru.insert(&[9, 10, 11, 12, 13], 0b1, &[], 1), 2);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn dense_tier_counts_and_respects_configuration() {
        let mut memo = SyndromeMemo::default();
        memo.set_config(MemoConfig::default().with_dense_max_entries(2));
        memo.claim(next_memo_token(), 1);
        assert!(memo.dense_enabled());
        assert_eq!(memo.dense_lookup(&[0, 1, 2, 3, 4]), None);
        memo.dense_insert(&[0, 1, 2, 3, 4], 0b1, &[0, 1, 2, 3, 4]);
        assert_eq!(
            memo.dense_lookup(&[0, 1, 2, 3, 4]),
            Some((0b1, &[0u32, 1, 2, 3, 4][..]))
        );
        memo.dense_insert(&[1, 2, 3, 4, 5], 0b0, &[]);
        memo.dense_insert(&[2, 3, 4, 5, 6], 0b1, &[]);
        memo.note_cluster_lane(3);
        memo.note_cluster_conflict();
        let stats = memo.stats();
        assert_eq!(stats.dense_hits, 1);
        assert_eq!(stats.dense_misses, 1);
        assert_eq!(stats.dense_evictions, 1, "third insert evicts at cap 2");
        assert_eq!(stats.cluster_lanes, 1);
        assert_eq!(stats.cluster_components, 3);
        assert_eq!(stats.cluster_conflicts, 1);
        assert_eq!(memo.dense_len(), 2);

        // Disabling the tier makes inserts no-ops (probes still count, so
        // callers gate on `dense_enabled` before probing).
        memo.set_config(MemoConfig::default().with_dense_max_entries(0));
        assert!(!memo.dense_enabled());
        memo.dense_insert(&[7, 8, 9, 10, 11], 0b1, &[]);
        assert_eq!(memo.dense_len(), 2, "disabled tier refuses inserts");
        assert!(!MemoConfig::disabled().dense_enabled());
    }

    #[test]
    fn dense_tier_survives_snapshot_and_clears_on_claim() {
        let token = next_memo_token();
        let mut warm = SyndromeMemo::default();
        warm.claim(token, 1);
        warm.dense_insert(&[0, 1, 2, 3, 4], 0b1, &[0, 1, 2, 3, 4]);
        let snapshot = warm.snapshot().expect("owned memo freezes");

        let mut worker = SyndromeMemo::default();
        worker.claim(next_memo_token(), 1);
        worker.adopt(&snapshot);
        assert_eq!(worker.dense_len(), 1, "dense tier rides the snapshot");
        assert!(worker.dense_lookup(&[0, 1, 2, 3, 4]).is_some());

        worker.claim(next_memo_token(), 1);
        assert_eq!(worker.dense_len(), 0, "a new owner clears the tier");
    }
}
