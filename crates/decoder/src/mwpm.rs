//! Exact minimum-weight matching decoder.
//!
//! The paper's logical error rates are produced with Stim plus a
//! minimum-weight perfect-matching (MWPM) decoder; this repository's default
//! decoder is weighted union-find, which has the same threshold behaviour
//! but is slightly pessimistic (see `DESIGN.md`). This module adds an
//! **exact** matching decoder used as an accuracy reference and as an
//! ablation point:
//!
//! * the defects of one shot are matched to each other or to the virtual
//!   boundary with *exactly* minimum total weight, where pairwise weights
//!   are shortest-path distances in the decoding graph;
//! * the exact matching is found by dynamic programming over defect subsets,
//!   which is exponential in the number of defects of the shot — fine for
//!   the below-threshold regime the architectural study cares about, where
//!   shots contain only a handful of defects;
//! * shots with more defects than [`ExactMatchingDecoder::max_exact_defects`]
//!   fall back to the greedy matching decoder, so the decoder never blows up
//!   on pathological above-threshold shots.
//!
//! Compared to a full blossom implementation this is exact only per shot
//! (not asymptotically fast), which is the right trade-off for a test
//! reference: simple enough to audit, exact where it matters.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{Decoder, DecodingGraph, GreedyMatchingDecoder};

/// Default cap on the number of defects decoded exactly per shot.
pub const DEFAULT_MAX_EXACT_DEFECTS: usize = 14;

/// Exact minimum-weight matching decoder with a greedy fallback for
/// high-defect shots.
#[derive(Debug, Clone)]
pub struct ExactMatchingDecoder {
    graph: DecodingGraph,
    greedy: GreedyMatchingDecoder,
    boundary: usize,
    max_exact_defects: usize,
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    distance: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; distances are finite by construction.
        other
            .distance
            .partial_cmp(&self.distance)
            .unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl ExactMatchingDecoder {
    /// Creates a decoder for the given decoding graph.
    pub fn new(graph: DecodingGraph) -> Self {
        let boundary = graph.num_detectors();
        let greedy = GreedyMatchingDecoder::new(graph.clone());
        ExactMatchingDecoder {
            graph,
            greedy,
            boundary,
            max_exact_defects: DEFAULT_MAX_EXACT_DEFECTS,
        }
    }

    /// Overrides the exact-matching defect cap (shots with more defects use
    /// the greedy fallback).
    pub fn with_max_exact_defects(mut self, max_exact_defects: usize) -> Self {
        self.max_exact_defects = max_exact_defects;
        self
    }

    /// The exact-matching defect cap.
    pub fn max_exact_defects(&self) -> usize {
        self.max_exact_defects
    }

    /// Dijkstra from `source`, returning per-node `(distance, incoming edge)`.
    /// Node index `num_detectors` is the virtual boundary.
    fn shortest_paths(&self, source: usize) -> (Vec<f64>, Vec<Option<usize>>) {
        let n = self.graph.num_detectors() + 1;
        let mut dist = vec![f64::INFINITY; n];
        let mut via = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[source] = 0.0;
        heap.push(HeapEntry {
            distance: 0.0,
            node: source,
        });
        while let Some(HeapEntry { distance, node }) = heap.pop() {
            if distance > dist[node] {
                continue;
            }
            let incident: Vec<usize> = if node == self.boundary {
                self.graph
                    .edges()
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.b.is_none())
                    .map(|(i, _)| i)
                    .collect()
            } else {
                self.graph.incident_edges(node).to_vec()
            };
            for edge_index in incident {
                let edge = &self.graph.edges()[edge_index];
                let next = if edge.a == node {
                    edge.b.unwrap_or(self.boundary)
                } else {
                    edge.a
                };
                let candidate = distance + edge.weight.max(1e-9);
                if candidate < dist[next] {
                    dist[next] = candidate;
                    via[next] = Some(edge_index);
                    heap.push(HeapEntry {
                        distance: candidate,
                        node: next,
                    });
                }
            }
        }
        (dist, via)
    }

    /// XOR of the observables along the shortest path (described by `via`,
    /// rooted at `source`) from `target` back to `source` into `flips`.
    fn apply_path_observables(
        &self,
        via: &[Option<usize>],
        source: usize,
        mut target: usize,
        flips: &mut [bool],
    ) {
        while target != source {
            let edge_index = via[target].expect("path must exist");
            let edge = &self.graph.edges()[edge_index];
            for &obs in &edge.observables {
                flips[obs as usize] ^= true;
            }
            target = if edge.a == target {
                edge.b.unwrap_or(self.boundary)
            } else {
                edge.a
            };
        }
    }

    /// Returns the minimum total matching weight of the given defect set, or
    /// `None` when no finite matching exists or the shot exceeds the exact
    /// cap. Exposed for tests and decoder-comparison diagnostics.
    pub fn matching_weight(&self, fired_detectors: &[usize]) -> Option<f64> {
        if fired_detectors.is_empty() {
            return Some(0.0);
        }
        if fired_detectors.len() > self.max_exact_defects {
            return None;
        }
        let plan = self.solve(fired_detectors)?;
        Some(plan.total_weight)
    }

    /// Solves the exact matching for one shot.
    fn solve(&self, defects: &[usize]) -> Option<MatchingPlan> {
        let n = defects.len();
        let searches: Vec<(Vec<f64>, Vec<Option<usize>>)> =
            defects.iter().map(|&d| self.shortest_paths(d)).collect();

        // Pairwise and boundary costs.
        let mut pair_cost = vec![vec![f64::INFINITY; n]; n];
        let mut boundary_cost = vec![f64::INFINITY; n];
        for i in 0..n {
            boundary_cost[i] = searches[i].0[self.boundary];
            for j in 0..n {
                if i != j {
                    pair_cost[i][j] = searches[i].0[defects[j]];
                }
            }
        }

        // DP over subsets: dp[mask] = min cost of matching the defects in
        // `mask`, where each defect pairs with another defect or with the
        // boundary.
        let full = (1usize << n) - 1;
        let mut dp = vec![f64::INFINITY; full + 1];
        let mut choice: Vec<Option<(usize, Option<usize>)>> = vec![None; full + 1];
        dp[0] = 0.0;
        for mask in 1..=full {
            let i = mask.trailing_zeros() as usize;
            let without_i = mask & !(1 << i);
            // Option 1: match defect i to the boundary.
            if boundary_cost[i].is_finite() && dp[without_i].is_finite() {
                let cost = dp[without_i] + boundary_cost[i];
                if cost < dp[mask] {
                    dp[mask] = cost;
                    choice[mask] = Some((i, None));
                }
            }
            // Option 2: pair defect i with another defect j in the mask.
            let mut rest = without_i;
            while rest != 0 {
                let j = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                if !pair_cost[i][j].is_finite() {
                    continue;
                }
                let prev = mask & !(1 << i) & !(1 << j);
                if dp[prev].is_finite() {
                    let cost = dp[prev] + pair_cost[i][j];
                    if cost < dp[mask] {
                        dp[mask] = cost;
                        choice[mask] = Some((i, Some(j)));
                    }
                }
            }
        }
        if !dp[full].is_finite() {
            return None;
        }

        // Reconstruct the matching.
        let mut pairs = Vec::new();
        let mut mask = full;
        while mask != 0 {
            let (i, partner) = choice[mask].expect("finite dp entries have a recorded choice");
            match partner {
                None => {
                    pairs.push((i, None));
                    mask &= !(1 << i);
                }
                Some(j) => {
                    pairs.push((i, Some(j)));
                    mask &= !(1 << i);
                    mask &= !(1 << j);
                }
            }
        }
        Some(MatchingPlan {
            total_weight: dp[full],
            pairs,
            searches,
        })
    }
}

/// The reconstructed matching of one shot.
#[derive(Debug)]
struct MatchingPlan {
    total_weight: f64,
    /// `(defect index, Some(partner index) | None for boundary)`.
    pairs: Vec<(usize, Option<usize>)>,
    /// Dijkstra state rooted at each defect.
    searches: Vec<(Vec<f64>, Vec<Option<usize>>)>,
}

impl Decoder for ExactMatchingDecoder {
    fn decode(&self, fired_detectors: &[usize]) -> Vec<bool> {
        let mut prediction = vec![false; self.graph.num_observables()];
        if fired_detectors.is_empty() || self.graph.is_empty() {
            return prediction;
        }
        if fired_detectors.len() > self.max_exact_defects {
            return self.greedy.decode(fired_detectors);
        }
        let Some(plan) = self.solve(fired_detectors) else {
            return self.greedy.decode(fired_detectors);
        };
        for &(i, partner) in &plan.pairs {
            let (_, via) = &plan.searches[i];
            let target = match partner {
                None => self.boundary,
                Some(j) => fired_detectors[j],
            };
            self.apply_path_observables(via, fired_detectors[i], target, &mut prediction);
        }
        prediction
    }

    fn num_observables(&self) -> usize {
        self.graph.num_observables()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_sim::{DemError, DetectorErrorModel};

    /// A 1-D repetition-code-like chain of `n` detectors with boundary edges
    /// at both ends; every edge flips observable 0 iff `flag` is set.
    fn chain_dem(n: usize, p: f64) -> DetectorErrorModel {
        let mut errors = Vec::new();
        // Left boundary edge flips the observable (it crosses the logical).
        errors.push(DemError {
            probability: p,
            detectors: vec![0],
            observables: vec![0],
        });
        for i in 0..n - 1 {
            errors.push(DemError {
                probability: p,
                detectors: vec![i as u32, i as u32 + 1],
                observables: vec![],
            });
        }
        errors.push(DemError {
            probability: p,
            detectors: vec![n as u32 - 1],
            observables: vec![],
        });
        DetectorErrorModel {
            num_detectors: n,
            num_observables: 1,
            errors,
        }
    }

    fn decoder(n: usize, p: f64) -> ExactMatchingDecoder {
        ExactMatchingDecoder::new(DecodingGraph::from_dem(&chain_dem(n, p)))
    }

    #[test]
    fn empty_syndrome_predicts_no_flip() {
        let dec = decoder(5, 0.01);
        assert_eq!(dec.decode(&[]), vec![false]);
        assert_eq!(dec.matching_weight(&[]), Some(0.0));
    }

    #[test]
    fn single_defect_matches_to_the_nearest_boundary() {
        let dec = decoder(7, 0.01);
        // A defect next to the left boundary: the cheapest correction goes
        // through the left boundary edge, which flips the observable.
        assert_eq!(dec.decode(&[0]), vec![true]);
        // A defect next to the right boundary: corrected without a flip.
        assert_eq!(dec.decode(&[6]), vec![false]);
    }

    #[test]
    fn adjacent_defect_pair_matches_internally() {
        let dec = decoder(7, 0.01);
        // Two adjacent defects in the bulk: one internal edge explains both,
        // no logical flip.
        assert_eq!(dec.decode(&[3, 4]), vec![false]);
        let w = dec.matching_weight(&[3, 4]).unwrap();
        let single_edge_weight = ((1.0_f64 - 0.01) / 0.01).ln();
        assert!((w - single_edge_weight).abs() < 1e-6);
    }

    #[test]
    fn exact_matching_never_costs_more_than_greedy() {
        // Greedy pairing can be trapped by a locally-cheap choice; the exact
        // decoder must never produce a heavier matching. Compare on every
        // 4-defect subset of a chain.
        let graph = DecodingGraph::from_dem(&chain_dem(8, 0.02));
        let exact = ExactMatchingDecoder::new(graph);
        let defect_sets = [
            vec![0, 1, 2, 3],
            vec![0, 2, 5, 7],
            vec![1, 2, 3, 6],
            vec![0, 3, 4, 7],
            vec![2, 3, 4, 5],
        ];
        for defects in defect_sets {
            let weight = exact.matching_weight(&defects).unwrap();
            // Reference: brute-force over all ways to pair or boundary-match
            // is exactly what the DP does, so instead check the weight is at
            // most the all-boundary solution and at most chaining neighbours.
            let all_boundary: f64 = defects
                .iter()
                .map(|&d| exact.shortest_paths(d).0[exact.boundary])
                .sum();
            assert!(weight <= all_boundary + 1e-9, "defects {defects:?}");
        }
    }

    #[test]
    fn far_separated_defects_each_take_their_own_boundary() {
        let dec = decoder(9, 0.01);
        // Defects hugging opposite boundaries: matching them to each other
        // would cross the whole chain; the exact matching sends each to its
        // nearby boundary. Only the left boundary edge flips the observable.
        assert_eq!(dec.decode(&[0, 8]), vec![true]);
    }

    #[test]
    fn high_defect_shots_fall_back_to_greedy() {
        let dec = decoder(12, 0.05).with_max_exact_defects(3);
        let defects: Vec<usize> = (0..8).collect();
        // The fallback still produces a syntactically valid prediction.
        let prediction = dec.decode(&defects);
        assert_eq!(prediction.len(), 1);
        assert_eq!(dec.matching_weight(&defects), None);
    }

    #[test]
    fn num_observables_is_preserved() {
        let dec = decoder(4, 0.01);
        assert_eq!(dec.num_observables(), 1);
    }
}
