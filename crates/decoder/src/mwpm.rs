//! Exact minimum-weight matching decoder.
//!
//! The paper's logical error rates are produced with Stim plus a
//! minimum-weight perfect-matching (MWPM) decoder; this repository's default
//! decoder is weighted union-find, which has the same threshold behaviour
//! but is slightly pessimistic (see `DESIGN.md`). This module adds an
//! **exact** matching decoder used as an accuracy reference and as an
//! ablation point:
//!
//! * the defects of one shot are matched to each other or to the virtual
//!   boundary with *exactly* minimum total weight, where pairwise weights
//!   are shortest-path distances in the decoding graph;
//! * the exact matching is found by dynamic programming over defect subsets,
//!   which is exponential in the number of defects of the shot — fine for
//!   the below-threshold regime the architectural study cares about, where
//!   shots contain only a handful of defects;
//! * shots with more defects than [`ExactMatchingDecoder::max_exact_defects`]
//!   fall back to the greedy matching decoder, so the decoder never blows up
//!   on pathological above-threshold shots.
//!
//! Compared to a full blossom implementation this is exact only per shot
//! (not asymptotically fast), which is the right trade-off for a test
//! reference: simple enough to audit, exact where it matters. The Dijkstra
//! states, cost matrices and subset-DP tables all live in the shared
//! [`DecodeScratch`], so batched decoding reuses them across shots.

use std::num::NonZeroU64;

use crate::batch::MatchingScratch;
use crate::greedy::apply_path_observables;
use crate::memo::next_memo_token;
use crate::{DecodeScratch, Decoder, DecodingGraph, GreedyMatchingDecoder};

/// Default cap on the number of defects decoded exactly per shot.
pub const DEFAULT_MAX_EXACT_DEFECTS: usize = 14;

/// Exact minimum-weight matching decoder with a greedy fallback for
/// high-defect shots.
#[derive(Debug, Clone)]
pub struct ExactMatchingDecoder {
    graph: DecodingGraph,
    greedy: GreedyMatchingDecoder,
    boundary: usize,
    max_exact_defects: usize,
    /// Syndrome-memo ownership token (see [`crate::memo`]).
    memo_token: NonZeroU64,
}

impl ExactMatchingDecoder {
    /// Creates a decoder for the given decoding graph.
    pub fn new(graph: DecodingGraph) -> Self {
        let boundary = graph.num_detectors();
        let greedy = GreedyMatchingDecoder::new(graph.clone());
        ExactMatchingDecoder {
            graph,
            greedy,
            boundary,
            max_exact_defects: DEFAULT_MAX_EXACT_DEFECTS,
            memo_token: next_memo_token(),
        }
    }

    /// Overrides the exact-matching defect cap (shots with more defects use
    /// the greedy fallback). A fresh memo token is drawn because the cap
    /// changes decoding behaviour — predictions cached for the previous cap
    /// must never be served for this one.
    pub fn with_max_exact_defects(mut self, max_exact_defects: usize) -> Self {
        self.max_exact_defects = max_exact_defects;
        self.memo_token = next_memo_token();
        self
    }

    /// The exact-matching defect cap.
    pub fn max_exact_defects(&self) -> usize {
        self.max_exact_defects
    }

    /// Runs one Dijkstra per defect into the scratch slots, delegating to
    /// the embedded greedy decoder so the exact and fallback paths use the
    /// exact same search driver.
    fn run_searches(&self, defects: &[usize], s: &mut MatchingScratch) {
        self.greedy.run_searches(defects, s);
    }

    /// Subset DP over the defects whose Dijkstra states are already in the
    /// scratch. On success the minimum total weight is returned and the
    /// matching is left in `s.pairs` as `(i, j)` index pairs (`u32::MAX` =
    /// boundary).
    #[allow(clippy::needless_range_loop)]
    fn solve(&self, defects: &[usize], s: &mut MatchingScratch) -> Option<f64> {
        let n = defects.len();

        // Pairwise and boundary costs.
        s.boundary_cost.clear();
        s.pair_cost.clear();
        s.pair_cost.resize(n * n, f64::INFINITY);
        for i in 0..n {
            let dist = &s.dijkstras[i].dist;
            s.boundary_cost.push(dist.get(self.boundary));
            for j in 0..n {
                if i != j {
                    s.pair_cost[i * n + j] = dist.get(defects[j]);
                }
            }
        }

        // DP over subsets: dp[mask] = min cost of matching the defects in
        // `mask`, where each defect pairs with another defect or with the
        // boundary.
        let full = (1usize << n) - 1;
        s.dp.clear();
        s.dp.resize(full + 1, f64::INFINITY);
        s.choice.clear();
        s.choice.resize(full + 1, (u32::MAX, u32::MAX));
        s.dp[0] = 0.0;
        for mask in 1..=full {
            let i = mask.trailing_zeros() as usize;
            let without_i = mask & !(1 << i);
            // Option 1: match defect i to the boundary.
            if s.boundary_cost[i].is_finite() && s.dp[without_i].is_finite() {
                let cost = s.dp[without_i] + s.boundary_cost[i];
                if cost < s.dp[mask] {
                    s.dp[mask] = cost;
                    s.choice[mask] = (i as u32, u32::MAX);
                }
            }
            // Option 2: pair defect i with another defect j in the mask.
            let mut rest = without_i;
            while rest != 0 {
                let j = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let pair = s.pair_cost[i * n + j];
                if !pair.is_finite() {
                    continue;
                }
                let prev = mask & !(1 << i) & !(1 << j);
                if s.dp[prev].is_finite() {
                    let cost = s.dp[prev] + pair;
                    if cost < s.dp[mask] {
                        s.dp[mask] = cost;
                        s.choice[mask] = (i as u32, j as u32);
                    }
                }
            }
        }
        if !s.dp[full].is_finite() {
            return None;
        }

        // Reconstruct the matching.
        s.pairs.clear();
        let mut mask = full;
        while mask != 0 {
            let (i, partner) = s.choice[mask];
            debug_assert_ne!(i, u32::MAX, "finite dp entries have a recorded choice");
            s.pairs.push((i, partner));
            mask &= !(1 << i);
            if partner != u32::MAX {
                mask &= !(1 << partner);
            }
        }
        Some(s.dp[full])
    }

    /// Returns the minimum total matching weight of the given defect set, or
    /// `None` when no finite matching exists or the shot exceeds the exact
    /// cap. Exposed for tests and decoder-comparison diagnostics.
    pub fn matching_weight(&self, fired_detectors: &[usize]) -> Option<f64> {
        if fired_detectors.is_empty() {
            return Some(0.0);
        }
        if fired_detectors.len() > self.max_exact_defects {
            return None;
        }
        let mut scratch = DecodeScratch::new();
        self.run_searches(fired_detectors, &mut scratch.matching);
        self.solve(fired_detectors, &mut scratch.matching)
    }

    /// Shortest-path distance from one defect to the boundary (used by
    /// tests).
    #[cfg(test)]
    pub(crate) fn distance_to_boundary(&self, source: usize) -> f64 {
        let mut scratch = DecodeScratch::new();
        let s = &mut scratch.matching;
        self.run_searches(&[source], s);
        s.dijkstras[0].dist.get(self.boundary)
    }
}

impl Decoder for ExactMatchingDecoder {
    fn decode_shot(
        &self,
        fired_detectors: &[usize],
        scratch: &mut DecodeScratch,
        prediction: &mut [bool],
    ) {
        if fired_detectors.is_empty() || self.graph.is_empty() {
            return;
        }
        if fired_detectors.len() > self.max_exact_defects {
            self.greedy
                .decode_shot(fired_detectors, scratch, prediction);
            return;
        }
        let s = &mut scratch.matching;
        self.run_searches(fired_detectors, s);
        if self.solve(fired_detectors, s).is_none() {
            // Infeasible under exact matching: fall back to greedy over the
            // Dijkstra states just computed.
            self.greedy.match_greedily(fired_detectors, s, prediction);
            return;
        }
        let pairs = std::mem::take(&mut s.pairs);
        for &(i, partner) in &pairs {
            let i = i as usize;
            let target = if partner == u32::MAX {
                self.boundary
            } else {
                fired_detectors[partner as usize]
            };
            apply_path_observables(
                &self.graph,
                self.boundary,
                &s.dijkstras[i],
                fired_detectors[i],
                target,
                prediction,
            );
        }
        s.pairs = pairs;
    }

    fn num_observables(&self) -> usize {
        self.graph.num_observables()
    }

    fn memo_token(&self) -> Option<NonZeroU64> {
        Some(self.memo_token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_sim::{DemError, DetectorErrorModel};

    /// A 1-D repetition-code-like chain of `n` detectors with boundary edges
    /// at both ends; every edge flips observable 0 iff `flag` is set.
    fn chain_dem(n: usize, p: f64) -> DetectorErrorModel {
        let mut errors = Vec::new();
        // Left boundary edge flips the observable (it crosses the logical).
        errors.push(DemError {
            probability: p,
            detectors: vec![0],
            observables: vec![0],
        });
        for i in 0..n - 1 {
            errors.push(DemError {
                probability: p,
                detectors: vec![i as u32, i as u32 + 1],
                observables: vec![],
            });
        }
        errors.push(DemError {
            probability: p,
            detectors: vec![n as u32 - 1],
            observables: vec![],
        });
        DetectorErrorModel {
            num_detectors: n,
            num_observables: 1,
            errors,
        }
    }

    fn decoder(n: usize, p: f64) -> ExactMatchingDecoder {
        ExactMatchingDecoder::new(DecodingGraph::from_dem(&chain_dem(n, p)))
    }

    #[test]
    fn empty_syndrome_predicts_no_flip() {
        let dec = decoder(5, 0.01);
        assert_eq!(dec.decode(&[]), vec![false]);
        assert_eq!(dec.matching_weight(&[]), Some(0.0));
    }

    #[test]
    fn single_defect_matches_to_the_nearest_boundary() {
        let dec = decoder(7, 0.01);
        // A defect next to the left boundary: the cheapest correction goes
        // through the left boundary edge, which flips the observable.
        assert_eq!(dec.decode(&[0]), vec![true]);
        // A defect next to the right boundary: corrected without a flip.
        assert_eq!(dec.decode(&[6]), vec![false]);
    }

    #[test]
    fn adjacent_defect_pair_matches_internally() {
        let dec = decoder(7, 0.01);
        // Two adjacent defects in the bulk: one internal edge explains both,
        // no logical flip.
        assert_eq!(dec.decode(&[3, 4]), vec![false]);
        let w = dec.matching_weight(&[3, 4]).unwrap();
        let single_edge_weight = ((1.0_f64 - 0.01) / 0.01).ln();
        assert!((w - single_edge_weight).abs() < 1e-6);
    }

    #[test]
    fn exact_matching_never_costs_more_than_greedy() {
        // Greedy pairing can be trapped by a locally-cheap choice; the exact
        // decoder must never produce a heavier matching. Compare on every
        // 4-defect subset of a chain.
        let graph = DecodingGraph::from_dem(&chain_dem(8, 0.02));
        let exact = ExactMatchingDecoder::new(graph);
        let defect_sets = [
            vec![0, 1, 2, 3],
            vec![0, 2, 5, 7],
            vec![1, 2, 3, 6],
            vec![0, 3, 4, 7],
            vec![2, 3, 4, 5],
        ];
        for defects in defect_sets {
            let weight = exact.matching_weight(&defects).unwrap();
            // Reference: the all-boundary matching is one feasible solution,
            // so the optimum can never exceed it.
            let all_boundary: f64 = defects.iter().map(|&d| exact.distance_to_boundary(d)).sum();
            assert!(weight <= all_boundary + 1e-9, "defects {defects:?}");
        }
    }

    #[test]
    fn far_separated_defects_each_take_their_own_boundary() {
        let dec = decoder(9, 0.01);
        // Defects hugging opposite boundaries: matching them to each other
        // would cross the whole chain; the exact matching sends each to its
        // nearby boundary. Only the left boundary edge flips the observable.
        assert_eq!(dec.decode(&[0, 8]), vec![true]);
    }

    #[test]
    fn high_defect_shots_fall_back_to_greedy() {
        let dec = decoder(12, 0.05).with_max_exact_defects(3);
        let defects: Vec<usize> = (0..8).collect();
        // The fallback still produces a syntactically valid prediction.
        let prediction = dec.decode(&defects);
        assert_eq!(prediction.len(), 1);
        assert_eq!(dec.matching_weight(&defects), None);
    }

    #[test]
    fn num_observables_is_preserved() {
        let dec = decoder(4, 0.01);
        assert_eq!(dec.num_observables(), 1);
    }

    #[test]
    fn scratch_reuse_matches_fresh_decoding() {
        let dec = decoder(9, 0.02);
        let mut scratch = DecodeScratch::new();
        for syndrome in [
            vec![0usize],
            vec![8],
            vec![3, 4],
            vec![0, 4, 8],
            vec![1, 2, 6, 7],
        ] {
            let mut reused = vec![false; 1];
            dec.decode_shot(&syndrome, &mut scratch, &mut reused);
            assert_eq!(reused, dec.decode(&syndrome), "syndrome {syndrome:?}");
        }
    }
}
