//! Epoch-stamped scratch buffers.
//!
//! Decoding one shot needs a raft of per-node / per-edge working arrays.
//! Allocating (or even zeroing) them per shot dominates the runtime of
//! cheap shots, so the batch decode path reuses buffers across shots and
//! invalidates them in O(1) with an *epoch stamp*: every slot remembers the
//! epoch in which it was last written, and a slot whose stamp is stale reads
//! as the default value. Starting a new shot is just `epoch += 1`.

/// A fixed-default array with O(1) bulk reset via epoch stamping.
#[derive(Debug, Clone)]
pub(crate) struct EpochVec<T: Copy> {
    stamps: Vec<u32>,
    values: Vec<T>,
    epoch: u32,
    default: T,
}

impl<T: Copy> EpochVec<T> {
    /// A new empty array whose stale slots read as `default`.
    pub(crate) fn new(default: T) -> Self {
        EpochVec {
            stamps: Vec::new(),
            values: Vec::new(),
            epoch: 1,
            default,
        }
    }

    /// Grows to at least `len` slots and invalidates every slot.
    pub(crate) fn begin(&mut self, len: usize) {
        if self.values.len() < len {
            self.stamps.resize(len, 0);
            self.values.resize(len, self.default);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(next) => next,
            None => {
                // Epoch wrapped: hard-reset stamps once every 2^32 shots.
                self.stamps.fill(0);
                1
            }
        };
    }

    /// Reads a slot (the default if not written this epoch).
    pub(crate) fn get(&self, index: usize) -> T {
        if self.stamps[index] == self.epoch {
            self.values[index]
        } else {
            self.default
        }
    }

    /// Writes a slot.
    pub(crate) fn set(&mut self, index: usize, value: T) {
        self.stamps[index] = self.epoch;
        self.values[index] = value;
    }

    /// Whether a slot has been written this epoch.
    pub(crate) fn written(&self, index: usize) -> bool {
        self.stamps[index] == self.epoch
    }

    /// Reverts one slot to the default *within the current epoch* — the
    /// O(1) primitive behind the dense tier's O(touched) undo log. Stamp 0
    /// is never the current epoch (epochs start at 1 and wrap back to 1),
    /// so the slot reads as unwritten again.
    pub(crate) fn unset(&mut self, index: usize) {
        self.stamps[index] = 0;
    }
}

/// A pool of reusable `Vec<usize>` lists with epoch-stamped clearing.
#[derive(Debug, Clone, Default)]
pub(crate) struct VecPool {
    stamps: Vec<u32>,
    lists: Vec<Vec<usize>>,
    epoch: u32,
}

impl VecPool {
    /// Grows to at least `len` lists and invalidates them all.
    pub(crate) fn begin(&mut self, len: usize) {
        if self.lists.len() < len {
            self.stamps.resize(len, 0);
            self.lists.resize_with(len, Vec::new);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(next) => next,
            None => {
                self.stamps.fill(0);
                1
            }
        };
    }

    fn freshen(&mut self, index: usize) {
        if self.stamps[index] != self.epoch {
            self.stamps[index] = self.epoch;
            self.lists[index].clear();
        }
    }

    /// Mutable access to one list (cleared lazily at first touch per epoch).
    pub(crate) fn get_mut(&mut self, index: usize) -> &mut Vec<usize> {
        self.freshen(index);
        &mut self.lists[index]
    }

    /// Moves one list out (its slot becomes empty but keeps no capacity
    /// until [`VecPool::put_back`] returns an allocation to it).
    pub(crate) fn take(&mut self, index: usize) -> Vec<usize> {
        self.freshen(index);
        std::mem::take(&mut self.lists[index])
    }

    /// Returns a (typically drained) list's allocation to a slot, clearing
    /// its contents.
    pub(crate) fn put_back(&mut self, index: usize, mut list: Vec<usize>) {
        list.clear();
        self.stamps[index] = self.epoch;
        self.lists[index] = list;
    }

    /// Puts a list — contents included — into a slot.
    pub(crate) fn restore(&mut self, index: usize, list: Vec<usize>) {
        self.stamps[index] = self.epoch;
        self.lists[index] = list;
    }

    /// Reverts one list to empty within the current epoch (the allocation
    /// is kept and cleared lazily on the next touch). See
    /// [`EpochVec::unset`].
    pub(crate) fn unset(&mut self, index: usize) {
        self.stamps[index] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_vec_resets_in_constant_time() {
        let mut v: EpochVec<u32> = EpochVec::new(7);
        v.begin(4);
        assert_eq!(v.get(3), 7);
        v.set(3, 9);
        assert_eq!(v.get(3), 9);
        v.begin(4);
        assert_eq!(v.get(3), 7, "new epoch must forget old writes");
        v.begin(8);
        assert_eq!(v.get(7), 7);
    }

    #[test]
    fn unset_reverts_a_slot_within_the_epoch() {
        let mut v: EpochVec<u32> = EpochVec::new(7);
        v.begin(2);
        v.set(0, 9);
        v.set(1, 5);
        v.unset(0);
        assert!(!v.written(0));
        assert_eq!(v.get(0), 7, "unset slot reads as the default again");
        assert_eq!(v.get(1), 5, "other slots keep their writes");
        v.set(0, 3);
        assert_eq!(v.get(0), 3, "an unset slot can be rewritten");

        let mut pool = VecPool::default();
        pool.begin(1);
        pool.get_mut(0).extend([1, 2]);
        pool.unset(0);
        assert!(pool.get_mut(0).is_empty(), "unset list reads empty");
    }

    #[test]
    fn vec_pool_clears_lazily() {
        let mut pool = VecPool::default();
        pool.begin(2);
        pool.get_mut(0).extend([1, 2, 3]);
        pool.begin(2);
        assert!(pool.get_mut(0).is_empty());
        let taken = pool.take(0);
        pool.put_back(0, taken);
        assert!(pool.get_mut(0).is_empty());
    }
}
