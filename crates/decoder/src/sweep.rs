//! Sharded multi-configuration sweeps.
//!
//! The paper's tables and figures evaluate grids of `(architecture,
//! distance, decoder, noise)` points, each of which is itself a chunked
//! Monte-Carlo pipeline. [`SweepEngine`] shards *whole points* across an
//! outer rayon pool, composing with the inner chunk parallelism of
//! [`estimate_logical_error_rate_with`](crate::estimate_logical_error_rate_with):
//! the outer pool keeps every core busy when points are short (compile-only
//! sweeps, small distances), and the inner pool takes over inside a long
//! point.
//!
//! # Determinism
//!
//! Each point receives its own seed, derived **only** from the engine seed
//! and the point's index in the input slice: `point seed =
//! `[`sweep_seed`]`(engine seed, index)`. Results are collected in input
//! order. Together with the estimator's own chunk/thread invariance this
//! makes a sweep's output a pure function of `(engine seed, points)` —
//! independent of thread counts, sharding, or which worker picked up which
//! point. The golden regression tests in `qccd-bench` pin this contract.

use serde::{Deserialize, Serialize};

use rayon::prelude::*;

/// Derives the deterministic seed of one sweep point from the engine seed
/// and the point index.
///
/// Two rounds of SplitMix64 finalisation (with a different stream constant
/// than `qccd_sim::block_seed`, so sweep-level and block-level streams stay
/// decorrelated even when an engine seed equals a sampling seed).
pub fn sweep_seed(seed: u64, index: u64) -> u64 {
    let mut state = seed ^ 0x6a09_e667_f3bc_c909 ^ index.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    for _ in 0..2 {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        state = (state ^ (state >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        state = (state ^ (state >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        state ^= state >> 31;
    }
    state
}

/// One unit of sweep work handed to the evaluation closure.
#[derive(Debug, Clone, Copy)]
pub struct SweepTask<'a, C> {
    /// Index of the point in the input slice.
    pub index: usize,
    /// The point itself.
    pub point: &'a C,
    /// The point's deterministic seed (`sweep_seed(engine seed, index)`).
    pub seed: u64,
}

/// Shards sweep points across an outer worker pool with per-point
/// deterministic seeds (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepEngine {
    seed: u64,
    num_threads: Option<usize>,
}

impl SweepEngine {
    /// An engine deriving every point seed from `seed`.
    pub fn new(seed: u64) -> Self {
        SweepEngine {
            seed,
            num_threads: None,
        }
    }

    /// Pins the outer worker count (default: rayon's default for the
    /// calling context). Affects scheduling only, never results.
    pub fn with_num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    /// The engine seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The deterministic seed of the point at `index`.
    pub fn point_seed(&self, index: usize) -> u64 {
        sweep_seed(self.seed, index as u64)
    }

    /// Evaluates every point in parallel, returning results in input order.
    ///
    /// The machine's thread budget is split between the two levels: with
    /// `W` outer workers on a `T`-thread budget, each point's evaluation
    /// runs inside an installed pool of `max(1, T / W)` threads, so any
    /// inner parallel work (the chunked Monte-Carlo pipeline) shares the
    /// machine instead of going machine-wide per worker. This affects
    /// scheduling only — `eval` must be a pure function of its
    /// [`SweepTask`] (plus immutable captures), and under that contract the
    /// returned vector is bit-identical for any thread count.
    pub fn run<C, R, F>(&self, points: &[C], eval: F) -> Vec<R>
    where
        C: Sync,
        R: Send,
        F: Fn(SweepTask<'_, C>) -> R + Sync,
    {
        let budget = rayon::current_num_threads().max(1);
        let outer = self
            .num_threads
            .unwrap_or(budget)
            .clamp(1, points.len().max(1));
        let inner_pool = rayon::ThreadPoolBuilder::new()
            .num_threads((budget / outer).max(1))
            .build()
            .expect("thread pool construction cannot fail");
        let body = || {
            (0..points.len())
                .into_par_iter()
                .map(|index| {
                    inner_pool.install(|| {
                        eval(SweepTask {
                            index,
                            point: &points[index],
                            seed: self.point_seed(index),
                        })
                    })
                })
                .collect()
        };
        match self.num_threads {
            Some(threads) => rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool construction cannot fail")
                .install(body),
            None => body(),
        }
    }

    /// Evaluates only the points at `indices`, returning results in the
    /// order the indices were given.
    ///
    /// Each selected point keeps the seed of its position in the **full**
    /// grid — `point_seed(indices[k])`, not `point_seed(k)` — so a subset
    /// evaluation is bit-identical to the same points of a full
    /// [`run`](Self::run). This is the resume primitive of the sweeprun
    /// orchestration tier: a partially complete sweep recomputes exactly
    /// its missing indices and merges with stored results.
    ///
    /// Indices out of range for `points` are a contract violation and
    /// panic, like slice indexing.
    pub fn run_sparse<C, R, F>(&self, points: &[C], indices: &[usize], eval: F) -> Vec<R>
    where
        C: Sync,
        R: Send,
        F: Fn(SweepTask<'_, C>) -> R + Sync,
    {
        let budget = rayon::current_num_threads().max(1);
        let outer = self
            .num_threads
            .unwrap_or(budget)
            .clamp(1, indices.len().max(1));
        let inner_pool = rayon::ThreadPoolBuilder::new()
            .num_threads((budget / outer).max(1))
            .build()
            .expect("thread pool construction cannot fail");
        let body = || {
            (0..indices.len())
                .into_par_iter()
                .map(|slot| {
                    let index = indices[slot];
                    inner_pool.install(|| {
                        eval(SweepTask {
                            index,
                            point: &points[index],
                            seed: self.point_seed(index),
                        })
                    })
                })
                .collect()
        };
        match self.num_threads {
            Some(threads) => rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool construction cannot fail")
                .install(body),
            None => body(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_per_index_and_engine_seed() {
        let engine = SweepEngine::new(7);
        assert_ne!(engine.point_seed(0), engine.point_seed(1));
        assert_ne!(engine.point_seed(0), SweepEngine::new(8).point_seed(0));
        assert_eq!(engine.point_seed(3), sweep_seed(7, 3));
    }

    #[test]
    fn sweep_and_block_streams_differ() {
        // Same (seed, index) must not collide with the sampler's block
        // stream, or a sweep point would replay its first sampling block.
        for seed in [0u64, 1, 2026] {
            for index in 0..4 {
                assert_ne!(sweep_seed(seed, index), qccd_sim::block_seed(seed, index));
            }
        }
    }

    #[test]
    fn results_arrive_in_input_order() {
        let engine = SweepEngine::new(1);
        let points: Vec<usize> = (0..64).collect();
        let results = engine.run(&points, |task| {
            assert_eq!(*task.point, task.index);
            task.index * 10
        });
        assert_eq!(results, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let points: Vec<u64> = (0..17).collect();
        let eval = |task: SweepTask<'_, u64>| task.seed ^ *task.point;
        let reference = SweepEngine::new(5).with_num_threads(1).run(&points, eval);
        for threads in [2usize, 4, 8] {
            let engine = SweepEngine::new(5).with_num_threads(threads);
            assert_eq!(engine.run(&points, eval), reference, "threads={threads}");
        }
    }

    #[test]
    fn sparse_run_matches_full_run_at_the_same_indices() {
        let engine = SweepEngine::new(2026).with_num_threads(3);
        let points: Vec<u64> = (100..120).collect();
        let eval = |task: SweepTask<'_, u64>| (task.index, task.seed ^ *task.point);
        let full = engine.run(&points, eval);
        let indices = [17usize, 3, 0, 11];
        let sparse = engine.run_sparse(&points, &indices, eval);
        assert_eq!(sparse.len(), indices.len());
        for (slot, &index) in indices.iter().enumerate() {
            assert_eq!(sparse[slot], full[index]);
        }
        let none: Vec<(usize, u64)> = engine.run_sparse(&points, &[], eval);
        assert!(none.is_empty());
    }

    #[test]
    fn empty_sweep_is_empty() {
        let engine = SweepEngine::new(0);
        let results: Vec<u64> = engine.run(&[] as &[u64], |task| task.seed);
        assert!(results.is_empty());
    }
}
