//! Weighted union-find decoder.
//!
//! An implementation of the Delfosse–Nickerson union-find decoder with
//! weighted cluster growth and peeling:
//!
//! 1. every fired detector seeds a cluster;
//! 2. clusters with odd defect parity (and no boundary contact) grow their
//!    frontier edges one unit at a time, where each edge's length is its
//!    (discretised) log-likelihood weight;
//! 3. when an edge is fully grown its endpoint clusters merge;
//! 4. once every cluster is neutral (even parity or touching the boundary),
//!    a spanning forest of the grown edges is peeled from the leaves inward
//!    to produce a correction, and the parity of logical-observable flips
//!    along the correction is returned.
//!
//! The decoder is near-linear in the number of grown edges, which below
//! threshold is proportional to the number of detection events, so millions
//! of shots can be decoded in seconds.

use crate::{Decoder, DecodingGraph};

/// Union-find decoder over a decoding graph.
#[derive(Debug, Clone)]
pub struct UnionFindDecoder {
    graph: DecodingGraph,
    /// Discretised edge lengths (growth units).
    lengths: Vec<u32>,
    /// Index of the virtual boundary node (== number of detectors).
    boundary: usize,
}

impl UnionFindDecoder {
    /// Creates a decoder for the given decoding graph.
    pub fn new(graph: DecodingGraph) -> Self {
        let boundary = graph.num_detectors();
        let lengths = graph
            .edges()
            .iter()
            .map(|e| ((2.0 * e.weight).round() as u32).clamp(1, 100))
            .collect();
        UnionFindDecoder {
            graph,
            lengths,
            boundary,
        }
    }

    /// Access to the underlying graph.
    pub fn graph(&self) -> &DecodingGraph {
        &self.graph
    }

    fn edge_endpoints(&self, edge: usize) -> (usize, usize) {
        let e = &self.graph.edges()[edge];
        (e.a, e.b.unwrap_or(self.boundary))
    }
}

/// Disjoint-set structure with cluster metadata.
#[derive(Debug)]
struct Clusters {
    parent: Vec<usize>,
    rank: Vec<u32>,
    /// Defect parity of the cluster rooted here.
    parity: Vec<bool>,
    /// Whether the cluster touches the virtual boundary.
    boundary: Vec<bool>,
    /// Frontier edges of the cluster rooted here.
    frontier: Vec<Vec<usize>>,
}

impl Clusters {
    fn new(nodes: usize, boundary_node: usize) -> Self {
        let mut boundary = vec![false; nodes];
        boundary[boundary_node] = true;
        Clusters {
            parent: (0..nodes).collect(),
            rank: vec![0; nodes],
            parity: vec![false; nodes],
            boundary,
            frontier: vec![Vec::new(); nodes],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Unions the clusters containing `a` and `b`; returns the new root.
    fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        self.parity[big] ^= self.parity[small];
        self.boundary[big] |= self.boundary[small];
        let moved = std::mem::take(&mut self.frontier[small]);
        self.frontier[big].extend(moved);
        big
    }

    fn is_active(&mut self, root: usize) -> bool {
        let r = self.find(root);
        self.parity[r] && !self.boundary[r]
    }
}

impl Decoder for UnionFindDecoder {
    fn decode(&self, fired_detectors: &[usize]) -> Vec<bool> {
        let num_observables = self.graph.num_observables();
        let mut prediction = vec![false; num_observables];
        if fired_detectors.is_empty() || self.graph.is_empty() {
            return prediction;
        }

        let num_nodes = self.graph.num_detectors() + 1;
        let mut clusters = Clusters::new(num_nodes, self.boundary);
        let mut defect = vec![false; num_nodes];
        for &d in fired_detectors {
            defect[d] = true;
            clusters.parity[d] = true;
            clusters.frontier[d] = self.graph.incident_edges(d).to_vec();
        }

        // Growth phase.
        let mut support = vec![0u32; self.graph.edges().len()];
        let mut grown = vec![false; self.graph.edges().len()];
        let mut active: Vec<usize> = Vec::with_capacity(fired_detectors.len());
        for &d in fired_detectors {
            let root = clusters.find(d);
            if clusters.is_active(root) {
                active.push(root);
            }
        }
        active.sort_unstable();
        active.dedup();

        // Each iteration grows every active cluster's frontier by one unit.
        // The loop terminates because each iteration either increases total
        // support (bounded by Σ lengths) or merges clusters; a stall guard
        // handles pathological graphs with unreachable defects.
        loop {
            active.retain(|&r| clusters.find(r) == r && clusters.is_active(r));
            if active.is_empty() {
                break;
            }
            let mut progressed = false;
            let mut merges: Vec<(usize, usize)> = Vec::new();
            for &root in &active {
                let mut frontier = std::mem::take(&mut clusters.frontier[root]);
                frontier.sort_unstable();
                frontier.dedup();
                let mut kept = Vec::with_capacity(frontier.len());
                for edge in frontier {
                    if grown[edge] {
                        continue;
                    }
                    let (a, b) = self.edge_endpoints(edge);
                    let ra = clusters.find(a);
                    let rb = clusters.find(b);
                    if ra == rb {
                        // Internal edge; no longer part of the frontier.
                        continue;
                    }
                    support[edge] += 1;
                    progressed = true;
                    if support[edge] >= self.lengths[edge] {
                        grown[edge] = true;
                        merges.push((a, b));
                    } else {
                        kept.push(edge);
                    }
                }
                clusters.frontier[root] = kept;
            }
            for (a, b) in merges {
                let ra = clusters.find(a);
                let rb = clusters.find(b);
                if ra != rb {
                    // Adopt the other endpoint's incident edges into the
                    // merged frontier the first time a lone node is absorbed.
                    for node in [a, b] {
                        let r = clusters.find(node);
                        if clusters.frontier[r].is_empty() && !defect[node] && node != self.boundary
                        {
                            let incident = if node == self.boundary {
                                Vec::new()
                            } else {
                                self.graph.incident_edges(node).to_vec()
                            };
                            clusters.frontier[r].extend(incident);
                        }
                    }
                    let new_root = clusters.union(a, b);
                    // Make sure the merged cluster also sees the absorbed
                    // node's incident edges.
                    for node in [a, b] {
                        if node != self.boundary {
                            let incident = self.graph.incident_edges(node).to_vec();
                            clusters.frontier[new_root].extend(incident);
                        }
                    }
                    active.push(new_root);
                }
            }
            if !progressed {
                // No edge could grow: remaining defects are unmatchable
                // (disconnected detectors). Give up on them.
                break;
            }
            active.sort_unstable();
            active.dedup();
        }

        // Peeling phase: build a spanning forest of the grown edges, rooted
        // at the boundary where possible, and peel from the leaves.
        let mut visited = vec![false; num_nodes];
        let mut order: Vec<usize> = Vec::new();
        let mut parent_edge: Vec<Option<usize>> = vec![None; num_nodes];
        let mut parent_node: Vec<usize> = (0..num_nodes).collect();

        let bfs = |start: usize,
                       visited: &mut Vec<bool>,
                       order: &mut Vec<usize>,
                       parent_edge: &mut Vec<Option<usize>>,
                       parent_node: &mut Vec<usize>| {
            if visited[start] {
                return;
            }
            visited[start] = true;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                let incident: Vec<usize> = if v == self.boundary {
                    // The boundary node's incident edges are all boundary
                    // edges; scan lazily.
                    self.graph
                        .edges()
                        .iter()
                        .enumerate()
                        .filter(|(i, e)| grown[*i] && e.b.is_none())
                        .map(|(i, _)| i)
                        .collect()
                } else {
                    self.graph.incident_edges(v).to_vec()
                };
                for edge in incident {
                    if !grown[edge] {
                        continue;
                    }
                    let (a, b) = self.edge_endpoints(edge);
                    let next = if a == v { b } else { a };
                    if !visited[next] {
                        visited[next] = true;
                        parent_edge[next] = Some(edge);
                        parent_node[next] = v;
                        queue.push_back(next);
                    }
                }
            }
        };

        // Root the forest at the boundary first so it can absorb defects.
        bfs(
            self.boundary,
            &mut visited,
            &mut order,
            &mut parent_edge,
            &mut parent_node,
        );
        for v in 0..num_nodes {
            bfs(v, &mut visited, &mut order, &mut parent_edge, &mut parent_node);
        }

        // Peel leaves-first (reverse BFS order).
        for &v in order.iter().rev() {
            if defect[v] {
                if let Some(edge) = parent_edge[v] {
                    for &obs in &self.graph.edges()[edge].observables {
                        prediction[obs as usize] ^= true;
                    }
                    defect[v] = false;
                    let p = parent_node[v];
                    defect[p] ^= true;
                }
            }
        }
        // Any defect absorbed by the boundary is fine; defect[boundary] is
        // ignored.

        prediction
    }

    fn num_observables(&self) -> usize {
        self.graph.num_observables()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_sim::{DemError, DetectorErrorModel};

    fn err(p: f64, detectors: Vec<u32>, observables: Vec<u32>) -> DemError {
        DemError {
            probability: p,
            detectors,
            observables,
        }
    }

    /// A 1-D repetition-code-like chain: detectors 0..n in a line, boundary
    /// edges at both ends, the last boundary edge flips the observable.
    fn chain_graph(n: usize) -> DecodingGraph {
        let mut errors = vec![err(0.01, vec![0], vec![])];
        for i in 0..n - 1 {
            errors.push(err(0.01, vec![i as u32, i as u32 + 1], vec![]));
        }
        errors.push(err(0.01, vec![n as u32 - 1], vec![0]));
        let dem = DetectorErrorModel {
            num_detectors: n,
            num_observables: 1,
            errors,
        };
        DecodingGraph::from_dem(&dem)
    }

    #[test]
    fn empty_syndrome_gives_trivial_correction() {
        let decoder = UnionFindDecoder::new(chain_graph(5));
        assert_eq!(decoder.decode(&[]), vec![false]);
        assert_eq!(decoder.num_observables(), 1);
    }

    #[test]
    fn single_defect_matches_to_nearest_boundary() {
        let decoder = UnionFindDecoder::new(chain_graph(5));
        // Defect near the left boundary: corrected via the left (no
        // observable flip).
        assert_eq!(decoder.decode(&[0]), vec![false]);
        // Defect near the right boundary: corrected via the right edge which
        // carries the observable.
        assert_eq!(decoder.decode(&[4]), vec![true]);
    }

    #[test]
    fn adjacent_defect_pair_is_matched_internally() {
        let decoder = UnionFindDecoder::new(chain_graph(6));
        // Two adjacent defects in the middle: the error was a single data
        // error between them; no observable flip.
        assert_eq!(decoder.decode(&[2, 3]), vec![false]);
    }

    #[test]
    fn defect_pair_spanning_the_chain_flips_the_observable_once() {
        let decoder = UnionFindDecoder::new(chain_graph(4));
        // Defects at both ends: the most likely explanation is two separate
        // boundary errors (left one without flip, right one with flip).
        assert_eq!(decoder.decode(&[0, 3]), vec![true]);
    }

    #[test]
    fn weighted_growth_prefers_likely_edges() {
        // Detector 0 sits between a very likely boundary edge (p=0.2, no
        // flip) and a very unlikely boundary edge (p=1e-4, flip). The decoder
        // must pick the likely explanation.
        let dem = DetectorErrorModel {
            num_detectors: 1,
            num_observables: 1,
            errors: vec![err(0.2, vec![0], vec![]), err(1e-4, vec![0], vec![0])],
        };
        let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
        assert_eq!(decoder.decode(&[0]), vec![false]);
    }

    #[test]
    fn disconnected_defect_does_not_hang() {
        // Detector 1 has no incident edges at all.
        let dem = DetectorErrorModel {
            num_detectors: 2,
            num_observables: 1,
            errors: vec![err(0.01, vec![0], vec![])],
        };
        let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
        let prediction = decoder.decode(&[0, 1]);
        assert_eq!(prediction.len(), 1);
    }

    #[test]
    fn long_chain_pairs_are_resolved_locally() {
        let decoder = UnionFindDecoder::new(chain_graph(20));
        // Two well-separated internal pairs.
        assert_eq!(decoder.decode(&[3, 4, 12, 13]), vec![false]);
    }
}
