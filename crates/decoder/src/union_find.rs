//! Weighted union-find decoder.
//!
//! An implementation of the Delfosse–Nickerson union-find decoder with
//! weighted cluster growth and peeling:
//!
//! 1. every fired detector seeds a cluster;
//! 2. clusters with odd defect parity (and no boundary contact) grow their
//!    frontier edges one unit at a time, where each edge's length is its
//!    (discretised) log-likelihood weight;
//! 3. when an edge is fully grown its endpoint clusters merge;
//! 4. once every cluster is neutral (even parity or touching the boundary),
//!    a spanning forest of the grown edges is peeled from the leaves inward
//!    to produce a correction, and the parity of logical-observable flips
//!    along the correction is returned.
//!
//! The decoder is near-linear in the number of grown edges, which below
//! threshold is proportional to the number of detection events, so millions
//! of shots can be decoded in seconds. All working state (union-find arrays,
//! frontiers, the peeling forest) lives in the shared [`DecodeScratch`] and
//! is recycled between shots with O(1) epoch-stamped resets; the peeling
//! phase walks only the grown subgraph rather than the full decoding graph,
//! so quiet shots cost almost nothing.

use std::num::NonZeroU64;

use crate::batch::UnionFindScratch;
use crate::memo::next_memo_token;
use crate::{DecodeScratch, Decoder, DecodingGraph};

/// Union-find decoder over a decoding graph.
#[derive(Debug, Clone)]
pub struct UnionFindDecoder {
    graph: DecodingGraph,
    /// Discretised edge lengths (growth units).
    lengths: Vec<u32>,
    /// Index of the virtual boundary node (== number of detectors).
    boundary: usize,
    /// Syndrome-memo ownership token (see [`crate::memo`]).
    memo_token: NonZeroU64,
}

impl UnionFindDecoder {
    /// Creates a decoder for the given decoding graph.
    pub fn new(graph: DecodingGraph) -> Self {
        let boundary = graph.num_detectors();
        let lengths = graph
            .edges()
            .iter()
            .map(|e| ((2.0 * e.weight).round() as u32).clamp(1, 100))
            .collect();
        UnionFindDecoder {
            graph,
            lengths,
            boundary,
            memo_token: next_memo_token(),
        }
    }

    /// Access to the underlying graph.
    pub fn graph(&self) -> &DecodingGraph {
        &self.graph
    }

    fn edge_endpoints(&self, edge: usize) -> (usize, usize) {
        let e = &self.graph.edges()[edge];
        (e.a, e.b.unwrap_or(self.boundary))
    }

    /// Growth phase: grow active clusters until all are neutral. Fully-grown
    /// edges are recorded in `s.grown` / `s.grown_edges`.
    fn grow(&self, fired_detectors: &[usize], s: &mut UnionFindScratch) {
        for &d in fired_detectors {
            let root = s.find(d);
            if s.is_active(root) {
                s.active.push(root);
            }
        }
        s.active.sort_unstable();
        s.active.dedup();

        // Each round grows every active cluster's frontier in lock-step, by
        // the largest uniform amount that completes at least one edge
        // (fast-forwarding the unit-growth schedule: an edge grown by `k`
        // active clusters advances `k` units per unit round, and rounds in
        // which nothing completes are skipped wholesale, so the merge
        // schedule is identical to unit growth at a fraction of the cost).
        // The loop terminates because every round either grows an edge or
        // merges clusters; a stall guard handles pathological graphs with
        // unreachable defects.
        loop {
            let mut active = std::mem::take(&mut s.active);
            active.retain_mut(|root| {
                let r = *root;
                s.find(r) == r && s.is_active(r)
            });
            if active.is_empty() {
                s.active = active;
                break;
            }
            // Pass 1: prune each active frontier (grown / internal /
            // duplicate edges drop out) and count how many clusters grow
            // each edge. The round stamp invalidates the previous round's
            // multiplicities; `last_root` deduplicates repeated entries of
            // one cluster's frontier without sorting it.
            s.round += 1;
            s.growth_candidates.clear();
            for &root in &active {
                let mut frontier = s.frontier.take(root);
                let mut kept = 0usize;
                for index in 0..frontier.len() {
                    let edge = frontier[index];
                    let mut state = s.edges.get(edge);
                    if state.grown {
                        continue;
                    }
                    if state.round == s.round && state.last_root == root as u32 {
                        // Duplicate frontier entry within this cluster.
                        continue;
                    }
                    let (a, b) = self.edge_endpoints(edge);
                    let ra = s.find(a);
                    let rb = s.find(b);
                    if ra == rb {
                        // Internal edge; no longer part of the frontier.
                        continue;
                    }
                    let count = s.edge_multiplicity(state);
                    if count == 0 {
                        s.growth_candidates.push(edge);
                    }
                    state.multiplicity = count + 1;
                    state.round = s.round;
                    state.last_root = root as u32;
                    s.edges.set(edge, state);
                    frontier[kept] = edge;
                    kept += 1;
                }
                frontier.truncate(kept);
                // Return the surviving frontier to the root's slot.
                s.frontier.restore(root, frontier);
            }
            if s.growth_candidates.is_empty() {
                // No edge can grow: remaining defects are unmatchable
                // (disconnected detectors). Give up on them.
                s.active = active;
                break;
            }
            // Pass 2: number of unit rounds until the first edge completes.
            let mut rounds = u32::MAX;
            for index in 0..s.growth_candidates.len() {
                let edge = s.growth_candidates[index];
                let state = s.edges.get(edge);
                let gap = self.lengths[edge] - state.support;
                rounds = rounds.min(gap.div_ceil(u32::from(state.multiplicity)));
            }
            // Pass 3: fast-forward every frontier edge by that many rounds.
            s.merges.clear();
            for index in 0..s.growth_candidates.len() {
                let edge = s.growth_candidates[index];
                let mut state = s.edges.get(edge);
                state.support += u32::from(state.multiplicity) * rounds;
                if state.support >= self.lengths[edge] {
                    state.grown = true;
                    s.grown_edges.push(edge);
                    s.merges.push(edge);
                }
                s.edges.set(edge, state);
            }
            let mut merges = std::mem::take(&mut s.merges);
            // Canonical merge order regardless of frontier traversal order.
            merges.sort_unstable();
            for &edge in &merges {
                let (a, b) = self.edge_endpoints(edge);
                // Record the grown edge in the peeling adjacency (cycle
                // edges included: they are valid non-tree edges).
                s.peel_adjacency.get_mut(a).push(edge);
                if b != a {
                    s.peel_adjacency.get_mut(b).push(edge);
                }
                let ra = s.find(a);
                let rb = s.find(b);
                if ra != rb {
                    // Adopt the other endpoint's incident edges into the
                    // merged frontier the first time a lone node is absorbed.
                    for node in [a, b] {
                        let r = s.find(node);
                        if s.frontier.get_mut(r).is_empty()
                            && !s.defect.get(node)
                            && node != self.boundary
                        {
                            let incident = self.graph.incident_edges(node);
                            s.frontier.get_mut(r).extend_from_slice(incident);
                        }
                    }
                    let new_root = s.union(a, b);
                    // Make sure the merged cluster also sees the absorbed
                    // node's incident edges.
                    for node in [a, b] {
                        if node != self.boundary {
                            let incident = self.graph.incident_edges(node);
                            s.frontier.get_mut(new_root).extend_from_slice(incident);
                        }
                    }
                    active.push(new_root);
                }
            }
            s.merges = merges;
            active.sort_unstable();
            active.dedup();
            s.active = active;
        }
    }

    /// Peeling phase: build a spanning forest of the grown edges (rooted at
    /// the boundary where possible) and peel defects from the leaves inward,
    /// XOR-ing edge observables into `prediction`.
    ///
    /// Only the grown subgraph is visited, so the cost is proportional to
    /// the clusters actually built this shot, not to the graph size.
    fn peel(&self, s: &mut UnionFindScratch, prediction: &mut [bool]) {
        // Roots: the boundary first (so it can absorb defects), then the
        // grown edges' endpoints in ascending order (`peel_roots` is sorted
        // below, so the grown-edge list itself needs no ordering).
        s.peel_roots.clear();
        for index in 0..s.grown_edges.len() {
            let (a, b) = self.edge_endpoints(s.grown_edges[index]);
            s.peel_roots.push(a);
            s.peel_roots.push(b);
        }
        s.peel_roots.sort_unstable();
        s.peel_roots.dedup();

        s.order.clear();
        let bfs = |start: usize, s: &mut UnionFindScratch| {
            if s.peel.written(start) {
                return;
            }
            // A written slot doubles as the visited flag; roots keep the
            // "no incoming edge" sentinels.
            s.peel.set(
                start,
                crate::batch::PeelState {
                    parent_edge: u32::MAX,
                    parent_node: u32::MAX,
                },
            );
            s.queue.clear();
            s.queue.push_back(start);
            while let Some(v) = s.queue.pop_front() {
                s.order.push(v);
                // Only the grown subgraph's adjacency is walked, in the
                // (deterministic) order the edges completed.
                let incident = s.peel_adjacency.take(v);
                for &edge in &incident {
                    let (a, b) = self.edge_endpoints(edge);
                    let next = if a == v { b } else { a };
                    if !s.peel.written(next) {
                        s.peel.set(
                            next,
                            crate::batch::PeelState {
                                parent_edge: edge as u32,
                                parent_node: v as u32,
                            },
                        );
                        s.queue.push_back(next);
                    }
                }
                s.peel_adjacency.restore(v, incident);
            }
        };

        // Root the forest at the boundary first so it can absorb defects.
        if !s.peel_adjacency.get_mut(self.boundary).is_empty() {
            bfs(self.boundary, s);
        }
        let roots = std::mem::take(&mut s.peel_roots);
        for &v in &roots {
            bfs(v, s);
        }
        s.peel_roots = roots;

        // Peel leaves-first (reverse BFS order).
        for index in (0..s.order.len()).rev() {
            let v = s.order[index];
            if s.defect.get(v) {
                let peel = s.peel.get(v);
                if peel.parent_edge != u32::MAX {
                    for &obs in &self.graph.edges()[peel.parent_edge as usize].observables {
                        prediction[obs as usize] ^= true;
                    }
                    s.defect.set(v, false);
                    let p = peel.parent_node as usize;
                    let flipped = !s.defect.get(p);
                    s.defect.set(p, flipped);
                }
            }
        }
        // Any defect absorbed by the boundary is fine; the boundary's defect
        // flag is ignored.
    }
}

impl Decoder for UnionFindDecoder {
    fn decode_shot(
        &self,
        fired_detectors: &[usize],
        scratch: &mut DecodeScratch,
        prediction: &mut [bool],
    ) {
        if fired_detectors.is_empty() || self.graph.is_empty() {
            return;
        }
        let num_nodes = self.graph.num_detectors() + 1;
        let s = &mut scratch.union_find;
        s.begin(num_nodes, self.graph.edges().len());
        let mut boundary_state = s.nodes.get(self.boundary);
        boundary_state.boundary = true;
        s.nodes.set(self.boundary, boundary_state);
        for &d in fired_detectors {
            s.defect.set(d, true);
            let mut state = s.nodes.get(d);
            state.parity = true;
            s.nodes.set(d, state);
            s.frontier
                .get_mut(d)
                .extend_from_slice(self.graph.incident_edges(d));
        }
        self.grow(fired_detectors, s);
        self.peel(s, prediction);
    }

    fn num_observables(&self) -> usize {
        self.graph.num_observables()
    }

    fn memo_token(&self) -> Option<NonZeroU64> {
        Some(self.memo_token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_sim::{DemError, DetectorErrorModel};

    fn err(p: f64, detectors: Vec<u32>, observables: Vec<u32>) -> DemError {
        DemError {
            probability: p,
            detectors,
            observables,
        }
    }

    /// A 1-D repetition-code-like chain: detectors 0..n in a line, boundary
    /// edges at both ends, the last boundary edge flips the observable.
    fn chain_graph(n: usize) -> DecodingGraph {
        let mut errors = vec![err(0.01, vec![0], vec![])];
        for i in 0..n - 1 {
            errors.push(err(0.01, vec![i as u32, i as u32 + 1], vec![]));
        }
        errors.push(err(0.01, vec![n as u32 - 1], vec![0]));
        let dem = DetectorErrorModel {
            num_detectors: n,
            num_observables: 1,
            errors,
        };
        DecodingGraph::from_dem(&dem)
    }

    #[test]
    fn empty_syndrome_gives_trivial_correction() {
        let decoder = UnionFindDecoder::new(chain_graph(5));
        assert_eq!(decoder.decode(&[]), vec![false]);
        assert_eq!(decoder.num_observables(), 1);
    }

    #[test]
    fn single_defect_matches_to_nearest_boundary() {
        let decoder = UnionFindDecoder::new(chain_graph(5));
        // Defect near the left boundary: corrected via the left (no
        // observable flip).
        assert_eq!(decoder.decode(&[0]), vec![false]);
        // Defect near the right boundary: corrected via the right edge which
        // carries the observable.
        assert_eq!(decoder.decode(&[4]), vec![true]);
    }

    #[test]
    fn adjacent_defect_pair_is_matched_internally() {
        let decoder = UnionFindDecoder::new(chain_graph(6));
        // Two adjacent defects in the middle: the error was a single data
        // error between them; no observable flip.
        assert_eq!(decoder.decode(&[2, 3]), vec![false]);
    }

    #[test]
    fn defect_pair_spanning_the_chain_flips_the_observable_once() {
        let decoder = UnionFindDecoder::new(chain_graph(4));
        // Defects at both ends: the most likely explanation is two separate
        // boundary errors (left one without flip, right one with flip).
        assert_eq!(decoder.decode(&[0, 3]), vec![true]);
    }

    #[test]
    fn weighted_growth_prefers_likely_edges() {
        // Detector 0 sits between a very likely boundary edge (p=0.2, no
        // flip) and a very unlikely boundary edge (p=1e-4, flip). The decoder
        // must pick the likely explanation.
        let dem = DetectorErrorModel {
            num_detectors: 1,
            num_observables: 1,
            errors: vec![err(0.2, vec![0], vec![]), err(1e-4, vec![0], vec![0])],
        };
        let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
        assert_eq!(decoder.decode(&[0]), vec![false]);
    }

    #[test]
    fn disconnected_defect_does_not_hang() {
        // Detector 1 has no incident edges at all.
        let dem = DetectorErrorModel {
            num_detectors: 2,
            num_observables: 1,
            errors: vec![err(0.01, vec![0], vec![])],
        };
        let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem));
        let prediction = decoder.decode(&[0, 1]);
        assert_eq!(prediction.len(), 1);
    }

    #[test]
    fn long_chain_pairs_are_resolved_locally() {
        let decoder = UnionFindDecoder::new(chain_graph(20));
        // Two well-separated internal pairs.
        assert_eq!(decoder.decode(&[3, 4, 12, 13]), vec![false]);
    }

    #[test]
    fn scratch_reuse_is_stateless_across_shots() {
        let decoder = UnionFindDecoder::new(chain_graph(8));
        let mut scratch = DecodeScratch::new();
        let syndromes: Vec<Vec<usize>> = vec![
            vec![0],
            vec![7],
            vec![2, 3],
            vec![],
            vec![0, 7],
            vec![1, 2, 6],
        ];
        for syndrome in &syndromes {
            let mut with_scratch = vec![false; 1];
            decoder.decode_shot(syndrome, &mut scratch, &mut with_scratch);
            assert_eq!(
                with_scratch,
                decoder.decode(syndrome),
                "scratch reuse changed the prediction for {syndrome:?}"
            );
        }
    }
}
